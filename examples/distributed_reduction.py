"""Distributed reduction: Algorithm 1 over simulated MPI ranks.

The paper's outermost parallel level is MPI over experiment runs
(``srun -n 4 ./bixbyite_topaz``).  This example launches a 4-rank
world, gives each rank a contiguous block of the run files, reduces the
per-rank histograms with ``MPI_Reduce``, and verifies the distributed
cross-section matches a single-rank reduction bit for bit.

Run:  python examples/distributed_reduction.py
"""

import numpy as np

from repro.bench.workloads import bixbyite_topaz, build_workload
from repro.mpi import rank_range, run_world
from repro.proxy import CppProxyConfig, CppProxyWorkflow


def main() -> None:
    spec = bixbyite_topaz(scale=0.0005, n_files=8)
    print(spec.describe())
    data = build_workload(spec)

    config = CppProxyConfig(
        md_paths=data.md_paths,
        flux_path=data.flux_path,
        vanadium_path=data.vanadium_path,
        instrument=data.instrument,
        grid=data.grid,
        point_group=data.point_group,
        n_threads=1,
    )

    print("\nsingle-rank reference ...")
    reference = CppProxyWorkflow(config).run()
    print(reference.timings.summary())

    n_ranks = 4
    print(f"\n{n_ranks}-rank world (each rank owns a block of run files):")
    for rank in range(n_ranks):
        start, end = rank_range(spec.n_files, rank, n_ranks)
        print(f"  rank {rank}: files [{start}, {end})")

    def spmd(comm):
        result = CppProxyWorkflow(config).run(comm=comm)
        local = result.timings.seconds("MDNorm + BinMD")
        # every rank reports its local compute; root returns the reduction
        print(f"  rank {comm.rank}: local MDNorm+BinMD {local:.3f} s")
        if result.is_root:
            return result.binmd.signal, result.mdnorm.signal
        return None

    outputs = run_world(n_ranks, spmd)
    binmd, mdnorm_sig = outputs[0]

    assert np.allclose(binmd, reference.binmd.signal)
    assert np.allclose(mdnorm_sig, reference.mdnorm.signal, rtol=1e-10)
    print("\ndistributed reduction == single-rank reduction (bit-for-bit)")


if __name__ == "__main__":
    main()
