"""Quickstart: reduce a synthetic CORELLI/Benzil measurement.

Synthesizes a small experiment (4 runs), writes the same files the SNS
production workflow would produce (NeXus raw events, SaveMD event
tables, flux + vanadium corrections), and reduces them to the
differential scattering cross-section with the MiniVATES proxy on the
device back end.

Run:  python examples/quickstart.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.bench.workloads import benzil_corelli, build_workload
from repro.proxy import MiniVatesConfig, MiniVatesWorkflow


def main() -> None:
    # 1. A Benzil/CORELLI workload at 1/1000 of the paper's scale.
    #    build_workload() synthesizes events from benzil's real lattice
    #    and writes every input file the reduction needs.
    spec = benzil_corelli(scale=0.001, n_files=4)
    print(spec.describe())
    data = build_workload(spec)
    print(f"dataset: {len(data.md_paths)} SaveMD files, "
          f"{data.total_bytes / 1e6:.2f} MB in {data.directory}")

    # 2. Configure the reduction: output grid, symmetry, corrections.
    config = MiniVatesConfig(
        md_paths=data.md_paths,
        flux_path=data.flux_path,
        vanadium_path=data.vanadium_path,
        instrument=data.instrument,
        grid=data.grid,
        point_group=data.point_group,  # benzil: 6 symmetry operations
    )

    # 3. Run Algorithm 1: per file, MDNorm + BinMD; then divide.
    result = MiniVatesWorkflow(config).run()

    # 4. Inspect the outcome.
    print()
    print(result.timings.summary())
    cross = result.cross_section
    print(f"\ncross-section grid: {cross.grid}")
    print(f"bins with data: {cross.nonzero_fraction():.1%}")
    finite = cross.signal[~np.isnan(cross.signal)]
    print(f"intensity range: [{finite.min():.3g}, {finite.max():.3g}]")
    print(f"device traffic: {result.extras['bytes_h2d'] / 1e6:.2f} MB to device, "
          f"{result.extras['bytes_d2h'] / 1e6:.3f} MB back")
    print(f"JIT: {result.extras['jit_compile_events']} kernel specializations, "
          f"{result.extras['jit_compile_seconds'] * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
