"""Writing your own performance-portable kernel on the JACC layer.

The paper's pitch is that application scientists write one kernel and
run it on every back end.  This example implements a new analysis
kernel — the radial (powder) average of a reduced cross-section — as a
:class:`repro.jacc.Kernel` with both a scalar and a data-parallel body,
and runs it unchanged on serial, threads and the device back end,
checking the results agree and timing each engine.

Run:  python examples/portable_kernels.py
"""

import time

import numpy as np

from repro.bench.workloads import benzil_corelli, build_workload
from repro.jacc import Kernel, available_backends, parallel_for
from repro.jacc.atomic import atomic_add
from repro.jacc.kernels import make_captures
from repro.proxy import MiniVatesConfig, MiniVatesWorkflow


def radial_average_kernel() -> Kernel:
    """Histogram every (H, K) bin's intensity by its radius |c|."""

    def element(ctx, i):
        # one lane per flattened 2-D bin
        value = ctx.values[i]
        if value != value:  # NaN: bin had no normalization
            return
        r = ctx.radii[i]
        b = int(r / ctx.dr)
        if b < ctx.n_radial:
            ctx.sums[b] += value
            ctx.counts[b] += 1.0

    def batch(ctx, dims):
        good = ~np.isnan(ctx.values)
        b = (ctx.radii / ctx.dr).astype(np.int64)
        good &= b < ctx.n_radial
        atomic_add(ctx.sums, b[good], ctx.values[good])
        atomic_add(ctx.counts, b[good], 1.0)

    return Kernel(name="radial_average", element=element, batch=batch)


def main() -> None:
    # produce a cross-section to analyze
    data = build_workload(benzil_corelli(scale=0.001, n_files=4))
    result = MiniVatesWorkflow(
        MiniVatesConfig(
            md_paths=data.md_paths,
            flux_path=data.flux_path,
            vanadium_path=data.vanadium_path,
            instrument=data.instrument,
            grid=data.grid,
            point_group=data.point_group,
        )
    ).run()
    cross = result.cross_section

    # lay out the kernel inputs: one lane per (H, K) bin
    grid = cross.grid
    e0, e1, _ = grid.edges
    c0 = 0.5 * (e0[1:] + e0[:-1])
    c1 = 0.5 * (e1[1:] + e1[:-1])
    radii = np.sqrt(c0[:, None] ** 2 + c1[None, :] ** 2).ravel()
    values = cross.slice2d(axis=2, index=0).ravel()
    n_radial = 60
    dr = float(radii.max() / n_radial) + 1e-12

    kernel = radial_average_kernel()
    profiles = {}
    for backend in available_backends():
        sums = np.zeros(n_radial)
        counts = np.zeros(n_radial)
        captures = make_captures(
            values=values, radii=radii, sums=sums, counts=counts,
            dr=dr, n_radial=n_radial,
        )
        t0 = time.perf_counter()
        parallel_for(values.shape[0], kernel, captures, backend=backend)
        dt = time.perf_counter() - t0
        with np.errstate(invalid="ignore"):
            profiles[backend] = (np.divide(sums, counts,
                                           out=np.full(n_radial, np.nan),
                                           where=counts > 0), dt)

    reference, _ = profiles["serial"]
    print(f"{'back end':<12} {'WCT':>10}   result")
    for backend, (profile, dt) in profiles.items():
        match = np.allclose(np.nan_to_num(profile), np.nan_to_num(reference))
        print(f"{backend:<12} {dt * 1e3:>8.2f}ms   "
              f"{'identical to serial' if match else 'MISMATCH'}")
        assert match

    peak = np.nanargmax(reference)
    print(f"\nradial profile peak at |c| = {(peak + 0.5) * dr:.2f} r.l.u. — "
          "the strongest powder ring of the benzil pattern")


if __name__ == "__main__":
    main()
