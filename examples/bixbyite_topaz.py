"""Bixbyite on TOPAZ: the Fig. 4 symmetry panels, rendered in ASCII.

Reproduces the paper's four-panel figure — single run, single run +
symmetry, ensemble, ensemble + symmetry — on the cubic Ia-3 bixbyite
sample (24 point-group operations) and renders each (H, K) cross-
section slice as a terminal intensity map, showing reciprocal space
filling in exactly as the paper's panels do.

Run:  python examples/bixbyite_topaz.py
"""

from repro.bench.workloads import bixbyite_topaz, build_workload
from repro.core.cross_section import compute_cross_section
from repro.core.md_event_workspace import load_md
from repro.core.render import ascii_map
from repro.crystal.symmetry import point_group
from repro.nexus.corrections import read_flux_file, read_vanadium_file


def main() -> None:
    spec = bixbyite_topaz(scale=0.001, n_files=8)
    print(spec.describe())
    data = build_workload(spec)
    flux = read_flux_file(data.flux_path)
    vanadium = read_vanadium_file(data.vanadium_path)

    def panel(n_runs: int, pg_symbol: str):
        return compute_cross_section(
            load_run=lambda i: load_md(data.md_paths[i]),
            n_runs=n_runs,
            grid=data.grid,
            point_group=point_group(pg_symbol),
            flux=flux,
            det_directions=data.instrument.directions,
            solid_angles=vanadium.detector_weights,
            backend="vectorized",
        )

    panels = [
        ("single run, no symmetry (P1)", panel(1, "1")),
        ("single run + 24 symmetry ops (m-3)", panel(1, "m-3")),
        (f"{spec.n_files} runs, no symmetry", panel(spec.n_files, "1")),
        (f"{spec.n_files} runs + 24 symmetry ops", panel(spec.n_files, "m-3")),
    ]

    for title, res in panels:
        print(f"\n=== {title} ===")
        print(f"BinMD coverage {res.binmd.nonzero_fraction():.1%}, "
              f"signal {res.binmd.total():.4g}")
        print(ascii_map(res.binmd.slice2d(axis=2, index=0)))

    print("\nAs in the paper's Fig. 4: symmetry operations and ensemble "
          "accumulation progressively fill the (H, K) plane.")


if __name__ == "__main__":
    main()
