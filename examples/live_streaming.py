"""Near-real-time reduction: watch the cross-section build up live.

The IRI vision the paper closes with — and the ADARA live-streaming
work it cites — is reducing an experiment *while it acquires*, so
scientists can steer or stop a measurement early.  This example replays
a Benzil ensemble as acquisition-sized event batches through
:class:`repro.core.StreamingReduction` and prints the live coverage
after every chunk, then proves the streamed result is identical to the
offline batch reduction.

Run:  python examples/live_streaming.py
"""

import numpy as np

from repro.bench.workloads import benzil_corelli, build_workload
from repro.core import EventStream, StreamingReduction
from repro.core.cross_section import compute_cross_section
from repro.core.md_event_workspace import load_md
from repro.nexus.corrections import read_flux_file, read_vanadium_file
from repro.nexus.schema import read_event_nexus


def main() -> None:
    spec = benzil_corelli(scale=0.001, n_files=4)
    print(spec.describe())
    data = build_workload(spec)
    flux = read_flux_file(data.flux_path)
    vanadium = read_vanadium_file(data.vanadium_path)

    live = StreamingReduction(
        grid=data.grid,
        point_group=data.point_group,
        flux=flux,
        instrument=data.instrument,
        solid_angles=vanadium.detector_weights,
        backend="vectorized",
    )

    print(f"\n{'run':>4} {'batch':>6} {'events seen':>12} "
          f"{'BinMD coverage':>15} {'peak intensity':>15}")
    for path in data.nexus_paths:
        run = read_event_nexus(path)
        live.open_run(run)  # normalization lands immediately (geometry only)
        stream = EventStream(run, batch_size=400)
        for j, batch in enumerate(stream):
            live.consume(batch)
            if j % 2 == 0 or j == stream.n_batches - 1:
                snap = live.snapshot()
                finite = snap.signal[~np.isnan(snap.signal)]
                peak = finite.max() if finite.size else 0.0
                print(f"{run.run_number:>4} {j:>6} {live.events_seen:>12} "
                      f"{live.binmd.nonzero_fraction():>14.1%} {peak:>15.3g}")
        live.close_run(run.run_number)

    # prove the live result equals the offline batch reduction
    reference = compute_cross_section(
        load_run=lambda i: load_md(data.md_paths[i]),
        n_runs=len(data.md_paths),
        grid=data.grid,
        point_group=data.point_group,
        flux=flux,
        det_directions=data.instrument.directions,
        solid_angles=vanadium.detector_weights,
        backend="vectorized",
    )
    assert np.allclose(live.binmd.signal, reference.binmd.signal)
    assert np.allclose(live.mdnorm_hist.signal, reference.mdnorm.signal, rtol=1e-10)
    print("\nstreamed reduction == offline batch reduction (bit-for-bit)")


if __name__ == "__main__":
    main()
