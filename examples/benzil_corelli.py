"""Benzil on CORELLI: the paper's methodology end to end.

Runs the same measurement through all three implementations — the
Garnet/Mantid production baseline, the C++ proxy's optimized CPU
kernels, and MiniVATES on the device back end — verifies they produce
identical cross-sections (the Fig. 3 promise), and prints the speedup
each proxy achieves over production (the paper's headline numbers).

Run:  python examples/benzil_corelli.py
"""

import numpy as np

from repro.bench.harness import (
    A100_PROFILE,
    assert_results_match,
    run_cpp_proxy,
    run_garnet,
    run_minivates,
)
from repro.bench.workloads import benzil_corelli, build_workload


def main() -> None:
    spec = benzil_corelli(scale=0.001, n_files=6)
    print(spec.describe())
    data = build_workload(spec)

    print("\nrunning the Garnet/Mantid production baseline ...")
    garnet = run_garnet(data)
    print(garnet.timings.summary())

    print("\nrunning the C++ proxy (ROI search, index sorts, threads) ...")
    cpp = run_cpp_proxy(data)
    print(cpp.timings.summary())

    print("\nrunning MiniVATES (device kernels, comb sort, pre-pass) ...")
    minivates = run_minivates(data, profile=A100_PROFILE)
    print(minivates.timings.summary())

    # the paper's artifact promise: identical reductions
    assert_results_match(garnet, cpp)
    assert_results_match(garnet, minivates)
    print("\nall three implementations produced identical histograms")

    base = garnet.per_file("MDNorm + BinMD")
    print("\nspeedup over production (MDNorm + BinMD per file):")
    print(f"  C++ proxy:  {base / cpp.per_file('MDNorm + BinMD'):6.1f}x "
          "(paper: ~74x at full scale)")
    print(f"  MiniVATES:  {base / minivates.per_file('MDNorm + BinMD'):6.1f}x "
          "(paper: ~299x at full scale)")

    cross = garnet.result.cross_section
    finite = cross.signal[~np.isnan(cross.signal)]
    print(f"\ncross-section: {cross.grid.names[0]} x {cross.grid.names[1]}, "
          f"{cross.nonzero_fraction():.1%} coverage, "
          f"max intensity {finite.max():.3g}")


if __name__ == "__main__":
    main()
