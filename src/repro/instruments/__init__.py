"""Instrument models: CORELLI and TOPAZ geometry plus event synthesis.

The real experiment data (8.5 GB Benzil / 206 GB Bixbyite NeXus files)
is facility-internal; this subpackage substitutes a physically faithful
synthetic pipeline:

* :mod:`repro.instruments.detector` — generic pixelated detector arrays
  (positions, flight paths, solid angles, direction lookup);
* :mod:`repro.instruments.corelli` — CORELLI's cylindrical geometry
  (372K pixels at full scale, 20 m moderator-sample flight path);
* :mod:`repro.instruments.topaz` — TOPAZ's panel geometry (1.6M pixels
  at full scale, short sample-detector distances);
* :mod:`repro.instruments.conversion` — time-of-flight <-> wavelength
  <-> momentum <-> Q_lab kinematics;
* :mod:`repro.instruments.synth` — synthetic single-crystal event
  generation: Bragg peaks + diffuse scattering from the sample's real
  lattice, mapped through the exact inverse of the reduction kinematics
  onto (pixel id, time-of-flight) events.
"""

from repro.instruments.detector import DetectorArray
from repro.instruments.corelli import make_corelli
from repro.instruments.topaz import make_topaz
from repro.instruments.conversion import (
    tof_to_wavelength,
    wavelength_to_tof,
    wavelength_to_momentum,
    momentum_to_wavelength,
    q_lab_from_events,
    H_OVER_MN,
)
from repro.instruments.synth import SynthesisConfig, synthesize_run, instrument_q_window
from repro.instruments.idf import read_instrument, write_instrument

__all__ = [
    "DetectorArray",
    "make_corelli",
    "make_topaz",
    "tof_to_wavelength",
    "wavelength_to_tof",
    "wavelength_to_momentum",
    "momentum_to_wavelength",
    "q_lab_from_events",
    "H_OVER_MN",
    "SynthesisConfig",
    "synthesize_run",
    "instrument_q_window",
    "read_instrument",
    "write_instrument",
]
