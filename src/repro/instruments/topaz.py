"""TOPAZ: high-resolution single-crystal diffractometer (SNS beamline 12).

The real instrument has ~1.6M pixels (the inner loop count of Listing 1
for the Bixbyite case): about 25 flat 256x256 Anger-camera panels of
~15x15 cm mounted on a sphere of roughly 40-45 cm around the sample,
with an 18 m moderator-to-sample flight path.

``make_topaz(scale=...)`` reproduces a panel arrangement at configurable
per-panel resolution so scaled runs keep the short flight paths, the
panel tiling and the wide solid-angle coverage of the real instrument.
"""

from __future__ import annotations

import numpy as np

from repro.instruments.detector import DetectorArray
from repro.crystal.goniometer import rotation_about_axis
from repro.util.validation import require

#: pixel count of the full instrument (paper Table II: 1.6M)
FULL_PIXELS = 1_600_000
N_PANELS = 24
PANEL_SIDE_M = 0.158
PANEL_DISTANCE_M = 0.425
L1_M = 18.0
WAVELENGTH_BAND = (0.4, 3.5)

# Panel centers as (two_theta_deg, azimuth_deg) on the detector sphere;
# a staggered arrangement avoiding the incident and transmitted beam.
_PANEL_ANGLES = [
    (tt, az)
    for tt in (26.0, 48.0, 70.0, 92.0, 114.0, 136.0)
    for az in (0.0, 90.0, 180.0, 270.0)
]


def make_topaz(n_pixels: int | None = None, scale: float = 1.0) -> DetectorArray:
    """Build the TOPAZ detector array.

    Parameters
    ----------
    n_pixels:
        Explicit total pixel budget; overrides ``scale``.
    scale:
        Fraction of the real instrument's 1.6M pixels to instantiate.
    """
    if n_pixels is None:
        n_pixels = max(N_PANELS * 4, int(round(FULL_PIXELS * scale)))
    require(n_pixels >= N_PANELS * 4, f"TOPAZ needs >= {N_PANELS * 4} pixels")
    per_panel_side = max(2, int(round(np.sqrt(n_pixels / N_PANELS))))

    # Local panel grid in its own plane, centered on the origin.
    half = PANEL_SIDE_M / 2.0
    u = np.linspace(-half, half, per_panel_side)
    uu, vv = np.meshgrid(u, u, indexing="ij")
    local = np.column_stack(
        [uu.ravel(), vv.ravel(), np.zeros(per_panel_side**2)]
    )

    panels = []
    for two_theta, azimuth in _PANEL_ANGLES:
        # Panel normal points back at the sample.  Start with a panel in
        # the x-y plane at +z, rotate by two_theta about y, then by the
        # azimuth about the beam axis z.
        r_tt = rotation_about_axis(np.array([0.0, 1.0, 0.0]), two_theta)
        r_az = rotation_about_axis(np.array([0.0, 0.0, 1.0]), azimuth)
        rot = r_az @ r_tt
        center = rot @ np.array([0.0, 0.0, PANEL_DISTANCE_M])
        panels.append(local @ rot.T + center)
    positions = np.vstack(panels)

    pixel_pitch = PANEL_SIDE_M / per_panel_side
    pixel_area = np.full(positions.shape[0], pixel_pitch**2)
    return DetectorArray(
        name="TOPAZ",
        positions=positions,
        pixel_area=pixel_area,
        l1=L1_M,
        wavelength_band=WAVELENGTH_BAND,
    )
