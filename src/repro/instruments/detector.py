"""Pixelated detector arrays.

A :class:`DetectorArray` is the geometry substrate shared by both
instrument models: per-pixel lab-frame positions, flight paths, solid
angles, and a fast nearest-direction lookup (used by the synthetic event
generator to map a scattered neutron onto the pixel that records it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Optional

import numpy as np
from scipy.spatial import cKDTree

from repro.util.validation import ValidationError, require


@dataclass
class DetectorArray:
    """Geometry of every pixel of an instrument.

    Attributes
    ----------
    name:
        Instrument name ("CORELLI", "TOPAZ", ...).
    positions:
        ``(n_pixels, 3)`` lab-frame pixel centers in meters (sample at
        the origin, beam along +z).
    pixel_area:
        ``(n_pixels,)`` sensitive area of each pixel in m^2.
    l1:
        Moderator-to-sample distance in meters.
    wavelength_band:
        Default ``(lambda_min, lambda_max)`` in Angstrom the instrument
        choppers accept.
    """

    name: str
    positions: np.ndarray
    pixel_area: np.ndarray
    l1: float
    wavelength_band: tuple[float, float]

    def __post_init__(self) -> None:
        self.positions = np.ascontiguousarray(self.positions, dtype=np.float64)
        if self.positions.ndim != 2 or self.positions.shape[1] != 3:
            raise ValidationError(f"positions must be (n, 3), got {self.positions.shape}")
        self.pixel_area = np.ascontiguousarray(self.pixel_area, dtype=np.float64)
        require(self.pixel_area.shape == (self.positions.shape[0],),
                "pixel_area length mismatch")
        require(self.l1 > 0, "l1 must be positive")
        lo, hi = self.wavelength_band
        require(0 < lo < hi, "wavelength_band must satisfy 0 < min < max")
        l2 = np.linalg.norm(self.positions, axis=1)
        if np.any(l2 <= 0):
            raise ValidationError("pixels at the sample position are invalid")

    @property
    def n_pixels(self) -> int:
        return int(self.positions.shape[0])

    @cached_property
    def l2(self) -> np.ndarray:
        """Sample-to-pixel distance per pixel, meters."""
        return np.linalg.norm(self.positions, axis=1)

    @cached_property
    def directions(self) -> np.ndarray:
        """Unit vectors sample -> pixel, ``(n, 3)``."""
        return self.positions / self.l2[:, None]

    @cached_property
    def two_theta(self) -> np.ndarray:
        """Scattering angles per pixel, radians."""
        cos_tt = np.clip(self.directions[:, 2], -1.0, 1.0)
        return np.arccos(cos_tt)

    @cached_property
    def solid_angles(self) -> np.ndarray:
        """Approximate solid angle per pixel: area / L2^2 (normal incidence)."""
        return self.pixel_area / self.l2**2

    @cached_property
    def flight_paths(self) -> np.ndarray:
        """Total flight path L1 + L2 per pixel, meters."""
        return self.l1 + self.l2

    @cached_property
    def _direction_tree(self) -> cKDTree:
        return cKDTree(self.directions)

    @cached_property
    def mean_pixel_angular_radius(self) -> float:
        """Angular half-extent of a typical pixel, radians."""
        return float(np.sqrt(self.pixel_area / np.pi).mean() / self.l2.mean())

    def nearest_pixel(
        self, directions: np.ndarray, max_angle: Optional[float] = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Map unit direction vectors onto the closest pixel.

        Returns ``(pixel_indices, hit_mask)``; a direction whose angular
        distance to the closest pixel center exceeds ``max_angle``
        (default: 1.5x the mean pixel angular radius) missed the
        detector coverage and has ``hit_mask = False``.
        """
        d = np.asarray(directions, dtype=np.float64)
        require(d.ndim == 2 and d.shape[1] == 3, "directions must be (n, 3)")
        if max_angle is None:
            max_angle = 1.5 * self.mean_pixel_angular_radius
        # chord length <-> angle: |a - b| = 2 sin(angle / 2) for unit vectors
        max_chord = 2.0 * np.sin(0.5 * max_angle)
        dist, idx = self._direction_tree.query(d, k=1)
        hit = dist <= max_chord
        return idx.astype(np.int64), hit

    def momentum_band(self) -> tuple[float, float]:
        """The accepted momentum range (k_min, k_max) in 1/Angstrom."""
        lo, hi = self.wavelength_band
        return 2.0 * np.pi / hi, 2.0 * np.pi / lo

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        tt = np.degrees(self.two_theta)
        return (
            f"DetectorArray({self.name!r}, pixels={self.n_pixels}, "
            f"two_theta=[{tt.min():.1f}, {tt.max():.1f}] deg, L1={self.l1} m)"
        )
