"""CORELLI: elastic diffuse scattering spectrometer (SNS beamline 9).

The real instrument has ~372K pixels (the inner loop count of the
paper's Listing 1 for the Benzil case): 1 m long linear-position-
sensitive He-3 tubes on a cylindrical locus of radius ~2.55 m wrapping
scattering angles from about -17 to +135 degrees, and a 20 m
moderator-to-sample flight path with a wide wavelength band.

``make_corelli(scale=...)`` reproduces that geometry at a configurable
pixel count so laptop-scale benchmarks keep the real instrument's
angular coverage and flight-path distribution.
"""

from __future__ import annotations

import numpy as np

from repro.instruments.detector import DetectorArray
from repro.util.validation import require

#: pixel count of the full instrument (paper Table II: 372K)
FULL_PIXELS = 372_000
RADIUS_M = 2.55
HEIGHT_M = 2.0
TWO_THETA_MIN_DEG = -17.0
TWO_THETA_MAX_DEG = 135.0
L1_M = 20.0
WAVELENGTH_BAND = (0.6, 2.6)


def make_corelli(n_pixels: int | None = None, scale: float = 1.0) -> DetectorArray:
    """Build the CORELLI detector array.

    Parameters
    ----------
    n_pixels:
        Explicit pixel count; overrides ``scale``.
    scale:
        Fraction of the real instrument's 372K pixels to instantiate.
    """
    if n_pixels is None:
        n_pixels = max(16, int(round(FULL_PIXELS * scale)))
    require(n_pixels >= 16, "CORELLI needs at least 16 pixels")

    # Distribute pixels on the cylindrical band: columns in azimuth
    # (in-plane scattering angle), rows in height, keeping the real
    # aspect ratio (arc length ~ 6.8 m, height 2 m).
    arc = np.radians(TWO_THETA_MAX_DEG - TWO_THETA_MIN_DEG) * RADIUS_M
    aspect = arc / HEIGHT_M
    n_cols = max(4, int(round(np.sqrt(n_pixels * aspect))))
    n_rows = max(4, int(round(n_pixels / n_cols)))

    # In-plane angle of each column, degrees -> radians.  The gap for
    # the incident beam (|angle| < 2.5 deg) is left un-instrumented.
    phi = np.radians(np.linspace(TWO_THETA_MIN_DEG, TWO_THETA_MAX_DEG, n_cols))
    phi = phi[np.abs(np.degrees(phi)) > 2.5]
    y = np.linspace(-HEIGHT_M / 2, HEIGHT_M / 2, n_rows)
    pp, yy = np.meshgrid(phi, y, indexing="ij")

    # Cylinder axis vertical (y); in-plane angle measured from +z
    # (the beam) toward +x.
    x = RADIUS_M * np.sin(pp).ravel()
    z = RADIUS_M * np.cos(pp).ravel()
    positions = np.column_stack([x, yy.ravel(), z])

    pixel_area = np.full(
        positions.shape[0], (arc / max(len(phi), 1)) * (HEIGHT_M / n_rows)
    )
    return DetectorArray(
        name="CORELLI",
        positions=positions,
        pixel_area=pixel_area,
        l1=L1_M,
        wavelength_band=WAVELENGTH_BAND,
    )
