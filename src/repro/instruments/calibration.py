"""Vanadium calibration measurements.

Facilities do not know their detectors' solid angle x efficiency
analytically — they *measure* it by scattering off vanadium, which is
(nearly) an ideal isotropic incoherent scatterer: every pixel's count
rate is proportional to its solid angle times its efficiency.  This
module simulates that procedure end to end:

1. :func:`simulate_vanadium_run` — synthesize a white-beam vanadium
   measurement: per-pixel Poisson counts with expectation proportional
   to ``solid_angle x efficiency x total_flux``;
2. :func:`calibrate_from_counts` — turn measured counts back into the
   per-detector weights MDNorm needs (normalized so the calibration
   carries relative, not absolute, scale).

The analytic :func:`repro.instruments.synth.make_vanadium` remains the
noise-free shortcut; the tests verify the measured calibration
converges to it as counting statistics grow.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.instruments.detector import DetectorArray
from repro.nexus.corrections import VanadiumData
from repro.util.validation import require


def simulate_vanadium_run(
    instrument: DetectorArray,
    rng: np.random.Generator,
    *,
    total_counts: float = 1e6,
    efficiency: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-pixel counts of a simulated vanadium measurement.

    ``efficiency`` is the true per-pixel efficiency (default 1); the
    expectation of pixel p's counts is
    ``total_counts * solid_angle_p * eff_p / sum(solid_angle * eff)``.
    """
    require(total_counts > 0, "total_counts must be positive")
    if efficiency is None:
        efficiency = np.ones(instrument.n_pixels)
    efficiency = np.asarray(efficiency, dtype=np.float64)
    require(efficiency.shape == (instrument.n_pixels,),
            "efficiency length mismatch")
    rate = instrument.solid_angles * efficiency
    total_rate = rate.sum()
    require(total_rate > 0, "instrument has no sensitive area")
    expectation = total_counts * rate / total_rate
    return rng.poisson(expectation).astype(np.float64)


def calibrate_from_counts(
    counts: np.ndarray,
    *,
    min_counts: float = 1.0,
) -> VanadiumData:
    """Detector weights from a vanadium measurement's counts.

    Pixels below ``min_counts`` are masked (weight 0) — dead or shadowed
    tubes.  Weights are normalized to unit mean over live pixels so they
    carry the relative response, matching the convention of
    :func:`repro.instruments.synth.make_vanadium` up to overall scale.
    """
    counts = np.asarray(counts, dtype=np.float64)
    require(counts.ndim == 1, "counts must be 1-D")
    weights = np.where(counts >= min_counts, counts, 0.0)
    live = weights > 0
    if live.any():
        weights = weights / weights[live].mean()
    return VanadiumData(detector_weights=weights)


def calibration_residual(
    measured: VanadiumData, reference: VanadiumData
) -> float:
    """RMS relative deviation of a measured calibration from a
    reference, over pixels live in both (a quality-of-fit figure)."""
    a = measured.detector_weights
    b = reference.detector_weights
    require(a.shape == b.shape, "calibrations cover different detectors")
    live = (a > 0) & (b > 0)
    if not live.any():
        return np.inf
    ra = a[live] / a[live].mean()
    rb = b[live] / b[live].mean()
    return float(np.sqrt(np.mean((ra / rb - 1.0) ** 2)))
