"""Instrument definition files.

Mantid instruments are defined by on-disk definition files (IDF) so a
reduction can run anywhere the data travels.  This module provides the
equivalent for :class:`DetectorArray`: a complete geometry serialization
(pixel positions, areas, flight path, wavelength band) in the h5lite
container, written next to the event files by the workload builder, so
a dataset directory is self-contained.

Schema::

    /instrument          NX_class="NXinstrument"
      name               string
      positions          (n, 3) float64, meters, zlib-compressed
      pixel_area         (n,) float64, m^2, zlib-compressed
      l1                 scalar float64, meters
      wavelength_band    (2,) float64, Angstrom
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.instruments.detector import DetectorArray
from repro.nexus.h5lite import File, H5LiteError


def write_instrument(path: Union[str, os.PathLike], instrument: DetectorArray) -> None:
    """Serialize an instrument geometry to a definition file."""
    with File(path, "w") as f:
        grp = f.create_group("instrument")
        grp.attrs["NX_class"] = "NXinstrument"
        grp.create_dataset("name", data=np.array(instrument.name))
        grp.create_dataset("positions", data=instrument.positions,
                           compression="zlib")
        grp.create_dataset("pixel_area", data=instrument.pixel_area,
                           compression="zlib")
        grp.create_dataset("l1", data=np.array(instrument.l1, dtype=np.float64))
        grp.create_dataset(
            "wavelength_band",
            data=np.asarray(instrument.wavelength_band, dtype=np.float64),
        )


def read_instrument(path: Union[str, os.PathLike]) -> DetectorArray:
    """Load an instrument geometry back from its definition file."""
    with File(path, "r") as f:
        try:
            grp = f["instrument"]
        except KeyError as exc:
            raise H5LiteError(
                f"{os.fspath(path)!r} has no /instrument group"
            ) from exc
        band = grp.read("wavelength_band")
        return DetectorArray(
            name=str(grp.read("name")[()]),
            positions=grp.read("positions"),
            pixel_area=grp.read("pixel_area"),
            l1=float(grp.read("l1")[()]),
            wavelength_band=(float(band[0]), float(band[1])),
        )
