"""Synthetic single-crystal event generation.

Substitutes the facility-internal raw data (DESIGN.md section 2): events
are drawn from the *sample's real reciprocal lattice* — Bragg peaks with
mosaic broadening plus a diffuse component — and pushed through the
exact inverse of the reduction kinematics onto ``(pixel id, time of
flight)`` pairs:

1. draw ``Q_sample`` from the peak/diffuse mixture;
2. rotate into the lab frame with the run's goniometer,
   ``Q_lab = R Q_sample``;
3. solve the elastic condition ``k = |Q|^2 / (2 Q_z)`` and keep events
   whose momentum lies in the instrument's wavelength band;
4. compute the scattered direction ``d_hat = z_hat - Q / k`` and find
   the pixel that records it (KD-tree nearest-direction lookup; events
   that miss the detector coverage are rejected, like real neutrons);
5. convert momentum to time of flight over that pixel's flight path.

Because step 2-5 is the inverse of what the reduction does, loading the
file and converting back to HKL recovers the generated pattern — the
golden integration tests rely on that round trip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.crystal.reflections import generate_reflections
from repro.crystal.structures import CrystalStructure
from repro.crystal.ub import UBMatrix
from repro.instruments.conversion import (
    momentum_from_q_elastic,
    scattering_direction_from_q,
    wavelength_to_tof,
    momentum_to_wavelength,
)
from repro.instruments.detector import DetectorArray
from repro.nexus.corrections import FluxSpectrum, VanadiumData
from repro.nexus.events import RunData
from repro.util.validation import ReproError, as_matrix3, require


class SynthesisError(ReproError):
    """Event generation could not reach the requested statistics."""


@dataclass(frozen=True)
class SynthesisConfig:
    """Tunables of the synthetic scattering model."""

    #: Gaussian mosaic broadening of Bragg peaks, 1/Angstrom
    mosaic_sigma: float = 0.02
    #: reject |Q| below this (beamstop region), 1/Angstrom
    q_min: float = 0.5
    #: |Q| ceiling; None = instrument kinematic limit
    q_max: Optional[float] = None
    #: proposal batches before giving up on low-acceptance configurations
    max_batches: int = 60
    #: events proposed per batch as a multiple of the shortfall
    oversample: float = 4.0


def instrument_q_window(instrument: DetectorArray, q_min: float = 0.5) -> tuple[float, float]:
    """The |Q| range the instrument can record elastically.

    ``|Q| = 2 k sin(theta)`` with ``2 theta`` the scattering angle, so
    the ceiling is ``2 k_max sin(two_theta_max / 2)``.
    """
    _k_min, k_max = instrument.momentum_band()
    tt_max = float(instrument.two_theta.max())
    q_max = 2.0 * k_max * np.sin(tt_max / 2.0)
    require(q_max > q_min, "instrument cannot reach the requested q_min")
    return q_min, q_max


def synthesize_run(
    *,
    instrument: DetectorArray,
    structure: CrystalStructure,
    ub: UBMatrix,
    goniometer: np.ndarray,
    n_events: int,
    rng: np.random.Generator,
    run_number: int = 0,
    proton_charge: float = 1.0,
    run_duration_s: float = 3600.0,
    config: SynthesisConfig = SynthesisConfig(),
) -> RunData:
    """Generate one experiment run of ``n_events`` recorded neutrons."""
    require(n_events > 0, "n_events must be positive")
    goniometer = as_matrix3(goniometer, "goniometer")
    q_min, q_kinematic = instrument_q_window(instrument, config.q_min)
    q_max = min(config.q_max, q_kinematic) if config.q_max else q_kinematic

    reflections = generate_reflections(structure, q_max, q_min=q_min)
    q_peaks = ub.hkl_to_q_sample(reflections.hkl.astype(np.float64))
    peak_prob = reflections.intensity / reflections.intensity.sum()

    k_min, k_max = instrument.momentum_band()
    det_ids: list[np.ndarray] = []
    tofs: list[np.ndarray] = []
    accepted = 0
    acceptance = 0.05  # adaptive estimate, refined per batch

    for _batch in range(config.max_batches):
        shortfall = n_events - accepted
        if shortfall <= 0:
            break
        m = int(min(4e6, max(1024, config.oversample * shortfall / max(acceptance, 1e-3))))

        # -- 1. Q_sample from the Bragg/diffuse mixture ------------------
        is_bragg = rng.random(m) >= structure.diffuse_fraction
        nb = int(is_bragg.sum())
        q_s = np.empty((m, 3))
        if nb:
            idx = rng.choice(q_peaks.shape[0], size=nb, p=peak_prob)
            q_s[is_bragg] = q_peaks[idx] + rng.normal(
                scale=config.mosaic_sigma, size=(nb, 3)
            )
        nd = m - nb
        if nd:
            # isotropic diffuse: uniform in the spherical shell volume
            direction = rng.normal(size=(nd, 3))
            direction /= np.linalg.norm(direction, axis=1, keepdims=True)
            u = rng.random(nd)
            radius = np.cbrt(u * (q_max**3 - q_min**3) + q_min**3)
            q_s[~is_bragg] = direction * radius[:, None]

        # -- 2. rotate to the lab frame ----------------------------------
        q_lab = q_s @ goniometer.T

        # -- 3. elastic condition and band acceptance --------------------
        k = momentum_from_q_elastic(q_lab)
        ok = np.isfinite(k) & (k >= k_min) & (k <= k_max)
        qmag = np.linalg.norm(q_lab, axis=1)
        ok &= (qmag >= q_min) & (qmag <= q_max)
        if not np.any(ok):
            acceptance = max(acceptance * 0.5, 1e-3)
            continue
        q_lab, k = q_lab[ok], k[ok]

        # -- 4. pixel lookup ---------------------------------------------
        d_hat = scattering_direction_from_q(q_lab, k)
        norms = np.linalg.norm(d_hat, axis=1, keepdims=True)
        d_hat = d_hat / norms
        pix, hit = instrument.nearest_pixel(d_hat)
        if not np.any(hit):
            acceptance = max(acceptance * 0.5, 1e-3)
            continue
        pix, k = pix[hit], k[hit]

        # -- 5. momentum -> time of flight --------------------------------
        lam = momentum_to_wavelength(k)
        flight = instrument.l1 + instrument.l2[pix]
        tof = wavelength_to_tof(lam, flight)

        take = min(pix.shape[0], shortfall)
        det_ids.append(pix[:take].astype(np.uint32))
        tofs.append(tof[:take])
        accepted += take
        acceptance = max(pix.shape[0] / m, 1e-3)

    if accepted < n_events:
        raise SynthesisError(
            f"only {accepted}/{n_events} events accepted after "
            f"{config.max_batches} batches; instrument coverage or the "
            f"wavelength band is too restrictive for this sample"
        )

    detector_ids = np.concatenate(det_ids)
    tof_us = np.concatenate(tofs)
    # event-based acquisition metadata: each event's proton pulse,
    # uniform beam over the run duration, in acquisition order
    pulse_times = np.sort(rng.uniform(0.0, run_duration_s, n_events))
    return RunData(
        run_number=run_number,
        detector_ids=detector_ids,
        tof=tof_us,
        pulse_times=pulse_times,
        weights=np.ones(n_events, dtype=np.float32),
        goniometer=goniometer,
        proton_charge=proton_charge,
        wavelength_band=instrument.wavelength_band,
        instrument=instrument.name,
        sample=structure.name,
        ub_matrix=ub.matrix,
    )


def make_vanadium(instrument: DetectorArray, efficiency: float = 1.0) -> VanadiumData:
    """Vanadium calibration for an instrument: solid angle x efficiency."""
    require(0 < efficiency <= 1.0, "efficiency must be in (0, 1]")
    return VanadiumData(detector_weights=instrument.solid_angles * efficiency)


def make_flux(instrument: DetectorArray, n_points: int = 256) -> FluxSpectrum:
    """Synthetic incident flux spectrum over the instrument's band."""
    lo, hi = instrument.wavelength_band
    return FluxSpectrum.from_wavelength_band(lo, hi, n_points)
