"""Time-of-flight kinematics.

Conventions (Mantid / SNS):

* lab frame: sample at the origin, incident beam along +z, y vertical;
* elastic scattering: ``|k_f| = |k_i| = k = 2 pi / lambda``;
* momentum transfer ``Q_lab = k_i - k_f = k (z_hat - d_hat)`` where
  ``d_hat`` is the unit vector from sample to the detector pixel;
* de Broglie: ``lambda[A] = (h / m_n) * t / L`` with the neutron's total
  flight path ``L = L1 + L2`` and ``h/m_n = 3956.034 A m/s``.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import require

#: h / m_n in Angstrom * meter / second
H_OVER_MN = 3956.034

#: conversion factor: lambda[A] = TOF_US_TO_LAMBDA * tof[us] / L[m]
TOF_US_TO_LAMBDA = H_OVER_MN * 1.0e-6


def tof_to_wavelength(tof_us: np.ndarray, flight_path_m: np.ndarray) -> np.ndarray:
    """Time of flight (microseconds) -> wavelength (Angstrom)."""
    return TOF_US_TO_LAMBDA * np.asarray(tof_us, dtype=np.float64) / np.asarray(
        flight_path_m, dtype=np.float64
    )


def wavelength_to_tof(lam: np.ndarray, flight_path_m: np.ndarray) -> np.ndarray:
    """Wavelength (Angstrom) -> time of flight (microseconds)."""
    return np.asarray(lam, dtype=np.float64) * np.asarray(
        flight_path_m, dtype=np.float64
    ) / TOF_US_TO_LAMBDA


def wavelength_to_momentum(lam: np.ndarray) -> np.ndarray:
    """lambda (Angstrom) -> k = 2 pi / lambda (1/Angstrom)."""
    lam = np.asarray(lam, dtype=np.float64)
    return 2.0 * np.pi / lam


def momentum_to_wavelength(k: np.ndarray) -> np.ndarray:
    """k (1/Angstrom) -> lambda = 2 pi / k (Angstrom)."""
    k = np.asarray(k, dtype=np.float64)
    return 2.0 * np.pi / k


def q_lab_from_events(
    tof_us: np.ndarray,
    detector_directions: np.ndarray,
    flight_path_m: np.ndarray,
) -> np.ndarray:
    """Momentum transfer of raw events.

    Parameters
    ----------
    tof_us:
        ``(n,)`` times of flight in microseconds.
    detector_directions:
        ``(n, 3)`` unit vectors sample -> pixel for each event.
    flight_path_m:
        ``(n,)`` total flight path L1 + L2(pixel) in meters.

    Returns
    -------
    ``(n, 3)`` Q_lab in 1/Angstrom.
    """
    lam = tof_to_wavelength(tof_us, flight_path_m)
    k = wavelength_to_momentum(lam)
    d = np.asarray(detector_directions, dtype=np.float64)
    require(d.ndim == 2 and d.shape[1] == 3, "detector_directions must be (n, 3)")
    q = -d * k[:, None]
    q[:, 2] += k
    return q


def momentum_from_q_elastic(q_lab: np.ndarray) -> np.ndarray:
    """Solve the elastic condition for k given Q_lab.

    From ``Q = k (z_hat - d_hat)`` with ``|d_hat| = 1`` follows
    ``|Q|^2 = 2 k Q_z``, i.e. ``k = |Q|^2 / (2 Q_z)``.  Entries with
    ``Q_z <= 0`` are kinematically unreachable and return ``inf``.
    """
    q = np.asarray(q_lab, dtype=np.float64)
    qsq = np.einsum("...i,...i->...", q, q)
    qz = q[..., 2]
    with np.errstate(divide="ignore", invalid="ignore"):
        k = np.where(qz > 0.0, qsq / (2.0 * qz), np.inf)
    return k


def scattering_direction_from_q(q_lab: np.ndarray, k: np.ndarray) -> np.ndarray:
    """Unit vector sample -> detector for given Q_lab and momentum k:
    ``d_hat = z_hat - Q / k``."""
    q = np.asarray(q_lab, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    d = -q / k[..., None]
    d[..., 2] += 1.0
    return d
