"""File-spool front end: ``repro serve / submit / cancel / status``.

The service's wire protocol is a directory, not a socket — CI-friendly,
zero dependencies, and every message is atomic:

* ``<spool>/tickets/<id>.json`` — a submission (tenant + workload +
  scheduling intent), written atomically by ``repro submit``;
* ``<spool>/cancel/<id>`` — a cancel marker (`repro cancel`);
* ``<spool>/status.json`` — the server's view (job states, queue
  depth, store stats), atomically rewritten on every change;
* ``<spool>/metrics.prom`` — the OpenMetrics health exposition.

``serve_spool`` runs the polling loop: it turns tickets into
:class:`~repro.service.jobs.JobSpec` submissions (synthesizing/reusing
the named workload exactly like ``repro reduce``), applies cancel
markers, republishes status, and exits once the spool has been idle
for ``idle_exit_s`` (or runs forever without it).
"""

from __future__ import annotations

import json
import os
import time
import uuid
from typing import Any, Dict, Optional

from repro.util import atomic_io
from repro.util.validation import ReproError

TICKETS_DIR = "tickets"
CANCEL_DIR = "cancel"
STATUS_NAME = "status.json"
METRICS_NAME = "metrics.prom"


class SpoolError(ReproError):
    """Malformed ticket or unreadable spool."""


def _ensure(spool: str) -> None:
    os.makedirs(os.path.join(spool, TICKETS_DIR), exist_ok=True)
    os.makedirs(os.path.join(spool, CANCEL_DIR), exist_ok=True)


def submit_ticket(spool: str, payload: Dict[str, Any]) -> str:
    """Atomically drop a submission ticket; returns the ticket id."""
    if "tenant" not in payload or not payload["tenant"]:
        raise SpoolError("ticket needs a tenant")
    _ensure(spool)
    ticket_id = payload.get("id") or f"t-{uuid.uuid4().hex[:12]}"
    payload = dict(payload, id=ticket_id)
    path = os.path.join(spool, TICKETS_DIR, f"{ticket_id}.json")
    atomic_io.atomic_write_text(
        path, json.dumps(payload, indent=1, sort_keys=True) + "\n"
    )
    return ticket_id


def request_cancel(spool: str, job_or_ticket_id: str) -> str:
    """Drop a cancel marker for a ticket or job id."""
    _ensure(spool)
    path = os.path.join(spool, CANCEL_DIR, job_or_ticket_id)
    atomic_io.atomic_write_text(path, "cancel\n")
    return path


def read_status(spool: str) -> Dict[str, Any]:
    """The server's last published status (empty dict before the first
    publish)."""
    path = os.path.join(spool, STATUS_NAME)
    try:
        with open(path) as fh:
            return json.load(fh)
    except FileNotFoundError:
        return {}
    except (OSError, json.JSONDecodeError) as exc:
        raise SpoolError(f"unreadable status file {path}: {exc}") from exc


def _read_tickets(spool: str) -> Dict[str, Dict[str, Any]]:
    tdir = os.path.join(spool, TICKETS_DIR)
    out: Dict[str, Dict[str, Any]] = {}
    if not os.path.isdir(tdir):
        return out
    for name in sorted(os.listdir(tdir)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(tdir, name)
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError):
            continue  # torn/foreign file; ignore (writes are atomic)
        ticket_id = doc.get("id") or name[: -len(".json")]
        out[ticket_id] = doc
    return out


def _cancel_markers(spool: str) -> list:
    cdir = os.path.join(spool, CANCEL_DIR)
    if not os.path.isdir(cdir):
        return []
    return sorted(os.listdir(cdir))


def _spec_from_ticket(doc: Dict[str, Any], workload_cache: Dict[str, Any]):
    """Build a JobSpec from a ticket (synthesized named workloads)."""
    from repro.bench.workloads import benzil_corelli, bixbyite_topaz, build_workload
    from repro.core.workflow import WorkflowConfig
    from repro.service.jobs import JobSpec
    from repro.util.faults import FaultPlan

    workload = doc.get("workload", "benzil")
    if workload not in ("benzil", "bixbyite"):
        raise SpoolError(f"ticket {doc.get('id')}: unknown workload "
                         f"{workload!r}")
    key = json.dumps(
        [workload, doc.get("scale"), doc.get("files"),
         doc.get("chunk_events")],
        sort_keys=True,
    )
    data = workload_cache.get(key)
    if data is None:
        make_spec = benzil_corelli if workload == "benzil" else bixbyite_topaz
        spec = make_spec(
            scale=doc.get("scale"),
            n_files=doc.get("files"),
            chunk_events=doc.get("chunk_events"),
        )
        data = workload_cache[key] = build_workload(spec)
    fault_plan = None
    if doc.get("faults"):
        fault_plan = FaultPlan.from_json(doc["faults"])
    config = WorkflowConfig(
        md_paths=data.md_paths,
        flux_path=data.flux_path,
        vanadium_path=data.vanadium_path,
        instrument=data.instrument,
        grid=data.grid,
        point_group=data.point_group,
        backend=doc.get("backend"),
        shards=doc.get("shards"),
        executor=doc.get("executor"),
    )
    return JobSpec(
        tenant=str(doc["tenant"]),
        config=config,
        priority=int(doc.get("priority", 0)),
        timeout_s=doc.get("timeout_s"),
        label=str(doc.get("label", "") or doc.get("id", "")),
        fault_plan=fault_plan,
    )


def _publish(spool: str, service, ticket_to_job: Dict[str, str],
             rejected: Dict[str, Dict[str, Any]]) -> None:
    status = service.status()
    status["tickets"] = dict(ticket_to_job)
    status["rejected"] = dict(rejected)
    atomic_io.atomic_write_text(
        os.path.join(spool, STATUS_NAME),
        json.dumps(status, indent=1, sort_keys=True, default=str) + "\n",
    )
    atomic_io.atomic_write_text(
        os.path.join(spool, METRICS_NAME), service.metrics()
    )


def serve_spool(
    spool: str,
    root: Optional[str] = None,
    *,
    policy=None,
    workers: int = 2,
    poll_s: float = 0.2,
    idle_exit_s: Optional[float] = None,
    max_loops: Optional[int] = None,
) -> Dict[str, Any]:
    """Run the spool server until idle/stopped; returns final status."""
    from repro.service.scheduler import CampaignService

    _ensure(spool)
    service = CampaignService(
        root=root or os.path.join(spool, "service"),
        policy=policy,
        workers=workers,
    )
    ticket_to_job: Dict[str, str] = {}
    rejected: Dict[str, Dict[str, Any]] = {}
    cancelled_markers: set = set()
    workload_cache: Dict[str, Any] = {}
    idle_since: Optional[float] = None
    loops = 0
    with service:
        while True:
            loops += 1
            progressed = False
            for ticket_id, doc in _read_tickets(spool).items():
                if ticket_id in ticket_to_job or ticket_id in rejected:
                    continue
                progressed = True
                try:
                    spec = _spec_from_ticket(doc, workload_cache)
                except (SpoolError, ReproError, KeyError, ValueError) as exc:
                    rejected[ticket_id] = {
                        "code": "bad_ticket", "detail": str(exc)
                    }
                    continue
                job, decision = service.submit(spec)
                if decision.admitted:
                    ticket_to_job[ticket_id] = job.id
                else:
                    rejected[ticket_id] = {
                        "code": decision.code,
                        "detail": decision.detail,
                        "limits": dict(decision.limits),
                    }
            for marker in _cancel_markers(spool):
                if marker in cancelled_markers:
                    continue
                job_id = ticket_to_job.get(marker, marker)
                try:
                    service.cancel(job_id, reason="spool-cancel")
                except ReproError:
                    continue  # not yet submitted; retry next loop
                cancelled_markers.add(marker)
                progressed = True
            _publish(spool, service, ticket_to_job, rejected)
            busy = (service.queue.active_jobs() > 0) or progressed
            now = time.monotonic()
            if busy:
                idle_since = None
            elif idle_since is None:
                idle_since = now
            if (idle_exit_s is not None and idle_since is not None
                    and now - idle_since >= idle_exit_s):
                break
            if max_loops is not None and loops >= max_loops:
                break
            time.sleep(poll_s)
        service.drain(cancel_running=False)
        _publish(spool, service, ticket_to_job, rejected)
    return read_status(spool)
