"""Content-addressed result store with single-flight dedup.

Results live under ``root/<config-digest>/`` — the digest is
:func:`repro.service.jobs.workflow_digest`, i.e. the campaign's
*configuration* content address, so two tenants submitting the same
science share one reduction and one copy of the histograms.  Each
entry is published crash-safely: arrays go into an h5lite file via
:func:`repro.util.atomic_io.atomic_path`, the metadata (with BLAKE2b
array digests) is rewritten atomically, and a ``COMPLETE`` sentinel
commits the entry — a reader never sees a torn result, only "present"
or "absent".

Single-flight: when N jobs with the same digest are in flight at once,
:meth:`ResultStore.begin` elects exactly one *leader* to compute; the
others *join* the flight and block until the leader publishes (or
fails, in which case a joiner is re-elected leader and computes
itself).  The service's dedup guarantee — N concurrent identical
submissions, one reduction — is this module.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.nexus.h5lite import File, H5LiteError
from repro.util import atomic_io
from repro.util.validation import ReproError

RESULT_NAME = "result.h5"
META_NAME = "meta.json"


class ResultStoreError(ReproError):
    """Store I/O or integrity failure."""


def _array_digest(arr: np.ndarray) -> str:
    a = np.ascontiguousarray(arr)
    h = hashlib.blake2b(digest_size=16)
    h.update(str(a.dtype).encode())
    h.update(repr(a.shape).encode())
    h.update(a.data)
    return h.hexdigest()


@dataclass
class StoredResult:
    """One committed entry, digest-verified at load time."""

    digest: str
    path: str
    binmd_signal: np.ndarray
    binmd_error_sq: Optional[np.ndarray]
    mdnorm_signal: np.ndarray
    cross_section: np.ndarray
    meta: Dict[str, Any] = field(default_factory=dict)


class _Flight:
    """One in-flight computation of a digest (leader + joiners)."""

    def __init__(self, digest: str, leader: str) -> None:
        self.digest = digest
        self.leader = leader
        self.leader_uid: Optional[str] = None  # leader's job-span uid (v3)
        self.done = threading.Event()
        self.result: Optional[StoredResult] = None
        self.error: Optional[BaseException] = None
        self.joiners = 0


class ResultStore:
    """Content-addressed persistence + the single-flight registry."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)
        self._lock = threading.Lock()
        self._flights: Dict[str, _Flight] = {}
        self.hits = 0
        self.misses = 0
        self.coalesced = 0

    # -- layout -----------------------------------------------------------
    def _entry_dir(self, digest: str) -> str:
        return os.path.join(self.root, digest)

    def has(self, digest: str) -> bool:
        return atomic_io.is_complete(self._entry_dir(digest))

    # -- single-flight ----------------------------------------------------
    def begin(
        self, digest: str, owner: str
    ) -> Tuple[str, Optional[StoredResult], Optional[_Flight]]:
        """Join the digest's flight: ``("hit", result, None)`` when the
        entry is already committed, ``("lead", None, flight)`` when this
        owner must compute, ``("join", None, flight)`` to wait on the
        current leader."""
        with self._lock:
            if self.has(digest):
                self.hits += 1
                stored = self._load_unlocked(digest)
                return ("hit", stored, None)
            flight = self._flights.get(digest)
            if flight is not None and not flight.done.is_set():
                flight.joiners += 1
                self.coalesced += 1
                return ("join", None, flight)
            flight = _Flight(digest, owner)
            self._flights[digest] = flight
            self.misses += 1
            return ("lead", None, flight)

    def complete(self, flight: _Flight, stored: StoredResult) -> None:
        """Leader publishes: wake every joiner with the result."""
        with self._lock:
            flight.result = stored
            flight.done.set()
            self._flights.pop(flight.digest, None)

    def fail(self, flight: _Flight, exc: BaseException) -> None:
        """Leader failed/was cancelled: joiners re-elect via begin()."""
        with self._lock:
            flight.error = exc
            flight.done.set()
            self._flights.pop(flight.digest, None)

    # -- persistence ------------------------------------------------------
    def put(
        self,
        digest: str,
        *,
        binmd_signal: np.ndarray,
        binmd_error_sq: Optional[np.ndarray],
        mdnorm_signal: np.ndarray,
        cross_section: np.ndarray,
        meta: Optional[Dict[str, Any]] = None,
    ) -> StoredResult:
        """Commit one entry (idempotent: an existing entry wins)."""
        entry = self._entry_dir(digest)
        os.makedirs(entry, exist_ok=True)
        if atomic_io.is_complete(entry):
            with self._lock:
                return self._load_unlocked(digest)
        digests = {
            "binmd": _array_digest(binmd_signal),
            "mdnorm": _array_digest(mdnorm_signal),
            "cross_section": _array_digest(cross_section),
        }
        if binmd_error_sq is not None:
            digests["binmd_error_sq"] = _array_digest(binmd_error_sq)
        path = os.path.join(entry, RESULT_NAME)
        with atomic_io.atomic_path(path) as tmp:
            with File(tmp, "w") as f:
                grp = f.create_group("result")
                grp.attrs["config_digest"] = digest
                grp.create_dataset("binmd_signal", data=binmd_signal)
                if binmd_error_sq is not None:
                    grp.create_dataset("binmd_error_sq", data=binmd_error_sq)
                grp.create_dataset("mdnorm_signal", data=mdnorm_signal)
                grp.create_dataset("cross_section", data=cross_section)
        doc = {"digest": digest, "digests": digests, "meta": meta or {}}
        atomic_io.atomic_write_text(
            os.path.join(entry, META_NAME),
            json.dumps(doc, indent=1, sort_keys=True) + "\n",
        )
        atomic_io.mark_complete(entry, digest + "\n")
        return StoredResult(
            digest=digest, path=path,
            binmd_signal=binmd_signal, binmd_error_sq=binmd_error_sq,
            mdnorm_signal=mdnorm_signal, cross_section=cross_section,
            meta=dict(meta or {}),
        )

    def get(self, digest: str) -> Optional[StoredResult]:
        """Load a committed entry (None when absent)."""
        with self._lock:
            if not self.has(digest):
                return None
            return self._load_unlocked(digest)

    def _load_unlocked(self, digest: str) -> StoredResult:
        entry = self._entry_dir(digest)
        meta_path = os.path.join(entry, META_NAME)
        try:
            with open(meta_path) as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise ResultStoreError(
                f"unreadable result metadata {meta_path!r}: {exc}"
            ) from exc
        path = os.path.join(entry, RESULT_NAME)
        try:
            with File(path, "r") as f:
                grp = f["result"]
                binmd = grp.read("binmd_signal")
                err = (grp.read("binmd_error_sq")
                       if "binmd_error_sq" in grp else None)
                mdnorm = grp.read("mdnorm_signal")
                xsec = grp.read("cross_section")
        except (OSError, H5LiteError) as exc:
            raise ResultStoreError(
                f"stored result {digest} is unreadable: {exc}"
            ) from exc
        want = doc.get("digests", {})
        checks = [("binmd", binmd), ("mdnorm", mdnorm),
                  ("cross_section", xsec)]
        if err is not None:
            checks.append(("binmd_error_sq", err))
        for name, arr in checks:
            expect = want.get(name)
            if expect is not None and _array_digest(arr) != expect:
                raise ResultStoreError(
                    f"stored result {digest}: {name} digest mismatch"
                )
        return StoredResult(
            digest=digest, path=path,
            binmd_signal=binmd, binmd_error_sq=err,
            mdnorm_signal=mdnorm, cross_section=xsec,
            meta=dict(doc.get("meta", {})),
        )

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "coalesced": self.coalesced,
                "in_flight": len(self._flights),
            }
