"""Admission control + fair-share job queue.

Admission happens at submit time, **before** a job consumes anything:
the queue checks global depth and the tenant's quotas (concurrent jobs
and estimated bytes, via :func:`repro.service.jobs.estimate_job_bytes`)
and either admits the job or rejects it with a *structured*
:class:`AdmissionDecision` — a machine-readable ``code`` plus the
limits that were hit, so a client can distinguish "back off" from
"your request can never fit".

Scheduling is fair-share across tenants: the next job to run comes
from the tenant with the least work currently running, tie-broken by
priority (descending) then submission order.  A tenant flooding the
queue therefore delays itself, not its neighbours.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.service.jobs import Job
from repro.util.validation import require

#: structured rejection codes
REASON_OK = "ok"
REASON_QUEUE_FULL = "queue_full"
REASON_TENANT_JOBS = "tenant_jobs"
REASON_TENANT_BYTES = "tenant_bytes"
REASON_DRAINING = "draining"


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission limits."""

    #: concurrent non-terminal jobs (queued + running)
    max_jobs: int = 4
    #: summed byte estimate of non-terminal jobs (None = unbounded)
    max_bytes: Optional[int] = None


@dataclass
class AdmissionPolicy:
    """The service-wide admission configuration."""

    #: total non-terminal jobs across tenants
    max_queue_depth: int = 64
    default_quota: TenantQuota = field(default_factory=TenantQuota)
    #: per-tenant overrides
    quotas: Dict[str, TenantQuota] = field(default_factory=dict)

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)


@dataclass(frozen=True)
class AdmissionDecision:
    """The structured outcome of one admission check."""

    admitted: bool
    code: str
    detail: str = ""
    #: the limit values that produced a rejection (empty when admitted)
    limits: Dict[str, Any] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.admitted


class JobQueue:
    """Thread-safe admission + fair-share dispatch.

    Accounting covers every *non-terminal* job: a job occupies its
    tenant's quota from admission until it reaches a terminal state
    (:meth:`finish` releases it), so quotas bound concurrent load, not
    submission rate.
    """

    def __init__(self, policy: Optional[AdmissionPolicy] = None) -> None:
        self.policy = policy or AdmissionPolicy()
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._pending: List[Job] = []
        #: tenant -> {job_id: est_bytes} of non-terminal jobs
        self._active: Dict[str, Dict[str, int]] = {}
        #: tenant -> number of jobs currently *running*
        self._running: Dict[str, int] = {}
        #: ids handed to a worker by :meth:`pop` (they hold a running
        #: slot until :meth:`finish`)
        self._dispatched: set = set()
        self._draining = False
        self.rejections = 0

    # -- admission --------------------------------------------------------
    def offer(self, job: Job, *, defer: bool = False) -> AdmissionDecision:
        """Admit ``job`` into the queue, or reject with a reason.

        With ``defer=True`` the job is admitted (it holds quota) but not
        yet dispatchable — the caller finishes its own bookkeeping and
        then calls :meth:`enqueue`.  This closes the race where a worker
        pops a job before the submitter has recorded its admission.
        """
        with self._lock:
            decision = self._admit_locked(job)
            if decision.admitted:
                self._active.setdefault(job.tenant, {})[job.id] = int(
                    job.est_bytes
                )
                if not defer:
                    self._pending.append(job)
                    self._ready.notify()
            else:
                self.rejections += 1
            return decision

    def enqueue(self, job: Job) -> None:
        """Make a deferred-admitted job dispatchable."""
        with self._lock:
            self._pending.append(job)
            self._ready.notify()

    def _admit_locked(self, job: Job) -> AdmissionDecision:
        if self._draining:
            return AdmissionDecision(
                False, REASON_DRAINING,
                "service is draining; not accepting new jobs",
            )
        depth = sum(len(jobs) for jobs in self._active.values())
        if depth >= self.policy.max_queue_depth:
            return AdmissionDecision(
                False, REASON_QUEUE_FULL,
                f"queue depth {depth} is at the limit",
                limits={"max_queue_depth": self.policy.max_queue_depth,
                        "queue_depth": depth},
            )
        quota = self.policy.quota_for(job.tenant)
        mine = self._active.get(job.tenant, {})
        if len(mine) >= quota.max_jobs:
            return AdmissionDecision(
                False, REASON_TENANT_JOBS,
                f"tenant {job.tenant!r} already has {len(mine)} "
                f"concurrent jobs",
                limits={"max_jobs": quota.max_jobs, "jobs": len(mine)},
            )
        if quota.max_bytes is not None:
            used = sum(mine.values())
            if used + int(job.est_bytes) > quota.max_bytes:
                return AdmissionDecision(
                    False, REASON_TENANT_BYTES,
                    f"tenant {job.tenant!r} byte quota exceeded "
                    f"({used} + {job.est_bytes} > {quota.max_bytes})",
                    limits={"max_bytes": quota.max_bytes,
                            "bytes_in_flight": used,
                            "est_bytes": int(job.est_bytes)},
                )
        return AdmissionDecision(True, REASON_OK)

    # -- dispatch ---------------------------------------------------------
    def pop(self, timeout: Optional[float] = None) -> Optional[Job]:
        """The next job by fair share (blocks up to ``timeout``)."""
        with self._ready:
            if not self._pending:
                self._ready.wait(timeout)
            if not self._pending:
                return None
            job = self._pick_locked()
            self._pending.remove(job)
            self._running[job.tenant] = self._running.get(job.tenant, 0) + 1
            self._dispatched.add(job.id)
            return job

    def _pick_locked(self) -> Job:
        # least running work first (fair share), then priority desc,
        # then submission order
        def key(job: Job):
            return (
                self._running.get(job.tenant, 0),
                -int(job.spec.priority),
                job.seq,
            )

        return min(self._pending, key=key)

    def remove(self, job: Job) -> bool:
        """Pull a still-queued job out (cancellation before dispatch)."""
        with self._lock:
            try:
                self._pending.remove(job)
            except ValueError:
                return False
            return True

    def finish(self, job: Job) -> None:
        """Release the job's quota share (terminal state reached)."""
        require(job.terminal, f"job {job.id} is not terminal ({job.state})")
        with self._lock:
            mine = self._active.get(job.tenant)
            if mine is not None:
                mine.pop(job.id, None)
                if not mine:
                    self._active.pop(job.tenant, None)
            # only jobs that actually dispatched hold a running slot
            if job.id in self._dispatched:
                self._dispatched.discard(job.id)
                n = self._running.get(job.tenant, 0)
                if n > 0:
                    self._running[job.tenant] = n - 1

    # -- introspection ----------------------------------------------------
    def depth(self) -> int:
        """Jobs waiting for a worker (not yet running)."""
        with self._lock:
            return len(self._pending)

    def active_jobs(self) -> int:
        """All non-terminal jobs (queued + running)."""
        with self._lock:
            return sum(len(jobs) for jobs in self._active.values())

    def tenant_load(self) -> Dict[str, Dict[str, int]]:
        with self._lock:
            return {
                t: {"jobs": len(jobs), "bytes": sum(jobs.values())}
                for t, jobs in self._active.items()
            }

    # -- drain ------------------------------------------------------------
    def drain(self) -> None:
        """Stop admitting; queued jobs still dispatch."""
        with self._lock:
            self._draining = True
            self._ready.notify_all()

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining
