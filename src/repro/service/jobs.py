"""The service's job model: specs, lifecycle states, cost estimates.

A *job* is one whole reduction campaign (a :class:`WorkflowConfig`)
owned by a *tenant* (a beamline, a user, a CI lane).  Jobs move through
the lifecycle

    ``queued -> admitted -> running -> {done, cancelled, expired,
    quarantined}``

and every transition is stamped (injectable clock) and traced.  Two
derived quantities drive the rest of the service:

* :func:`workflow_digest` — the content address of the campaign's
  configuration (inputs + grid + symmetry + backend), built on the
  PR 3 :func:`repro.core.checkpoint.campaign_digest`.  It keys the
  result store (dedup/single-flight) **and** binds each job's private
  checkpoint directory, so a resumed job can never mix histograms from
  a different configuration.
* :func:`estimate_job_bytes` — an admission-time traffic estimate from
  the PR 4 analytic cost model (:func:`repro.util.perf.binmd_work` /
  :func:`~repro.util.perf.mdnorm_work`), so per-tenant byte quotas act
  *before* any file is decoded.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.core.checkpoint import campaign_digest
from repro.core.workflow import WorkflowConfig
from repro.util.cancel import CancelToken
from repro.util.faults import FaultPlan
from repro.util.perf import binmd_work, mdnorm_work
from repro.util.validation import require


class JobState:
    """Lifecycle states (plain strings so they serialize untouched)."""

    QUEUED = "queued"
    ADMITTED = "admitted"
    RUNNING = "running"
    DONE = "done"
    CANCELLED = "cancelled"
    EXPIRED = "expired"
    QUARANTINED = "quarantined"

    #: states a job can never leave
    TERMINAL = frozenset({DONE, CANCELLED, EXPIRED, QUARANTINED})

    #: legal transitions (enforced by the scheduler)
    TRANSITIONS = {
        QUEUED: frozenset({ADMITTED, CANCELLED}),
        ADMITTED: frozenset({RUNNING, CANCELLED, EXPIRED, QUARANTINED}),
        RUNNING: frozenset({DONE, CANCELLED, EXPIRED, QUARANTINED}),
    }


@dataclass
class JobSpec:
    """What a tenant submits: the campaign plus scheduling intent."""

    tenant: str
    config: WorkflowConfig
    #: higher runs earlier among one tenant's queued jobs
    priority: int = 0
    #: wall-clock budget for the whole campaign (None = unbounded);
    #: expiry cancels cooperatively — the job checkpoints and remains
    #: resumable
    timeout_s: Optional[float] = None
    label: str = ""
    #: per-job injected faults (chaos tests): scoped to this job's
    #: worker thread only, so a poisoned job cannot perturb neighbours
    fault_plan: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        require(bool(self.tenant), "job needs a tenant")
        if self.timeout_s is not None:
            require(float(self.timeout_s) > 0.0, "timeout_s must be positive")


def workflow_digest(config: WorkflowConfig) -> str:
    """Content address of a campaign configuration.

    Everything that changes the output histograms participates;
    scheduling knobs (executor, workers, memory budget) deliberately do
    **not** — the same science submitted with different scheduling is
    still the same result.
    """
    return campaign_digest(
        md_paths=[os.path.abspath(p) for p in config.md_paths],
        flux=os.path.abspath(config.flux_path),
        vanadium=os.path.abspath(config.vanadium_path),
        instrument=config.instrument.name,
        grid_bins=list(config.grid.bins),
        grid_min=list(config.grid.minimum),
        grid_max=list(config.grid.maximum),
        point_group=config.point_group.name,
        backend=config.backend or "default",
        sort_impl=config.sort_impl,
    )


#: rough on-disk bytes per stored event (4 float64 columns) used to
#: back out an event-count estimate from run-file sizes
_BYTES_PER_EVENT_ON_DISK = 32.0

#: nominal padded intersection-buffer width for the admission estimate
#: (the real pre-pass bound is data-dependent; admission only needs the
#: order of magnitude)
_NOMINAL_WIDTH = 8


def estimate_job_bytes(config: WorkflowConfig) -> int:
    """Admission-time estimate of the campaign's memory/IO traffic.

    Sums the PR 4 cost model over the runs (events backed out of the
    run-file sizes) plus the output histograms.  Deliberately cheap: no
    file is opened, only ``stat``\\ ed.
    """
    n_ops = config.point_group.order
    n_det = config.instrument.n_pixels
    total = 0.0
    for path in config.md_paths:
        try:
            size = os.path.getsize(path)
        except OSError:
            size = 0
        n_events = max(int(size / _BYTES_PER_EVENT_ON_DISK), 1)
        b = binmd_work(n_ops, n_events)
        m = mdnorm_work(n_ops, n_det, _NOMINAL_WIDTH)
        total += (b["bytes_read"] + b["bytes_written"]
                  + m["bytes_read"] + m["bytes_written"])
    n_bins = 1
    for nb in config.grid.bins:
        n_bins *= int(nb)
    total += 3 * 8.0 * n_bins  # binmd + error + mdnorm accumulators
    return int(total)


@dataclass
class Job:
    """One submitted campaign inside the service (scheduler-owned).

    All mutation happens under the scheduler's lock; readers get
    snapshots via :meth:`as_dict`.
    """

    id: str
    spec: JobSpec
    digest: str
    est_bytes: int
    seq: int
    state: str = JobState.QUEUED
    cancel: CancelToken = field(default_factory=CancelToken)
    #: state -> wall-clock stamp of when the job entered it
    timestamps: Dict[str, float] = field(default_factory=dict)
    error: str = ""
    #: result summary once terminal (totals, store path, cache/coalesce
    #: provenance, quarantined runs)
    result: Optional[Dict[str, Any]] = None

    @property
    def tenant(self) -> str:
        return self.spec.tenant

    @property
    def terminal(self) -> bool:
        return self.state in JobState.TERMINAL

    def as_dict(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "tenant": self.tenant,
            "label": self.spec.label,
            "digest": self.digest,
            "est_bytes": int(self.est_bytes),
            "priority": int(self.spec.priority),
            "state": self.state,
            "timestamps": dict(self.timestamps),
            "error": self.error,
            "result": dict(self.result) if self.result else None,
        }
