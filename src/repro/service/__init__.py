"""Multi-tenant campaign service (PR 8).

A persistent scheduler in front of the reduction stack: beamline
tenants submit :class:`~repro.service.jobs.JobSpec` campaigns, the
service admits them against per-tenant quotas
(:mod:`repro.service.queue`), runs them with per-job isolation on the
existing executor registry (:mod:`repro.service.scheduler`), dedups
identical submissions through a content-addressed result store with
single-flight coalescing (:mod:`repro.service.store`), and exposes the
whole thing over a file-spool front end for the CLI
(:mod:`repro.service.spool`).
"""

from repro.service.jobs import (
    Job,
    JobSpec,
    JobState,
    estimate_job_bytes,
    workflow_digest,
)
from repro.service.queue import (
    AdmissionDecision,
    AdmissionPolicy,
    JobQueue,
    TenantQuota,
)
from repro.service.scheduler import CampaignService
from repro.service.store import ResultStore, StoredResult

__all__ = [
    "AdmissionDecision",
    "AdmissionPolicy",
    "CampaignService",
    "Job",
    "JobQueue",
    "JobSpec",
    "JobState",
    "ResultStore",
    "StoredResult",
    "TenantQuota",
    "estimate_job_bytes",
    "workflow_digest",
]
