"""The campaign service: admission -> fair share -> isolated execution.

:class:`CampaignService` is the persistent scheduler the ISSUE's
tentpole describes.  One instance owns

* a :class:`~repro.service.queue.JobQueue` (admission control +
  fair-share dispatch),
* a pool of worker threads executing jobs on the existing reduction
  stack (:class:`~repro.core.workflow.ReductionWorkflow`, and through
  it the executor registry — static or stealing),
* a :class:`~repro.service.store.ResultStore` (content-addressed
  results + single-flight dedup),
* a service-level :class:`~repro.util.monitor.CampaignMonitor` acting
  as the health endpoint (``repro_service_*`` gauges + per-job labels).

Per-job isolation is layered thread-locally, because jobs share one
process:

* **checkpoints** — each campaign checkpoints under
  ``root/ckpt/<digest>``, digest-bound to its configuration, so a
  resumed or cancelled job can only ever fold deltas of its own
  science; single-flight guarantees a digest has at most one writer at
  a time, and a later job asking for the same science resumes the
  completed runs bit-identically;
* **faults** — a job's :class:`~repro.util.faults.FaultPlan` is
  installed with :func:`~repro.util.faults.thread_fault_plan`, scoped
  to the worker thread: a poisoned job quarantines *its own* runs and
  completes degraded while its neighbours stay bit-identical;
* **monitoring** — each job reports into its own labelled monitor via
  :func:`~repro.util.monitor.thread_monitor`;
* **cancellation** — each job carries a
  :class:`~repro.util.cancel.CancelToken` (deadline = the spec's
  ``timeout_s``) threaded through
  :class:`~repro.core.checkpoint.RecoveryConfig`, so cancel/expiry
  stops the campaign *between durable units*: always checkpointed,
  always resumable, resumption bit-identical.

Degraded results (quarantined runs) are deliberately **not** stored:
the content-addressed store only ever serves full-fidelity histograms,
and a poisoned leader fails its flight so a clean joiner re-elects and
computes for real.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.checkpoint import CheckpointManager, RecoveryConfig
from repro.core.workflow import ReductionWorkflow
from repro.service.jobs import (
    Job,
    JobSpec,
    JobState,
    estimate_job_bytes,
    workflow_digest,
)
from repro.service.queue import AdmissionDecision, AdmissionPolicy, JobQueue
from repro.service.store import ResultStore, ResultStoreError, StoredResult
from repro.util import faults as _faults
from repro.util import monitor as _monitor
from repro.util import trace as _trace
from repro.util.cancel import CancelledError, CancelToken, DeadlineExpiredError
from repro.util.validation import ReproError, require


class ServiceError(ReproError):
    """Service misuse (unknown job, bad transition, not started)."""


class CampaignService:
    """A persistent multi-tenant front end to the reduction stack."""

    def __init__(
        self,
        root: str | os.PathLike,
        *,
        policy: Optional[AdmissionPolicy] = None,
        workers: int = 2,
        clock: Callable[[], float] = time.time,
        cancel_clock: Callable[[], float] = time.monotonic,
        metrics_path: Optional[str] = None,
        name: str = "service",
    ) -> None:
        require(int(workers) >= 1, "need at least one worker")
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)
        self.queue = JobQueue(policy)
        self.store = ResultStore(os.path.join(self.root, "store"))
        self.monitor = _monitor.CampaignMonitor(
            label=name, metrics_path=metrics_path
        )
        self._clock = clock
        self._cancel_clock = cancel_clock
        self._lock = threading.RLock()
        self._done = threading.Condition(self._lock)
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._job_monitors: Dict[str, _monitor.CampaignMonitor] = {}
        self._seq = 0
        self._n_workers = int(workers)
        self._threads: List[threading.Thread] = []
        self._stop = False
        self._started = False
        self._parent_uid: Optional[str] = None

    # -- lifecycle of the service itself ----------------------------------
    def start(self) -> "CampaignService":
        with self._lock:
            if self._started:
                return self
            self._started = True
            self._stop = False
            # worker threads adopt the starter's span as causal parent,
            # so every service.job span hangs off the service campaign
            # root (schema v3 parent_uid; process-local parent_id stays
            # None across threads)
            tracer = _trace.active_tracer()
            cur = tracer.current_span()
            self._parent_uid = (cur.uid if cur is not None
                                else _trace.remote_parent())
            for w in range(self._n_workers):
                t = threading.Thread(
                    target=self._worker_loop,
                    name=f"repro-service-worker-{w}",
                    daemon=True,
                )
                t.start()
                self._threads.append(t)
        self._refresh_gauges()
        return self

    def __enter__(self) -> "CampaignService":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.drain(cancel_running=True)

    # -- submission -------------------------------------------------------
    def submit(self, spec: JobSpec) -> Tuple[Job, AdmissionDecision]:
        """Admit a campaign; rejected jobs are returned untracked with
        the structured decision."""
        with self._lock:
            # a drained service stays addressable: submissions get the
            # structured "draining" rejection from admission below
            if not self._started and not self.queue.draining:
                raise ServiceError("service is not started")
            self._seq += 1
            job = Job(
                id=f"job-{self._seq:05d}",
                spec=spec,
                digest=workflow_digest(spec.config),
                est_bytes=estimate_job_bytes(spec.config),
                seq=self._seq,
                cancel=CancelToken.with_timeout(
                    spec.timeout_s, clock=self._cancel_clock
                ),
            )
            job.timestamps[JobState.QUEUED] = self._clock()
        tracer = _trace.active_tracer()
        tracer.count("service.queued")
        # two-phase: admit (hold quota) first, record the ADMITTED
        # transition, and only then make the job dispatchable — a worker
        # must never pop a job whose admission is still being recorded
        decision = self.queue.offer(job, defer=True)
        if not decision.admitted:
            tracer.count("service.rejected")
            with tracer.span(
                "service.reject", kind="service", job=job.id,
                tenant=job.tenant, code=decision.code,
            ):
                pass
            job.error = f"rejected: {decision.code}"
            self._refresh_gauges()
            return job, decision
        with self._lock:
            self._jobs[job.id] = job
            self._order.append(job.id)
        self._transition(job, JobState.ADMITTED)
        self.queue.enqueue(job)
        return job, decision

    # -- queries ----------------------------------------------------------
    def job(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise ServiceError(f"unknown job {job_id!r}") from None

    def jobs(self) -> List[Job]:
        with self._lock:
            return [self._jobs[i] for i in self._order]

    def status(self) -> Dict[str, object]:
        with self._lock:
            jobs = [self._jobs[i].as_dict() for i in self._order]
        return {
            "jobs": jobs,
            "queue_depth": self.queue.depth(),
            "active_jobs": self.queue.active_jobs(),
            "tenants": self.queue.tenant_load(),
            "store": self.store.stats(),
            "draining": self.queue.draining,
        }

    def wait(
        self, job_id: Optional[str] = None, timeout: Optional[float] = None
    ) -> bool:
        """Block until the job (or every tracked job) is terminal."""
        deadline = (None if timeout is None
                    else time.monotonic() + float(timeout))

        def ready() -> bool:
            if job_id is not None:
                return self._jobs[job_id].terminal
            return all(j.terminal for j in self._jobs.values())

        with self._done:
            if job_id is not None and job_id not in self._jobs:
                raise ServiceError(f"unknown job {job_id!r}")
            while not ready():
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    return False
                self._done.wait(remaining if remaining is not None else 0.5)
            return True

    # -- cancellation -----------------------------------------------------
    def cancel(self, job_id: str, reason: str = "cancelled") -> bool:
        """Cooperatively cancel a job (idempotent; False when already
        terminal)."""
        job = self.job(job_id)
        with self._lock:
            if job.terminal:
                return False
        if self.queue.remove(job):
            # never dispatched: settle it here
            job.cancel.cancel(reason)
            self._finish(job, JobState.CANCELLED, error=reason)
            return True
        # running (or being popped right now): the token reaches it
        # between durable units of work
        job.cancel.cancel(reason)
        return True

    # -- drain / shutdown -------------------------------------------------
    def drain(
        self,
        *,
        cancel_running: bool = False,
        timeout: Optional[float] = 60.0,
    ) -> bool:
        """Graceful shutdown: stop admitting, settle in-flight work.

        With ``cancel_running`` every non-terminal job is cancelled
        cooperatively — each stops between durable units with its
        checkpoint on disk (the acceptance invariant: no in-flight job
        without a durable checkpoint).  Without it, queued + running
        jobs complete normally.  Returns True when everything settled
        in time.
        """
        self.queue.drain()
        _trace.active_tracer().count("service.drain")
        if cancel_running:
            with self._lock:
                live = [j for j in self._jobs.values() if not j.terminal]
            for job in live:
                if self.queue.remove(job):
                    job.cancel.cancel("drain")
                    self._finish(job, JobState.CANCELLED, error="drain")
                else:
                    job.cancel.cancel("drain")
        settled = self.wait(timeout=timeout)
        with self._lock:
            self._stop = True
        for t in self._threads:
            t.join(timeout=5.0)
        self._threads = []
        with self._lock:
            self._started = False
        self._refresh_gauges()
        return settled

    # -- metrics / health -------------------------------------------------
    def metrics(self) -> str:
        """The OpenMetrics health exposition: service gauges plus every
        job's labelled campaign metrics, one scrapeable document."""
        self._refresh_gauges()
        parts = [self.monitor.openmetrics()]
        with self._lock:
            monitors = [self._job_monitors[i] for i in self._order
                        if i in self._job_monitors]
        parts.extend(m.openmetrics() for m in monitors)
        body = "".join(p.replace("# EOF\n", "") for p in parts)
        return body + "# EOF\n"

    def _refresh_gauges(self) -> None:
        self.monitor.set_gauge("service_queue_depth", self.queue.depth())
        self.monitor.set_gauge("service_active_jobs",
                               self.queue.active_jobs())
        stats = self.store.stats()
        self.monitor.set_gauge("service_store_hits", stats["hits"])
        self.monitor.set_gauge("service_store_coalesced",
                               stats["coalesced"])
        self.monitor.set_gauge("service_rejections",
                               self.queue.rejections)

    # -- state machine ----------------------------------------------------
    def _transition(self, job: Job, state: str) -> None:
        with self._lock:
            allowed = JobState.TRANSITIONS.get(job.state, frozenset())
            require(
                state in allowed,
                f"illegal transition {job.state} -> {state} for {job.id}",
            )
            prev = job.state
            job.state = state
            job.timestamps[state] = self._clock()
        tracer = _trace.active_tracer()
        tracer.count(f"service.{state}")
        with tracer.span(
            "service.transition", kind="service", job=job.id,
            tenant=job.tenant, **{"from": prev, "to": state},
        ):
            pass
        self.monitor.drop_gauge("service_job_state", job=job.id,
                                tenant=job.tenant, state=prev)
        self.monitor.set_gauge("service_job_state", 1.0, job=job.id,
                               tenant=job.tenant, state=state)
        self._refresh_gauges()

    def _finish(self, job: Job, state: str, *, error: str = "",
                result: Optional[Dict[str, object]] = None) -> None:
        self._transition(job, state)
        with self._lock:
            if error:
                job.error = error
            if result is not None:
                job.result = dict(result)
        self.queue.finish(job)
        self._refresh_gauges()
        with self._done:
            self._done.notify_all()

    # -- workers ----------------------------------------------------------
    def _worker_loop(self) -> None:
        with _trace.parent_scope(self._parent_uid):
            while True:
                with self._lock:
                    if self._stop:
                        return
                job = self.queue.pop(timeout=0.05)
                if job is None:
                    continue
                try:
                    self._dispatch(job)
                except Exception as exc:  # pragma: no cover - last resort
                    if not job.terminal:
                        with contextlib.suppress(Exception):
                            self._finish(job, JobState.QUARANTINED,
                                         error=f"internal: {exc!r}")

    def _dispatch(self, job: Job) -> None:
        # a cancel/expiry that raced dispatch settles without running
        if job.cancel.cancelled:
            state = (JobState.EXPIRED if job.cancel.reason == "deadline"
                     else JobState.CANCELLED)
            self._finish(job, state, error=job.cancel.reason)
            return
        self._transition(job, JobState.RUNNING)
        tracer = _trace.active_tracer()
        with tracer.span("service.job", kind="service", job=job.id,
                         tenant=job.tenant, digest=job.digest):
            self._run_single_flight(job)

    def _run_single_flight(self, job: Job) -> None:
        """Resolve the job through the store's single-flight registry."""
        tracer = _trace.active_tracer()
        cur = tracer.current_span()  # the service.job span (same thread)
        my_uid = cur.uid if cur is not None else None
        while True:
            role, stored, flight = self.store.begin(job.digest, job.id)
            if role == "hit":
                assert stored is not None
                self._finish_from_stored(job, stored, provenance="cache")
                return
            if role == "join":
                assert flight is not None
                while not flight.done.wait(0.02):
                    if job.cancel.cancelled:
                        self._settle_cancelled(job)
                        return
                if flight.result is not None:
                    # causal record of the dedup: this job's span to the
                    # leader's span whose reduction it coalesced onto
                    tracer.link(my_uid, flight.leader_uid, kind="joiner",
                                job=job.id, leader=flight.leader,
                                digest=job.digest)
                    self._finish_from_stored(
                        job, flight.result, provenance="coalesced"
                    )
                    return
                # the leader failed or was cancelled: re-elect
                continue
            assert flight is not None
            flight.leader_uid = my_uid
            self._lead(job, flight)
            return

    def _finish_from_stored(
        self, job: Job, stored: StoredResult, *, provenance: str
    ) -> None:
        self._finish(job, JobState.DONE, result={
            "provenance": provenance,
            "digest": stored.digest,
            "path": stored.path,
            "binmd_total": float(stored.binmd_signal.sum()),
            "mdnorm_total": float(stored.mdnorm_signal.sum()),
        })

    def _settle_cancelled(self, job: Job) -> None:
        state = (JobState.EXPIRED if job.cancel.reason == "deadline"
                 else JobState.CANCELLED)
        self._finish(job, state, error=job.cancel.reason or "cancelled")

    def _lead(self, job: Job, flight) -> None:
        """This job computes: run the campaign under full isolation."""
        try:
            result = self._reduce(job)
        except (CancelledError, DeadlineExpiredError) as exc:
            self.store.fail(flight, exc)
            state = (JobState.EXPIRED if getattr(exc, "reason", "") == "deadline"
                     else JobState.CANCELLED)
            self._finish(job, state, error=str(exc))
            return
        except Exception as exc:
            self.store.fail(flight, exc)
            self._finish(job, JobState.QUARANTINED, error=repr(exc))
            return
        if result.degraded or result.cross_section is None:
            # degraded science never enters the content-addressed store
            self.store.fail(
                flight,
                ResultStoreError(
                    f"degraded result (quarantined runs "
                    f"{list(result.quarantined_runs)})"
                ),
            )
            self._finish(job, JobState.QUARANTINED, result={
                "provenance": "computed",
                "degraded": True,
                "quarantined_runs": list(result.quarantined_runs),
                "binmd_total": (float(result.binmd.signal.sum())
                                if result.binmd is not None else None),
            }, error="degraded: runs quarantined")
            return
        stored = self.store.put(
            job.digest,
            binmd_signal=result.binmd.signal,
            binmd_error_sq=result.binmd.error_sq,
            mdnorm_signal=result.mdnorm.signal,
            cross_section=result.cross_section.signal,
            meta={
                "job": job.id,
                "tenant": job.tenant,
                "n_runs": int(result.n_runs),
                "backend": result.backend,
            },
        )
        self.store.complete(flight, stored)
        self._finish_from_stored(job, stored, provenance="computed")

    def _reduce(self, job: Job):
        """One isolated campaign: own checkpoint dir, own fault scope,
        own monitor, cancel token threaded through recovery."""
        cfg = job.spec.config
        jobdir = os.path.join(self.root, "jobs", job.id)
        os.makedirs(jobdir, exist_ok=True)
        # checkpoints are keyed by the *config digest*, not the job id:
        # single-flight guarantees one leader per digest at a time, so a
        # cancelled/expired campaign's completed runs are resumed by the
        # next job that asks for the same science
        ckpt = CheckpointManager(
            os.path.join(self.root, "ckpt", job.digest),
            config_digest=job.digest,
            grid=cfg.grid,
        )
        # this is a fresh attempt: retry what an earlier (possibly
        # fault-injected) attempt quarantined instead of inheriting it
        ckpt.clear_quarantine()
        base = cfg.recovery if cfg.recovery is not None else RecoveryConfig()
        recovery = dataclasses.replace(
            base, checkpoint=ckpt, resume=True, cancel=job.cancel
        )
        run_cfg = dataclasses.replace(cfg, recovery=recovery)
        job_monitor = _monitor.CampaignMonitor(
            label=job.spec.label or job.id,
            labels={"job": job.id, "tenant": job.tenant},
            metrics_path=os.path.join(jobdir, "metrics.prom"),
        )
        with self._lock:
            self._job_monitors[job.id] = job_monitor
        # the thread-local fault override isolates this job both ways:
        # its own plan never leaks out, and a process-global plan never
        # leaks in
        with _monitor.thread_monitor(job_monitor), \
                _faults.thread_fault_plan(job.spec.fault_plan):
            workflow = ReductionWorkflow(run_cfg)
            try:
                return workflow.run(None)
            finally:
                job_monitor.finish_campaign()
