"""Elastic work-stealing execution across the rank × shard grid.

The static plan (PR 5) fixes every ``RunShard`` to a rank up front, so
one slow shard — skewed chunk compression, a cold cache, a quarantine
retry storm — idles every other worker.  This executor makes the grid
**elastic**: the campaign's shard tasks live in one shared
:class:`StealQueue`; each rank drains its own planned deque first and,
when the schedule allows, steals from the tail of a victim's deque
(victim selection by remaining *stored-byte* weight from the PR 6
chunk index).  Ranks can join mid-campaign (*birth*: a spawned worker
registers, drains the queue, and its deposits merge through the same
replay), leave cleanly (drain-and-requeue), or die holding work (their
claimed tasks requeue; the queue's claim/complete accounting keeps
execution exactly-once).

Determinism argument (DESIGN.md §6h).  Execution order is deliberately
chaotic — that is the point — so nothing numeric may depend on it:

* a task never touches a histogram; it *records* deposit logs for its
  planned contiguous range (:func:`repro.core.sharding.
  execute_shard_range`), exactly as the static fan-out's shards do;
* when the last task of a run reports, the run's logs are replayed
  **keyed by the shard's planned index** (op-major, planned ranges
  ascending — :func:`repro.core.sharding.replay_shard_logs`) into
  fresh per-run scratch histograms: each run's delta is therefore
  bit-identical to a serial execution of that run, regardless of which
  ranks executed which shards, in what order, with how many steals;
* the effective root folds the per-run deltas in **ascending run
  order** — the same fold as the PR 3 recovering loop and the
  checkpoint rebuild, so the stealing result is bit-identical to the
  static recovering execution (and to any checkpointed/resumed static
  campaign) for *every* steal schedule.

Checkpoint/resume compatibility: deltas checkpoint per run exactly as
the static loop's do; on ``--resume`` completed runs replay from disk
and every shard of an incomplete run — including shards that were
in-flight (stolen) at the kill — goes back into the queue.

The simulated-MPI caveat applies throughout: ranks are threads of one
process (:mod:`repro.mpi.comm`), so "the shared queue" is literally a
shared object distributed by reference over ``Comm.bcast``, and rank
birth is a thread spawn — stand-ins for an RDMA task pool and
``MPI_Comm_spawn`` on the real machines.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core import geom_cache as _gc
from repro.core.checkpoint import RecoveryConfig
from repro.core.cross_section import CrossSectionResult
from repro.core.grid import HKLGrid
from repro.core.hist3 import Hist3
from repro.core.sharding import (
    ShardConfig,
    ShardContext,
    binmd_shard_context,
    execute_shard_range,
    mdnorm_shard_context,
    replay_shard_logs,
)
from repro.crystal.symmetry import PointGroup
from repro.mpi.comm import Comm, SequentialComm
from repro.mpi.decomposition import balanced_rank_runs, rank_range
from repro.nexus.corrections import FluxSpectrum
from repro.util import faults as _faults
from repro.util import monitor as _monitor
from repro.util import trace as _trace
from repro.util.schedule import ScheduleController
from repro.util.timers import StageTimings
from repro.util.validation import ValidationError, require

#: idle backoff while peers hold the last claimed tasks
_IDLE_SLEEP_S = 0.0005

_STAGES = ("mdnorm", "binmd")
_STAGE_TITLES = {"mdnorm": "MDNorm", "binmd": "BinMD"}


@dataclass(frozen=True)
class StealTask:
    """One stealable cell: a planned shard of one run-stage."""

    run: int
    stage: str            # "mdnorm" | "binmd"
    index: int            # planned shard index within the stage
    n_ranges: int         # total planned shards of the stage
    owner: int            # rank the static plan assigned the run to
    weight: float         # work estimate (stored bytes / row count)
    plan_uid: Optional[str] = None  # planning span's global uid (trace v3)

    @property
    def key(self) -> Tuple[int, str, int]:
        return (self.run, self.stage, self.index)

    @property
    def label(self) -> str:
        return f"run{self.run}/{self.stage}/shard{self.index}of{self.n_ranges}"


class StealQueue:
    """The shared elastic work queue with exactly-once accounting.

    Per-owner deques: an owner pops its own head (preserving the static
    plan's order when nobody steals); thieves pop a victim's *tail*
    (classic work-stealing, minimizing contention on the owner's next
    task).  Every task moves ``pending → claimed → done`` (or
    ``dropped`` when its run quarantines); a dying or leaving rank's
    claimed and pending tasks requeue, so no task is ever lost and none
    can complete twice — :meth:`complete` is the single bottleneck that
    marks a key done exactly once.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._pending: Dict[int, deque] = {}
        self._claimed: Dict[Tuple[int, str, int], Tuple[int, StealTask]] = {}
        self._done: Set[Tuple[int, str, int]] = set()
        self._dropped: Set[Tuple[int, str, int]] = set()
        self._quarantined_runs: Set[int] = set()
        self._active: Set[int] = set()
        self.total = 0
        self.steals = 0
        self.adoptions = 0

    # -- membership -------------------------------------------------------
    def register_rank(self, rank: int) -> None:
        with self._lock:
            self._active.add(int(rank))
            self._pending.setdefault(int(rank), deque())

    def deregister_rank(self, rank: int) -> None:
        """Clean leave: the rank's remaining deque becomes orphan work."""
        with self._lock:
            self._active.discard(int(rank))

    def release_rank(self, rank: int) -> None:
        """Crash/leave: requeue the rank's claimed tasks, deregister it.

        Claimed tasks go back to the *head* of their owner's deque (they
        were next in plan order); the rank's own pending deque stays
        where it is and becomes adoptable once the rank is inactive.
        """
        with self._lock:
            for key, (holder, task) in list(self._claimed.items()):
                if holder == rank:
                    del self._claimed[key]
                    self._pending.setdefault(task.owner, deque()).appendleft(task)
            self._active.discard(int(rank))

    # -- intake -----------------------------------------------------------
    def add_task(self, task: StealTask) -> None:
        with self._lock:
            self._pending.setdefault(task.owner, deque()).append(task)
            self.total += 1

    # -- views ------------------------------------------------------------
    def own_depth(self, rank: int) -> int:
        with self._lock:
            dq = self._pending.get(rank)
            return len(dq) if dq else 0

    def depth(self) -> int:
        with self._lock:
            return sum(len(dq) for dq in self._pending.values())

    def remaining_weights(self, exclude: int) -> Dict[int, float]:
        """Active ranks (≠ ``exclude``) with queued work → total weight."""
        with self._lock:
            return {
                r: sum(t.weight for t in dq)
                for r, dq in self._pending.items()
                if r != exclude and dq and r in self._active
            }

    def completed_count(self) -> int:
        with self._lock:
            return len(self._done) + len(self._dropped)

    def all_done(self) -> bool:
        with self._lock:
            return (
                not self._claimed
                and not any(self._pending.values())
            )

    # -- claim / complete -------------------------------------------------
    def claim_own(self, rank: int) -> Optional[StealTask]:
        with self._lock:
            dq = self._pending.get(rank)
            if not dq:
                return None
            task = dq.popleft()
            self._claimed[task.key] = (rank, task)
            return task

    def claim_steal(self, thief: int, victim: int) -> Optional[StealTask]:
        with self._lock:
            dq = self._pending.get(victim)
            if not dq:
                return None
            task = dq.pop()
            self._claimed[task.key] = (thief, task)
            self.steals += 1
            return task

    def claim_orphan(self, thief: int) -> Optional[StealTask]:
        """Adopt work whose owner is gone (dead or left) — the liveness
        backstop that no schedule policy can veto."""
        with self._lock:
            for r in sorted(self._pending):
                if r in self._active:
                    continue
                dq = self._pending[r]
                if dq:
                    task = dq.popleft()
                    self._claimed[task.key] = (thief, task)
                    self.adoptions += 1
                    return task
            return None

    def complete(self, rank: int, task: StealTask) -> bool:
        """Mark a claimed task finished; True iff its result counts
        (False: the run quarantined while the task was in flight)."""
        with self._lock:
            self._claimed.pop(task.key, None)
            if task.run in self._quarantined_runs:
                self._dropped.add(task.key)
                return False
            self._done.add(task.key)
            return True

    def drop_run(self, run: int) -> None:
        """Quarantine: purge the run's pending tasks, poison in-flight
        completions (their logs are discarded on arrival)."""
        with self._lock:
            self._quarantined_runs.add(int(run))
            for dq in self._pending.values():
                kept = [t for t in dq if t.run != run]
                if len(kept) != len(dq):
                    for t in dq:
                        if t.run == run:
                            self._dropped.add(t.key)
                    dq.clear()
                    dq.extend(kept)

    def is_quarantined(self, run: int) -> bool:
        with self._lock:
            return int(run) in self._quarantined_runs


class _StealState:
    """Everything the ranks share, built once on the root and broadcast
    (by reference — the simulated world's ranks are threads)."""

    def __init__(
        self,
        *,
        queue: StealQueue,
        controller: ScheduleController,
        grid: HKLGrid,
        n_shards: int,
        world_size: int,
    ) -> None:
        self.queue = queue
        self.controller = controller
        self.grid = grid
        self.n_shards = int(n_shards)
        self.world_size = int(world_size)
        self.lock = threading.RLock()
        self.workspaces: Dict[int, Any] = {}
        self.contexts: Dict[Tuple[int, str], ShardContext] = {}
        self.logs: Dict[Tuple[int, str], Dict[int, List[Any]]] = {}
        self.task_counts: Dict[int, int] = {}       # run -> total tasks
        self.events_per_run: Dict[int, int] = {}
        self.run_attempts: Dict[int, int] = {}
        self.deltas: Dict[int, Tuple[Hist3, Hist3]] = {}
        self.dispositions: Dict[int, Dict[str, Any]] = {}
        self.finished_runs: Set[int] = set()
        self.helpers: List[threading.Thread] = []
        self.next_helper_rank = int(world_size)
        self.births = 0
        self._run_locks: Dict[int, threading.Lock] = {}

    def run_lock(self, run: int) -> threading.Lock:
        with self.lock:
            lk = self._run_locks.get(run)
            if lk is None:
                lk = self._run_locks[run] = threading.Lock()
            return lk


def run_stealing_campaign(
    load_run: Callable[[int], Any],
    n_runs: int,
    grid: HKLGrid,
    point_group: PointGroup,
    flux: FluxSpectrum,
    det_directions: np.ndarray,
    solid_angles: np.ndarray,
    *,
    comm: Optional[Comm] = None,
    backend: Optional[str] = None,
    sort_impl: str = "comb",
    scatter_impl: str = "atomic",
    timings: Optional[StageTimings] = None,
    binmd_impl: Optional[Callable] = None,
    mdnorm_impl: Optional[Callable] = None,
    cache: Optional[Any] = None,
    recovery: Optional[RecoveryConfig] = None,
    shards: Optional[ShardConfig] = None,
    run_weights: Optional[Sequence[float]] = None,
    schedule: Optional[ScheduleController] = None,
) -> CrossSectionResult:
    """Algorithm 1 on the elastic rank × shard grid (see module docs).

    Drop-in signature match for the dispatch in
    :func:`repro.core.cross_section.compute_cross_section` with
    ``executor="stealing"``.  ``shards`` sets the per-run shard count
    (the stealing granularity; default 1 — run-level stealing) and the
    per-task pool width; ``schedule`` is the
    :class:`~repro.util.schedule.ScheduleController` driving steal and
    birth/leave/death decisions (the root rank's instance wins; default
    is the seeded ``weighted`` policy).  ``binmd_impl``/``mdnorm_impl``
    overrides own their parallelism and are not stealable.
    """
    require(n_runs >= 1, "need at least one run")
    if binmd_impl is not None or mdnorm_impl is not None:
        raise ValidationError(
            "the stealing executor records deposit logs through the shard "
            "machinery; kernel *_impl overrides are not stealable — use "
            "executor='static'"
        )
    del sort_impl, scatter_impl  # record/replay path: scalar bodies only
    comm = comm or SequentialComm()
    cache = _gc.resolve(cache)
    shards = shards or ShardConfig(n_shards=1, workers=1)
    timings = timings or StageTimings(
        label=f"cross-section[{backend or 'default'}]"
    )
    tracer = _trace.active_tracer()
    monitor = _monitor.active_monitor()
    ckpt = recovery.checkpoint if recovery is not None else None
    workers = shards.effective_workers

    if monitor.enabled:
        monitor.start_campaign(n_runs, comm.size)

    with tracer.span(
        "cross_section",
        kind="algorithm",
        backend=backend or "default",
        n_runs=int(n_runs),
        mpi_rank=int(comm.rank),
        mpi_size=int(comm.size),
        executor="stealing",
        n_shards=int(shards.n_shards),
    ), timings.stage("Total"):
        # -- plan + share (root builds, everyone receives the reference)
        state: Optional[_StealState] = None
        if comm.rank == 0:
            state = _plan(
                load_run, n_runs, grid, point_group, comm,
                n_det=int(np.asarray(det_directions).shape[0]),
                shards=shards, recovery=recovery, run_weights=run_weights,
                schedule=schedule, timings=timings, cache=cache,
                monitor=monitor,
            )
            if workers > 1:
                # Fork the shard-worker pool now, while every other
                # rank thread is parked at the bcast below: a fork
                # taken mid-kernel on a sibling thread can hand the
                # children locked BLAS/OpenMP state they never escape.
                from repro.jacc.workers import GLOBAL_POOL

                GLOBAL_POOL.executor(workers)
        if comm.size > 1:
            state = comm.bcast(state, root=0)
        assert state is not None
        state.queue.register_rank(comm.rank)
        if monitor.enabled:
            monitor.assign_runs(comm.rank, state.queue.own_depth(comm.rank))

        exec_env = _ExecEnv(
            state=state, grid=grid, point_group=point_group, flux=flux,
            det_directions=det_directions, solid_angles=solid_angles,
            backend=backend, cache=cache, recovery=recovery, ckpt=ckpt,
            workers=workers, timings=timings, monitor=monitor,
            load_run=load_run, comm=comm,
        )

        crashed = False
        try:
            _work_loop(exec_env, comm.rank, helper=False)
        except _faults.RankCrashError:
            if comm.size == 1:
                raise  # a lone rank cannot recover from its own death
            state.queue.release_rank(comm.rank)
            comm.mark_failed({"runs": []})
            tracer.count("rank.crash")
            if monitor.enabled:
                monitor.record_crash(comm.rank)
            crashed = True

        # helper (born) ranks drain with the world; every survivor joins
        # them so a spawner's later death cannot leak a thread
        for t in list(state.helpers):
            t.join()
        if crashed:
            return _non_root_result(timings, n_runs, backend)

        # -- rendezvous + ascending-run fold on the effective root ------
        if comm.size > 1:
            comm.Barrier()
        alive = comm.alive_ranks()
        eff_root = alive[0]
        if comm.rank != eff_root:
            return _non_root_result(timings, n_runs, backend)

        dispositions = dict(state.dispositions)
        if ckpt is not None:
            binmd_out, mdnorm_out = _fold_from_checkpoint(ckpt, grid)
            ckpt.mark_campaign_complete(
                f"runs={len(ckpt.completed_runs())} "
                f"quarantined={len(ckpt.quarantined_runs())}\n"
            )
        else:
            binmd_out, mdnorm_out = _fold_from_deltas(state.deltas, grid)
        cross = binmd_out.divide(mdnorm_out)

    if monitor.enabled:
        monitor.finish_campaign()
    quarantined = sorted(
        i for i, d in dispositions.items() if d.get("status") == "quarantined"
    )
    extras: Dict[str, Any] = {
        "stealing": {
            "steals": int(state.queue.steals),
            "adoptions": int(state.queue.adoptions),
            "births": int(state.births),
            "tasks": int(state.queue.total),
            "policy": state.controller.policy,
            "seed": state.controller.seed,
            "schedule_signature": state.controller.schedule_signature(),
        },
        "recovery": {
            "quarantined": quarantined,
            "failed_ranks": sorted(comm.failed_ranks()),
            "resumed": sorted(
                i for i, d in dispositions.items()
                if d.get("status") == "resumed"
            ),
        },
    }
    if cache.enabled:
        extras["geom_cache"] = cache.stats.snapshot()
    return CrossSectionResult(
        cross_section=cross,
        binmd=binmd_out,
        mdnorm=mdnorm_out,
        timings=timings,
        n_runs=n_runs,
        backend=backend or "default",
        extras=extras,
        degraded=bool(quarantined),
        dispositions=dispositions,
    )


# ---------------------------------------------------------------------------
# planning (root rank)
# ---------------------------------------------------------------------------

def _plan(
    load_run: Callable[[int], Any],
    n_runs: int,
    grid: HKLGrid,
    point_group: PointGroup,
    comm: Comm,
    *,
    n_det: int,
    shards: ShardConfig,
    recovery: Optional[RecoveryConfig],
    run_weights: Optional[Sequence[float]],
    schedule: Optional[ScheduleController],
    timings: StageTimings,
    cache: Any,
    monitor: Any,
) -> _StealState:
    """Load run metadata, cut the static plan into stealable tasks.

    The static owner assignment is *identical* to the static executor's
    rank blocks, so a ``no-steal`` schedule executes exactly the static
    plan.  Runs already completed in a resumed checkpoint enqueue
    nothing — including runs whose shards were in-flight at the kill:
    per-run checkpoint granularity means every shard of an incomplete
    run goes back into the queue.
    """
    ckpt = recovery.checkpoint if recovery is not None else None
    resume = bool(recovery is not None and recovery.resume and ckpt is not None)
    if run_weights is not None:
        require(len(run_weights) == n_runs,
                f"run_weights has {len(run_weights)} entries for {n_runs} runs")
        blocks = balanced_rank_runs(run_weights, comm.size)
    else:
        blocks = [rank_range(n_runs, r, comm.size) for r in range(comm.size)]
    owner_of = {}
    for rank, (a, b) in enumerate(blocks):
        for i in range(a, b):
            owner_of[i] = rank

    controller = schedule or ScheduleController(seed=0, policy="weighted")
    state = _StealState(
        queue=StealQueue(), controller=controller, grid=grid,
        n_shards=shards.n_shards, world_size=comm.size,
    )
    for r in range(comm.size):
        state.queue.register_rank(r)

    for i in range(n_runs):
        if resume:
            if ckpt.is_quarantined(i):
                state.queue.drop_run(i)
                state.dispositions[i] = {
                    "status": "quarantined", "rank": int(comm.rank),
                    "resumed": True,
                }
                if monitor.enabled:
                    monitor.record_quarantine(comm.rank, i)
                continue
            if ckpt.has_run(i):
                rec = ckpt.run_record(i) or {}
                state.dispositions[i] = {
                    "status": "resumed", "rank": int(comm.rank),
                    "attempts": int(rec.get("attempts", 1)),
                }
                _trace.active_tracer().count("checkpoint.resumed")
                if monitor.enabled:
                    monitor.record_resume(comm.rank, i)
                continue
        try:
            ws = _load_workspace(
                load_run, i, timings, cache,
                recovery=recovery, monitor=monitor, comm=comm,
            )
        except _faults.RetryExhaustedError as exc:
            if recovery is None or not recovery.quarantine:
                raise
            _quarantine(state, i, repr(exc.last), int(exc.attempts),
                        comm.rank, ckpt, monitor)
            continue
        state.workspaces[i] = ws
        event_transforms = grid.transforms_for(ws.ub_matrix, point_group)
        n_ops = int(np.asarray(event_transforms).shape[0])
        mdnorm_ranges, mdnorm_weights = _mdnorm_plan(
            n_det, n_ops, shards.n_shards)
        binmd_ranges, binmd_weights = _binmd_plan(ws, n_ops, shards.n_shards)
        state.task_counts[i] = len(mdnorm_ranges) + len(binmd_ranges)
        state.events_per_run[i] = _n_events(ws)
        # each enqueue is a planning span whose uid rides the task, so
        # an executing (possibly stolen) span can link back to the
        # exact planning site across ranks
        tracer = _trace.active_tracer()
        for stage, ranges, weights in (
            ("mdnorm", mdnorm_ranges, mdnorm_weights),
            ("binmd", binmd_ranges, binmd_weights),
        ):
            for idx, _rng in enumerate(ranges):
                with tracer.span(
                    f"plan:{stage}", kind="plan_task",
                    run=int(i), shard=int(idx), owner=int(owner_of[i]),
                ) as plan_span:
                    state.queue.add_task(StealTask(
                        run=i, stage=stage, index=idx,
                        n_ranges=len(ranges), owner=owner_of[i],
                        weight=float(weights[idx]),
                        plan_uid=plan_span.uid,
                    ))
    return state


def _mdnorm_plan(n_det: int, n_ops: int, n_shards: int):
    """Detector-range plan, identical to :func:`mdnorm_shard_context`'s
    (both call :func:`repro.mpi.decomposition.shard_ranges` on the same
    axis, so planned task indices line up with context ranges)."""
    from repro.mpi.decomposition import shard_ranges

    ranges = shard_ranges(n_det, n_shards)
    weights = [float(n_ops * (b - a)) for a, b in ranges]
    return ranges, weights


def _binmd_plan(ws: Any, n_ops: int, n_shards: int):
    from repro.mpi.decomposition import lazy_table_ranges, range_stored_nbytes, shard_ranges

    events = ws.events
    if hasattr(events, "chunk_bounds") and hasattr(events, "window"):
        ranges = lazy_table_ranges(events, n_shards)
        return ranges, range_stored_nbytes(events, ranges)
    n_events = _n_events(ws)
    ranges = shard_ranges(n_events, n_shards)
    weights = [float(n_ops * (b - a)) for a, b in ranges]
    return ranges, weights


def _n_events(ws: Any) -> int:
    n = getattr(ws.events, "n_events", None)
    if n is not None:
        return int(n)
    try:
        return int(ws.events.data.shape[0])
    except AttributeError:  # pragma: no cover - bare-array workspaces
        return int(np.asarray(ws.events).shape[0])


def _load_workspace(
    load_run: Callable[[int], Any],
    i: int,
    timings: StageTimings,
    cache: Any,
    *,
    recovery: Optional[RecoveryConfig],
    monitor: Any,
    comm: Comm,
) -> Any:
    """UpdateEvents with the run-level retry protocol (planning side)."""

    def attempt(attempt_no: int) -> Any:
        if monitor.enabled:
            monitor.heartbeat(comm.rank, site=f"run:{i}/UpdateEvents", run=i)
        with timings.stage("UpdateEvents"):
            ws = load_run(i)
        if ws.ub_matrix is None:
            raise ValidationError(
                f"run index {i} carries no UB matrix; Algorithm 1 needs it"
            )
        return ws

    if recovery is None:
        return attempt(1)

    def on_retry(exc: BaseException, attempt_no: int) -> None:
        cache.invalidate(f"run:{i}")

    return _faults.retry_call(
        attempt,
        site=f"run[{i}]",
        policy=recovery.retry,
        retryable=recovery.retryable,
        on_retry=on_retry,
    )


# ---------------------------------------------------------------------------
# the scheduling loop (every rank, plus born helpers)
# ---------------------------------------------------------------------------

@dataclass
class _ExecEnv:
    """Per-world execution context threaded through the loop helpers."""

    state: _StealState
    grid: HKLGrid
    point_group: PointGroup
    flux: FluxSpectrum
    det_directions: np.ndarray
    solid_angles: np.ndarray
    backend: Optional[str]
    cache: Any
    recovery: Optional[RecoveryConfig]
    ckpt: Any
    workers: int
    timings: StageTimings
    monitor: Any
    load_run: Callable[[int], Any]
    comm: Comm


def _work_loop(env: _ExecEnv, rank: int, *, helper: bool) -> None:
    state = env.state
    q = state.queue
    ctl = state.controller
    tracer = _trace.active_tracer()
    leaving = False
    while True:
        for action in ctl.lifecycle(rank, q.completed_count()):
            if action == "birth":
                _spawn_helper(env)
            elif action == "leave":
                leaving = True
            elif action == "death":
                raise _faults.RankCrashError(
                    "steal.lifecycle", "rank_crash", 0
                )
        if leaving:
            # drain-and-requeue: current task (if any) already finished;
            # the rest of this rank's deque becomes orphan work
            q.deregister_rank(rank)
            tracer.count("steal.leaves")
            return

        victims = q.remaining_weights(exclude=rank)
        own_depth = q.own_depth(rank)
        victim = None
        if own_depth or victims:
            victim = ctl.acquire(rank, own_depth, victims)
        task = None
        stolen = False
        if victim is not None:
            task = q.claim_steal(rank, victim)
            stolen = task is not None
        if task is None:
            task = q.claim_own(rank)
            stolen = False
        if task is None:
            task = q.claim_orphan(rank)
            stolen = task is not None
            victim = None
        if task is None:
            if q.all_done():
                return
            time.sleep(_IDLE_SLEEP_S)
            continue
        try:
            _execute_task(env, rank, task, stolen=stolen, victim=victim)
        except _faults.RankCrashError:
            q.release_rank(rank)
            if helper:
                # a born worker's death is invisible to the world's
                # collectives — its work simply requeues
                tracer.count("steal.helper_deaths")
                return
            raise
        except BaseException:
            # unexpected failure: requeue the claim before propagating,
            # otherwise the task stays claimed-by-a-dead-rank forever
            # and every surviving rank spins on a queue that can never
            # drain
            q.release_rank(rank)
            raise


def _spawn_helper(env: _ExecEnv) -> None:
    """Rank birth: a new worker joins mid-campaign (thread-spawn
    stand-in for ``MPI_Comm_spawn``), registers with the queue, drains
    it alongside everyone else, exits when the queue is dry."""
    state = env.state
    with state.lock:
        new_rank = state.next_helper_rank
        state.next_helper_rank += 1
        state.births += 1
    state.queue.register_rank(new_rank)
    tracer = _trace.active_tracer()
    tracer.count("steal.births")
    spawn_span = tracer.current_span()
    spawn_uid = (spawn_span.uid if spawn_span is not None
                 else _trace.remote_parent())

    def body() -> None:
        with _trace.rank_scope(new_rank), _trace.parent_scope(spawn_uid):
            with tracer.span("rank", kind="rank", rank=int(new_rank),
                             size=int(state.world_size), born=True):
                try:
                    _work_loop(env, new_rank, helper=True)
                finally:
                    state.queue.deregister_rank(new_rank)

    t = threading.Thread(target=body, name=f"steal-born-{new_rank}")
    # start *before* publishing to state.helpers: a concurrently
    # draining rank joins every published helper, and joining a
    # not-yet-started thread raises RuntimeError.  A helper published
    # after a drain's snapshot is still joined by the spawner itself —
    # its own drain loop runs after this function returns.
    t.start()
    with state.lock:
        state.helpers.append(t)


def _execute_task(
    env: _ExecEnv,
    rank: int,
    task: StealTask,
    *,
    stolen: bool,
    victim: Optional[int],
) -> None:
    state = env.state
    q = state.queue
    tracer = _trace.active_tracer()
    if q.is_quarantined(task.run):
        q.complete(rank, task)
        return
    if env.monitor.enabled:
        env.monitor.heartbeat(
            rank,
            site=(f"run:{task.run}/{_STAGE_TITLES[task.stage]}/"
                  f"shard:{task.index + 1}of{task.n_ranges}"),
            run=task.run,
        )
        if stolen and victim is not None:
            env.monitor.record_steal(rank, victim, task.run)
    with tracer.span(
        f"steal:{task.stage}",
        kind="steal" if stolen else "steal_task",
        run=int(task.run),
        shard=int(task.index),
        weight=float(task.weight),
        n_shards=int(task.n_ranges),
        owner=int(task.owner),
        exec_rank=int(rank),
        stolen=bool(stolen),
        **({"victim": int(victim)} if victim is not None else {}),
    ) as sp:
        if stolen:
            tracer.count("steals")
            # causal handoff: the executing rank's span back to the
            # planning rank's task span (cross-rank, so a link record —
            # never a parent edge)
            tracer.link(
                sp.uid, task.plan_uid, kind="steal",
                run=int(task.run), shard=int(task.index),
                exec_rank=int(rank),
                **({"victim": int(victim)} if victim is not None else {}),
            )
        tracer.gauge("steal.queue_depth", float(q.depth()))

        def attempt(attempt_no: int) -> List[Any]:
            with state.lock:
                state.run_attempts[task.run] = max(
                    state.run_attempts.get(task.run, 0), attempt_no
                )
            ctx = _context(env, task.run, task.stage)
            _faults.fault_point("steal.task", rank=rank, run=task.run)
            with env.timings.stage(_STAGE_TITLES[task.stage]):
                return execute_shard_range(
                    ctx, task.index, workers=env.workers, run=task.run
                )

        def on_retry(exc: BaseException, attempt_no: int) -> None:
            env.cache.invalidate(f"run:{task.run}")
            with state.lock:
                # rebuild the context from scratch on the next attempt —
                # a corrupt read may have poisoned it
                state.contexts.pop((task.run, task.stage), None)

        try:
            if env.recovery is None:
                logs = attempt(1)
            else:
                logs = _faults.retry_call(
                    attempt,
                    site=f"steal[{task.label}]",
                    policy=env.recovery.retry,
                    retryable=env.recovery.retryable,
                    on_retry=on_retry,
                )
        except _faults.RetryExhaustedError as exc:
            if env.recovery is None or not env.recovery.quarantine:
                raise
            _quarantine(
                state, task.run, repr(exc.last), int(exc.attempts),
                rank, env.ckpt, env.monitor,
            )
            q.complete(rank, task)
            return

        with state.lock:
            state.logs.setdefault(task.key[:2], {})[task.index] = logs
        if q.complete(rank, task):
            sp.set(completed=True)
            tracer.count(f"{task.stage}.shard_tasks")
            _maybe_finish_run(env, rank, task.run)


def _context(env: _ExecEnv, run: int, stage: str) -> ShardContext:
    """The run-stage's shard context, built once under the run's lock.

    Whichever rank first executes (or steals) a task of the run pays
    for the load + geometry; peers reuse the shared context — the
    captures are thread-safe by construction (see
    :class:`repro.core.sharding.ShardContext`).
    """
    state = env.state
    with state.run_lock(run):
        ctx = state.contexts.get((run, stage))
        if ctx is not None:
            return ctx
        ws = state.workspaces.get(run)
        if ws is None:
            ws = _load_workspace(
                env.load_run, run, env.timings, env.cache,
                recovery=env.recovery, monitor=env.monitor, comm=env.comm,
            )
            with state.lock:
                state.workspaces[run] = ws
        _faults.fault_point("run", run=run)
        if stage == "mdnorm":
            traj_transforms = env.grid.transforms_for(
                ws.ub_matrix, env.point_group, goniometer=ws.goniometer
            )
            _faults.fault_point("kernel.mdnorm", run=run)
            ctx = mdnorm_shard_context(
                Hist3(env.grid), traj_transforms, env.det_directions,
                env.solid_angles, env.flux, ws.momentum_band,
                n_shards=state.n_shards, charge=ws.proton_charge,
                backend=env.backend, cache=env.cache,
                cache_tag=f"run:{run}",
            )
        else:
            event_transforms = env.grid.transforms_for(
                ws.ub_matrix, env.point_group
            )
            _faults.fault_point("kernel.binmd", run=run)
            ctx = binmd_shard_context(
                Hist3(env.grid, track_errors=True), ws.events,
                event_transforms, n_shards=state.n_shards,
            )
        with state.lock:
            state.contexts[(run, stage)] = ctx
        return ctx


def _maybe_finish_run(env: _ExecEnv, rank: int, run: int) -> None:
    """Replay in planned order + fold bookkeeping when the run's last
    task reports.  Guarded so exactly one rank assembles each run."""
    state = env.state
    with state.lock:
        if run in state.finished_runs or state.queue.is_quarantined(run):
            return
        total = state.task_counts.get(run)
        done = sum(
            len(state.logs.get((run, stage), {})) for stage in _STAGES
        )
        if total is None or done < total:
            return
        state.finished_runs.add(run)
        ctx_m = state.contexts[(run, "mdnorm")]
        ctx_b = state.contexts[(run, "binmd")]
        logs_m = state.logs.pop((run, "mdnorm"))
        logs_b = state.logs.pop((run, "binmd"))
        attempts = state.run_attempts.get(run, 1)

    # ordered-deposit replay keyed by the planned index: the delta is
    # bit-identical to a serial execution of this run no matter who
    # executed what, in what order
    replay_shard_logs(ctx_m, [logs_m[s] for s in range(ctx_m.n_ranges)])
    replay_shard_logs(ctx_b, [logs_b[s] for s in range(ctx_b.n_ranges)])
    scratch_m = ctx_m.captures.hist
    scratch_b = ctx_b.captures.hist

    with state.lock:
        state.deltas[run] = (scratch_b, scratch_m)
        state.dispositions[run] = {
            "status": "done", "rank": int(rank), "attempts": int(attempts),
        }
        # release the run's working set (out-of-core hygiene)
        state.workspaces.pop(run, None)
        state.contexts.pop((run, "mdnorm"), None)
        state.contexts.pop((run, "binmd"), None)
    if env.ckpt is not None:
        env.ckpt.save_run(run, scratch_b, scratch_m,
                          attempts=attempts, rank=rank)
    if env.monitor.enabled:
        env.monitor.run_completed(
            rank, run, events=float(state.events_per_run.get(run, 0))
        )


def _quarantine(
    state: _StealState,
    run: int,
    reason: str,
    attempts: int,
    rank: int,
    ckpt: Any,
    monitor: Any,
) -> None:
    state.queue.drop_run(run)
    with state.lock:
        state.logs.pop((run, "mdnorm"), None)
        state.logs.pop((run, "binmd"), None)
        state.contexts.pop((run, "mdnorm"), None)
        state.contexts.pop((run, "binmd"), None)
        state.workspaces.pop(run, None)
        state.dispositions[run] = {
            "status": "quarantined", "rank": int(rank),
            "attempts": int(attempts), "reason": reason,
        }
    if ckpt is not None:
        ckpt.quarantine_run(run, reason)
    _trace.active_tracer().count("quarantine.runs")
    if monitor.enabled:
        monitor.record_quarantine(rank, run)


# ---------------------------------------------------------------------------
# the final fold
# ---------------------------------------------------------------------------

def _fold_from_deltas(
    deltas: Dict[int, Tuple[Hist3, Hist3]], grid: HKLGrid
) -> Tuple[Hist3, Hist3]:
    """Ascending-run fold of in-memory per-run deltas — the same float
    association as the PR 3 recovering loop and the checkpoint rebuild."""
    binmd_total = np.zeros(tuple(grid.bins), dtype=np.float64)
    err_total = np.zeros(tuple(grid.bins), dtype=np.float64)
    mdnorm_total = np.zeros(tuple(grid.bins), dtype=np.float64)
    have_err = True
    for i in sorted(deltas):
        scratch_b, scratch_m = deltas[i]
        binmd_total += scratch_b.signal
        if scratch_b.error_sq is not None:
            err_total += scratch_b.error_sq
        else:
            have_err = False
        mdnorm_total += scratch_m.signal
    return (
        Hist3(grid, signal=binmd_total,
              error_sq=err_total if have_err else None),
        Hist3(grid, signal=mdnorm_total),
    )


def _fold_from_checkpoint(ckpt: Any, grid: HKLGrid) -> Tuple[Hist3, Hist3]:
    binmd_total = np.zeros(tuple(grid.bins), dtype=np.float64)
    err_total = np.zeros(tuple(grid.bins), dtype=np.float64)
    mdnorm_total = np.zeros(tuple(grid.bins), dtype=np.float64)
    have_err = True
    for i in ckpt.completed_runs():
        delta = ckpt.load_run(i, grid)
        binmd_total += delta.binmd_signal
        if delta.binmd_error_sq is not None:
            err_total += delta.binmd_error_sq
        else:
            have_err = False
        mdnorm_total += delta.mdnorm_signal
    return (
        Hist3(grid, signal=binmd_total,
              error_sq=err_total if have_err else None),
        Hist3(grid, signal=mdnorm_total),
    )


def _non_root_result(
    timings: StageTimings, n_runs: int, backend: Optional[str]
) -> CrossSectionResult:
    return CrossSectionResult(
        cross_section=None, binmd=None, mdnorm=None,
        timings=timings, n_runs=n_runs, backend=backend or "default",
    )
