"""Work decomposition over ranks — and, below them, intra-run shards.

Algorithm 1's first line: ``start, end = range(MPI_Rank, MPI_Size)`` —
each rank takes a contiguous block of the experiment's runs.  That
single level caps strong scaling at the run count (36 for Benzil, 22
for Bixbyite in the paper).  The second level added here is a
**hierarchical 2-D decomposition**: runs × intra-run shards.  A rank
that owns a run fans it out over local shards (detector ranges for
MDNorm, event ranges for BinMD) executed on the node's process pool —
the remaining parallelism Godoy et al. identify *inside* a file.

Everything in this module is pure planning (no execution): given item
counts and optional per-run event weights from the run manifest it
produces contiguous ranges whose union is exact and disjoint.  The
actual sharded execution lives in :mod:`repro.core.sharding`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.mpi.comm import MPIError


def rank_range(n_items: int, rank: int, size: int) -> tuple[int, int]:
    """Contiguous block [start, end) for ``rank`` out of ``size``.

    Remainder items go to the lowest ranks, so block sizes differ by at
    most one; every item is assigned exactly once.
    """
    if n_items < 0:
        raise MPIError(f"n_items must be >= 0, got {n_items}")
    if size < 1 or not (0 <= rank < size):
        raise MPIError(f"invalid rank/size {rank}/{size}")
    base, extra = divmod(n_items, size)
    start = rank * base + min(rank, extra)
    end = start + base + (1 if rank < extra else 0)
    return start, end


def shard_ranges(n_items: int, n_shards: int) -> List[Tuple[int, int]]:
    """Cut ``[0, n_items)`` into ``n_shards`` contiguous ranges.

    Same remainder-to-the-front convention as :func:`rank_range`;
    shards past the item count come back empty rather than erroring, so
    a caller may ask for 7 shards of a 3-item axis and still get a
    partition of constant length (empty shards execute as no-ops).
    """
    if n_items < 0:
        raise MPIError(f"n_items must be >= 0, got {n_items}")
    if n_shards < 1:
        raise MPIError(f"n_shards must be >= 1, got {n_shards}")
    return [rank_range(n_items, s, n_shards) for s in range(n_shards)]


def weighted_shard_ranges(
    weights: Sequence[float], n_shards: int
) -> List[Tuple[int, int]]:
    """Contiguous shards of ``len(weights)`` items balanced by weight.

    Greedy prefix cut: walk the items in order, closing the current
    shard once its accumulated weight reaches the ideal share of the
    remaining weight over the remaining shards.  Deterministic, exact
    partition, and within one item of optimal for the contiguous case —
    the balance the ISSUE asks for when event counts per detector/file
    block are known from the run manifest.
    """
    if n_shards < 1:
        raise MPIError(f"n_shards must be >= 1, got {n_shards}")
    w = [float(x) for x in weights]
    if any(x < 0 for x in w):
        raise MPIError("shard weights must be >= 0")
    n = len(w)
    remaining = sum(w)
    if n and remaining <= 0.0:
        # All-zero weights (empty runs / fully empty chunks): every
        # greedy target is 0, so each leading shard would close after a
        # single item and the tail append would dump everything else
        # into the last shard — a silent mega-shard.  Weight carries no
        # information here; fall back to count-balanced ranges.
        return shard_ranges(n, n_shards)
    ranges: List[Tuple[int, int]] = []
    start = 0
    for s in range(n_shards):
        shards_left = n_shards - s
        # every shard after this one must get at least 0 items; give the
        # tail shards one item each when items are scarce
        if n - start <= shards_left:
            stop = start + (1 if start < n else 0)
        else:
            target = remaining / shards_left
            stop = start
            acc = 0.0
            # take items until reaching the target share, but leave
            # enough items for the remaining shards
            while stop < n - (shards_left - 1) and (acc < target or stop == start):
                acc += w[stop]
                stop += 1
                if acc >= target:
                    break
        ranges.append((start, stop))
        remaining -= sum(w[start:stop])
        start = stop
    # any tail items (possible only via float pathology) go to the last shard
    if start < n:
        last_start, _ = ranges[-1]
        ranges[-1] = (last_start, n)
    return ranges


def chunk_aligned_event_ranges(
    chunk_bounds: Sequence[int],
    n_shards: int,
    *,
    chunk_weights: Optional[Sequence[float]] = None,
    max_rows: Optional[int] = None,
) -> List[Tuple[int, int]]:
    """Contiguous event ranges whose boundaries land on chunk boundaries.

    The out-of-core planner (ISSUE 6): shards of a chunked event table
    must start and end on chunk boundaries so every chunk is decoded by
    exactly one shard (no chunk is decompressed twice, and the I/O
    parallelizes with the shards).  ``chunk_bounds`` is the ascending
    row-boundary list ``[0, r1, ..., n]`` straight from
    :meth:`repro.nexus.h5lite.Dataset.chunk_bounds`.

    The *unit of planning is the chunk*: chunks are cut into
    ``n_shards`` contiguous groups by :func:`weighted_shard_ranges`
    over ``chunk_weights`` (default: decoded rows per chunk; pass the
    stored byte sizes to balance skewed compression ratios).  When
    ``max_rows`` is given, any group whose decoded window would exceed
    it is split further — the memory-budget cap — so the returned list
    may be *longer* than ``n_shards``.  A single chunk larger than
    ``max_rows`` stays whole (one chunk is the irreducible floor of a
    chunk-aligned reader).

    Always an exact partition of ``[0, n)``: contiguous, disjoint,
    ordered, deterministic.
    """
    bounds = [int(b) for b in chunk_bounds]
    if not bounds or bounds[0] != 0:
        raise MPIError("chunk_bounds must start at 0")
    if any(b1 < b0 for b0, b1 in zip(bounds, bounds[1:])):
        raise MPIError("chunk_bounds must be non-decreasing")
    if n_shards < 1:
        raise MPIError(f"n_shards must be >= 1, got {n_shards}")
    if max_rows is not None and max_rows < 1:
        raise MPIError(f"max_rows must be >= 1, got {max_rows}")
    n_chunks = len(bounds) - 1
    rows = [bounds[i + 1] - bounds[i] for i in range(n_chunks)]
    if chunk_weights is None:
        weights: Sequence[float] = [float(r) for r in rows]
    else:
        if len(chunk_weights) != n_chunks:
            raise MPIError(
                f"chunk_weights has {len(chunk_weights)} entries for "
                f"{n_chunks} chunks"
            )
        weights = chunk_weights
    groups = weighted_shard_ranges(weights, n_shards)
    ranges: List[Tuple[int, int]] = []
    for c0, c1 in groups:
        if c0 == c1:
            ranges.append((bounds[c0], bounds[c0]))
            continue
        if max_rows is None:
            ranges.append((bounds[c0], bounds[c1]))
            continue
        # budget cap: greedily regroup this shard's chunks so no window
        # decodes more than max_rows rows (single oversized chunks pass)
        start = c0
        acc = 0
        for c in range(c0, c1):
            if c > start and acc + rows[c] > max_rows:
                ranges.append((bounds[start], bounds[c]))
                start = c
                acc = 0
            acc += rows[c]
        ranges.append((bounds[start], bounds[c1]))
    return ranges


def budget_max_rows(
    memory_budget: Optional[int], row_nbytes: int
) -> Optional[int]:
    """Largest decoded-window row count a byte budget allows (>= 1).

    ``None`` budget means unbounded.  The floor of one row keeps a
    budget smaller than a single row meaningful: the irreducible unit
    of a chunk-aligned reader is one chunk, and the planner's oversized
    single chunks pass through whole anyway.
    """
    if memory_budget is None:
        return None
    if row_nbytes < 1:
        raise MPIError(f"row_nbytes must be >= 1, got {row_nbytes}")
    return max(1, int(memory_budget) // int(row_nbytes))


def lazy_table_ranges(events, n_shards: int) -> List[Tuple[int, int]]:
    """Chunk-aligned shard ranges for an out-of-core event table.

    The single source of the stored-byte weighting and budget row cap
    that every executor plans lazy tables with (the static shard
    executor in :mod:`repro.core.sharding` and the stealing executor in
    :mod:`repro.mpi.stealing` used to carry private copies of this
    arithmetic).  ``events`` is duck-typed on the
    :class:`~repro.nexus.tiles.LazyEventTable` surface: ``chunk_bounds()``,
    ``chunk_stored_nbytes()``, ``memory_budget`` and ``row_nbytes``.
    """
    return chunk_aligned_event_ranges(
        events.chunk_bounds(),
        n_shards,
        chunk_weights=[float(b) for b in events.chunk_stored_nbytes()],
        max_rows=budget_max_rows(events.memory_budget, events.row_nbytes),
    )


def range_stored_nbytes(events, ranges: Sequence[Tuple[int, int]]) -> List[float]:
    """Stored (compressed) bytes overlapping each event range.

    The PR 6 chunk index is the only honest weight for how *expensive*
    a shard of a lazy table is (decode cost tracks compressed bytes,
    not decoded rows, under skewed compression ratios) — the stealing
    executor uses these as victim-selection weights.  Ranges that split
    a chunk charge it pro rata by row overlap; chunk-aligned ranges
    (the planner's output) always charge whole chunks.
    """
    bounds = [int(b) for b in events.chunk_bounds()]
    stored = [float(b) for b in events.chunk_stored_nbytes()]
    out: List[float] = []
    for a, b in ranges:
        total = 0.0
        for c in range(len(stored)):
            c0, c1 = bounds[c], bounds[c + 1]
            rows = c1 - c0
            overlap = min(b, c1) - max(a, c0)
            if rows > 0 and overlap > 0:
                total += stored[c] * (overlap / rows)
        out.append(total)
    return out


def balanced_rank_runs(weights: Sequence[float], size: int) -> List[Tuple[int, int]]:
    """Contiguous run ranges per rank, balanced by per-run event weight.

    The outer level of the 2-D decomposition: like :func:`rank_range`
    but aware that runs are not equally heavy.  With no weights (or all
    equal) it degenerates to the classic block split.
    """
    if size < 1:
        raise MPIError(f"size must be >= 1, got {size}")
    return weighted_shard_ranges(weights, size)


@dataclass(frozen=True)
class RunShard:
    """One cell of the runs × shards decomposition."""

    #: global run index
    run: int
    #: shard index within the run
    shard: int
    #: total shards of this run
    n_shards: int
    #: owning rank (the rank whose run block contains ``run``)
    rank: int

    @property
    def label(self) -> str:
        return f"run{self.run}/shard{self.shard}of{self.n_shards}"


def plan_campaign(
    n_runs: int,
    size: int,
    n_shards: int,
    *,
    run_weights: Optional[Sequence[float]] = None,
) -> Dict[int, List[RunShard]]:
    """The full hierarchical map: rank -> [RunShard, ...].

    Outer level: contiguous run blocks per rank (weight-balanced when
    ``run_weights`` — event counts from the run manifest — are given).
    Inner level: every owned run is cut into ``n_shards`` shards.  The
    plan is pure data; :mod:`repro.core.sharding` executes one run's
    shard list on the node-local pool.
    """
    if n_runs < 0:
        raise MPIError(f"n_runs must be >= 0, got {n_runs}")
    if n_shards < 1:
        raise MPIError(f"n_shards must be >= 1, got {n_shards}")
    if run_weights is not None:
        if len(run_weights) != n_runs:
            raise MPIError(
                f"run_weights has {len(run_weights)} entries for {n_runs} runs"
            )
        blocks = balanced_rank_runs(run_weights, size)
    else:
        blocks = [rank_range(n_runs, r, size) for r in range(size)]
    plan: Dict[int, List[RunShard]] = {}
    for rank, (start, stop) in enumerate(blocks):
        cells: List[RunShard] = []
        for run in range(start, stop):
            for shard in range(n_shards):
                cells.append(
                    RunShard(run=run, shard=shard, n_shards=n_shards, rank=rank)
                )
        plan[rank] = cells
    return plan
