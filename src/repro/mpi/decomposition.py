"""Work decomposition over ranks.

Algorithm 1's first line: ``start, end = range(MPI_Rank, MPI_Size)`` —
each rank takes a contiguous block of the experiment's runs.
"""

from __future__ import annotations

from repro.mpi.comm import MPIError


def rank_range(n_items: int, rank: int, size: int) -> tuple[int, int]:
    """Contiguous block [start, end) for ``rank`` out of ``size``.

    Remainder items go to the lowest ranks, so block sizes differ by at
    most one; every item is assigned exactly once.
    """
    if n_items < 0:
        raise MPIError(f"n_items must be >= 0, got {n_items}")
    if size < 1 or not (0 <= rank < size):
        raise MPIError(f"invalid rank/size {rank}/{size}")
    base, extra = divmod(n_items, size)
    start = rank * base + min(rank, extra)
    end = start + base + (1 if rank < extra else 0)
    return start, end
