"""Communicators and collectives for the in-process MPI world.

A :class:`World` holds the shared rendezvous state of ``size`` ranks;
each rank's :class:`Comm` is its handle into it.  Collectives are
implemented with a deposit / combine / retrieve protocol separated by
reusable barriers, which gives MPI's completion semantics (a collective
returns only when every rank has contributed).  Point-to-point uses one
FIFO queue per receiving rank with (source, tag) matching and a holding
area for out-of-order arrivals, like a real unexpected-message queue.

Fault tolerance (PR 3): the shared barrier is a
:class:`FaultTolerantBarrier` — a reimplementation of
:class:`threading.Barrier` semantics that additionally supports

* **timeouts** (:meth:`FaultTolerantBarrier.wait` raises
  :class:`BarrierTimeoutError` instead of hanging forever when a peer
  never arrives), and
* **party shrinkage** (:meth:`Comm.mark_failed` removes a dead rank
  from every future rendezvous, so survivors' collectives complete
  with the remaining parties instead of deadlocking).

A failed rank's disposition (``World.failed[rank]``) is visible to the
survivors, which is how the reduction redistributes a dead rank's
unfinished runs.  Collectives mask dead ranks' stale slots with a
sentinel so reductions only combine live contributions.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.mpi.ops import Op, SUM
from repro.util.validation import ReproError

ANY_SOURCE = -1
ANY_TAG = -1


class MPIError(ReproError):
    """Misuse of the simulated MPI API."""


class BarrierTimeoutError(MPIError):
    """A rank waited longer than the barrier timeout for its peers.

    Raised in the rank whose wait expired; the barrier breaks, so peers
    blocked in the same rendezvous observe
    :class:`threading.BrokenBarrierError` (a consequence, not a cause —
    the runner's abort attribution ranks a timeout above it).
    """


#: slot sentinel masking a dead rank's stale collective contribution
_DEAD = object()


class FaultTolerantBarrier:
    """A reusable barrier with timeouts and removable parties.

    Mirrors :class:`threading.Barrier`'s generation protocol (including
    :meth:`abort` raising :class:`threading.BrokenBarrierError` in all
    current and future waiters) and adds:

    * ``wait(timeout)`` — a bounded wait that *breaks* the barrier on
      expiry (like ``threading.Barrier``) but raises the more
      diagnosable :class:`BarrierTimeoutError` in the expiring thread;
    * ``mark_failed(rank)`` — permanently removes one party.  If the
      waiters already present satisfy the reduced count, the pending
      generation releases immediately, which is what un-hangs survivors
      blocked on a rank that died *before* reaching the rendezvous.
    """

    def __init__(self, parties: int, *, default_timeout: Optional[float] = None) -> None:
        self._cond = threading.Condition()
        self._parties = parties
        self._alive = parties
        self._count = 0
        self._generation = 0
        self._broken = False
        self.default_timeout = default_timeout

    @property
    def parties(self) -> int:
        return self._parties

    @property
    def alive(self) -> int:
        with self._cond:
            return self._alive

    @property
    def broken(self) -> bool:
        with self._cond:
            return self._broken

    def _release_locked(self) -> None:
        self._generation += 1
        self._count = 0
        self._cond.notify_all()

    def wait(self, timeout: Optional[float] = None) -> int:
        """Block until every *alive* party arrives (or break/timeout)."""
        if timeout is None:
            timeout = self.default_timeout
        with self._cond:
            if self._broken:
                raise threading.BrokenBarrierError
            gen = self._generation
            index = self._count
            self._count += 1
            if self._count >= self._alive:
                self._release_locked()
                return index
            deadline = None if timeout is None else time.monotonic() + timeout
            while gen == self._generation and not self._broken:
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0.0:
                    self._broken = True
                    self._cond.notify_all()
                    raise BarrierTimeoutError(
                        f"barrier timed out after {timeout:.3g}s waiting for "
                        f"{self._alive - self._count} of {self._alive} "
                        f"alive ranks"
                    )
                self._cond.wait(remaining)
            if self._broken and gen == self._generation:
                raise threading.BrokenBarrierError
            return index

    def abort(self) -> None:
        """Break the barrier: all current and future waiters raise
        :class:`threading.BrokenBarrierError` (MPI_Abort analogue)."""
        with self._cond:
            self._broken = True
            self._cond.notify_all()

    def mark_failed(self, rank: int) -> None:
        """Remove one party permanently (``rank`` is for diagnostics)."""
        with self._cond:
            if self._alive <= 1:
                return
            self._alive -= 1
            if 0 < self._count >= self._alive:
                self._release_locked()


class World:
    """Shared state of one simulated MPI world."""

    def __init__(self, size: int, *, barrier_timeout: Optional[float] = None) -> None:
        if size < 1:
            raise MPIError(f"world size must be >= 1, got {size}")
        self.size = size
        self.barrier = FaultTolerantBarrier(size, default_timeout=barrier_timeout)
        self.lock = threading.Lock()
        self.slots: List[Any] = [None] * size
        self.result: Any = None
        #: disposition of dead ranks: rank -> info dict (e.g. leftover runs)
        self.failed: Dict[int, Dict[str, Any]] = {}
        self.mailboxes: List["queue.Queue[Tuple[int, int, Any]]"] = [
            queue.Queue() for _ in range(size)
        ]
        # per-rank holding area for messages dequeued but not yet matched
        self.pending: List[List[Tuple[int, int, Any]]] = [[] for _ in range(size)]


class Comm:
    """One rank's communicator handle (mpi4py-flavoured API)."""

    def __init__(self, world: World, rank: int) -> None:
        if not (0 <= rank < world.size):
            raise MPIError(f"rank {rank} out of range for size {world.size}")
        self._world = world
        self._rank = rank

    # -- introspection ---------------------------------------------------
    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._world.size

    def Get_rank(self) -> int:
        return self._rank

    def Get_size(self) -> int:
        return self._world.size

    # -- synchronization ---------------------------------------------------
    def Barrier(self, timeout: Optional[float] = None) -> None:
        self._world.barrier.wait(timeout)

    barrier = Barrier

    # -- fault disposition --------------------------------------------------
    def mark_failed(self, info: Optional[Dict[str, Any]] = None) -> None:
        """Declare this rank dead (simulated node failure).

        Records the rank's disposition (e.g. its unfinished run list)
        in ``World.failed`` for the survivors to read, then removes the
        rank from every future barrier rendezvous so peers blocked in a
        collective complete with the remaining parties.  The caller
        must *return* afterwards without touching the communicator
        again — a dead rank participating in a collective corrupts the
        rendezvous count.
        """
        w = self._world
        with w.lock:
            w.failed[self._rank] = dict(info or {})
        w.barrier.mark_failed(self._rank)

    def failed_ranks(self) -> Dict[int, Dict[str, Any]]:
        """Snapshot of dead ranks' dispositions (rank -> info)."""
        with self._world.lock:
            return {r: dict(info) for r, info in self._world.failed.items()}

    def alive_ranks(self) -> List[int]:
        """Sorted ranks not marked failed."""
        with self._world.lock:
            dead = set(self._world.failed)
        return [r for r in range(self.size) if r not in dead]

    def is_alive(self, rank: int) -> bool:
        with self._world.lock:
            return rank not in self._world.failed

    # -- point-to-point (object mode) --------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        if not (0 <= dest < self.size):
            raise MPIError(f"invalid destination rank {dest}")
        self._world.mailboxes[dest].put((self._rank, tag, obj))

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG, timeout: float = 60.0) -> Any:
        pending = self._world.pending[self._rank]
        for i, (src, t, obj) in enumerate(pending):
            if (source in (ANY_SOURCE, src)) and (tag in (ANY_TAG, t)):
                pending.pop(i)
                return obj
        box = self._world.mailboxes[self._rank]
        while True:
            try:
                src, t, obj = box.get(timeout=timeout)
            except queue.Empty:
                raise MPIError(
                    f"rank {self._rank} recv(source={source}, tag={tag}) timed out"
                ) from None
            if (source in (ANY_SOURCE, src)) and (tag in (ANY_TAG, t)):
                return obj
            pending.append((src, t, obj))

    # -- collectives (object mode) ------------------------------------------
    def _deposit_and_wait(self, value: Any) -> List[Any]:
        w = self._world
        w.slots[self._rank] = value
        w.barrier.wait()
        with w.lock:
            dead = set(w.failed)
        snapshot = [
            _DEAD if r in dead else v for r, v in enumerate(w.slots)
        ]
        w.barrier.wait()  # ensure everyone snapshotted before slot reuse
        return snapshot

    def bcast(self, obj: Any, root: int = 0) -> Any:
        snapshot = self._deposit_and_wait(obj if self._rank == root else None)
        if snapshot[root] is _DEAD:
            raise MPIError(f"bcast root rank {root} is dead")
        return snapshot[root]

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        snapshot = self._deposit_and_wait(obj)
        if self._rank != root:
            return None
        return [None if v is _DEAD else v for v in snapshot]

    def allgather(self, obj: Any) -> List[Any]:
        return [None if v is _DEAD else v
                for v in self._deposit_and_wait(obj)]

    def scatter(self, objs: Optional[List[Any]], root: int = 0) -> Any:
        if self._rank == root:
            if objs is None or len(objs) != self.size:
                raise MPIError(f"scatter needs a list of length {self.size} on root")
        snapshot = self._deposit_and_wait(objs if self._rank == root else None)
        if snapshot[root] is _DEAD:
            raise MPIError(f"scatter root rank {root} is dead")
        return snapshot[root][self._rank]

    def reduce(self, obj: Any, op: Op = SUM, root: int = 0) -> Any:
        snapshot = self._deposit_and_wait(obj)
        if self._rank != root:
            return None
        return self._combine_scalar(snapshot, op)

    def allreduce(self, obj: Any, op: Op = SUM) -> Any:
        snapshot = self._deposit_and_wait(obj)
        return self._combine_scalar(snapshot, op)

    @staticmethod
    def _combine_scalar(snapshot: List[Any], op: Op) -> Any:
        alive = [v for v in snapshot if v is not _DEAD]
        if not alive:
            raise MPIError("reduce with no alive contributions")
        acc = alive[0]
        for item in alive[1:]:
            acc = op.scalar(acc, item)
        return acc

    # -- collectives (buffer mode) --------------------------------------------
    def Reduce(
        self,
        sendbuf: np.ndarray,
        recvbuf: Optional[np.ndarray],
        op: Op = SUM,
        root: int = 0,
    ) -> None:
        """Element-wise array reduction into ``recvbuf`` on ``root``.

        ``sendbuf`` is read without copying; only the root materializes
        the combined result (Algorithm 1's histogram reduction).
        """
        send = np.asarray(sendbuf)
        snapshot = self._deposit_and_wait(send)
        if self._rank != root:
            return
        if recvbuf is None:
            raise MPIError("root rank must pass a recvbuf to Reduce")
        if recvbuf.shape != send.shape:
            raise MPIError(
                f"recvbuf shape {recvbuf.shape} != sendbuf shape {send.shape}"
            )
        self._combine_array(snapshot, recvbuf, op)

    def Allreduce(self, sendbuf: np.ndarray, recvbuf: np.ndarray, op: Op = SUM) -> None:
        send = np.asarray(sendbuf)
        snapshot = self._deposit_and_wait(send)
        if recvbuf.shape != send.shape:
            raise MPIError(
                f"recvbuf shape {recvbuf.shape} != sendbuf shape {send.shape}"
            )
        self._combine_array(snapshot, recvbuf, op)

    @staticmethod
    def _combine_array(snapshot: List[Any], recvbuf: np.ndarray, op: Op) -> None:
        alive = [v for v in snapshot if v is not _DEAD]
        if not alive:
            raise MPIError("Reduce with no alive contributions")
        np.copyto(recvbuf, alive[0])
        for arr in alive[1:]:
            recvbuf[...] = op.array(recvbuf, arr)

    def Bcast(self, buf: np.ndarray, root: int = 0) -> None:
        snapshot = self._deposit_and_wait(buf if self._rank == root else None)
        if self._rank != root:
            np.copyto(buf, snapshot[root])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Comm(rank={self._rank}, size={self.size})"


class SequentialComm(Comm):
    """A size-1 communicator usable without spawning a world.

    Lets the reduction workflow run identically in single-process mode
    (collectives degenerate to copies), the same convenience
    ``MPI.COMM_SELF`` provides.
    """

    def __init__(self) -> None:
        super().__init__(World(1), 0)
