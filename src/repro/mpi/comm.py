"""Communicators and collectives for the in-process MPI world.

A :class:`World` holds the shared rendezvous state of ``size`` ranks;
each rank's :class:`Comm` is its handle into it.  Collectives are
implemented with a deposit / combine / retrieve protocol separated by
reusable barriers, which gives MPI's completion semantics (a collective
returns only when every rank has contributed).  Point-to-point uses one
FIFO queue per receiving rank with (source, tag) matching and a holding
area for out-of-order arrivals, like a real unexpected-message queue.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.mpi.ops import Op, SUM
from repro.util.validation import ReproError

ANY_SOURCE = -1
ANY_TAG = -1


class MPIError(ReproError):
    """Misuse of the simulated MPI API."""


class World:
    """Shared state of one simulated MPI world."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise MPIError(f"world size must be >= 1, got {size}")
        self.size = size
        self.barrier = threading.Barrier(size)
        self.lock = threading.Lock()
        self.slots: List[Any] = [None] * size
        self.result: Any = None
        self.mailboxes: List["queue.Queue[Tuple[int, int, Any]]"] = [
            queue.Queue() for _ in range(size)
        ]
        # per-rank holding area for messages dequeued but not yet matched
        self.pending: List[List[Tuple[int, int, Any]]] = [[] for _ in range(size)]


class Comm:
    """One rank's communicator handle (mpi4py-flavoured API)."""

    def __init__(self, world: World, rank: int) -> None:
        if not (0 <= rank < world.size):
            raise MPIError(f"rank {rank} out of range for size {world.size}")
        self._world = world
        self._rank = rank

    # -- introspection ---------------------------------------------------
    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._world.size

    def Get_rank(self) -> int:
        return self._rank

    def Get_size(self) -> int:
        return self._world.size

    # -- synchronization ---------------------------------------------------
    def Barrier(self) -> None:
        self._world.barrier.wait()

    barrier = Barrier

    # -- point-to-point (object mode) --------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        if not (0 <= dest < self.size):
            raise MPIError(f"invalid destination rank {dest}")
        self._world.mailboxes[dest].put((self._rank, tag, obj))

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG, timeout: float = 60.0) -> Any:
        pending = self._world.pending[self._rank]
        for i, (src, t, obj) in enumerate(pending):
            if (source in (ANY_SOURCE, src)) and (tag in (ANY_TAG, t)):
                pending.pop(i)
                return obj
        box = self._world.mailboxes[self._rank]
        while True:
            try:
                src, t, obj = box.get(timeout=timeout)
            except queue.Empty:
                raise MPIError(
                    f"rank {self._rank} recv(source={source}, tag={tag}) timed out"
                ) from None
            if (source in (ANY_SOURCE, src)) and (tag in (ANY_TAG, t)):
                return obj
            pending.append((src, t, obj))

    # -- collectives (object mode) ------------------------------------------
    def _deposit_and_wait(self, value: Any) -> List[Any]:
        w = self._world
        w.slots[self._rank] = value
        w.barrier.wait()
        snapshot = list(w.slots)
        w.barrier.wait()  # ensure everyone snapshotted before slot reuse
        return snapshot

    def bcast(self, obj: Any, root: int = 0) -> Any:
        snapshot = self._deposit_and_wait(obj if self._rank == root else None)
        return snapshot[root]

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        snapshot = self._deposit_and_wait(obj)
        return snapshot if self._rank == root else None

    def allgather(self, obj: Any) -> List[Any]:
        return self._deposit_and_wait(obj)

    def scatter(self, objs: Optional[List[Any]], root: int = 0) -> Any:
        if self._rank == root:
            if objs is None or len(objs) != self.size:
                raise MPIError(f"scatter needs a list of length {self.size} on root")
        snapshot = self._deposit_and_wait(objs if self._rank == root else None)
        return snapshot[root][self._rank]

    def reduce(self, obj: Any, op: Op = SUM, root: int = 0) -> Any:
        snapshot = self._deposit_and_wait(obj)
        if self._rank != root:
            return None
        acc = snapshot[0]
        for item in snapshot[1:]:
            acc = op.scalar(acc, item)
        return acc

    def allreduce(self, obj: Any, op: Op = SUM) -> Any:
        snapshot = self._deposit_and_wait(obj)
        acc = snapshot[0]
        for item in snapshot[1:]:
            acc = op.scalar(acc, item)
        return acc

    # -- collectives (buffer mode) --------------------------------------------
    def Reduce(
        self,
        sendbuf: np.ndarray,
        recvbuf: Optional[np.ndarray],
        op: Op = SUM,
        root: int = 0,
    ) -> None:
        """Element-wise array reduction into ``recvbuf`` on ``root``.

        ``sendbuf`` is read without copying; only the root materializes
        the combined result (Algorithm 1's histogram reduction).
        """
        send = np.asarray(sendbuf)
        snapshot = self._deposit_and_wait(send)
        if self._rank != root:
            return
        if recvbuf is None:
            raise MPIError("root rank must pass a recvbuf to Reduce")
        if recvbuf.shape != send.shape:
            raise MPIError(
                f"recvbuf shape {recvbuf.shape} != sendbuf shape {send.shape}"
            )
        np.copyto(recvbuf, snapshot[0])
        for arr in snapshot[1:]:
            recvbuf[...] = op.array(recvbuf, arr)

    def Allreduce(self, sendbuf: np.ndarray, recvbuf: np.ndarray, op: Op = SUM) -> None:
        send = np.asarray(sendbuf)
        snapshot = self._deposit_and_wait(send)
        if recvbuf.shape != send.shape:
            raise MPIError(
                f"recvbuf shape {recvbuf.shape} != sendbuf shape {send.shape}"
            )
        np.copyto(recvbuf, snapshot[0])
        for arr in snapshot[1:]:
            recvbuf[...] = op.array(recvbuf, arr)

    def Bcast(self, buf: np.ndarray, root: int = 0) -> None:
        snapshot = self._deposit_and_wait(buf if self._rank == root else None)
        if self._rank != root:
            np.copyto(buf, snapshot[root])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Comm(rank={self._rank}, size={self.size})"


class SequentialComm(Comm):
    """A size-1 communicator usable without spawning a world.

    Lets the reduction workflow run identically in single-process mode
    (collectives degenerate to copies), the same convenience
    ``MPI.COMM_SELF`` provides.
    """

    def __init__(self) -> None:
        super().__init__(World(1), 0)
