"""Reduction operators for the MPI simulator."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class Op:
    """A named, associative, commutative reduction operator."""

    name: str
    scalar: Callable[[object, object], object]
    array: Callable[[np.ndarray, np.ndarray], np.ndarray]


SUM = Op("SUM", lambda a, b: a + b, lambda a, b: np.add(a, b))
PROD = Op("PROD", lambda a, b: a * b, lambda a, b: np.multiply(a, b))
MAX = Op("MAX", lambda a, b: a if a >= b else b, lambda a, b: np.maximum(a, b))
MIN = Op("MIN", lambda a, b: a if a <= b else b, lambda a, b: np.minimum(a, b))
