"""In-process MPI simulator with an mpi4py-style API.

Algorithm 1 of the paper distributes the outermost loop over experiment
runs (files) across MPI ranks; each rank accumulates private MDNorm and
BinMD histograms that are combined with ``MPI_Reduce`` before the final
division.  mpi4py is unavailable offline, so this subpackage provides a
faithful in-process world:

* ranks execute concurrently as threads, each with a :class:`Comm`;
* lowercase methods (``send``/``recv``/``bcast``/``gather``/``reduce``)
  move arbitrary Python objects, uppercase methods (``Reduce``/
  ``Allreduce``/``Bcast``) operate on NumPy buffers without copies on
  the send side — the same two-level API (and the same performance
  guidance) as mpi4py;
* :func:`run_world` launches an SPMD function over ``size`` ranks and
  collects per-rank return values;
* :func:`rank_range` is Algorithm 1's contiguous block decomposition.

Semantics (collective completion, reduction associativity, rank-private
memory) match MPI; wall-clock speedup does not on a single-core host,
which DESIGN.md documents as part of the hardware substitution.
"""

from repro.mpi.comm import (
    BarrierTimeoutError,
    Comm,
    FaultTolerantBarrier,
    MPIError,
    SequentialComm,
)
from repro.mpi.ops import SUM, MAX, MIN, PROD, Op
from repro.mpi.runner import run_world
from repro.mpi.decomposition import (
    RunShard,
    balanced_rank_runs,
    budget_max_rows,
    chunk_aligned_event_ranges,
    lazy_table_ranges,
    plan_campaign,
    range_stored_nbytes,
    rank_range,
    shard_ranges,
    weighted_shard_ranges,
)

#: stealing-executor names exported lazily (PEP 562): the module pulls
#: in repro.core.sharding, which imports this package — an eager import
#: here would re-enter the partially initialized package
_LAZY_STEALING = ("StealQueue", "StealTask", "run_stealing_campaign")


def __getattr__(name):
    if name in _LAZY_STEALING:
        from repro.mpi import stealing

        return getattr(stealing, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BarrierTimeoutError",
    "Comm",
    "FaultTolerantBarrier",
    "SequentialComm",
    "MPIError",
    "SUM",
    "MAX",
    "MIN",
    "PROD",
    "Op",
    "run_world",
    "rank_range",
    "shard_ranges",
    "weighted_shard_ranges",
    "balanced_rank_runs",
    "budget_max_rows",
    "chunk_aligned_event_ranges",
    "lazy_table_ranges",
    "plan_campaign",
    "range_stored_nbytes",
    "RunShard",
    "StealQueue",
    "StealTask",
    "run_stealing_campaign",
]
