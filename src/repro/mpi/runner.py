"""SPMD launcher for the in-process MPI world."""

from __future__ import annotations

import threading
from typing import Any, Callable, List

from repro.mpi.comm import Comm, MPIError, World
from repro.util import trace as _trace


def run_world(size: int, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> List[Any]:
    """Run ``fn(comm, *args, **kwargs)`` on ``size`` concurrent ranks.

    Returns the per-rank return values in rank order.  Error semantics
    (a deadlock-free analogue of ``MPI_Abort``):

    * a failing rank breaks the shared barrier, unblocking peers stuck
      in collectives (their ``BrokenBarrierError`` is a *consequence*,
      not a cause);
    * after all ranks finish, the first **root-cause** exception by
      rank — the first that is not a ``BrokenBarrierError`` — is
      re-raised;
    * if only broken-barrier errors remain (every rank aborted inside a
      collective simultaneously), an :class:`MPIError` naming the
      aborting ranks is raised, chained from the first of them.

    Each rank's thread is rank-attributed for tracing: spans opened
    inside ``fn`` carry ``rank=<i>`` and the whole rank body is wrapped
    in a ``rank`` span.
    """
    if size < 1:
        raise MPIError(f"world size must be >= 1, got {size}")
    world = World(size)
    results: List[Any] = [None] * size
    errors: List[BaseException | None] = [None] * size

    def entry(rank: int) -> None:
        comm = Comm(world, rank)
        tracer = _trace.active_tracer()
        with _trace.rank_scope(rank):
            try:
                with tracer.span("rank", kind="rank",
                                 rank=int(rank), size=int(size)):
                    results[rank] = fn(comm, *args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors[rank] = exc
                world.barrier.abort()  # unblock peers stuck in collectives

    threads = [
        threading.Thread(target=entry, args=(rank,), name=f"mpi-rank-{rank}")
        for rank in range(size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    root_cause = next(
        (e for e in errors
         if e is not None and not isinstance(e, threading.BrokenBarrierError)),
        None,
    )
    if root_cause is not None:
        raise root_cause
    broken_ranks = [r for r, e in enumerate(errors) if e is not None]
    if broken_ranks:
        first = errors[broken_ranks[0]]
        raise MPIError(
            f"ranks {broken_ranks} aborted inside a collective "
            f"(broken barrier) with no root-cause exception"
        ) from first
    return results
