"""SPMD launcher for the in-process MPI world."""

from __future__ import annotations

import threading
from typing import Any, Callable, List

from repro.mpi.comm import Comm, MPIError, World


def run_world(size: int, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> List[Any]:
    """Run ``fn(comm, *args, **kwargs)`` on ``size`` concurrent ranks.

    Returns the per-rank return values in rank order.  If any rank
    raises, the first exception (by rank) is re-raised after all ranks
    finish or abort — a deadlock-free analogue of ``MPI_Abort``.
    """
    if size < 1:
        raise MPIError(f"world size must be >= 1, got {size}")
    world = World(size)
    results: List[Any] = [None] * size
    errors: List[BaseException | None] = [None] * size

    def entry(rank: int) -> None:
        comm = Comm(world, rank)
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            errors[rank] = exc
            world.barrier.abort()  # unblock peers stuck in collectives

    threads = [
        threading.Thread(target=entry, args=(rank,), name=f"mpi-rank-{rank}")
        for rank in range(size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    for exc in errors:
        if exc is not None and not isinstance(exc, threading.BrokenBarrierError):
            raise exc
    broken = next((e for e in errors if e is not None), None)
    if broken is not None:
        raise broken
    return results
