"""SPMD launcher for the in-process MPI world."""

from __future__ import annotations

import threading
from typing import Any, Callable, List, Optional

from repro.mpi.comm import BarrierTimeoutError, Comm, MPIError, World
from repro.util import trace as _trace


def run_world(
    size: int,
    fn: Callable[..., Any],
    *args: Any,
    barrier_timeout: Optional[float] = None,
    dispose_pool: bool = False,
    **kwargs: Any,
) -> List[Any]:
    """Run ``fn(comm, *args, **kwargs)`` on ``size`` concurrent ranks.

    ``barrier_timeout`` bounds every collective rendezvous: a rank whose
    peers never arrive (e.g. a peer *returned* dead without aborting, or
    wedged outside the collective) raises
    :class:`~repro.mpi.comm.BarrierTimeoutError` instead of hanging the
    world forever.  ``None`` keeps the historical unbounded wait.

    Returns the per-rank return values in rank order.  Error semantics
    (a deadlock-free analogue of ``MPI_Abort``):

    * a failing rank breaks the shared barrier, unblocking peers stuck
      in collectives (their ``BrokenBarrierError`` is a *consequence*,
      not a cause);
    * after all ranks finish, the first **root-cause** exception by
      rank is re-raised.  Attribution order: a real exception beats a
      barrier timeout beats a broken barrier — a timeout names the rank
      that waited, not the rank that failed, and a broken barrier is
      pure collateral;
    * if only broken-barrier errors remain (every rank aborted inside a
      collective simultaneously), an :class:`MPIError` naming the
      aborting ranks is raised, chained from the first of them.

    Each rank's thread is rank-attributed for tracing: spans opened
    inside ``fn`` carry ``rank=<i>`` and the whole rank body is wrapped
    in a ``rank`` span.  The launch itself is a ``world`` span in the
    calling thread, and every rank thread adopts its uid as the causal
    parent (schema v3 ``parent_uid`` — the process-local ``parent_id``
    of a rank span stays None, as spans never cross threads).

    ``dispose_pool=True`` shuts down the node-local shard process pool
    (:data:`repro.jacc.workers.GLOBAL_POOL`) after every rank has
    joined.  Rank threads *share* that pool for their intra-run shard
    fan-out — it deliberately persists across worlds for warm reuse,
    but callers that want a hermetic teardown (tests, one-shot CLIs)
    can opt into disposing it with the world.
    """
    if size < 1:
        raise MPIError(f"world size must be >= 1, got {size}")
    world = World(size, barrier_timeout=barrier_timeout)
    results: List[Any] = [None] * size
    errors: List[BaseException | None] = [None] * size

    tracer = _trace.active_tracer()

    def entry(rank: int, world_uid: Optional[str]) -> None:
        comm = Comm(world, rank)
        with _trace.rank_scope(rank), _trace.parent_scope(world_uid):
            try:
                with tracer.span("rank", kind="rank",
                                 rank=int(rank), size=int(size)):
                    results[rank] = fn(comm, *args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors[rank] = exc
                world.barrier.abort()  # unblock peers stuck in collectives

    with tracer.span("world", kind="world", size=int(size)) as world_span:
        threads = [
            threading.Thread(target=entry, args=(rank, world_span.uid),
                             name=f"mpi-rank-{rank}")
            for rank in range(size)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    if dispose_pool:
        from repro.jacc.workers import GLOBAL_POOL

        GLOBAL_POOL.dispose()
    root_cause = next(
        (e for e in errors
         if e is not None
         and not isinstance(e, (threading.BrokenBarrierError,
                                BarrierTimeoutError))),
        None,
    )
    if root_cause is None:
        root_cause = next(
            (e for e in errors if isinstance(e, BarrierTimeoutError)), None
        )
    if root_cause is not None:
        raise root_cause
    broken_ranks = [r for r, e in enumerate(errors) if e is not None]
    if broken_ranks:
        first = errors[broken_ranks[0]]
        raise MPIError(
            f"ranks {broken_ranks} aborted inside a collective "
            f"(broken barrier) with no root-cause exception"
        ) from first
    return results
