"""h5lite: a minimal hierarchical binary container with an h5py-like API.

The real workflow stores raw and intermediate data in HDF5.  HDF5 is not
available in this environment, so h5lite implements the subset of the
model the reduction needs, from scratch:

* a tree of **groups**, each holding child groups and **datasets**;
* datasets are n-dimensional typed arrays, stored contiguously in
  C order, read back lazily (``Dataset[...]`` seeks into the file, so a
  40M-event table is not touched until sliced);
* string **attributes** plus scalar/array attributes on groups and
  datasets (NeXus uses attributes for ``NX_class`` tags and units);
* extendable 1-D/2-D datasets during write (event streams append in
  chunks, concatenated on close);
* a CRC32 checksum per dataset, verified on first read, so corrupted
  files fail loudly instead of producing silent garbage;
* **format v2**: large datasets may be stored as independently
  compressed, CRC-checked row **chunks** with a per-chunk index in the
  JSON header — ``Dataset[a:b]`` then decodes only the chunks that
  overlap the selection (hyperslab-style region reads), which is what
  lets the reduction stream bounded event windows instead of
  materializing whole tables (DESIGN.md section 6g).

On-disk layout::

    +------------------+----------------------------------------------+
    | 8 bytes          | magic  b"H5LITE01"                           |
    | 4 bytes  u32 LE  | format version (1 or 2)                      |
    | 8 bytes  u64 LE  | byte offset of the JSON header               |
    | ...              | dataset payloads, 8-byte aligned             |
    |                  |   contiguous: one raw (or deflated) blob     |
    |                  |   chunked (v2): N independent encoded chunks |
    | header           | UTF-8 JSON tree (groups/datasets/attrs,      |
    |                  | per-chunk [offset, stored, crc, rows] index) |
    | 8 bytes  u64 LE  | length of the JSON header (trailer)          |
    +------------------+----------------------------------------------+

The header lives at the *end* so payloads stream to disk as they are
written, like HDF5's contiguous layout; the trailer length makes the
header locatable from EOF.  v1 files (everything contiguous) read back
bit-for-bit through the same code path; a v2 writer produces v1 files
on request (``File(path, "w", version=1)``) for back-compat fixtures.

Chunk codecs (per chunk, independent):

* ``"none"`` — raw bytes (CRC only);
* ``"zlib"`` — DEFLATE;
* ``"shuffle-zlib"`` — byte-shuffle transpose (all byte-0s, then all
  byte-1s, ...) before DEFLATE, the classic HDF5/LZ4 trick that groups
  the mostly-constant high bytes of float64 columns for better ratios.
"""

from __future__ import annotations

import io
import json
import os
import struct
import zlib
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.util import faults as _faults
from repro.util import trace as _trace
from repro.util.validation import ReproError

MAGIC = b"H5LITE01"
FORMAT_VERSION = 2
#: container versions the reader accepts (v1 files read bit-for-bit)
SUPPORTED_VERSIONS = (1, 2)
_ALIGN = 8

#: per-chunk codec names accepted by ``create_dataset(codec=...)``
CHUNK_CODECS = ("none", "zlib", "shuffle-zlib")

AttrValue = Union[int, float, str, bool, np.ndarray, list]


class H5LiteError(ReproError, OSError):
    """Raised for malformed files, bad modes, and checksum mismatches."""


class CorruptFileError(H5LiteError):
    """A payload or header failed digest/consistency verification.

    The taxonomy the recovery layer keys on: corrupt reads are
    *retryable* (the file may be mid-rewrite, the page cache may have
    been poisoned) and additionally trigger geometry-cache invalidation
    for the affected run, because any derived entries may be tainted.
    """


class TruncatedFileError(CorruptFileError):
    """A read came up short (partial write or truncated transfer)."""


# ---------------------------------------------------------------------------
# chunk codecs
# ---------------------------------------------------------------------------

def _shuffle_bytes(raw: bytes, itemsize: int) -> bytes:
    """Byte-shuffle: regroup element bytes by significance position."""
    if itemsize <= 1 or len(raw) % itemsize:
        return raw
    return np.frombuffer(raw, dtype=np.uint8).reshape(-1, itemsize).T.tobytes()


def _unshuffle_bytes(raw: bytes, itemsize: int) -> bytes:
    if itemsize <= 1 or len(raw) % itemsize:
        return raw
    return np.frombuffer(raw, dtype=np.uint8).reshape(itemsize, -1).T.tobytes()


def encode_chunk(raw: bytes, codec: str, itemsize: int) -> bytes:
    """Encode one chunk payload with ``codec`` (see :data:`CHUNK_CODECS`)."""
    if codec == "none":
        return raw
    if codec == "zlib":
        return zlib.compress(raw)
    if codec == "shuffle-zlib":
        return zlib.compress(_shuffle_bytes(raw, itemsize))
    raise H5LiteError(f"unsupported chunk codec {codec!r}")


def decode_chunk(
    stored: bytes, codec: str, itemsize: int, nbytes_out: int, name: str
) -> bytes:
    """Decode one chunk payload, verifying the decoded size."""
    if codec == "none":
        raw = stored
    elif codec in ("zlib", "shuffle-zlib"):
        try:
            raw = zlib.decompress(stored)
        except zlib.error as exc:
            raise CorruptFileError(
                f"corrupt compressed chunk in dataset {name!r}: {exc}"
            ) from exc
        if codec == "shuffle-zlib":
            raw = _unshuffle_bytes(raw, itemsize)
    else:
        raise CorruptFileError(f"dataset {name!r} uses unknown codec {codec!r}")
    if len(raw) != nbytes_out:
        raise CorruptFileError(
            f"decoded chunk size mismatch in dataset {name!r}: "
            f"wanted {nbytes_out} bytes, got {len(raw)}"
        )
    return raw


def _encode_attr(value: AttrValue) -> Any:
    """Encode an attribute value into a JSON-representable object."""
    if isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, (list, tuple)):
        value = np.asarray(value)
    if isinstance(value, np.ndarray):
        if value.dtype.kind not in "biuf":
            raise H5LiteError(f"unsupported attribute array dtype {value.dtype}")
        return {
            "__ndarray__": True,
            "dtype": value.dtype.str,
            "shape": list(value.shape),
            "data": value.ravel().tolist(),
        }
    raise H5LiteError(f"unsupported attribute type {type(value).__name__}")


def _decode_attr(value: Any) -> AttrValue:
    if isinstance(value, dict) and value.get("__ndarray__"):
        arr = np.array(value["data"], dtype=np.dtype(value["dtype"]))
        return arr.reshape(value["shape"])
    return value


class AttributeManager:
    """Dict-like attribute access mirroring ``h5py``'s ``.attrs``."""

    def __init__(self, node: "_Node") -> None:
        self._node = node

    def __getitem__(self, key: str) -> AttrValue:
        try:
            return _decode_attr(self._node._attrs[key])
        except KeyError:
            raise KeyError(f"no attribute {key!r} on {self._node.name!r}") from None

    def __setitem__(self, key: str, value: AttrValue) -> None:
        self._node._file._check_writable()
        self._node._attrs[key] = _encode_attr(value)

    def __contains__(self, key: str) -> bool:
        return key in self._node._attrs

    def __iter__(self) -> Iterator[str]:
        return iter(self._node._attrs)

    def __len__(self) -> int:
        return len(self._node._attrs)

    def get(self, key: str, default: Any = None) -> Any:
        return self[key] if key in self else default

    def items(self) -> Iterator[Tuple[str, AttrValue]]:
        for k in self._node._attrs:
            yield k, self[k]


class _Node:
    """Common base of :class:`Group` and :class:`Dataset`."""

    def __init__(self, file: "File", name: str) -> None:
        self._file = file
        self.name = name  # absolute path, '/' rooted
        self._attrs: Dict[str, Any] = {}

    @property
    def attrs(self) -> AttributeManager:
        return AttributeManager(self)

    @property
    def basename(self) -> str:
        return self.name.rsplit("/", 1)[-1] or "/"


class Dataset(_Node):
    """A typed n-dimensional array stored contiguously or chunked.

    While the file is open for writing, data lives in staged in-memory
    blocks (supporting ``append``).  After close/reopen, ``Dataset``
    reads lazily from disk; ``[...]`` with a slice on axis 0
    materializes only the overlapping rows — for chunked datasets by
    decoding exactly the overlapping chunks, for contiguous ones via
    the raw row-range fast path (when integrity was already verified).
    """

    def __init__(
        self,
        file: "File",
        name: str,
        dtype: np.dtype,
        shape: Tuple[int, ...],
        compression: Optional[str] = None,
        chunk_rows: Optional[int] = None,
        codec: Optional[str] = None,
    ):
        super().__init__(file, name)
        self.dtype = np.dtype(dtype)
        self.shape = tuple(int(s) for s in shape)
        if compression not in (None, "zlib"):
            raise H5LiteError(f"unsupported compression {compression!r}")
        self.compression = compression
        self.chunk_rows = None if chunk_rows is None else int(chunk_rows)
        self.codec = codec
        if self.chunk_rows is not None:
            if self.chunk_rows < 1:
                raise H5LiteError(f"chunk_rows must be >= 1, got {chunk_rows}")
            if len(self.shape) < 1:
                raise H5LiteError("scalar datasets cannot be chunked")
            if compression is not None:
                raise H5LiteError(
                    "chunk_rows and whole-payload compression are exclusive; "
                    "use codec= for per-chunk compression"
                )
            self.codec = codec or "none"
            if self.codec not in CHUNK_CODECS:
                raise H5LiteError(f"unsupported chunk codec {codec!r}")
        elif codec is not None:
            raise H5LiteError("codec= requires chunk_rows=")
        # write-side staging
        self._chunks: List[np.ndarray] = []
        # read-side placement (contiguous layout)
        self._offset: Optional[int] = None
        self._stored_nbytes: Optional[int] = None
        self._crc: Optional[int] = None
        self._crc_checked = False
        # read-side placement (chunked layout): per-chunk
        # (offset, stored_nbytes, crc, rows) plus cumulative row bounds
        self._chunk_index: Optional[List[Tuple[int, int, int, int]]] = None
        self._chunk_bounds: Optional[List[int]] = None

    # -- shape helpers -------------------------------------------------
    @property
    def size(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) if self.shape else 1

    @property
    def nbytes(self) -> int:
        return self.size * self.dtype.itemsize

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def row_nbytes(self) -> int:
        """Bytes per axis-0 row (itemsize for 1-D datasets)."""
        items = int(np.prod(self.shape[1:], dtype=np.int64)) if self.ndim > 1 else 1
        return items * self.dtype.itemsize

    def __len__(self) -> int:
        if not self.shape:
            raise TypeError("len() of a scalar dataset")
        return self.shape[0]

    # -- chunk metadata (read side) ------------------------------------
    @property
    def is_chunked(self) -> bool:
        return self._chunk_index is not None or (
            self.chunk_rows is not None and self._offset is None
        )

    @property
    def n_chunks(self) -> int:
        if self._chunk_index is None:
            raise H5LiteError(f"dataset {self.name!r} is not stored chunked")
        return len(self._chunk_index)

    def chunk_bounds(self) -> List[int]:
        """Ascending row boundaries ``[0, r1, ..., n_rows]`` of the
        stored chunks — the alignment targets the shard planner snaps
        to (chunk-aligned shards decode each chunk exactly once)."""
        if self._chunk_bounds is None:
            raise H5LiteError(f"dataset {self.name!r} is not stored chunked")
        return list(self._chunk_bounds)

    def chunk_ranges(self) -> List[Tuple[int, int]]:
        """Per-chunk row ranges ``[(start, stop), ...]``."""
        bounds = self.chunk_bounds()
        return list(zip(bounds[:-1], bounds[1:]))

    def chunk_stored_nbytes(self) -> List[int]:
        """On-disk (encoded) size of each chunk — the I/O weights the
        planner balances when compression ratios are skewed."""
        if self._chunk_index is None:
            raise H5LiteError(f"dataset {self.name!r} is not stored chunked")
        return [entry[1] for entry in self._chunk_index]

    # -- write side ----------------------------------------------------
    def append(self, data: np.ndarray) -> None:
        """Extend along axis 0 (write mode only).

        All appended blocks must share trailing dimensions and be
        convertible to the dataset dtype.
        """
        self._file._check_writable()
        block = np.ascontiguousarray(data, dtype=self.dtype)
        if block.ndim != len(self.shape):
            raise H5LiteError(
                f"append block ndim {block.ndim} != dataset ndim {len(self.shape)}"
            )
        if block.shape[1:] != self.shape[1:]:
            raise H5LiteError(
                f"append block trailing shape {block.shape[1:]} != {self.shape[1:]}"
            )
        self._chunks.append(block)
        self.shape = (self.shape[0] + block.shape[0],) + self.shape[1:]

    def _staged(self) -> np.ndarray:
        if len(self._chunks) == 1:
            return self._chunks[0]
        if not self._chunks:
            return np.empty(self.shape, dtype=self.dtype)
        return np.concatenate(self._chunks, axis=0)

    # -- read side -----------------------------------------------------
    def read_chunk(self, ci: int) -> np.ndarray:
        """Decode chunk ``ci``: seek, CRC-verify, decompress, reshape.

        Every decode verifies the chunk's own CRC (unlike the contiguous
        layout, partial reads stay integrity-checked), raises
        :class:`CorruptFileError` on any mismatch, and — when tracing —
        emits an ``h5lite.decode_chunk`` span with the codec cost model
        attached under profiling.
        """
        if self._chunk_index is None:
            raise H5LiteError(f"dataset {self.name!r} is not stored chunked")
        if not 0 <= ci < len(self._chunk_index):
            raise H5LiteError(
                f"chunk {ci} out of range for dataset {self.name!r} "
                f"({len(self._chunk_index)} chunks)"
            )
        offset, stored, crc, rows = self._chunk_index[ci]
        raw_nbytes = rows * self.row_nbytes
        codec = self.codec or "none"
        tracer = _trace.active_tracer()
        with tracer.span(
            "h5lite.decode_chunk",
            kind="io",
            dataset=self.name,
            chunk=int(ci),
            codec=codec,
            backend=codec,
            rows=int(rows),
            bytes_stored=int(stored),
        ) as sp:
            _faults.fault_point("h5lite.read_chunk", dataset=self.name, chunk=ci)
            fh = self._file._fh
            if fh is None:
                raise H5LiteError(f"file {self._file.path!r} is closed")
            fh.seek(offset)
            enc = fh.read(stored)
            tracer.count("h5lite.bytes_read", len(enc))
            if len(enc) != stored:
                raise TruncatedFileError(
                    f"truncated chunk {ci} of dataset {self.name!r}: "
                    f"wanted {stored} bytes, got {len(enc)}"
                )
            if zlib.crc32(enc) != crc:
                raise CorruptFileError(
                    f"checksum mismatch in chunk {ci} of dataset {self.name!r}"
                )
            raw = decode_chunk(enc, codec, self.dtype.itemsize, raw_nbytes,
                               self.name)
            tracer.count("h5lite.chunks_decoded", 1)
            if tracer.profile:
                from repro.util.perf import chunk_decode_work

                sp.set(perf=chunk_decode_work(codec, stored, raw_nbytes))
        return np.frombuffer(raw, dtype=self.dtype).reshape(
            (rows,) + self.shape[1:]
        )

    def read_rows(self, start: int, stop: int) -> np.ndarray:
        """Region selection: rows ``[start, stop)`` along axis 0.

        For chunked datasets this decodes exactly the overlapping
        chunks; for contiguous ones it uses the raw row-range fast path
        when available and otherwise falls back to a full read.
        """
        if self.ndim < 1:
            raise H5LiteError(f"dataset {self.name!r} is scalar")
        n = self.shape[0]
        start = max(0, min(int(start), n))
        stop = max(start, min(int(stop), n))
        if self._chunk_index is not None:
            if start == stop:
                return np.empty((0,) + self.shape[1:], dtype=self.dtype)
            bounds = self._chunk_bounds
            assert bounds is not None
            parts: List[np.ndarray] = []
            for ci, (c0, c1) in enumerate(zip(bounds[:-1], bounds[1:])):
                if c1 <= start or c0 >= stop:
                    continue
                arr = self.read_chunk(ci)
                parts.append(arr[max(start - c0, 0): min(stop, c1) - c0])
            if len(parts) == 1:
                return parts[0]
            return np.concatenate(parts, axis=0)
        if (
            not self._chunks
            and self._offset is not None
            and self._crc_checked
            and self.compression is None
        ):
            return self._read_rows(start, stop)
        return self._read_all()[start:stop]

    def _read_all(self) -> np.ndarray:
        if self._chunk_index is not None:
            if not self._chunk_index:
                return np.empty(self.shape, dtype=self.dtype)
            return self.read_rows(0, self.shape[0]).reshape(self.shape)
        if self._chunks or self._offset is None:
            return self._staged().reshape(self.shape)
        _faults.fault_point("h5lite.read", dataset=self.name)
        fh = self._file._fh
        assert fh is not None
        fh.seek(self._offset)
        stored = self._stored_nbytes if self._stored_nbytes is not None else self.nbytes
        raw = fh.read(stored)
        _trace.active_tracer().count("h5lite.bytes_read", len(raw))
        if len(raw) != stored:
            raise TruncatedFileError(
                f"truncated dataset {self.name!r}: wanted {stored} bytes, "
                f"got {len(raw)}"
            )
        if not self._crc_checked and self._crc is not None:
            if zlib.crc32(raw) != self._crc:
                raise CorruptFileError(
                    f"checksum mismatch reading dataset {self.name!r}"
                )
            self._crc_checked = True
        if self.compression == "zlib":
            try:
                raw = zlib.decompress(raw)
            except zlib.error as exc:
                raise CorruptFileError(
                    f"corrupt compressed dataset {self.name!r}: {exc}"
                ) from exc
            if len(raw) != self.nbytes:
                raise CorruptFileError(
                    f"decompressed size mismatch for dataset {self.name!r}"
                )
        return np.frombuffer(raw, dtype=self.dtype).reshape(self.shape)

    def _read_rows(self, start: int, stop: int) -> np.ndarray:
        """Read a contiguous raw row range [start, stop) along axis 0."""
        row_bytes = self.row_nbytes
        fh = self._file._fh
        assert fh is not None and self._offset is not None
        fh.seek(self._offset + start * row_bytes)
        n = stop - start
        raw = fh.read(n * row_bytes)
        _trace.active_tracer().count("h5lite.bytes_read", len(raw))
        if len(raw) != n * row_bytes:
            raise TruncatedFileError(f"truncated dataset {self.name!r}")
        return np.frombuffer(raw, dtype=self.dtype).reshape((n,) + self.shape[1:])

    def __getitem__(self, key: Any) -> Any:
        # Region fast path: a step-1 slice on axis 0 touches only the
        # overlapping chunks (chunked) or the raw row range (contiguous,
        # only once integrity was verified — partial reads cannot check
        # a whole-payload CRC; per-chunk CRCs have no such restriction).
        if (
            not self._chunks
            and self.ndim >= 1
            and isinstance(key, slice)
            and (
                self._chunk_index is not None
                or (
                    self._offset is not None
                    and self._crc_checked
                    and self.compression is None
                )
            )
        ):
            start, stop, step = key.indices(self.shape[0])
            if step == 1:
                return self.read_rows(start, stop)
        data = self._read_all()
        if isinstance(key, tuple) and key == ():
            return data[()] if self.ndim == 0 else data
        return data[key]

    def read(self) -> np.ndarray:
        """Materialize the full dataset (verifying checksums)."""
        return self._read_all()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        layout = (
            f" chunked[{len(self._chunk_index)}x{self.chunk_rows}:{self.codec}]"
            if self._chunk_index is not None
            else ""
        )
        return (
            f"<h5lite Dataset {self.name!r} shape={self.shape} "
            f"dtype={self.dtype}{layout}>"
        )


class Group(_Node):
    """A node holding child groups and datasets, addressable by path."""

    def __init__(self, file: "File", name: str) -> None:
        super().__init__(file, name)
        self._children: "Dict[str, _Node]" = {}

    # -- creation ------------------------------------------------------
    def create_group(self, path: str) -> "Group":
        """Create (or return existing) group, making intermediates."""
        self._file._check_writable()
        node = self
        for part in _split(path):
            child = node._children.get(part)
            if child is None:
                child = Group(self._file, _join(node.name, part))
                node._children[part] = child
            elif not isinstance(child, Group):
                raise H5LiteError(f"{child.name!r} exists and is not a group")
            node = child
        return node

    def create_dataset(
        self,
        path: str,
        data: Optional[np.ndarray] = None,
        *,
        dtype: Optional[Union[str, np.dtype]] = None,
        shape: Optional[Tuple[int, ...]] = None,
        compression: Optional[str] = None,
        chunk_rows: Optional[int] = None,
        codec: Optional[str] = None,
    ) -> Dataset:
        """Create a dataset from ``data``, or empty+extendable with
        ``dtype`` and a ``shape`` whose axis 0 may start at 0.

        ``compression="zlib"`` stores the payload deflated as one blob
        (whole-payload; partial row reads then materialize the full
        array).  ``chunk_rows=N`` (format v2) stores the payload as
        independent row chunks, each encoded with ``codec`` (one of
        :data:`CHUNK_CODECS`) and CRC-checked on decode, so row-range
        reads touch only the overlapping chunks.
        """
        self._file._check_writable()
        if chunk_rows is not None and self._file.version < 2:
            raise H5LiteError(
                "chunked datasets require format v2 "
                f"(file {self._file.path!r} is being written as "
                f"v{self._file.version})"
            )
        parts = _split(path)
        if not parts:
            raise H5LiteError("dataset path must be non-empty")
        parent = self.create_group("/".join(parts[:-1])) if len(parts) > 1 else self
        name = parts[-1]
        if name in parent._children:
            raise H5LiteError(f"{_join(parent.name, name)!r} already exists")
        extra = dict(compression=compression, chunk_rows=chunk_rows, codec=codec)
        if data is not None:
            arr = np.asarray(data, dtype=dtype)
            if arr.ndim > 0:
                # note: ascontiguousarray would promote 0-d scalars to 1-d
                arr = np.ascontiguousarray(arr)
            if arr.dtype == object:
                raise H5LiteError("object arrays are not storable")
            if arr.dtype.kind == "U":  # store unicode as utf-8 bytes
                encoded = np.char.encode(arr, "utf-8")
                ds = Dataset(self._file, _join(parent.name, name), encoded.dtype,
                             encoded.shape, **extra)
                ds._chunks = [np.ascontiguousarray(encoded)]
                ds._attrs["__utf8__"] = True
            else:
                ds = Dataset(self._file, _join(parent.name, name), arr.dtype,
                             arr.shape, **extra)
                ds._chunks = [arr]
        else:
            if dtype is None or shape is None:
                raise H5LiteError("empty dataset needs explicit dtype and shape")
            ds = Dataset(self._file, _join(parent.name, name), np.dtype(dtype),
                         tuple(shape), **extra)
        parent._children[name] = ds
        return ds

    # -- access --------------------------------------------------------
    def __getitem__(self, path: str) -> Union["Group", Dataset]:
        node: _Node = self
        for part in _split(path):
            if not isinstance(node, Group) or part not in node._children:
                raise KeyError(f"no object {path!r} in {self.name!r}")
            node = node._children[part]
        return node  # type: ignore[return-value]

    def __contains__(self, path: str) -> bool:
        try:
            self[path]
            return True
        except KeyError:
            return False

    def __iter__(self) -> Iterator[str]:
        return iter(self._children)

    def keys(self):
        return self._children.keys()

    def items(self):
        return self._children.items()

    def groups(self) -> Iterator["Group"]:
        for child in self._children.values():
            if isinstance(child, Group):
                yield child

    def datasets(self) -> Iterator[Dataset]:
        for child in self._children.values():
            if isinstance(child, Dataset):
                yield child

    def visit(self, func) -> None:
        """Depth-first traversal calling ``func(path, node)``."""
        for child in self._children.values():
            func(child.name, child)
            if isinstance(child, Group):
                child.visit(func)

    def require_dataset(self, path: str) -> Dataset:
        node = self[path]
        if not isinstance(node, Dataset):
            raise H5LiteError(f"{path!r} is a group, expected dataset")
        return node

    def read(self, path: str) -> np.ndarray:
        """Convenience: materialize the dataset at ``path``."""
        ds = self.require_dataset(path)
        data = ds.read()
        if ds._attrs.get("__utf8__") and data.dtype.kind == "S":
            return np.char.decode(data, "utf-8")
        return data

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<h5lite Group {self.name!r} ({len(self._children)} members)>"


class File(Group):
    """The root group plus file lifecycle.

    Modes: ``"w"`` create/truncate for writing, ``"r"`` read-only.
    Usable as a context manager; write mode serializes on ``close``.
    ``version`` selects the container format written (2 by default;
    1 reproduces the legacy everything-contiguous layout for
    back-compat fixtures and forbids chunked datasets).
    """

    def __init__(
        self,
        path: Union[str, os.PathLike],
        mode: str = "r",
        *,
        version: int = FORMAT_VERSION,
    ) -> None:
        if mode not in ("r", "w"):
            raise H5LiteError(f"mode must be 'r' or 'w', got {mode!r}")
        if version not in SUPPORTED_VERSIONS:
            raise H5LiteError(f"unsupported h5lite version {version}")
        self.path = os.fspath(path)
        self.mode = mode
        self.version = int(version)
        self._fh: Optional[io.BufferedIOBase] = None
        self._closed = False
        super().__init__(self, "/")
        if mode == "r":
            self._fh = open(self.path, "rb")
            try:
                self._load_header()
            except Exception:
                self._fh.close()
                raise

    # -- lifecycle -------------------------------------------------------
    def _check_writable(self) -> None:
        if self.mode != "w" or self._closed:
            raise H5LiteError(f"file {self.path!r} is not open for writing")

    def close(self) -> None:
        if self._closed:
            return
        if self.mode == "w":
            self._write_out()
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        self._closed = True

    def __enter__(self) -> "File":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            if not self._closed and self.mode == "r" and self._fh is not None:
                self._fh.close()
        except Exception:
            pass

    # -- serialization -----------------------------------------------------
    def _write_out(self) -> None:
        with open(self.path, "wb") as fh:
            fh.write(MAGIC)
            fh.write(struct.pack("<I", self.version))
            header_off_pos = fh.tell()
            fh.write(struct.pack("<Q", 0))  # patched later

            def place_chunked(node: Dataset, entry: Dict[str, Any]) -> None:
                payload = node._staged().reshape(node.shape)
                rows_per = int(node.chunk_rows)  # type: ignore[arg-type]
                codec = node.codec or "none"
                index: List[List[int]] = []
                for r0 in range(0, payload.shape[0], rows_per):
                    r1 = min(r0 + rows_per, payload.shape[0])
                    raw = np.ascontiguousarray(payload[r0:r1]).tobytes(order="C")
                    enc = encode_chunk(raw, codec, node.dtype.itemsize)
                    pad = (-fh.tell()) % _ALIGN
                    fh.write(b"\x00" * pad)
                    index.append([fh.tell(), len(enc), zlib.crc32(enc), r1 - r0])
                    fh.write(enc)
                entry.update(
                    kind="dataset",
                    dtype=node.dtype.str,
                    shape=list(node.shape),
                    layout="chunked",
                    codec=codec,
                    chunk_rows=rows_per,
                    chunks=index,
                )

            def place(node: _Node) -> Dict[str, Any]:
                entry: Dict[str, Any] = {"attrs": dict(node._attrs)}
                if isinstance(node, Dataset):
                    if node.chunk_rows is not None:
                        place_chunked(node, entry)
                        return entry
                    pad = (-fh.tell()) % _ALIGN
                    fh.write(b"\x00" * pad)
                    offset = fh.tell()
                    payload = node._staged()
                    raw = payload.tobytes(order="C")
                    if node.compression == "zlib":
                        raw = zlib.compress(raw)
                    fh.write(raw)
                    entry.update(
                        kind="dataset",
                        dtype=node.dtype.str,
                        shape=list(node.shape),
                        offset=offset,
                        crc=zlib.crc32(raw),
                        stored_nbytes=len(raw),
                    )
                    if node.compression:
                        entry["compression"] = node.compression
                else:
                    assert isinstance(node, Group)
                    entry["kind"] = "group"
                    entry["children"] = {
                        name: place(child) for name, child in node._children.items()
                    }
                return entry

            tree = place(self)
            header = json.dumps({"version": self.version, "root": tree}).encode("utf-8")
            pad = (-fh.tell()) % _ALIGN
            fh.write(b"\x00" * pad)
            header_off = fh.tell()
            fh.write(header)
            fh.write(struct.pack("<Q", len(header)))
            fh.seek(header_off_pos)
            fh.write(struct.pack("<Q", header_off))

    def _load_header(self) -> None:
        fh = self._fh
        assert fh is not None
        magic = fh.read(8)
        if magic != MAGIC:
            raise H5LiteError(f"{self.path!r} is not an h5lite file (bad magic)")
        (version,) = struct.unpack("<I", fh.read(4))
        if version not in SUPPORTED_VERSIONS:
            raise H5LiteError(f"unsupported h5lite version {version}")
        self.version = int(version)
        (header_off,) = struct.unpack("<Q", fh.read(8))
        fh.seek(0, os.SEEK_END)
        end = fh.tell()
        if header_off + 8 > end:
            raise TruncatedFileError(
                f"{self.path!r} is truncated (header out of range)"
            )
        fh.seek(end - 8)
        (header_len,) = struct.unpack("<Q", fh.read(8))
        if header_off + header_len + 8 != end:
            raise CorruptFileError(
                f"{self.path!r} header bookkeeping is inconsistent"
            )
        fh.seek(header_off)
        try:
            doc = json.loads(fh.read(header_len).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CorruptFileError(f"{self.path!r} header is corrupt: {exc}") from exc

        def build(entry: Dict[str, Any], parent: Group, name: str) -> None:
            if entry["kind"] == "dataset":
                if entry.get("layout") == "chunked":
                    if version < 2:
                        raise CorruptFileError(
                            f"{self.path!r}: v{version} container carries a "
                            "chunked dataset"
                        )
                    ds = Dataset(
                        self,
                        _join(parent.name, name),
                        np.dtype(entry["dtype"]),
                        tuple(entry["shape"]),
                        chunk_rows=int(entry["chunk_rows"]),
                        codec=entry.get("codec", "none"),
                    )
                    index: List[Tuple[int, int, int, int]] = []
                    bounds = [0]
                    for off, stored, crc, rows in entry["chunks"]:
                        index.append((int(off), int(stored), int(crc), int(rows)))
                        bounds.append(bounds[-1] + int(rows))
                    if ds.shape and bounds[-1] != ds.shape[0]:
                        raise CorruptFileError(
                            f"{self.path!r}: chunk index of {ds.name!r} covers "
                            f"{bounds[-1]} rows, shape says {ds.shape[0]}"
                        )
                    ds._chunk_index = index
                    ds._chunk_bounds = bounds
                else:
                    ds = Dataset(
                        self,
                        _join(parent.name, name),
                        np.dtype(entry["dtype"]),
                        tuple(entry["shape"]),
                        compression=entry.get("compression"),
                    )
                    ds._offset = int(entry["offset"])
                    ds._stored_nbytes = entry.get("stored_nbytes")
                    ds._crc = int(entry["crc"])
                ds._attrs = dict(entry.get("attrs", {}))
                parent._children[name] = ds
            else:
                grp = Group(self, _join(parent.name, name))
                grp._attrs = dict(entry.get("attrs", {}))
                parent._children[name] = grp
                for child_name, child in entry.get("children", {}).items():
                    build(child, grp, child_name)

        root = doc["root"]
        self._attrs = dict(root.get("attrs", {}))
        for child_name, child in root.get("children", {}).items():
            build(child, self, child_name)


def _split(path: str) -> List[str]:
    return [p for p in path.strip("/").split("/") if p]


def _join(parent: str, name: str) -> str:
    return (parent.rstrip("/") + "/" + name) if parent != "/" else "/" + name
