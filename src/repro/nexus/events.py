"""In-memory event representations.

Two layouts exist, mirroring the paper's pipeline:

* :class:`RunData` — the *raw* form straight out of a NeXus file: one
  time-of-flight and detector id per recorded neutron, plus the run
  metadata (goniometer orientation, proton charge, wavelength band).
* :class:`EventTable` — the *MDEvent* form produced by ``UpdateEvents``:
  a dense ``(n_events, 8)`` float64 table whose column layout matches
  the 8-column array MiniVATES.jl loads (signal, error^2, run index,
  detector id, goniometer index, and the three Q_sample coordinates).
  The proxies and all kernels consume this table; keeping it a single
  contiguous primitive-typed array is one of the paper's explicit
  HPC-oriented data-structure choices (structure-of-primitives over
  array-of-structs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.util.validation import ValidationError, as_matrix3, require

# Column indices of the 8-column MDEvent table (0-based; the paper's
# Julia listing indexes the same layout 1-based, coordinates at 6..8).
COL_SIGNAL = 0
COL_ERROR_SQ = 1
COL_RUN_INDEX = 2
COL_DETECTOR_ID = 3
COL_GONIOMETER_INDEX = 4
COL_QX = 5
COL_QY = 6
COL_QZ = 7
N_EVENT_COLUMNS = 8
COL_Q = slice(COL_QX, COL_QZ + 1)


@dataclass
class RunData:
    """One experiment run as recorded by the data acquisition system.

    Attributes
    ----------
    run_number:
        The facility-assigned identifier of this run.
    detector_ids:
        ``(n_events,)`` uint32 pixel index of each neutron event.
    tof:
        ``(n_events,)`` float64 time of flight in microseconds.
    weights:
        ``(n_events,)`` float32 event weight (1 for raw events; weighted
        events appear after pre-processing).
    goniometer:
        3x3 rotation matrix ``R`` carrying Q_sample -> Q_lab.
    proton_charge:
        Integrated accelerator charge for the run (arbitrary units);
        used to normalize flux between runs.
    wavelength_band:
        ``(lambda_min, lambda_max)`` in Angstrom accepted by the
        instrument choppers for this run.
    """

    run_number: int
    detector_ids: np.ndarray
    tof: np.ndarray
    weights: np.ndarray
    goniometer: np.ndarray
    proton_charge: float
    wavelength_band: tuple[float, float]
    instrument: str = ""
    sample: str = ""
    ub_matrix: Optional[np.ndarray] = None
    #: optional wall-clock time of each event's proton pulse, seconds
    #: since run start (Section II: event-based data records "proton
    #: pulse wall-clock time"); enables event filtering
    pulse_times: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.detector_ids = np.ascontiguousarray(self.detector_ids, dtype=np.uint32)
        self.tof = np.ascontiguousarray(self.tof, dtype=np.float64)
        self.weights = np.ascontiguousarray(self.weights, dtype=np.float32)
        self.goniometer = as_matrix3(self.goniometer, "goniometer")
        n = self.detector_ids.shape[0]
        require(self.tof.shape == (n,), "tof and detector_ids length mismatch")
        require(self.weights.shape == (n,), "weights and detector_ids length mismatch")
        require(self.proton_charge > 0.0, "proton_charge must be positive")
        lo, hi = self.wavelength_band
        require(0.0 < lo < hi, "wavelength_band must satisfy 0 < min < max")
        if self.ub_matrix is not None:
            self.ub_matrix = as_matrix3(self.ub_matrix, "ub_matrix")
        if self.pulse_times is not None:
            self.pulse_times = np.ascontiguousarray(self.pulse_times, dtype=np.float64)
            require(self.pulse_times.shape == (n,),
                    "pulse_times and detector_ids length mismatch")
            if n and self.pulse_times.min() < 0:
                raise ValidationError("pulse_times must be non-negative")

    @property
    def n_events(self) -> int:
        return int(self.detector_ids.shape[0])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RunData(run={self.run_number}, events={self.n_events}, "
            f"charge={self.proton_charge:.3g})"
        )


class EventTable:
    """The contiguous ``(n, 8)`` MDEvent table consumed by all kernels.

    Stored row-major (one event per row) so that per-event kernels touch
    one cache line per event; the vectorized back end slices columns as
    strided views without copying.
    """

    __slots__ = ("data",)

    def __init__(self, data: np.ndarray) -> None:
        arr = np.ascontiguousarray(data, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] != N_EVENT_COLUMNS:
            raise ValidationError(
                f"event table must be (n, {N_EVENT_COLUMNS}), got {arr.shape}"
            )
        self.data = arr

    @classmethod
    def empty(cls) -> "EventTable":
        return cls(np.empty((0, N_EVENT_COLUMNS), dtype=np.float64))

    @classmethod
    def from_columns(
        cls,
        *,
        signal: np.ndarray,
        error_sq: Optional[np.ndarray] = None,
        run_index: int | np.ndarray = 0,
        detector_id: Optional[np.ndarray] = None,
        goniometer_index: int | np.ndarray = 0,
        q_sample: np.ndarray,
    ) -> "EventTable":
        """Assemble a table from per-column arrays.

        ``q_sample`` is ``(n, 3)``; scalar ``run_index`` and
        ``goniometer_index`` broadcast over all rows.
        """
        signal = np.asarray(signal, dtype=np.float64)
        n = signal.shape[0]
        q = np.asarray(q_sample, dtype=np.float64)
        require(q.shape == (n, 3), f"q_sample must be ({n}, 3), got {q.shape}")
        table = np.empty((n, N_EVENT_COLUMNS), dtype=np.float64)
        table[:, COL_SIGNAL] = signal
        table[:, COL_ERROR_SQ] = signal if error_sq is None else error_sq
        table[:, COL_RUN_INDEX] = run_index
        table[:, COL_DETECTOR_ID] = 0.0 if detector_id is None else detector_id
        table[:, COL_GONIOMETER_INDEX] = goniometer_index
        table[:, COL_Q] = q
        return cls(table)

    @property
    def n_events(self) -> int:
        return int(self.data.shape[0])

    @property
    def signal(self) -> np.ndarray:
        return self.data[:, COL_SIGNAL]

    @property
    def error_sq(self) -> np.ndarray:
        return self.data[:, COL_ERROR_SQ]

    @property
    def q_sample(self) -> np.ndarray:
        return self.data[:, COL_Q]

    @property
    def detector_id(self) -> np.ndarray:
        return self.data[:, COL_DETECTOR_ID]

    def total_signal(self) -> float:
        return float(self.data[:, COL_SIGNAL].sum())

    def concat(self, other: "EventTable") -> "EventTable":
        return EventTable(np.vstack([self.data, other.data]))

    def __len__(self) -> int:
        return self.n_events

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EventTable(n_events={self.n_events})"
