"""Event filtering by proton-pulse time.

Event-based acquisition (Section II) records each neutron's proton
pulse wall-clock time precisely so that data can be re-sliced after the
fact — by sample environment state, by time window, or to excise a bad
beam period — without re-measuring.  This module provides that
capability for :class:`~repro.nexus.events.RunData`:

* :func:`filter_time_window` — keep events in ``[t_start, t_stop)``,
  scaling the run's proton charge by the kept fraction of beam time so
  MDNorm stays correctly normalized;
* :func:`split_by_time` — partition a run into equal time slices (the
  parametric-study workflow: one cross-section per slice).

The normalization convention: with no per-pulse charge log available,
accumulated charge is taken as uniform in time across the run duration
(the synthetic generator produces beam like that; for real data one
would integrate the charge log over the window instead).
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

import numpy as np

from repro.nexus.events import RunData
from repro.util.validation import ValidationError, require


def _require_pulses(run: RunData) -> np.ndarray:
    if run.pulse_times is None:
        raise ValidationError(
            f"run {run.run_number} carries no pulse_times; event filtering "
            f"needs event-based acquisition metadata"
        )
    return run.pulse_times


def run_duration(run: RunData) -> float:
    """The run's beam time: the latest pulse time seen (seconds)."""
    pulses = _require_pulses(run)
    return float(pulses.max()) if pulses.size else 0.0


def filter_time_window(run: RunData, t_start: float, t_stop: float) -> RunData:
    """Keep events whose pulse lies in ``[t_start, t_stop)``.

    The proton charge is scaled by the window's share of the run
    duration, keeping the cross-section normalization consistent
    (BinMD scales with kept events, MDNorm with kept charge).
    """
    require(t_stop > t_start, "need t_stop > t_start")
    pulses = _require_pulses(run)
    duration = run_duration(run)
    require(duration > 0, "run has no beam time to filter")
    mask = (pulses >= t_start) & (pulses < t_stop)
    covered = max(0.0, min(t_stop, duration) - max(t_start, 0.0))
    fraction = covered / duration
    if fraction <= 0.0:
        raise ValidationError(
            f"window [{t_start}, {t_stop}) covers no beam time of run "
            f"{run.run_number} (duration {duration:.3g} s)"
        )
    return replace(
        run,
        detector_ids=run.detector_ids[mask],
        tof=run.tof[mask],
        weights=run.weights[mask],
        pulse_times=pulses[mask],
        proton_charge=run.proton_charge * fraction,
    )


def split_by_time(run: RunData, n_slices: int) -> List[RunData]:
    """Partition a run into ``n_slices`` equal beam-time slices.

    Every event lands in exactly one slice; the slices' proton charges
    sum to the run's (up to the uniform-beam convention).
    """
    require(n_slices >= 1, "n_slices must be >= 1")
    duration = run_duration(run)
    require(duration > 0, "run has no beam time to split")
    edges = np.linspace(0.0, duration, n_slices + 1)
    edges[-1] = np.nextafter(duration, np.inf)  # include the last pulse
    return [
        filter_time_window(run, float(edges[i]), float(edges[i + 1]))
        for i in range(n_slices)
    ]
