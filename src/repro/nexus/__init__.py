"""NeXus-like hierarchical data storage substrate.

The paper's workflow consumes event data stored in the NeXus schema on
top of HDF5.  Neither library is available offline, so this subpackage
provides:

* :mod:`repro.nexus.h5lite` — a from-scratch hierarchical binary file
  format (groups, typed datasets, attributes, per-dataset checksums)
  with an h5py-flavoured API;
* :mod:`repro.nexus.schema` — the NeXus event-entry schema used by the
  SNS instruments (entry/events, DAS logs, sample/UB, proton charge);
* :mod:`repro.nexus.events` — in-memory run representation (``RunData``)
  and the 8-column MDEvent table layout shared with the proxies;
* :mod:`repro.nexus.corrections` — the Vanadium (solid angle x
  efficiency) and Flux (integrated incident spectrum) files the MDNorm
  normalization requires.
"""

from repro.nexus.h5lite import File, Group, Dataset, H5LiteError
from repro.nexus.events import (
    RunData,
    EventTable,
    COL_SIGNAL,
    COL_ERROR_SQ,
    COL_RUN_INDEX,
    COL_DETECTOR_ID,
    COL_GONIOMETER_INDEX,
    COL_QX,
    COL_QY,
    COL_QZ,
    N_EVENT_COLUMNS,
)
from repro.nexus.schema import write_event_nexus, read_event_nexus, NXEntryInfo
from repro.nexus.filtering import filter_time_window, split_by_time, run_duration
from repro.nexus.corrections import (
    FluxSpectrum,
    VanadiumData,
    write_flux_file,
    read_flux_file,
    write_vanadium_file,
    read_vanadium_file,
)

__all__ = [
    "File",
    "Group",
    "Dataset",
    "H5LiteError",
    "RunData",
    "EventTable",
    "COL_SIGNAL",
    "COL_ERROR_SQ",
    "COL_RUN_INDEX",
    "COL_DETECTOR_ID",
    "COL_GONIOMETER_INDEX",
    "COL_QX",
    "COL_QY",
    "COL_QZ",
    "N_EVENT_COLUMNS",
    "write_event_nexus",
    "read_event_nexus",
    "NXEntryInfo",
    "filter_time_window",
    "split_by_time",
    "run_duration",
    "FluxSpectrum",
    "VanadiumData",
    "write_flux_file",
    "read_flux_file",
    "write_vanadium_file",
    "read_vanadium_file",
]
