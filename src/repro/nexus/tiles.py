"""Bounded-memory tile manager over chunked h5lite datasets.

The paper's flagship workload (Bixbyite: 280M events, 206 GB on disk)
cannot be reduced by a loop that materializes each run's full 8-column
event table — ROADMAP item 1 calls this the "whole event table in RAM"
ceiling.  This module is the out-of-core layer that removes it:

* :class:`TileManager` — an LRU cache of *decoded chunks* of one
  chunked dataset, bounded by a configurable **byte budget**.  The
  budget bounds decoded-chunk residency (the cache never holds more
  than ``budget_bytes`` of decoded rows, except when a single chunk is
  itself larger — the irreducible floor); hit/miss/eviction counters
  and a peak-residency gauge make the bound *measurable*, which is what
  the out-of-core conformance suite and the CI smoke assert.
* :class:`LazyEventTable` — the facade the reduction loop sees instead
  of an in-memory :class:`~repro.nexus.events.EventTable`.  It exposes
  the same ``n_events`` surface, chunk metadata for the shard planner
  (shard boundaries snap to chunk boundaries, so each chunk is decoded
  by exactly one shard), and ``window(a, b)`` — a bounded event window
  served through the tile manager.  It is picklable (it carries only
  the file path + dataset name; handles reopen lazily), so multiprocess
  shard workers read their own windows straight from the file —
  shard-parallel I/O with no table ever materialized anywhere.

Budget semantics (DESIGN.md section 6g): ``memory_budget`` bounds the
*decoded-chunk cache*.  A window assembled from several chunks is a
transient copy of at most the same budget (the planner caps window rows
at ``budget // row_nbytes``), so the instantaneous working set is at
most twice the budget; the steady-state residency the gauge tracks is
the cache alone.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.nexus.events import N_EVENT_COLUMNS, EventTable
from repro.nexus.h5lite import Dataset, File, H5LiteError
from repro.util import trace as _trace
from repro.util.validation import ReproError, require

#: dataset path where v2 SaveMD files store the row-major event table
EVENT_TABLE_PATH = "MDEventWorkspace/event_table"


class TileError(ReproError):
    """Tile-manager misuse (bad budget, non-chunked dataset, ...)."""


@dataclass
class TileStats:
    """Observability counters of one :class:`TileManager`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: decoded bytes currently held by the cache
    resident_bytes: int = 0
    #: high-water mark of ``resident_bytes`` — the number the
    #: out-of-core acceptance bound is asserted against
    peak_resident_bytes: int = 0
    #: total decoded bytes produced (cold decodes only)
    decoded_bytes: int = 0

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "resident_bytes": self.resident_bytes,
            "peak_resident_bytes": self.peak_resident_bytes,
            "decoded_bytes": self.decoded_bytes,
        }


class TileManager:
    """LRU decoded-chunk cache under a byte budget.

    ``budget_bytes=None`` means unbounded (useful for tests that want
    the lazy read path without eviction).  A single chunk larger than
    the budget is still admitted — one decoded chunk is the irreducible
    working set of any chunk-aligned reader — after evicting everything
    else; ``peak_resident_bytes`` then records the overshoot honestly.
    """

    def __init__(self, dataset: Dataset, budget_bytes: Optional[int] = None) -> None:
        if not dataset.is_chunked:
            raise TileError(
                f"dataset {dataset.name!r} is not chunked; the tile manager "
                "requires a format-v2 chunked dataset"
            )
        if budget_bytes is not None and int(budget_bytes) < 1:
            raise TileError(f"budget_bytes must be >= 1, got {budget_bytes}")
        self._ds = dataset
        self.budget_bytes = None if budget_bytes is None else int(budget_bytes)
        self._cache: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self.stats = TileStats()

    @property
    def dataset(self) -> Dataset:
        return self._ds

    def chunk(self, ci: int) -> np.ndarray:
        """The decoded chunk ``ci`` (cached; LRU-evicts to the budget)."""
        cached = self._cache.get(ci)
        if cached is not None:
            self._cache.move_to_end(ci)
            self.stats.hits += 1
            return cached
        self.stats.misses += 1
        arr = self._ds.read_chunk(ci)
        arr.setflags(write=False)
        self.stats.decoded_bytes += arr.nbytes
        if self.budget_bytes is not None:
            while self._cache and (
                self.stats.resident_bytes + arr.nbytes > self.budget_bytes
            ):
                _, evicted = self._cache.popitem(last=False)
                self.stats.resident_bytes -= evicted.nbytes
                self.stats.evictions += 1
        self._cache[ci] = arr
        self.stats.resident_bytes += arr.nbytes
        if self.stats.resident_bytes > self.stats.peak_resident_bytes:
            self.stats.peak_resident_bytes = self.stats.resident_bytes
            _trace.active_tracer().gauge(
                "tiles.peak_resident_bytes", float(self.stats.peak_resident_bytes)
            )
        return arr

    def window(self, start: int, stop: int) -> np.ndarray:
        """Rows ``[start, stop)`` assembled from the overlapping chunks.

        Single-chunk windows come back as zero-copy views of the cached
        chunk; multi-chunk windows are a transient concatenated copy.
        """
        n = self._ds.shape[0]
        start = max(0, min(int(start), n))
        stop = max(start, min(int(stop), n))
        bounds = self._ds.chunk_bounds()
        parts: List[np.ndarray] = []
        for ci, (c0, c1) in enumerate(zip(bounds[:-1], bounds[1:])):
            if c1 <= start or c0 >= stop:
                continue
            arr = self.chunk(ci)
            parts.append(arr[max(start - c0, 0): min(stop, c1) - c0])
        if not parts:
            return np.empty((0,) + self._ds.shape[1:], dtype=self._ds.dtype)
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts, axis=0)

    def clear(self) -> None:
        self._cache.clear()
        self.stats.resident_bytes = 0


def read_window(
    path: str, dataset: str, start: int, stop: int
) -> np.ndarray:
    """One-shot window read: open, decode overlapping chunks, close.

    The multiprocess shard workers call this (module-level, picklable
    by reference) so each worker performs its own chunk I/O — the
    shard-parallel read path.
    """
    with File(path, "r") as f:
        return np.array(f.require_dataset(dataset).read_rows(start, stop))


class LazyEventTable:
    """An out-of-core stand-in for :class:`~repro.nexus.events.EventTable`.

    Backed by a chunked ``(n, 8)`` float64 dataset in an h5lite v2
    file.  Never holds the full table: consumers ask for bounded
    windows (served through the tile manager) or chunk metadata (fed to
    the shard planner so shard boundaries land on chunk boundaries).

    Picklable: only ``(path, dataset, memory_budget)`` travel; the file
    handle and cache reopen lazily in the receiving process.
    """

    def __init__(
        self,
        path: "str | os.PathLike",
        dataset: str = EVENT_TABLE_PATH,
        *,
        memory_budget: Optional[int] = None,
    ) -> None:
        self.path = os.fspath(path)
        self.dataset_path = dataset
        self.memory_budget = None if memory_budget is None else int(memory_budget)
        self._file: Optional[File] = None
        self._tiles: Optional[TileManager] = None
        self._shape: Optional[Tuple[int, ...]] = None
        self._validate()

    # -- lazy plumbing -------------------------------------------------
    def _validate(self) -> None:
        ds = self._dataset()
        if ds.ndim != 2 or ds.shape[1] != N_EVENT_COLUMNS:
            raise TileError(
                f"{self.path!r}:{self.dataset_path} must be "
                f"(n, {N_EVENT_COLUMNS}), got {ds.shape}"
            )

    def _dataset(self) -> Dataset:
        if self._file is None:
            try:
                self._file = File(self.path, "r")
            except FileNotFoundError:
                raise
            ds = self._file.require_dataset(self.dataset_path)
            if not ds.is_chunked:
                self._file.close()
                self._file = None
                raise TileError(
                    f"{self.path!r}:{self.dataset_path} is not chunked; "
                    "out-of-core reads need a v2 chunked event table"
                )
            self._shape = ds.shape
        return self._file.require_dataset(self.dataset_path)

    @property
    def tiles(self) -> TileManager:
        if self._tiles is None:
            self._tiles = TileManager(self._dataset(), self.memory_budget)
        return self._tiles

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
        self._tiles = None

    def __getstate__(self) -> dict:
        return {
            "path": self.path,
            "dataset_path": self.dataset_path,
            "memory_budget": self.memory_budget,
        }

    def __setstate__(self, state: dict) -> None:
        self.path = state["path"]
        self.dataset_path = state["dataset_path"]
        self.memory_budget = state["memory_budget"]
        self._file = None
        self._tiles = None
        self._shape = None

    # -- EventTable-compatible surface ---------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        if self._shape is None:
            self._dataset()
        assert self._shape is not None
        return self._shape

    @property
    def n_events(self) -> int:
        return int(self.shape[0])

    @property
    def row_nbytes(self) -> int:
        return self._dataset().row_nbytes

    def __len__(self) -> int:
        return self.n_events

    # -- chunk metadata for the planner --------------------------------
    def chunk_bounds(self) -> List[int]:
        """Row boundaries ``[0, r1, ..., n]`` of the stored chunks."""
        return self._dataset().chunk_bounds()

    def chunk_ranges(self) -> List[Tuple[int, int]]:
        return self._dataset().chunk_ranges()

    def chunk_stored_nbytes(self) -> List[int]:
        """On-disk bytes per chunk — the planner's I/O balance weights."""
        return self._dataset().chunk_stored_nbytes()

    # -- data access ---------------------------------------------------
    def window(self, start: int, stop: int) -> np.ndarray:
        """Rows ``[start, stop)`` through the budgeted tile cache."""
        return self.tiles.window(start, stop)

    def materialize(self) -> EventTable:
        """The full in-memory table (defeats the point; for small runs
        and differential tests only)."""
        return EventTable(np.array(self._dataset().read()))

    def __array__(self, dtype=None) -> np.ndarray:
        data = self._dataset().read()
        return data if dtype is None else data.astype(dtype)

    @property
    def tile_stats(self) -> TileStats:
        return self.tiles.stats

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        budget = (
            f", budget={self.memory_budget}" if self.memory_budget else ""
        )
        return f"LazyEventTable({self.path!r}, n_events={self.n_events}{budget})"


def open_event_table(
    path: "str | os.PathLike",
    *,
    memory_budget: Optional[int] = None,
    dataset: str = EVENT_TABLE_PATH,
) -> LazyEventTable:
    """Open a v2 SaveMD file's event table out-of-core."""
    require(memory_budget is None or memory_budget >= 1,
            "memory_budget must be >= 1 byte")
    try:
        return LazyEventTable(path, dataset, memory_budget=memory_budget)
    except H5LiteError:
        raise
