"""Normalization correction inputs: the Flux and Vanadium files.

The MDNorm normalization needs two measured corrections (the paper's
artifact description: "the VanadiumFile and FluxFile are copied to the
same directory"):

* :class:`FluxSpectrum` — the incident beam spectrum integrated over
  the monitor, tabulated against neutron momentum ``k = 2 pi / lambda``.
  MDNorm integrates it along each detector trajectory segment; we store
  the cumulative integral so a segment's contribution is a difference of
  two linear interpolations, exactly the ``linear_interpolation()`` step
  of the paper's Listing 1.
* :class:`VanadiumData` — per-detector ``solid_angle x efficiency``
  weights from a vanadium calibration measurement (vanadium scatters
  incoherently and isotropically, so deviations measure the detector
  response).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.nexus.h5lite import File
from repro.util.validation import ValidationError, require


@dataclass
class FluxSpectrum:
    """Incident flux density tabulated on an ascending momentum grid.

    Attributes
    ----------
    momentum:
        ``(m,)`` strictly ascending momentum grid in 1/Angstrom.
    density:
        ``(m,)`` non-negative flux density ``phi(k)``.
    """

    momentum: np.ndarray
    density: np.ndarray

    def __post_init__(self) -> None:
        self.momentum = np.ascontiguousarray(self.momentum, dtype=np.float64)
        self.density = np.ascontiguousarray(self.density, dtype=np.float64)
        require(self.momentum.ndim == 1 and self.momentum.size >= 2,
                "momentum grid needs at least 2 points")
        require(self.density.shape == self.momentum.shape,
                "density and momentum shapes differ")
        if not np.all(np.diff(self.momentum) > 0):
            raise ValidationError("momentum grid must be strictly ascending")
        if np.any(self.density < 0):
            raise ValidationError("flux density must be non-negative")
        # Cumulative integral Phi(k) by the trapezoid rule; Phi[0] = 0.
        seg = 0.5 * (self.density[1:] + self.density[:-1]) * np.diff(self.momentum)
        self._cumulative = np.concatenate([[0.0], np.cumsum(seg)])

    @property
    def k_min(self) -> float:
        return float(self.momentum[0])

    @property
    def k_max(self) -> float:
        return float(self.momentum[-1])

    @property
    def total(self) -> float:
        """Integral of the density over the full band."""
        return float(self._cumulative[-1])

    def cumulative(self, k: np.ndarray) -> np.ndarray:
        """Linearly interpolated ``Phi(k)``, clamped to the band edges."""
        return np.interp(np.asarray(k, dtype=np.float64), self.momentum, self._cumulative)

    def integral(self, k_lo: np.ndarray, k_hi: np.ndarray) -> np.ndarray:
        """``integral_{k_lo}^{k_hi} phi(k) dk`` (vectorized, clamped)."""
        return self.cumulative(k_hi) - self.cumulative(k_lo)

    @classmethod
    def from_wavelength_band(
        cls,
        lambda_min: float,
        lambda_max: float,
        n_points: int = 256,
        *,
        moderator_temperature_peak: float = 1.5,
    ) -> "FluxSpectrum":
        """A Maxwellian-like moderator spectrum over a wavelength band.

        A reasonable synthetic stand-in for the SNS monitor spectrum:
        ``phi(lambda) ~ lambda^-5 exp(-(lp/lambda)^2)`` with peak near
        ``moderator_temperature_peak`` Angstrom, converted to momentum.
        """
        require(0 < lambda_min < lambda_max, "need 0 < lambda_min < lambda_max")
        lam = np.linspace(lambda_min, lambda_max, n_points)
        lp = moderator_temperature_peak
        phi_lambda = lam**-5.0 * np.exp(-((lp / lam) ** 2))
        phi_lambda /= phi_lambda.max()
        # Change variables lambda -> k = 2 pi / lambda; dk = 2 pi / lambda^2 dlambda
        k = 2.0 * np.pi / lam[::-1]
        phi_k = (phi_lambda * lam**2 / (2.0 * np.pi))[::-1]
        return cls(momentum=k, density=phi_k)


@dataclass
class VanadiumData:
    """Per-detector ``solid_angle x efficiency`` calibration weights."""

    detector_weights: np.ndarray

    def __post_init__(self) -> None:
        self.detector_weights = np.ascontiguousarray(
            self.detector_weights, dtype=np.float64
        )
        require(self.detector_weights.ndim == 1, "detector_weights must be 1-D")
        if np.any(self.detector_weights < 0):
            raise ValidationError("detector weights must be non-negative")

    @property
    def n_detectors(self) -> int:
        return int(self.detector_weights.shape[0])

    def with_mask(self, detector_ids: np.ndarray) -> "VanadiumData":
        """A copy with the given detectors masked out (weight 0).

        Masked pixels contribute neither events' normalization weight
        nor trajectories — the standard way dead/noisy tubes are
        excluded from a reduction.
        """
        ids = np.asarray(detector_ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self.n_detectors):
            raise ValidationError(
                f"mask ids out of range [0, {self.n_detectors})"
            )
        weights = self.detector_weights.copy()
        weights[ids] = 0.0
        return VanadiumData(detector_weights=weights)

    @property
    def n_masked(self) -> int:
        return int(np.count_nonzero(self.detector_weights == 0.0))


def write_flux_file(path: Union[str, os.PathLike], flux: FluxSpectrum) -> None:
    with File(path, "w") as f:
        grp = f.create_group("flux")
        grp.attrs["NX_class"] = "NXdata"
        mom = grp.create_dataset("momentum", data=flux.momentum)
        mom.attrs["units"] = "1/Angstrom"
        grp.create_dataset("density", data=flux.density)


def read_flux_file(path: Union[str, os.PathLike]) -> FluxSpectrum:
    with File(path, "r") as f:
        return FluxSpectrum(
            momentum=f.read("flux/momentum"), density=f.read("flux/density")
        )


def write_vanadium_file(path: Union[str, os.PathLike], van: VanadiumData) -> None:
    with File(path, "w") as f:
        grp = f.create_group("vanadium")
        grp.attrs["NX_class"] = "NXdata"
        grp.create_dataset("detector_weights", data=van.detector_weights)


def read_vanadium_file(path: Union[str, os.PathLike]) -> VanadiumData:
    with File(path, "r") as f:
        return VanadiumData(detector_weights=f.read("vanadium/detector_weights"))
