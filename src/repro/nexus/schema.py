"""NeXus event-entry schema on top of h5lite.

SNS instruments record one NeXus file per experiment run.  We implement
the subset of the schema the reduction workflow reads::

    /entry                       NX_class="NXentry"
      run_number                 scalar int
      proton_charge              scalar float
      /instrument                NX_class="NXinstrument"
        name                     string
      /sample                    NX_class="NXsample"
        name                     string
        ub_matrix                (3,3) float64   (optional)
      /DASlogs                   NX_class="NXcollection"
        goniometer               (3,3) float64 rotation matrix
        wavelength_band          (2,) float64 Angstrom
      /events                    NX_class="NXevent_data"
        detector_id              (n,) uint32
        time_of_flight           (n,) float64, attrs units="microsecond"
        weight                   (n,) float32

Files written here are what ``UpdateEvents`` (the load stage timed in
Tables III-VI) reads back.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.nexus.events import RunData
from repro.nexus.h5lite import File, H5LiteError


@dataclass(frozen=True)
class NXEntryInfo:
    """Lightweight metadata read without touching the event payload."""

    run_number: int
    n_events: int
    instrument: str
    sample: str
    proton_charge: float


def write_event_nexus(
    path: Union[str, os.PathLike],
    run: RunData,
    *,
    compression: "str | None" = None,
    chunk_events: "int | None" = None,
    codec: str = "zlib",
) -> None:
    """Serialize one run to a NeXus-schema h5lite file.

    ``compression="zlib"`` deflates the event payloads (id/TOF/weight)
    as whole blobs; ``chunk_events=N`` instead stores them as
    independent CRC-checked chunks of ``N`` events (format v2, per-chunk
    ``codec``), so region reads — e.g. the file-driven
    :class:`repro.core.streaming.FileEventStream` — decode only the
    touched windows.
    """
    if chunk_events is not None and compression is not None:
        raise H5LiteError(
            "chunk_events and whole-payload compression are exclusive"
        )
    event_opts = (
        dict(chunk_rows=int(chunk_events), codec=codec)
        if chunk_events is not None
        else dict(compression=compression)
    )
    with File(path, "w") as f:
        entry = f.create_group("entry")
        entry.attrs["NX_class"] = "NXentry"
        entry.create_dataset("run_number", data=np.array(run.run_number, dtype=np.int64))
        entry.create_dataset(
            "proton_charge", data=np.array(run.proton_charge, dtype=np.float64)
        )

        instrument = entry.create_group("instrument")
        instrument.attrs["NX_class"] = "NXinstrument"
        instrument.create_dataset("name", data=np.array(run.instrument or "unknown"))

        sample = entry.create_group("sample")
        sample.attrs["NX_class"] = "NXsample"
        sample.create_dataset("name", data=np.array(run.sample or "unknown"))
        if run.ub_matrix is not None:
            sample.create_dataset("ub_matrix", data=run.ub_matrix)

        logs = entry.create_group("DASlogs")
        logs.attrs["NX_class"] = "NXcollection"
        logs.create_dataset("goniometer", data=run.goniometer)
        logs.create_dataset(
            "wavelength_band", data=np.asarray(run.wavelength_band, dtype=np.float64)
        )

        events = entry.create_group("events")
        events.attrs["NX_class"] = "NXevent_data"
        events.create_dataset("detector_id", data=run.detector_ids, **event_opts)
        tof = events.create_dataset("time_of_flight", data=run.tof, **event_opts)
        tof.attrs["units"] = "microsecond"
        events.create_dataset("weight", data=run.weights, **event_opts)
        if run.pulse_times is not None:
            pulse = events.create_dataset(
                "pulse_time", data=run.pulse_times, **event_opts
            )
            pulse.attrs["units"] = "second"


def read_event_nexus(path: Union[str, os.PathLike]) -> RunData:
    """Load one run back from a NeXus-schema h5lite file."""
    with File(path, "r") as f:
        try:
            entry = f["entry"]
        except KeyError as exc:
            raise H5LiteError(f"{os.fspath(path)!r} has no /entry group") from exc
        ub = None
        if "sample/ub_matrix" in entry:
            ub = entry.read("sample/ub_matrix")
        pulse_times = None
        if "events/pulse_time" in entry:
            pulse_times = entry.read("events/pulse_time")
        band = entry.read("DASlogs/wavelength_band")
        return RunData(
            pulse_times=pulse_times,
            run_number=int(entry.read("run_number")[()]),
            detector_ids=entry.read("events/detector_id"),
            tof=entry.read("events/time_of_flight"),
            weights=entry.read("events/weight"),
            goniometer=entry.read("DASlogs/goniometer"),
            proton_charge=float(entry.read("proton_charge")[()]),
            wavelength_band=(float(band[0]), float(band[1])),
            instrument=str(entry.read("instrument/name")[()]),
            sample=str(entry.read("sample/name")[()]),
            ub_matrix=ub,
        )


def read_entry_info(path: Union[str, os.PathLike]) -> NXEntryInfo:
    """Read run metadata without materializing the event table."""
    with File(path, "r") as f:
        entry = f["entry"]
        det = entry.require_dataset("events/detector_id")
        return NXEntryInfo(
            run_number=int(entry.read("run_number")[()]),
            n_events=int(det.shape[0]),
            instrument=str(entry.read("instrument/name")[()]),
            sample=str(entry.read("sample/name")[()]),
            proton_charge=float(entry.read("proton_charge")[()]),
        )
