"""The two proxy applications of the paper's methodology (Fig. 3).

* :mod:`repro.proxy.cpp_proxy` — the ``extract_mdnorm`` C++ proxy:
  the minimal relevant code extracted from Mantid with the paper's
  CPU-side algorithmic improvements (region-of-interest searches,
  primitive index arrays instead of structs, collapsed
  (op x detector) parallel loops on a thread pool, MPI over files);
* :mod:`repro.proxy.minivates` — MiniVATES.jl: the same computation
  as JACC-style device kernels (vectorized back end) with explicit
  host/device transfers, the in-kernel comb sort, the
  max-intersections pre-pass workaround, and real JIT-vs-warm
  accounting.

Both proxies consume the SaveMD files the production workflow writes
and must reproduce the Garnet baseline's output exactly — the paper's
artifact description makes the same promise, and the integration suite
enforces it here.
"""

from repro.proxy.cpp_proxy import (
    cpp_bin_md,
    cpp_md_norm,
    CppProxyConfig,
    CppProxyWorkflow,
)
from repro.proxy.minivates import MiniVatesConfig, MiniVatesWorkflow

__all__ = [
    "cpp_bin_md",
    "cpp_md_norm",
    "CppProxyConfig",
    "CppProxyWorkflow",
    "MiniVatesConfig",
    "MiniVatesWorkflow",
]
