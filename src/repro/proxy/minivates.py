"""MiniVATES: the Julia/JACC proxy on the device back end.

Reproduces the structure of MiniVATES.jl one element at a time:

* the portable :mod:`repro.core` kernels launched on the **vectorized
  ("device") back end** — the same kernels the CPU back ends run, which
  is the whole point of the JACC model;
* explicit **host -> device transfers** of the event table, detector
  geometry and vanadium weights (counted by the back end);
* the **max-intersections pre-pass** with its device -> host copy
  (JACC's ``parallel_reduce`` has no MAX — the documented workaround);
* the in-kernel **comb sort** (``sort_impl="comb"``; "library" is the
  ablation alternative);
* genuine **JIT accounting**: with ``cold_start=True`` the kernel
  specialization cache is cleared before the run, so the first file
  pays compilation (the paper's "JIT" column) and later files do not
  ("no JIT").  ``StageTimings.first_call`` holds the split.

The result must match the Garnet baseline and the C++ proxy exactly;
the integration suite enforces it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core import geom_cache as _gc
from repro.core.binmd import bin_events
from repro.core.checkpoint import RecoveryConfig
from repro.core.cross_section import CrossSectionResult, compute_cross_section
from repro.core.geom_cache import DISABLED, GeomCache
from repro.core.grid import HKLGrid
from repro.core.md_event_workspace import MDEventWorkspace, load_md
from repro.core.mdnorm import mdnorm
from repro.crystal.symmetry import PointGroup
from repro.instruments.detector import DetectorArray
from repro.jacc.api import get_backend
from repro.jacc.jit import GLOBAL_JIT
from repro.mpi import Comm
from repro.nexus.corrections import read_flux_file, read_vanadium_file
from repro.nexus.events import EventTable
from repro.util import trace as _trace
from repro.util.timers import StageTimings
from repro.util.validation import ValidationError, require

DEVICE_BACKEND = "vectorized"


@dataclass
class MiniVatesConfig:
    """Inputs of a MiniVATES run (same files as the other drivers)."""

    md_paths: Sequence[str]
    flux_path: str
    vanadium_path: str
    instrument: DetectorArray
    grid: HKLGrid
    point_group: PointGroup
    #: the paper's in-kernel sort ("comb") or the ablation ("library")
    sort_impl: str = "comb"
    #: histogram accumulation: "atomic" (per-lane atomicAdd analogue,
    #: MI100-like) or "buffered" (efficient device atomics, A100-like)
    scatter_impl: str = "atomic"
    #: clear the kernel-specialization cache first, so the first file
    #: pays JIT like a fresh Julia session.  A cold start also bypasses
    #: the geometry cache — the whole point is to measure the
    #: from-scratch pipeline (pre-pass D2H copy included).
    cold_start: bool = True
    #: geometry cache for warm (``cold_start=False``) runs; None uses
    #: the process default (ignored entirely when ``cold_start=True``)
    geom_cache: Optional[GeomCache] = None
    #: failure policy (retry/quarantine/checkpoint/resume); None =
    #: historical fail-fast loop
    recovery: Optional[RecoveryConfig] = None

    def __post_init__(self) -> None:
        require(len(self.md_paths) >= 1, "need at least one run file")
        require(self.sort_impl in ("comb", "library"),
                "sort_impl must be comb|library")
        require(self.scatter_impl in ("atomic", "buffered"),
                "scatter_impl must be atomic|buffered")


class MiniVatesWorkflow:
    """Algorithm 1 on the device back end with full transfer discipline."""

    def __init__(self, config: MiniVatesConfig) -> None:
        self.config = config
        self.flux = read_flux_file(config.flux_path)
        vanadium = read_vanadium_file(config.vanadium_path)
        if vanadium.n_detectors != config.instrument.n_pixels:
            raise ValidationError("vanadium / instrument pixel count mismatch")
        self._host_solid_angles = vanadium.detector_weights

    def run(
        self,
        comm: Optional[Comm] = None,
        *,
        timings: Optional[StageTimings] = None,
    ) -> CrossSectionResult:
        cfg = self.config
        paths = list(cfg.md_paths)
        device = get_backend(DEVICE_BACKEND)
        if cfg.cold_start:
            GLOBAL_JIT.clear()
        # a cold start measures the from-scratch pipeline: no memoized
        # geometry, the pre-pass D2H workaround really runs
        cache = DISABLED if cfg.cold_start else _gc.resolve(cfg.geom_cache)
        device.reset_counters()

        tracer = _trace.active_tracer()
        with tracer.span(
            "workflow",
            kind="workflow",
            implementation="minivates",
            n_runs=len(paths),
            backend=DEVICE_BACKEND,
            cold_start=bool(cfg.cold_start),
        ) as wf_span:
            # static geometry lives on the device for the whole run
            det_directions = device.to_device(cfg.instrument.directions)
            solid_angles = device.to_device(self._host_solid_angles)

            def load_run(i: int) -> MDEventWorkspace:
                ws = load_md(paths[i])
                # UpdateEvents ends with the H2D copy of the event table
                ws.events = EventTable(device.to_device(ws.events.data))
                return ws

            result = compute_cross_section(
                load_run=load_run,
                n_runs=len(paths),
                grid=cfg.grid,
                point_group=cfg.point_group,
                flux=self.flux,
                det_directions=det_directions,
                solid_angles=solid_angles,
                comm=comm,
                backend=DEVICE_BACKEND,
                sort_impl=cfg.sort_impl,
                scatter_impl=cfg.scatter_impl,
                timings=timings or StageTimings(label="minivates"),
                cache=cache,
                recovery=cfg.recovery,
            )
            if tracer.profile:
                # device transfer accounting as a profiled span: the
                # device ingests H2D bytes and emits D2H bytes, so the
                # workflow's "GB/s" row is the realized PCIe-analogue
                # transfer throughput
                wf_span.set(perf={
                    "bytes_read": float(device.bytes_h2d),
                    "bytes_written": float(device.bytes_d2h),
                })
        result.backend = "minivates"
        extras = dict(result.extras or {})
        extras.update({
            "bytes_h2d": device.bytes_h2d,
            "bytes_d2h": device.bytes_d2h,
            "kernel_launches": device.launches,
            "jit_compile_seconds": GLOBAL_JIT.total_compile_seconds(),
            "jit_compile_events": len(GLOBAL_JIT.compile_events),
        })
        result.extras = extras
        tracer.gauge("minivates.bytes_h2d", float(device.bytes_h2d))
        tracer.gauge("minivates.bytes_d2h", float(device.bytes_d2h))
        tracer.gauge("minivates.kernel_launches", float(device.launches))
        tracer.gauge(
            "minivates.jit_compile_seconds",
            float(GLOBAL_JIT.total_compile_seconds()),
        )
        return result
