"""The C++ proxy (``extract_mdnorm``): optimized CPU kernels.

The paper's C++ proxy extracts MDNorm/BinMD from Mantid and applies the
algorithmic improvements described in Section III.B, all of which are
reproduced here with the CPU-appropriate primitives of this stack:

* *"improving the complexity of linear searches with a more adaptable
  region-of-interest strategy"* — crossings per dimension are located
  with two binary searches over the edge array (the ROI), not by
  scanning every edge like the baseline;
* *"instead of sorting an array of structs, we sort an array of indices
  using primitive types"* — each trajectory's crossings live in one
  primitive float64 array sorted directly; BinMD histograms through
  primitive flat-index arrays and ``bincount``;
* *OpenMP ``collapse(2)``* — the (symmetry op x detector) rows are
  chunked over a thread pool;
* *MPI over files* — the workflow accepts a communicator exactly like
  the core driver.

The kernels are standalone functions (this proxy is a separate codebase
from both Mantid and MiniVATES, as in the paper) that plug into the
shared Algorithm-1 loop via ``compute_cross_section``'s ``*_impl``
hooks.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.checkpoint import RecoveryConfig
from repro.core.cross_section import CrossSectionResult, compute_cross_section
from repro.core.grid import HKLGrid
from repro.core.hist3 import Hist3
from repro.core.intersections import PARALLEL_EPS, k_window, trajectory_directions
from repro.core.md_event_workspace import load_md
from repro.crystal.symmetry import PointGroup
from repro.instruments.detector import DetectorArray
from repro.mpi import Comm
from repro.nexus.corrections import FluxSpectrum, read_flux_file, read_vanadium_file
from repro.nexus.events import COL_ERROR_SQ, COL_QX, COL_QZ, COL_SIGNAL, EventTable
from repro.util import trace as _trace
from repro.util.timers import StageTimings
from repro.util.validation import ValidationError, require


def cpp_bin_md(hist: Hist3, events: EventTable, transforms: np.ndarray) -> Hist3:
    """BinMD via primitive flat-index arrays and ``bincount``.

    Per symmetry op: one fused transform over all events, flat bin
    indices as a primitive int64 array, and a single ``bincount``
    accumulation — the index-array strategy of the C++ proxy.
    """
    transforms = np.asarray(transforms, dtype=np.float64)
    require(transforms.ndim == 3 and transforms.shape[1:] == (3, 3),
            "transforms must be (n_ops, 3, 3)")
    data = events.data if isinstance(events, EventTable) else np.asarray(events)
    tracer = _trace.active_tracer()
    with tracer.span(
        "cpp.binmd",
        kind="op",
        backend="cpp",
        n_ops=int(transforms.shape[0]),
        n_events=int(data.shape[0]),
    ) as op_span:
        if tracer.profile:
            from repro.util.perf import binmd_work

            op_span.set(perf=binmd_work(
                int(transforms.shape[0]), int(data.shape[0]),
                track_errors=hist.flat_error_sq is not None,
            ))
        q = data[:, COL_QX : COL_QZ + 1]
        weights = data[:, COL_SIGNAL]
        err_sq = data[:, COL_ERROR_SQ]
        grid = hist.grid
        n_total = grid.n_bins_total
        flat_signal = hist.flat_signal
        flat_err = hist.flat_error_sq
        for op in transforms:
            coords = q @ op.T
            idx, inside = grid.bin_index(coords)
            idx = idx[inside]
            flat_signal += np.bincount(idx, weights=weights[inside], minlength=n_total)
            if flat_err is not None:
                flat_err += np.bincount(idx, weights=err_sq[inside], minlength=n_total)
        tracer.count("cpp.binmd.events",
                     int(transforms.shape[0]) * int(data.shape[0]))
    return hist


def _mdnorm_rows(
    rows: range,
    directions: np.ndarray,
    k_lo: np.ndarray,
    k_hi: np.ndarray,
    det_weight: np.ndarray,
    grid: HKLGrid,
    flux_k: np.ndarray,
    flux_cum: np.ndarray,
    target: np.ndarray,
) -> None:
    """MDNorm over a chunk of (op x detector) rows (one worker's share)."""
    edges = grid.edges
    mn = np.array(grid.minimum)
    w = grid.widths
    nb = grid.bins
    stride0 = nb[1] * nb[2]
    stride1 = nb[2]
    for r in rows:
        lo = k_lo[r]
        hi = k_hi[r]
        if not hi > lo:
            continue
        wd = det_weight[r]
        if wd == 0.0:
            continue
        d = directions[r]
        # region-of-interest: two binary searches per dimension
        pieces = [np.array([lo, hi])]
        for axis in range(3):
            di = d[axis]
            if abs(di) <= PARALLEL_EPS:
                continue
            a, b = lo * di, hi * di
            if a > b:
                a, b = b, a
            s = np.searchsorted(edges[axis], a, side="right")
            t = np.searchsorted(edges[axis], b, side="left")
            if t > s:
                pieces.append(edges[axis][s:t] / di)
        ks = np.concatenate(pieces)
        ks.sort()  # primitive array sort, no structs
        phi = np.interp(ks, flux_k, flux_cum)
        seg = phi[1:] - phi[:-1]
        mid = 0.5 * (ks[1:] + ks[:-1])
        live = (ks[1:] > ks[:-1]) & (seg != 0.0)
        if not live.any():
            continue
        mid = mid[live]
        c = mid[:, None] * d[None, :]
        idx = np.floor((c - mn) / w).astype(np.int64)
        inside = np.all((idx >= 0) & (idx < np.array(nb)), axis=1)
        flat = idx[:, 0] * stride0 + idx[:, 1] * stride1 + idx[:, 2]
        np.add.at(target, flat[inside], seg[live][inside] * wd)


def cpp_md_norm(
    hist: Hist3,
    transforms: np.ndarray,
    det_directions: np.ndarray,
    solid_angles: np.ndarray,
    flux: FluxSpectrum,
    momentum_band: tuple[float, float],
    *,
    charge: float = 1.0,
    n_threads: Optional[int] = None,
) -> Hist3:
    """MDNorm with ROI searches and primitive sorts, threaded over rows.

    Each worker owns a private accumulation array (no shared-write
    contention); partials are summed at the end — the standard OpenMP
    reduction pattern for histograms.
    """
    transforms = np.asarray(transforms, dtype=np.float64)
    det_directions = np.asarray(det_directions, dtype=np.float64)
    solid_angles = np.asarray(solid_angles, dtype=np.float64)
    tracer = _trace.active_tracer()
    with tracer.span(
        "cpp.mdnorm",
        kind="op",
        backend="cpp",
        n_ops=int(transforms.shape[0]),
        n_det=int(det_directions.shape[0]),
    ) as op_span:
        grid = hist.grid
        directions = trajectory_directions(transforms, det_directions).reshape(-1, 3)
        k_lo, k_hi = k_window(directions, grid, *momentum_band)
        if tracer.profile:
            # exact crossing counts via the vectorized pre-pass (the
            # same counting kernel MiniVATES runs; cheap next to the
            # per-row ROI loop below)
            from repro.core.intersections import count_crossings_batch
            from repro.util.perf import mdnorm_work_from_crossings

            crossings = int(
                count_crossings_batch(directions, grid, k_lo, k_hi).sum()
            )
            op_span.set(perf=mdnorm_work_from_crossings(
                directions.shape[0], crossings
            ))
        n_ops = transforms.shape[0]
        det_weight = np.tile(solid_angles * charge, n_ops)

        if n_threads is None:
            env = os.environ.get("REPRO_NUM_THREADS")
            n_threads = max(1, int(env)) if env else max(1, os.cpu_count() or 1)
        n_rows = directions.shape[0]
        flux_k, flux_cum = flux.momentum, flux._cumulative
        tracer.count("cpp.mdnorm.trajectories", int(n_rows))

        if n_threads == 1 or n_rows < 2 * n_threads:
            op_span.set(n_threads=1)
            _mdnorm_rows(
                range(n_rows), directions, k_lo, k_hi, det_weight, grid,
                flux_k, flux_cum, hist.flat_signal,
            )
            return hist

        op_span.set(n_threads=int(n_threads))
        step = (n_rows + n_threads - 1) // n_threads
        chunks = [range(s, min(s + step, n_rows)) for s in range(0, n_rows, step)]
        partials = [np.zeros(grid.n_bins_total) for _ in chunks]
        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            futures = [
                pool.submit(
                    _mdnorm_rows, rows, directions, k_lo, k_hi, det_weight, grid,
                    flux_k, flux_cum, partial,
                )
                for rows, partial in zip(chunks, partials)
            ]
            for f in futures:
                f.result()
        acc = hist.flat_signal
        for partial in partials:
            acc += partial
    return hist


@dataclass
class CppProxyConfig:
    """Inputs of the C++ proxy run (same files as the other drivers)."""

    md_paths: Sequence[str]
    flux_path: str
    vanadium_path: str
    instrument: DetectorArray
    grid: HKLGrid
    point_group: PointGroup
    n_threads: Optional[int] = None
    #: failure policy (retry/quarantine/checkpoint/resume); None =
    #: historical fail-fast loop
    recovery: Optional[RecoveryConfig] = None

    def __post_init__(self) -> None:
        require(len(self.md_paths) >= 1, "need at least one run file")


class CppProxyWorkflow:
    """Algorithm 1 with the C++ proxy's kernels (CPU only, MPI capable)."""

    def __init__(self, config: CppProxyConfig) -> None:
        self.config = config
        self.flux = read_flux_file(config.flux_path)
        vanadium = read_vanadium_file(config.vanadium_path)
        if vanadium.n_detectors != config.instrument.n_pixels:
            raise ValidationError("vanadium / instrument pixel count mismatch")
        self.solid_angles = vanadium.detector_weights

    def run(
        self,
        comm: Optional[Comm] = None,
        *,
        timings: Optional[StageTimings] = None,
    ) -> CrossSectionResult:
        cfg = self.config
        paths = list(cfg.md_paths)

        def mdnorm_impl(hist, transforms, det_directions, solid_angles, flux,
                        band, charge=1.0):
            return cpp_md_norm(
                hist, transforms, det_directions, solid_angles, flux, band,
                charge=charge, n_threads=cfg.n_threads,
            )

        with _trace.active_tracer().span(
            "workflow",
            kind="workflow",
            implementation="cpp_proxy",
            n_runs=len(paths),
            backend="cpp-proxy",
        ):
            result = compute_cross_section(
                load_run=lambda i: load_md(paths[i]),
                n_runs=len(paths),
                grid=cfg.grid,
                point_group=cfg.point_group,
                flux=self.flux,
                det_directions=cfg.instrument.directions,
                solid_angles=self.solid_angles,
                comm=comm,
                timings=timings or StageTimings(label="cpp-proxy"),
                binmd_impl=cpp_bin_md,
                mdnorm_impl=mdnorm_impl,
                recovery=cfg.recovery,
            )
        result.backend = "cpp-proxy"
        return result
