"""``repro-reduce`` / ``repro``: command-line entry points.

``repro-reduce`` (also ``repro reduce``) synthesizes (or reuses) a
workload and runs a chosen implementation of the cross-section
reduction, printing the paper-style stage timings.  ``repro trace``
runs a reduction under the structured tracer and writes the JSON-lines
trace (optionally a Chrome-trace file), then prints the paper-style
WCT summary derived from the trace alone.

Examples::

    repro-reduce --workload benzil --impl minivates --scale 0.001
    repro-reduce --workload bixbyite --impl garnet --files 2
    repro-reduce --workload benzil --impl all --files 6
    repro trace --workload benzil --impl core --ranks 2 \\
        --out trace.jsonl --chrome trace_chrome.json --validate
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
from typing import List, Optional

from repro.bench.harness import (
    A100_PROFILE,
    MI100_PROFILE,
    MeasuredRun,
    assert_results_match,
    run_cpp_proxy,
    run_garnet,
    run_minivates,
)
from repro.bench.workloads import benzil_corelli, bixbyite_topaz, build_workload


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-reduce",
        description="Run the cross-section reduction on a synthetic workload.",
    )
    p.add_argument("--workload", choices=("benzil", "bixbyite"), default="benzil",
                   help="use case: Benzil/CORELLI or Bixbyite/TOPAZ")
    p.add_argument("--impl", choices=("garnet", "cpp", "minivates", "all"),
                   default="minivates", help="implementation to run")
    p.add_argument("--scale", type=float, default=None,
                   help="event/detector scale vs the paper (default REPRO_SCALE or 0.002)")
    p.add_argument("--files", type=int, default=None,
                   help="number of run files to synthesize/measure")
    p.add_argument("--device-profile", choices=("a100", "mi100"), default="a100",
                   help="MiniVATES device profile")
    p.add_argument("--check", action="store_true",
                   help="with --impl all: assert all implementations agree")
    p.add_argument("--json", metavar="PATH", default=None,
                   help="also write timings and histogram statistics as JSON")
    p.add_argument("--peaks", type=int, default=0, metavar="N",
                   help="report the N strongest peaks of the cross-section")
    p.add_argument("--save", metavar="PATH", default=None,
                   help="write the reduced cross-section (with provenance) "
                        "to a reduced-data file")
    p.add_argument("--render", action="store_true",
                   help="render the cross-section slice as ASCII art")
    p.add_argument("--plan", metavar="PLAN_JSON", default=None,
                   help="run a reduction plan file instead of a synthetic "
                        "workload (ignores --workload/--impl/--scale/--files)")
    _add_recovery_flags(p)
    return p


def _add_recovery_flags(p: argparse.ArgumentParser) -> None:
    g = p.add_argument_group("resilience")
    g.add_argument("--faults", metavar="PLAN_JSON", default=None,
                   help="inject faults per this JSON fault plan "
                        "(see repro.util.faults.FaultPlan)")
    g.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                   help="persist per-run deltas under DIR/<impl> so an "
                        "interrupted campaign can --resume")
    g.add_argument("--resume", action="store_true",
                   help="resume from --checkpoint-dir (completed runs "
                        "replay from disk, bit-identically)")


def _fault_plan_context(args):
    """``use_fault_plan`` context for ``--faults`` (no-op without it)."""
    if not getattr(args, "faults", None):
        return contextlib.nullcontext(), None
    from repro.util import faults as faults_mod

    plan = faults_mod.FaultPlan.from_file(args.faults)
    return faults_mod.use_fault_plan(plan), plan


def _recovery_for(args, impl: str, data):
    """Build the RecoveryConfig the resilience flags ask for (or None)."""
    if not (getattr(args, "faults", None) or getattr(args, "checkpoint_dir", None)
            or getattr(args, "resume", False)):
        return None
    from repro.core.checkpoint import (
        CheckpointManager,
        RecoveryConfig,
        campaign_digest,
    )

    if args.resume and not args.checkpoint_dir:
        raise SystemExit("--resume requires --checkpoint-dir")
    ckpt = None
    if args.checkpoint_dir:
        digest = campaign_digest(
            impl=impl,
            workload=data.spec.key,
            n_files=len(data.md_paths),
            grid_bins=list(data.grid.bins),
        )
        ckpt = CheckpointManager(
            os.path.join(args.checkpoint_dir, impl),
            config_digest=digest,
            grid=data.grid,
        )
    return RecoveryConfig(checkpoint=ckpt, resume=bool(args.resume))


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)

    if args.plan:
        from repro.core.plan import load_plan, run_plan

        plan = load_plan(args.plan)
        print(f"running plan {args.plan} "
              f"({len(plan.runs)} runs, impl={plan.implementation})")
        result = run_plan(plan)
        print(result.timings.summary())
        if result.cross_section is not None:
            print(f"cross-section: {result.cross_section!r}")
        if args.save and result.cross_section is not None:
            from repro.core.output import save_reduced

            save_reduced(args.save, result, notes=f"plan {args.plan}")
            print(f"wrote reduced data to {args.save}")
        return 0

    make_spec = benzil_corelli if args.workload == "benzil" else bixbyite_topaz
    spec = make_spec(scale=args.scale, n_files=args.files)
    print(spec.describe())
    data = build_workload(spec)
    profile = A100_PROFILE if args.device_profile == "a100" else MI100_PROFILE

    fault_ctx, fault_plan = _fault_plan_context(args)
    runs: List[MeasuredRun] = []
    with fault_ctx:
        if args.impl in ("garnet", "all"):
            if args.impl == "garnet" and (args.faults or args.checkpoint_dir):
                print("note: the garnet baseline runs without the recovery "
                      "layer (--faults/--checkpoint-dir ignored)")
            runs.append(run_garnet(data))
        if args.impl in ("cpp", "all"):
            runs.append(run_cpp_proxy(
                data, recovery=_recovery_for(args, "cpp", data)))
        if args.impl in ("minivates", "all"):
            runs.append(run_minivates(
                data, profile=profile,
                recovery=_recovery_for(args, "minivates", data)))

    for run in runs:
        print()
        print(f"== {run.label} ==")
        print(run.timings.summary())
        if run.result.cross_section is not None:
            print(f"cross-section: {run.result.cross_section!r}")
        if run.result.degraded:
            print(f"DEGRADED: quarantined runs {run.result.quarantined_runs}")
        rec_info = (run.result.extras or {}).get("recovery")
        if rec_info:
            print(f"recovery: {rec_info}")
        if run.extras:
            print(f"device stats: {run.extras}")
    if fault_plan is not None:
        print(f"\nfault plan {fault_plan.label or args.faults}: "
              f"{fault_plan.stats()}")

    if args.peaks > 0 and runs and runs[-1].result.cross_section is not None:
        from repro.core.peaks import find_peaks

        peaks = find_peaks(runs[-1].result.binmd).strongest(args.peaks)
        print(f"\nstrongest {peaks.n_peaks} peaks (H, K, L -> intensity):")
        for hkl, intensity in zip(peaks.hkl, peaks.intensity):
            print(f"  ({hkl[0]:+6.2f}, {hkl[1]:+6.2f}, {hkl[2]:+6.2f})"
                  f"  ->  {intensity:.4g}")

    if args.render and runs and runs[-1].result.binmd is not None:
        from repro.core.render import render_hist

        print()
        print(render_hist(runs[-1].result.binmd))

    if args.save and runs and runs[-1].result.cross_section is not None:
        from repro.core.output import save_reduced

        save_reduced(args.save, runs[-1].result,
                     notes=f"repro-reduce {args.workload}/{args.impl}")
        print(f"\nwrote reduced data to {args.save}")

    if args.check and len(runs) > 1:
        for other in runs[1:]:
            assert_results_match(runs[0], other)
        print("\nall implementations produced identical histograms")

    if args.json:
        import json

        payload = {
            "workload": spec.describe(),
            "runs": [
                {
                    "label": run.label,
                    "files_measured": run.files_measured,
                    "stages_s": {
                        stage: run.timings.seconds(stage)
                        for stage in ("UpdateEvents", "MDNorm", "BinMD",
                                      "MDNorm + BinMD", "Total")
                    },
                    "binmd_total": run.result.binmd.total(),
                    "mdnorm_total": run.result.mdnorm.total(),
                    "coverage": run.result.binmd.nonzero_fraction(),
                    "extras": run.extras,
                }
                for run in runs
            ],
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"\nwrote {args.json}")
    return 0


def _trace_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro trace",
        description="Run a reduction under the structured tracer and "
                    "export the trace.",
    )
    p.add_argument("--workload", choices=("benzil", "bixbyite"), default="benzil",
                   help="use case: Benzil/CORELLI or Bixbyite/TOPAZ")
    p.add_argument("--impl", choices=("core", "garnet", "cpp", "minivates"),
                   default="core", help="implementation to trace")
    p.add_argument("--scale", type=float, default=None,
                   help="event/detector scale vs the paper (default REPRO_SCALE or 0.002)")
    p.add_argument("--files", type=int, default=None,
                   help="number of run files to synthesize/measure")
    p.add_argument("--backend", default=None,
                   help="jacc back end for --impl core (serial|threads|vectorized)")
    p.add_argument("--ranks", type=int, default=1,
                   help="simulated MPI world size (core/cpp/minivates)")
    p.add_argument("--out", metavar="PATH", default="trace.jsonl",
                   help="JSON-lines trace output path")
    p.add_argument("--chrome", metavar="PATH", default=None,
                   help="also write a chrome://tracing / Perfetto file")
    p.add_argument("--label", default=None, help="trace label (meta record)")
    p.add_argument("--validate", action="store_true",
                   help="validate the written file against the schema")
    p.add_argument("--summary", dest="summary", action="store_true",
                   default=True, help="print the WCT summary (default)")
    p.add_argument("--no-summary", dest="summary", action="store_false")
    _add_recovery_flags(p)
    return p


def trace_main(argv: Optional[List[str]] = None) -> int:
    """``repro trace``: one traced reduction -> JSON-lines (+ summary)."""
    from repro.bench.workloads import benzil_corelli, bixbyite_topaz, build_workload
    from repro.util import trace as trace_mod

    args = _trace_parser().parse_args(argv)
    make_spec = benzil_corelli if args.workload == "benzil" else bixbyite_topaz
    spec = make_spec(scale=args.scale, n_files=args.files)
    print(spec.describe())
    data = build_workload(spec)

    tracer = trace_mod.Tracer(
        label=args.label or f"{args.workload}/{args.impl}"
    )

    recovery = (None if args.impl == "garnet"
                else _recovery_for(args, args.impl, data))

    def run_one(comm=None) -> None:
        if args.impl == "core":
            from repro.core.workflow import ReductionWorkflow, WorkflowConfig

            cfg = WorkflowConfig(
                md_paths=data.md_paths,
                flux_path=data.flux_path,
                vanadium_path=data.vanadium_path,
                instrument=data.instrument,
                grid=data.grid,
                point_group=data.point_group,
                backend=args.backend,
                recovery=recovery,
            )
            ReductionWorkflow(cfg).run(comm)
        elif args.impl == "cpp":
            from repro.proxy.cpp_proxy import CppProxyConfig, CppProxyWorkflow

            cfg = CppProxyConfig(
                md_paths=data.md_paths,
                flux_path=data.flux_path,
                vanadium_path=data.vanadium_path,
                instrument=data.instrument,
                grid=data.grid,
                point_group=data.point_group,
                recovery=recovery,
            )
            CppProxyWorkflow(cfg).run(comm)
        elif args.impl == "minivates":
            from repro.proxy.minivates import MiniVatesConfig, MiniVatesWorkflow

            cfg = MiniVatesConfig(
                md_paths=data.md_paths,
                flux_path=data.flux_path,
                vanadium_path=data.vanadium_path,
                instrument=data.instrument,
                grid=data.grid,
                point_group=data.point_group,
                recovery=recovery,
            )
            MiniVatesWorkflow(cfg).run(comm)
        else:  # garnet (no simulated-MPI support: multiprocess model)
            from repro.bench.harness import run_garnet

            run_garnet(data)

    fault_ctx, fault_plan = _fault_plan_context(args)
    with trace_mod.use_tracer(tracer), fault_ctx:
        if args.ranks > 1 and args.impl != "garnet":
            from repro.mpi.runner import run_world

            run_world(args.ranks, run_one)
        else:
            run_one()
    if fault_plan is not None:
        print(f"fault plan {fault_plan.label or args.faults}: "
              f"{fault_plan.stats()}")

    n = tracer.write_jsonl(args.out)
    print(f"\nwrote {n} records to {args.out}")
    if args.chrome:
        n_events = tracer.write_chrome_trace(args.chrome)
        print(f"wrote {n_events} trace events to {args.chrome} "
              f"(load in chrome://tracing or ui.perfetto.dev)")
    if args.validate:
        from repro.util.trace import validate_file

        inventory = validate_file(args.out)
        print(f"validated {args.out}: schema {inventory['schema']}, "
              f"{inventory['n_spans']} spans, ranks {inventory['ranks']}, "
              f"{len(inventory['counters'])} counters")
    if args.summary:
        print()
        print(tracer.summary())
    return 0


def repro_main(argv: Optional[List[str]] = None) -> int:
    """``repro <subcommand>``: the umbrella entry point.

    Subcommands: ``reduce`` (the classic ``repro-reduce`` CLI) and
    ``trace`` (traced reduction + JSON-lines/Chrome export).
    """
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print("usage: repro {reduce,trace} [options]\n"
              "  reduce  run a reduction and print stage timings\n"
              "  trace   run a traced reduction and export the trace\n"
              "run `repro <subcommand> --help` for options")
        return 0 if argv else 2
    cmd, rest = argv[0], argv[1:]
    if cmd == "reduce":
        return main(rest)
    if cmd == "trace":
        return trace_main(rest)
    print(f"repro: unknown subcommand {cmd!r} (expected reduce|trace)",
          file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main())
