"""``repro-reduce`` / ``repro``: command-line entry points.

``repro-reduce`` (also ``repro reduce``) synthesizes (or reuses) a
workload and runs a chosen implementation of the cross-section
reduction, printing the paper-style stage timings.  ``repro trace``
runs a reduction under the structured tracer and writes the JSON-lines
trace (optionally a Chrome-trace file), then prints the paper-style
WCT summary derived from the trace alone.

Examples::

    repro-reduce --workload benzil --impl minivates --scale 0.001
    repro-reduce --workload bixbyite --impl garnet --files 2
    repro-reduce --workload benzil --impl all --files 6
    repro trace --workload benzil --impl core --ranks 2 \\
        --out trace.jsonl --chrome trace_chrome.json --validate
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
from typing import List, Optional

from repro.bench.harness import (
    A100_PROFILE,
    MI100_PROFILE,
    MeasuredRun,
    assert_results_match,
    run_cpp_proxy,
    run_garnet,
    run_minivates,
)
from repro.bench.workloads import benzil_corelli, bixbyite_topaz, build_workload


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-reduce",
        description="Run the cross-section reduction on a synthetic workload.",
    )
    p.add_argument("--workload", choices=("benzil", "bixbyite"), default="benzil",
                   help="use case: Benzil/CORELLI or Bixbyite/TOPAZ")
    p.add_argument("--impl", choices=("garnet", "cpp", "minivates", "all"),
                   default="minivates", help="implementation to run")
    p.add_argument("--scale", type=float, default=None,
                   help="event/detector scale vs the paper (default REPRO_SCALE or 0.002)")
    p.add_argument("--files", type=int, default=None,
                   help="number of run files to synthesize/measure")
    p.add_argument("--device-profile", choices=("a100", "mi100"), default="a100",
                   help="MiniVATES device profile")
    p.add_argument("--check", action="store_true",
                   help="with --impl all: assert all implementations agree")
    p.add_argument("--json", metavar="PATH", default=None,
                   help="also write timings and histogram statistics as JSON")
    p.add_argument("--peaks", type=int, default=0, metavar="N",
                   help="report the N strongest peaks of the cross-section")
    p.add_argument("--save", metavar="PATH", default=None,
                   help="write the reduced cross-section (with provenance) "
                        "to a reduced-data file")
    p.add_argument("--render", action="store_true",
                   help="render the cross-section slice as ASCII art")
    p.add_argument("--plan", metavar="PLAN_JSON", default=None,
                   help="run a reduction plan file instead of a synthetic "
                        "workload (ignores --workload/--impl/--scale/--files)")
    _add_oocore_flags(p, with_budget=False)
    _add_recovery_flags(p)
    _add_monitor_flags(p)
    return p


def _add_monitor_flags(p: argparse.ArgumentParser) -> None:
    g = p.add_argument_group("monitoring")
    g.add_argument("--metrics-file", metavar="PATH", default=None,
                   help="expose live campaign gauges (heartbeats, ETA, "
                        "quarantine) as an OpenMetrics text file, "
                        "atomically rewritten on progress; watch it with "
                        "`repro perf watch --metrics-file PATH`")
    g.add_argument("--stall-deadline", type=float, default=None,
                   metavar="SECONDS",
                   help="seconds without progress before a rank counts "
                        "as stalled (default 30)")


def _monitor_context(args, label: str):
    """``use_monitor`` context for ``--metrics-file`` (no-op without)."""
    if not getattr(args, "metrics_file", None):
        return contextlib.nullcontext(), None
    from repro.util import monitor as monitor_mod

    kwargs = {"metrics_path": args.metrics_file}
    if getattr(args, "stall_deadline", None):
        kwargs["stall_deadline"] = float(args.stall_deadline)
    mon = monitor_mod.CampaignMonitor(label=label, **kwargs)
    return monitor_mod.use_monitor(mon), mon


def _parse_size(text: str) -> int:
    """Byte sizes with optional K/M/G suffix: ``65536``, ``64K``, ``2M``."""
    from repro.util.units import SizeParseError, parse_size

    try:
        return parse_size(text)
    except SizeParseError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _parse_chunk_events(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid chunk size {text!r} (expected a positive integer)"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"chunk size must be >= 1 event, got {text!r}"
        )
    return value


def _add_oocore_flags(
    p: argparse.ArgumentParser, *, with_budget: bool = True
) -> None:
    g = p.add_argument_group("out-of-core storage")
    g.add_argument("--chunk-events", type=_parse_chunk_events, default=None,
                   metavar="N",
                   help="store the synthesized run files as independently "
                        "compressed, CRC-checked chunks of N events "
                        "(h5lite format v2) instead of one contiguous "
                        "payload; changes the workload cache key")
    if with_budget:
        g.add_argument("--memory-budget", type=_parse_size, default=None,
                       metavar="BYTES",
                       help="decoded-chunk tile-cache budget per run "
                            "(suffixes K/M/G); the core workflow then "
                            "reduces each run out of core through bounded "
                            "event windows instead of materializing the "
                            "table (requires --chunk-events run files; "
                            "--impl core only)")


def _add_shard_flags(p: argparse.ArgumentParser) -> None:
    g = p.add_argument_group("intra-run sharding (--impl core)")
    g.add_argument("--shards", type=int, default=None, metavar="N",
                   help="fan each run's MDNorm out over N detector shards "
                        "and its BinMD over N event shards on the local "
                        "process pool (bit-identical for every N)")
    g.add_argument("--shard-workers", type=int, default=None, metavar="W",
                   help="process-pool width for the shard fan-out "
                        "(default REPRO_NUM_PROCS or the CPU count)")
    g.add_argument("--executor", choices=("static", "stealing"),
                   default=None,
                   help="campaign executor: the fixed rank-block plan "
                        "(static, default) or elastic work-stealing over "
                        "the rank x shard grid (bit-identical results "
                        "for every steal schedule)")
    g.add_argument("--steal-seed", type=int, default=0, metavar="SEED",
                   help="seed of the steal schedule (--executor stealing)")


def _add_recovery_flags(p: argparse.ArgumentParser) -> None:
    g = p.add_argument_group("resilience")
    g.add_argument("--faults", metavar="PLAN_JSON", default=None,
                   help="inject faults per this JSON fault plan "
                        "(see repro.util.faults.FaultPlan)")
    g.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                   help="persist per-run deltas under DIR/<impl> so an "
                        "interrupted campaign can --resume")
    g.add_argument("--resume", action="store_true",
                   help="resume from --checkpoint-dir (completed runs "
                        "replay from disk, bit-identically)")


def _fault_plan_context(args):
    """``use_fault_plan`` context for ``--faults`` (no-op without it)."""
    if not getattr(args, "faults", None):
        return contextlib.nullcontext(), None
    from repro.util import faults as faults_mod

    plan = faults_mod.FaultPlan.from_file(args.faults)
    return faults_mod.use_fault_plan(plan), plan


def _recovery_for(args, impl: str, data):
    """Build the RecoveryConfig the resilience flags ask for (or None)."""
    if not (getattr(args, "faults", None) or getattr(args, "checkpoint_dir", None)
            or getattr(args, "resume", False)):
        return None
    from repro.core.checkpoint import (
        CheckpointManager,
        RecoveryConfig,
        campaign_digest,
    )

    if args.resume and not args.checkpoint_dir:
        raise SystemExit("--resume requires --checkpoint-dir")
    ckpt = None
    if args.checkpoint_dir:
        digest = campaign_digest(
            impl=impl,
            workload=data.spec.key,
            n_files=len(data.md_paths),
            grid_bins=list(data.grid.bins),
        )
        ckpt = CheckpointManager(
            os.path.join(args.checkpoint_dir, impl),
            config_digest=digest,
            grid=data.grid,
        )
    return RecoveryConfig(checkpoint=ckpt, resume=bool(args.resume))


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)

    if args.plan:
        from repro.core.plan import load_plan, run_plan

        plan = load_plan(args.plan)
        print(f"running plan {args.plan} "
              f"({len(plan.runs)} runs, impl={plan.implementation})")
        result = run_plan(plan)
        print(result.timings.summary())
        if result.cross_section is not None:
            print(f"cross-section: {result.cross_section!r}")
        if args.save and result.cross_section is not None:
            from repro.core.output import save_reduced

            save_reduced(args.save, result, notes=f"plan {args.plan}")
            print(f"wrote reduced data to {args.save}")
        return 0

    make_spec = benzil_corelli if args.workload == "benzil" else bixbyite_topaz
    spec = make_spec(scale=args.scale, n_files=args.files,
                     chunk_events=args.chunk_events)
    print(spec.describe())
    data = build_workload(spec)
    profile = A100_PROFILE if args.device_profile == "a100" else MI100_PROFILE

    fault_ctx, fault_plan = _fault_plan_context(args)
    monitor_ctx, monitor = _monitor_context(
        args, f"{args.workload}/{args.impl}"
    )
    runs: List[MeasuredRun] = []
    with fault_ctx, monitor_ctx:
        if args.impl in ("garnet", "all"):
            if args.impl == "garnet" and (args.faults or args.checkpoint_dir):
                print("note: the garnet baseline runs without the recovery "
                      "layer (--faults/--checkpoint-dir ignored)")
            runs.append(run_garnet(data))
        if args.impl in ("cpp", "all"):
            runs.append(run_cpp_proxy(
                data, recovery=_recovery_for(args, "cpp", data)))
        if args.impl in ("minivates", "all"):
            runs.append(run_minivates(
                data, profile=profile,
                recovery=_recovery_for(args, "minivates", data)))

    for run in runs:
        print()
        print(f"== {run.label} ==")
        print(run.timings.summary())
        if run.result.cross_section is not None:
            print(f"cross-section: {run.result.cross_section!r}")
        if run.result.degraded:
            print(f"DEGRADED: quarantined runs {run.result.quarantined_runs}")
        rec_info = (run.result.extras or {}).get("recovery")
        if rec_info:
            print(f"recovery: {rec_info}")
        if run.extras:
            print(f"device stats: {run.extras}")
    if fault_plan is not None:
        print(f"\nfault plan {fault_plan.label or args.faults}: "
              f"{fault_plan.stats()}")
    if monitor is not None:
        print(f"\ncampaign metrics written to {args.metrics_file} "
              f"(see `repro perf watch --metrics-file {args.metrics_file}`)")

    if args.peaks > 0 and runs and runs[-1].result.cross_section is not None:
        from repro.core.peaks import find_peaks

        peaks = find_peaks(runs[-1].result.binmd).strongest(args.peaks)
        print(f"\nstrongest {peaks.n_peaks} peaks (H, K, L -> intensity):")
        for hkl, intensity in zip(peaks.hkl, peaks.intensity):
            print(f"  ({hkl[0]:+6.2f}, {hkl[1]:+6.2f}, {hkl[2]:+6.2f})"
                  f"  ->  {intensity:.4g}")

    if args.render and runs and runs[-1].result.binmd is not None:
        from repro.core.render import render_hist

        print()
        print(render_hist(runs[-1].result.binmd))

    if args.save and runs and runs[-1].result.cross_section is not None:
        from repro.core.output import save_reduced

        save_reduced(args.save, runs[-1].result,
                     notes=f"repro-reduce {args.workload}/{args.impl}")
        print(f"\nwrote reduced data to {args.save}")

    if args.check and len(runs) > 1:
        for other in runs[1:]:
            assert_results_match(runs[0], other)
        print("\nall implementations produced identical histograms")

    if args.json:
        import json

        payload = {
            "workload": spec.describe(),
            "runs": [
                {
                    "label": run.label,
                    "files_measured": run.files_measured,
                    "stages_s": {
                        stage: run.timings.seconds(stage)
                        for stage in ("UpdateEvents", "MDNorm", "BinMD",
                                      "MDNorm + BinMD", "Total")
                    },
                    "binmd_total": run.result.binmd.total(),
                    "mdnorm_total": run.result.mdnorm.total(),
                    "coverage": run.result.binmd.nonzero_fraction(),
                    "extras": run.extras,
                }
                for run in runs
            ],
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"\nwrote {args.json}")
    return 0


def _trace_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro trace",
        description="Run a reduction under the structured tracer and "
                    "export the trace.",
    )
    p.add_argument("--workload", choices=("benzil", "bixbyite"), default="benzil",
                   help="use case: Benzil/CORELLI or Bixbyite/TOPAZ")
    p.add_argument("--impl", choices=("core", "garnet", "cpp", "minivates"),
                   default="core", help="implementation to trace")
    p.add_argument("--scale", type=float, default=None,
                   help="event/detector scale vs the paper (default REPRO_SCALE or 0.002)")
    p.add_argument("--files", type=int, default=None,
                   help="number of run files to synthesize/measure")
    p.add_argument("--backend", default=None,
                   help="jacc back end for --impl core "
                        "(serial|threads|vectorized|multiprocess|fused)")
    p.add_argument("--ranks", type=int, default=1,
                   help="simulated MPI world size (core/cpp/minivates)")
    _add_shard_flags(p)
    _add_oocore_flags(p)
    p.add_argument("--out", metavar="PATH", default="trace.jsonl",
                   help="JSON-lines trace output path")
    p.add_argument("--out-dir", metavar="DIR", default=None,
                   help="also write one trace file per rank stream under "
                        "DIR (the real-MPI layout `repro trace merge` "
                        "stitches back together)")
    p.add_argument("--chrome", metavar="PATH", default=None,
                   help="also write a chrome://tracing / Perfetto file")
    p.add_argument("--label", default=None, help="trace label (meta record)")
    p.add_argument("--validate", action="store_true",
                   help="validate the written file against the schema")
    p.add_argument("--summary", dest="summary", action="store_true",
                   default=True, help="print the WCT summary (default)")
    p.add_argument("--no-summary", dest="summary", action="store_false")
    _add_recovery_flags(p)
    return p


def _run_impl(
    impl: str,
    data,
    *,
    backend: Optional[str] = None,
    recovery=None,
    comm=None,
    shards: Optional[int] = None,
    shard_workers: Optional[int] = None,
    memory_budget: Optional[int] = None,
    executor: Optional[str] = None,
    steal_seed: int = 0,
) -> None:
    """Run one implementation of the reduction on a built workload."""
    if shards is not None and impl != "core":
        raise SystemExit(
            f"--shards applies to --impl core only (got {impl!r}); "
            f"the proxies own their parallelism"
        )
    if memory_budget is not None and impl != "core":
        raise SystemExit(
            f"--memory-budget applies to --impl core only (got {impl!r}); "
            f"the proxies materialize the event table"
        )
    if executor not in (None, "static") and impl != "core":
        raise SystemExit(
            f"--executor applies to --impl core only (got {impl!r}); "
            f"the proxies own their campaign loop"
        )
    if impl == "core":
        from repro.core.workflow import ReductionWorkflow, WorkflowConfig

        cfg = WorkflowConfig(
            md_paths=data.md_paths,
            flux_path=data.flux_path,
            vanadium_path=data.vanadium_path,
            instrument=data.instrument,
            grid=data.grid,
            point_group=data.point_group,
            backend=backend,
            recovery=recovery,
            shards=shards,
            shard_workers=shard_workers,
            memory_budget=memory_budget,
            executor=executor,
            steal_seed=steal_seed,
        )
        ReductionWorkflow(cfg).run(comm)
    elif impl == "cpp":
        from repro.proxy.cpp_proxy import CppProxyConfig, CppProxyWorkflow

        cfg = CppProxyConfig(
            md_paths=data.md_paths,
            flux_path=data.flux_path,
            vanadium_path=data.vanadium_path,
            instrument=data.instrument,
            grid=data.grid,
            point_group=data.point_group,
            recovery=recovery,
        )
        CppProxyWorkflow(cfg).run(comm)
    elif impl == "minivates":
        from repro.proxy.minivates import MiniVatesConfig, MiniVatesWorkflow

        cfg = MiniVatesConfig(
            md_paths=data.md_paths,
            flux_path=data.flux_path,
            vanadium_path=data.vanadium_path,
            instrument=data.instrument,
            grid=data.grid,
            point_group=data.point_group,
            recovery=recovery,
        )
        MiniVatesWorkflow(cfg).run(comm)
    else:  # garnet (no simulated-MPI support: multiprocess model)
        from repro.bench.harness import run_garnet

        run_garnet(data)


def trace_main(argv: Optional[List[str]] = None) -> int:
    """``repro trace``: one traced reduction -> JSON-lines (+ summary).

    ``repro trace summary`` (first positional token) instead summarizes
    or diffs previously written trace files without running anything.
    """
    from repro.bench.workloads import benzil_corelli, bixbyite_topaz, build_workload
    from repro.util import trace as trace_mod

    argv = list(sys.argv[1:] if argv is None else argv)
    if argv[:1] == ["summary"]:
        return trace_summary_main(argv[1:])
    if argv[:1] == ["merge"]:
        return trace_merge_main(argv[1:])
    if argv[:1] == ["crit"]:
        return trace_crit_main(argv[1:])
    if argv[:1] == ["dag"]:
        return trace_dag_main(argv[1:])
    if argv[:1] == ["chrome"]:
        return trace_chrome_main(argv[1:])
    args = _trace_parser().parse_args(argv)
    if args.memory_budget is not None and args.chunk_events is None:
        raise SystemExit("--memory-budget requires --chunk-events run files")
    make_spec = benzil_corelli if args.workload == "benzil" else bixbyite_topaz
    spec = make_spec(scale=args.scale, n_files=args.files,
                     chunk_events=args.chunk_events)
    print(spec.describe())
    data = build_workload(spec)

    # campaign id: stable config digest + per-invocation nonce, shared
    # by every per-rank trace file this run writes
    config_digest = (f"{args.workload}:{args.impl}:{args.backend or '-'}"
                     f":ranks={args.ranks}:shards={args.shards}")
    tracer = trace_mod.Tracer(
        label=args.label or f"{args.workload}/{args.impl}",
        campaign_id=trace_mod.new_campaign_id(config_digest),
    )

    recovery = (None if args.impl == "garnet"
                else _recovery_for(args, args.impl, data))

    def run_one(comm=None) -> None:
        _run_impl(args.impl, data, backend=args.backend,
                  recovery=recovery, comm=comm,
                  shards=args.shards, shard_workers=args.shard_workers,
                  memory_budget=args.memory_budget,
                  executor=args.executor, steal_seed=args.steal_seed)

    fault_ctx, fault_plan = _fault_plan_context(args)
    with trace_mod.use_tracer(tracer), fault_ctx:
        # one campaign root: every span of the invocation (pre/post
        # work, the world, all ranks) descends from it, so the merged
        # DAG is a single rooted tree
        with tracer.span("campaign", kind="campaign",
                         workload=args.workload, impl=args.impl,
                         ranks=int(args.ranks)):
            if args.ranks > 1 and args.impl != "garnet":
                from repro.mpi.runner import run_world

                run_world(args.ranks, run_one)
            else:
                run_one()
    if fault_plan is not None:
        print(f"fault plan {fault_plan.label or args.faults}: "
              f"{fault_plan.stats()}")

    n = tracer.write_jsonl(args.out)
    print(f"\nwrote {n} records to {args.out}")
    if args.out_dir:
        paths = tracer.write_jsonl_dir(args.out_dir)
        print(f"wrote {len(paths)} per-rank trace files to {args.out_dir} "
              f"(merge with `repro trace merge {args.out_dir}`)")
    if args.chrome:
        n_events = tracer.write_chrome_trace(args.chrome)
        print(f"wrote {n_events} trace events to {args.chrome} "
              f"(load in chrome://tracing or ui.perfetto.dev)")
    if args.validate:
        from repro.util.trace import validate_file

        inventory = validate_file(args.out)
        print(f"validated {args.out}: schema {inventory['schema']}, "
              f"{inventory['n_spans']} spans, ranks {inventory['ranks']}, "
              f"{len(inventory['counters'])} counters")
    if args.summary:
        print()
        print(tracer.summary())
    return 0


# ---------------------------------------------------------------------------
# repro trace summary
# ---------------------------------------------------------------------------

def _trace_summary_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro trace summary",
        description="Summarize (or diff) previously written JSON-lines "
                    "trace files without running anything.",
    )
    p.add_argument("files", nargs="*", metavar="TRACE_JSONL",
                   help="trace files to summarize (WCT table + derived "
                        "throughput + counters/gauges)")
    p.add_argument("--compare", nargs=2, metavar=("A_JSONL", "B_JSONL"),
                   default=None,
                   help="differential WCT + per-kernel throughput report "
                        "(ratios are B over A; < 1 means B is faster)")
    return p


def trace_summary_main(argv: Optional[List[str]] = None) -> int:
    """``repro trace summary``: offline trace summaries and diffs."""
    from repro.util import trace as trace_mod

    args = _trace_summary_parser().parse_args(argv)
    if args.compare:
        from repro.util.perf import compare_traces

        path_a, path_b = args.compare
        _, rec_a = trace_mod.load_file(path_a)
        _, rec_b = trace_mod.load_file(path_b)
        print(compare_traces(rec_a, rec_b, label_a=path_a, label_b=path_b))
        return 0
    if not args.files:
        print("repro trace summary: give trace files or --compare A B",
              file=sys.stderr)
        return 2
    for i, path in enumerate(args.files):
        meta, records = trace_mod.load_file(path)
        if i:
            print()
        print(trace_mod.summary_from_records(
            records, label=str(meta.get("label") or path)))
    return 0


# ---------------------------------------------------------------------------
# repro trace merge / crit / dag / chrome  (the campaign DAG tooling)
# ---------------------------------------------------------------------------

def _expand_trace_paths(paths: List[str]) -> List[str]:
    """Trace file arguments, with directories expanded to their
    ``*.jsonl`` members (the ``--out-dir`` / per-rank layout)."""
    import glob as _glob

    out: List[str] = []
    for p in paths:
        if os.path.isdir(p):
            members = sorted(_glob.glob(os.path.join(p, "*.jsonl")))
            if not members:
                raise SystemExit(f"no *.jsonl trace files under {p}")
            out.extend(members)
        else:
            out.append(p)
    if not out:
        raise SystemExit("no trace files given")
    return out


def _merge_dag(paths: List[str]):
    from repro.util import tracedag

    return tracedag.merge_files(_expand_trace_paths(paths))


def _add_crit_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--k", type=float, default=3.0,
                   help="anomaly threshold: median + k*IQR over sibling "
                        "spans (default 3.0)")
    p.add_argument("--min-ratio", type=float, default=1.5,
                   help="anomaly floor: flag only spans slower than "
                        "min-ratio * group median (default 1.5)")
    p.add_argument("--min-group", type=int, default=4,
                   help="minimum sibling group size to judge (default 4)")
    p.add_argument("--metrics-file", metavar="PATH", default=None,
                   help="publish repro_trace_critical_seconds / "
                        "repro_trace_anomalies gauges to this "
                        "OpenMetrics file")


def _publish_crit_gauges(dag, metrics_file: str, *,
                         k: float, min_ratio: float,
                         min_group: int) -> None:
    from repro.util.monitor import CampaignMonitor

    mon = CampaignMonitor(label="trace-crit", metrics_path=metrics_file)
    mon.set_gauge("trace_critical_seconds", dag.critical_seconds(),
                  campaign=dag.campaign_id)
    mon.set_gauge("trace_anomalies",
                  float(len(dag.anomalies(k=k, min_ratio=min_ratio,
                                          min_group=min_group))),
                  campaign=dag.campaign_id)
    mon.write_metrics()
    print(f"published trace gauges to {metrics_file}")


def trace_merge_main(argv: Optional[List[str]] = None) -> int:
    """``repro trace merge``: stitch per-process trace files into one
    validated causal DAG."""
    p = argparse.ArgumentParser(
        prog="repro trace merge",
        description="Merge per-rank/per-process JSON-lines trace files "
                    "into one campaign DAG and check its invariants.",
    )
    p.add_argument("paths", nargs="+", metavar="TRACE",
                   help="trace files and/or directories of *.jsonl")
    p.add_argument("--out", metavar="PATH", default=None,
                   help="write the merged DAG document (JSON)")
    p.add_argument("--no-spans", action="store_true",
                   help="omit the span table from --out (summary only)")
    args = p.parse_args(argv)
    from repro.util import tracedag

    dag = _merge_dag(args.paths)
    report = dag.validate()
    print(f"campaign {report['campaign_id']}: "
          f"{report['n_files']} files, {report['n_spans']} spans, "
          f"{report['n_links']} links "
          f"({report['n_steal_links']} steal), "
          f"ranks {report['ranks']}")
    print(f"roots: {report['roots']}"
          + (" [legacy schema, multi-root allowed]"
             if report["legacy"] else ""))
    print("DAG invariants: OK" if report["ok"] else "DAG invariants: FAIL")
    if args.out:
        tracedag.write_dag(args.out, dag,
                           include_spans=not args.no_spans)
        print(f"wrote merged DAG to {args.out}")
    return 0 if report["ok"] else 1


def trace_crit_main(argv: Optional[List[str]] = None) -> int:
    """``repro trace crit``: critical path + anomaly report of a merged
    campaign trace."""
    p = argparse.ArgumentParser(
        prog="repro trace crit",
        description="Critical-path / where-did-the-time-go report over "
                    "merged trace files.",
    )
    p.add_argument("paths", nargs="+", metavar="TRACE",
                   help="trace files and/or directories of *.jsonl")
    _add_crit_flags(p)
    args = p.parse_args(argv)
    dag = _merge_dag(args.paths)
    dag.validate()
    print(dag.crit_report(k=args.k, min_ratio=args.min_ratio,
                          min_group=args.min_group))
    if args.metrics_file:
        _publish_crit_gauges(dag, args.metrics_file, k=args.k,
                             min_ratio=args.min_ratio,
                             min_group=args.min_group)
    return 0


def trace_dag_main(argv: Optional[List[str]] = None) -> int:
    """``repro trace dag``: write the merged DAG document."""
    p = argparse.ArgumentParser(
        prog="repro trace dag",
        description="Merge trace files and write the campaign DAG "
                    "document (JSON).",
    )
    p.add_argument("paths", nargs="+", metavar="TRACE",
                   help="trace files and/or directories of *.jsonl")
    p.add_argument("--out", metavar="PATH", default="trace_dag.json",
                   help="output path (default trace_dag.json)")
    p.add_argument("--no-spans", action="store_true",
                   help="omit the span table (summary only)")
    args = p.parse_args(argv)
    from repro.util import tracedag

    dag = _merge_dag(args.paths)
    report = dag.validate()
    tracedag.write_dag(args.out, dag, include_spans=not args.no_spans)
    print(f"wrote campaign {report['campaign_id']} DAG "
          f"({report['n_spans']} spans) to {args.out}")
    return 0


def trace_chrome_main(argv: Optional[List[str]] = None) -> int:
    """``repro trace chrome``: one Perfetto file from many per-process
    trace files (pid/tid rows namespaced by (rank, pid))."""
    p = argparse.ArgumentParser(
        prog="repro trace chrome",
        description="Merge per-process trace files into one "
                    "chrome://tracing / Perfetto JSON file.",
    )
    p.add_argument("paths", nargs="+", metavar="TRACE",
                   help="trace files and/or directories of *.jsonl")
    p.add_argument("--out", metavar="PATH", default="trace_chrome.json",
                   help="output path (default trace_chrome.json)")
    args = p.parse_args(argv)
    from repro.util import trace as trace_mod

    traces = [trace_mod.load_file(path)
              for path in _expand_trace_paths(args.paths)]
    n = trace_mod.write_chrome_trace_merged(args.out, traces)
    print(f"wrote {n} trace events to {args.out} "
          f"(load in chrome://tracing or ui.perfetto.dev)")
    return 0


# ---------------------------------------------------------------------------
# repro perf
# ---------------------------------------------------------------------------

def _perf_add_workload_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--workload", choices=("benzil", "bixbyite"),
                   default="benzil",
                   help="use case: Benzil/CORELLI or Bixbyite/TOPAZ")
    p.add_argument("--scale", type=float, default=None,
                   help="event/detector scale vs the paper "
                        "(default REPRO_SCALE or 0.002)")
    p.add_argument("--files", type=int, default=None,
                   help="number of run files to synthesize/measure")


def _perf_add_bench_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--repeats", type=int, default=5,
                   help="timing repeats per stage (default 5)")
    p.add_argument("--backend", default="vectorized",
                   help="jacc back end for the timed panel "
                        "(serial|threads|vectorized|multiprocess|fused)")
    _add_shard_flags(p)
    _add_oocore_flags(p)
    p.add_argument("--name", default=None,
                   help="trajectory workload name "
                        "(default <workload>_smoke)")
    p.add_argument("--bench-file", metavar="PATH", default=None,
                   help="trajectory file (default "
                        "benchmarks/BENCH_<name>.json)")
    p.add_argument("--bench-dir", metavar="DIR", default=None,
                   help="directory for the default trajectory file")


def _perf_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro perf",
        description="Kernel-level profiling, benchmark trajectory "
                    "recording/regression gating, and live campaign "
                    "monitoring.",
    )
    sub = p.add_subparsers(dest="cmd", required=True)

    rep = sub.add_parser(
        "report", help="per-kernel derived-throughput tables")
    rep.add_argument("--trace", nargs="+", metavar="JSONL", default=None,
                     help="roll up existing trace files instead of running "
                          "a fresh panel")
    _perf_add_workload_flags(rep)
    rep.add_argument("--impl", choices=("core", "cpp", "minivates", "all"),
                     default="all", help="implementation(s) to profile")
    rep.add_argument("--backend", default=None,
                     help="jacc back end for --impl core")
    _add_shard_flags(rep)
    _add_oocore_flags(rep)

    roof = sub.add_parser("roofline", help="write roofline-model CSV")
    roof.add_argument("--trace", nargs="+", metavar="JSONL", default=None,
                      help="roll up existing trace files instead of running")
    _perf_add_workload_flags(roof)
    roof.add_argument("--impl", choices=("core", "cpp", "minivates", "all"),
                      default="all", help="implementation(s) to profile")
    roof.add_argument("--backend", default=None,
                      help="jacc back end for --impl core")
    roof.add_argument("--out", metavar="CSV", default="roofline.csv",
                      help="output CSV path (per-source suffix with "
                           "multiple sources)")

    recp = sub.add_parser(
        "record", help="append a benchmark entry to the trajectory file")
    _perf_add_workload_flags(recp)
    _perf_add_bench_flags(recp)

    chk = sub.add_parser(
        "check",
        help="gate current timings against the recorded trajectory "
             "(exit 1 on regression)")
    _perf_add_workload_flags(chk)
    _perf_add_bench_flags(chk)
    from repro.bench.regress import DEFAULT_K, DEFAULT_MIN_RATIO

    chk.add_argument("--k", type=float, default=DEFAULT_K,
                     help=f"IQR multiplier of the robust threshold "
                          f"(default {DEFAULT_K})")
    chk.add_argument("--min-ratio", type=float, default=DEFAULT_MIN_RATIO,
                     help=f"slowdown floor a regression must also exceed "
                          f"(default {DEFAULT_MIN_RATIO})")
    chk.add_argument("--any-fingerprint", action="store_true",
                     help="compare against entries from any machine, not "
                          "just this one")

    crit = sub.add_parser(
        "crit",
        help="critical-path + anomaly report over merged trace files")
    crit.add_argument("--trace", nargs="+", metavar="TRACE", required=True,
                      help="trace files and/or directories of *.jsonl")
    _add_crit_flags(crit)

    w = sub.add_parser(
        "watch", help="render the live campaign monitor metrics file")
    w.add_argument("--metrics-file", metavar="PATH", required=True,
                   help="OpenMetrics file written by --metrics-file on "
                        "`repro reduce`")
    w.add_argument("--follow", action="store_true",
                   help="keep re-rendering until interrupted")
    w.add_argument("--interval", type=float, default=2.0,
                   help="seconds between renders with --follow")
    w.add_argument("--iterations", type=int, default=0,
                   help="stop --follow after N renders (0 = until ^C)")
    return p


def _perf_models(args) -> List[tuple]:
    """``(label, PerfModel, records)`` per requested source."""
    from repro.util import trace as trace_mod
    from repro.util.perf import PerfModel

    if getattr(args, "trace", None):
        out = []
        for path in args.trace:
            _, records = trace_mod.load_file(path)
            out.append((path, PerfModel.from_records(records), records))
        return out

    make_spec = benzil_corelli if args.workload == "benzil" else bixbyite_topaz
    spec = make_spec(scale=args.scale, n_files=args.files,
                     chunk_events=getattr(args, "chunk_events", None))
    print(spec.describe())
    data = build_workload(spec)
    impls = (("core", "cpp", "minivates") if args.impl == "all"
             else (args.impl,))
    out = []
    for impl in impls:
        tracer = trace_mod.Tracer(label=f"{args.workload}/{impl}")
        with trace_mod.use_tracer(tracer):
            _run_impl(impl, data,
                      backend=args.backend if impl == "core" else None,
                      shards=(getattr(args, "shards", None)
                              if impl == "core" else None),
                      shard_workers=getattr(args, "shard_workers", None),
                      memory_budget=(getattr(args, "memory_budget", None)
                                     if impl == "core" else None),
                      executor=(getattr(args, "executor", None)
                                if impl == "core" else None),
                      steal_seed=getattr(args, "steal_seed", 0))
        out.append((impl, PerfModel.from_records(
            tracer.records,
            counters=tracer.counters,
            gauges=tracer.gauges,
        ), list(tracer.records)))
    return out


def _perf_bench_setup(args):
    """(workload name, recorder, samples) for record/check."""
    from repro.bench.regress import (
        BenchRecorder,
        collect_panel_samples,
        default_bench_path,
    )

    if args.memory_budget is not None and args.chunk_events is None:
        raise SystemExit("--memory-budget requires --chunk-events run files")
    make_spec = benzil_corelli if args.workload == "benzil" else bixbyite_topaz
    spec = make_spec(scale=args.scale, n_files=args.files,
                     chunk_events=args.chunk_events)
    print(spec.describe())
    data = build_workload(spec)
    name = args.name or f"{args.workload}_smoke"
    path = args.bench_file or default_bench_path(name, args.bench_dir)
    recorder = BenchRecorder(path, name)
    shard_note = f" shards={args.shards}" if args.shards else ""
    if args.memory_budget:
        shard_note += f" budget={args.memory_budget}B"
    executor = getattr(args, "executor", None)
    if executor not in (None, "static"):
        shard_note += f" executor={executor}"
    print(f"timing {args.repeats} repeats of the {args.backend} panel"
          f"{shard_note} ...")
    samples = collect_panel_samples(
        data, repeats=args.repeats, backend=args.backend,
        shards=args.shards, shard_workers=args.shard_workers,
        memory_budget=args.memory_budget,
        executor=executor, steal_seed=getattr(args, "steal_seed", 0),
    )
    config = {
        "scale": getattr(spec, "scale", None),
        "files": len(data.md_paths),
        "backend": args.backend,
        "shards": args.shards,
        "shard_workers": args.shard_workers,
        "chunk_events": args.chunk_events,
        "memory_budget": args.memory_budget,
        "executor": executor,
        "steal_seed": getattr(args, "steal_seed", 0),
    }
    return recorder, samples, config


def perf_main(argv: Optional[List[str]] = None) -> int:
    """``repro perf``: report / roofline / record / check / watch."""
    args = _perf_parser().parse_args(argv)

    if args.cmd == "report":
        from repro.util.perf import (
            service_summary,
            service_table,
            shard_summary,
            shard_table,
            steal_summary,
            steal_table,
        )

        models = _perf_models(args)
        for i, (label, model, records) in enumerate(models):
            if i or not getattr(args, "trace", None):
                print()
            print(model.table(title=f"{label}: per-kernel throughput"))
            cw = model.cold_warm_summary()
            if cw:
                pairs = "  ".join(f"{k}={v:g}" for k, v in sorted(cw.items()))
                print(f"  cold/warm: {pairs}")
            shards_info = shard_summary(records)
            if shards_info:
                print(shard_table(
                    shards_info, title=f"{label}: shard fan-out"))
            steal_info = steal_summary(records)
            if steal_info:
                print(steal_table(
                    steal_info, title=f"{label}: elastic stealing"))
            svc_info = service_summary(records)
            if svc_info:
                print(service_table(
                    svc_info, title=f"{label}: campaign service"))
        return 0

    if args.cmd == "roofline":
        models = _perf_models(args)
        for label, model, _records in models:
            if len(models) == 1:
                out = args.out
            else:
                root, ext = os.path.splitext(args.out)
                safe = os.path.basename(label).replace(".", "_")
                out = f"{root}_{safe}{ext or '.csv'}"
            with open(out, "w") as fh:
                fh.write(model.roofline_csv())
            print(f"wrote {out} ({model.n_kernels} kernels)")
        return 0

    if args.cmd == "record":
        recorder, samples, config = _perf_bench_setup(args)
        entry = recorder.record(samples, config=config)
        print(f"recorded entry ({entry['fingerprint']}, "
              f"git {entry['git_sha'][:12]}) -> {recorder.path}")
        for stage in ("UpdateEvents", "MDNorm", "BinMD", "Total"):
            st = entry["stages"].get(stage)
            if st:
                print(f"  {stage:<14s} median {st['median']:.4f} s "
                      f"iqr {st['iqr']:.4f} s (n={int(st['n'])})")
        print(f"trajectory now holds {len(recorder.entries)} entries")
        return 0

    if args.cmd == "check":
        from repro.bench.regress import check_against

        recorder, samples, _ = _perf_bench_setup(args)
        report = check_against(
            recorder, samples, k=args.k, min_ratio=args.min_ratio,
            any_fingerprint=args.any_fingerprint,
        )
        print(report.text())
        return report.exit_code

    if args.cmd == "crit":
        dag = _merge_dag(args.trace)
        dag.validate()
        print(dag.crit_report(k=args.k, min_ratio=args.min_ratio,
                              min_group=args.min_group))
        if args.metrics_file:
            _publish_crit_gauges(dag, args.metrics_file, k=args.k,
                                 min_ratio=args.min_ratio,
                                 min_group=args.min_group)
        return 0

    if args.cmd == "watch":
        import time as _time

        from repro.util.monitor import watch_report

        if not args.follow:
            print(watch_report(args.metrics_file))
            return 0
        n = 0
        try:
            while True:
                print(watch_report(args.metrics_file))
                n += 1
                if args.iterations and n >= args.iterations:
                    break
                print("-" * 60)
                _time.sleep(args.interval)
        except KeyboardInterrupt:
            pass
        return 0

    raise AssertionError(f"unhandled perf subcommand {args.cmd!r}")


# ---------------------------------------------------------------------------
# repro serve / submit / cancel / status  (the campaign service)
# ---------------------------------------------------------------------------

def _serve_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the multi-tenant campaign service over a file "
                    "spool (submit work with `repro submit`).",
    )
    p.add_argument("--spool", metavar="DIR", required=True,
                   help="spool directory (tickets/, cancel/, status.json)")
    p.add_argument("--root", metavar="DIR", default=None,
                   help="service state root: per-job checkpoints + the "
                        "content-addressed result store "
                        "(default <spool>/service)")
    p.add_argument("--workers", type=int, default=2,
                   help="concurrent job workers (default 2)")
    p.add_argument("--max-jobs", type=int, default=4, metavar="N",
                   help="per-tenant concurrent-job quota (default 4)")
    p.add_argument("--max-bytes", type=_parse_size, default=None,
                   metavar="SIZE",
                   help="per-tenant in-flight byte quota via the cost "
                        "model (suffixes K/M/G; default unbounded)")
    p.add_argument("--queue-depth", type=int, default=64, metavar="N",
                   help="global admission limit on non-terminal jobs "
                        "(default 64)")
    p.add_argument("--poll", type=float, default=0.2, metavar="SECONDS",
                   help="spool poll interval (default 0.2)")
    p.add_argument("--idle-exit", type=float, default=None,
                   metavar="SECONDS",
                   help="exit after the spool has been idle this long "
                        "(default: serve forever)")
    return p


def serve_main(argv: Optional[List[str]] = None) -> int:
    """``repro serve``: the spool-driven campaign service loop."""
    from repro.service.queue import AdmissionPolicy, TenantQuota
    from repro.service.spool import serve_spool

    args = _serve_parser().parse_args(argv)
    policy = AdmissionPolicy(
        max_queue_depth=args.queue_depth,
        default_quota=TenantQuota(
            max_jobs=args.max_jobs, max_bytes=args.max_bytes
        ),
    )
    print(f"serving spool {args.spool} "
          f"(workers={args.workers}, quota={args.max_jobs} jobs"
          + (f"/{args.max_bytes}B" if args.max_bytes else "") + ")")
    try:
        status = serve_spool(
            args.spool, args.root, policy=policy, workers=args.workers,
            poll_s=args.poll, idle_exit_s=args.idle_exit,
        )
    except KeyboardInterrupt:
        print("interrupted; drained")
        return 130
    jobs = status.get("jobs", [])
    by_state: dict = {}
    for j in jobs:
        by_state[j["state"]] = by_state.get(j["state"], 0) + 1
    summary = ", ".join(f"{k}={v}" for k, v in sorted(by_state.items()))
    print(f"served {len(jobs)} jobs ({summary or 'none'}); "
          f"store {status.get('store')}")
    return 0


def _submit_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro submit",
        description="Drop a campaign ticket into a service spool.",
    )
    p.add_argument("--spool", metavar="DIR", required=True)
    p.add_argument("--tenant", required=True,
                   help="tenant the job is accounted to")
    p.add_argument("--workload", choices=("benzil", "bixbyite"),
                   default="benzil")
    p.add_argument("--scale", type=float, default=None,
                   help="event/detector scale vs the paper")
    p.add_argument("--files", type=int, default=None,
                   help="number of run files")
    p.add_argument("--backend", default=None, help="jacc back end")
    p.add_argument("--shards", type=int, default=None,
                   help="intra-run shard count")
    p.add_argument("--executor", choices=("static", "stealing"),
                   default=None, help="campaign executor")
    p.add_argument("--priority", type=int, default=0,
                   help="higher runs earlier within the tenant")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="job deadline; expiry checkpoints and remains "
                        "resumable")
    p.add_argument("--faults", metavar="PLAN_JSON", default=None,
                   help="fault plan injected into this job only "
                        "(per-job isolation)")
    p.add_argument("--label", default="", help="free-form job label")
    return p


def submit_main(argv: Optional[List[str]] = None) -> int:
    """``repro submit``: write one ticket; prints the ticket id."""
    import json as _json

    from repro.service.spool import submit_ticket

    args = _submit_parser().parse_args(argv)
    payload = {
        "tenant": args.tenant,
        "workload": args.workload,
        "scale": args.scale,
        "files": args.files,
        "backend": args.backend,
        "shards": args.shards,
        "executor": args.executor,
        "priority": args.priority,
        "timeout_s": args.timeout,
        "label": args.label,
    }
    if args.faults:
        with open(args.faults) as fh:
            payload["faults"] = _json.load(fh)
    ticket_id = submit_ticket(args.spool, payload)
    print(ticket_id)
    return 0


def cancel_main(argv: Optional[List[str]] = None) -> int:
    """``repro cancel``: drop a cancel marker for a ticket/job id."""
    p = argparse.ArgumentParser(
        prog="repro cancel",
        description="Cooperatively cancel a submitted job: it stops "
                    "between runs, checkpointed and resumable.",
    )
    p.add_argument("--spool", metavar="DIR", required=True)
    p.add_argument("id", help="ticket id (from `repro submit`) or job id")
    args = p.parse_args(argv)
    from repro.service.spool import request_cancel

    request_cancel(args.spool, args.id)
    print(f"cancel requested for {args.id}")
    return 0


def status_main(argv: Optional[List[str]] = None) -> int:
    """``repro status``: render the server's published status."""
    import json as _json

    p = argparse.ArgumentParser(
        prog="repro status",
        description="Show the campaign service's last published status.",
    )
    p.add_argument("--spool", metavar="DIR", required=True)
    p.add_argument("--json", action="store_true",
                   help="print the raw status document")
    args = p.parse_args(argv)
    from repro.service.spool import read_status

    status = read_status(args.spool)
    if args.json:
        print(_json.dumps(status, indent=1, sort_keys=True))
        return 0
    if not status:
        print("no status published yet (is `repro serve` running?)")
        return 1
    jobs = status.get("jobs", [])
    print(f"jobs: {len(jobs)}  queue depth: {status.get('queue_depth')}  "
          f"draining: {status.get('draining')}")
    for j in jobs:
        extra = ""
        if j.get("error"):
            extra = f"  [{j['error']}]"
        res = j.get("result") or {}
        if res.get("provenance"):
            extra += f"  ({res['provenance']})"
        print(f"  {j['id']:<12s} {j['tenant']:<10s} {j['state']:<12s}"
              f"{extra}")
    rejected = status.get("rejected") or {}
    for tid, why in rejected.items():
        print(f"  {tid:<12s} {'-':<10s} rejected     "
              f"[{why.get('code')}: {why.get('detail')}]")
    store = status.get("store")
    if store:
        print(f"store: {store}")
    return 0


def repro_main(argv: Optional[List[str]] = None) -> int:
    """``repro <subcommand>``: the umbrella entry point.

    Subcommands: ``reduce`` (the classic ``repro-reduce`` CLI),
    ``trace`` (traced reduction + JSON-lines/Chrome export; ``trace
    summary`` for offline summaries and diffs), ``perf`` (kernel
    profiling report/roofline, benchmark trajectory record/check, live
    campaign watch) and the campaign service (``serve`` / ``submit`` /
    ``cancel`` / ``status``).
    """
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print("usage: repro {reduce,trace,perf,serve,submit,cancel,status} "
              "[options]\n"
              "  reduce  run a reduction and print stage timings\n"
              "  trace   run a traced reduction and export the trace\n"
              "          (trace summary|merge|crit|dag|chrome: offline\n"
              "          summaries, campaign-DAG merge, critical path,\n"
              "          merged Perfetto export)\n"
              "  perf    profile kernels, record/check benchmark\n"
              "          trajectories, watch a live campaign,\n"
              "          critical-path report (perf crit)\n"
              "  serve   run the multi-tenant campaign service on a spool\n"
              "  submit  drop a campaign ticket into a spool\n"
              "  cancel  cooperatively cancel a submitted job\n"
              "  status  show the service's published status\n"
              "run `repro <subcommand> --help` for options")
        return 0 if argv else 2
    cmd, rest = argv[0], argv[1:]
    if cmd == "reduce":
        return main(rest)
    if cmd == "trace":
        return trace_main(rest)
    if cmd == "perf":
        return perf_main(rest)
    if cmd == "serve":
        return serve_main(rest)
    if cmd == "submit":
        return submit_main(rest)
    if cmd == "cancel":
        return cancel_main(rest)
    if cmd == "status":
        return status_main(rest)
    print(f"repro: unknown subcommand {cmd!r} "
          f"(expected reduce|trace|perf|serve|submit|cancel|status)",
          file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main())
