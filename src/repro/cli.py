"""``repro-reduce``: command-line entry point.

Synthesizes (or reuses) a workload and runs a chosen implementation of
the cross-section reduction, printing the paper-style stage timings.

Examples::

    repro-reduce --workload benzil --impl minivates --scale 0.001
    repro-reduce --workload bixbyite --impl garnet --files 2
    repro-reduce --workload benzil --impl all --files 6
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.harness import (
    A100_PROFILE,
    MI100_PROFILE,
    MeasuredRun,
    assert_results_match,
    run_cpp_proxy,
    run_garnet,
    run_minivates,
)
from repro.bench.workloads import benzil_corelli, bixbyite_topaz, build_workload


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-reduce",
        description="Run the cross-section reduction on a synthetic workload.",
    )
    p.add_argument("--workload", choices=("benzil", "bixbyite"), default="benzil",
                   help="use case: Benzil/CORELLI or Bixbyite/TOPAZ")
    p.add_argument("--impl", choices=("garnet", "cpp", "minivates", "all"),
                   default="minivates", help="implementation to run")
    p.add_argument("--scale", type=float, default=None,
                   help="event/detector scale vs the paper (default REPRO_SCALE or 0.002)")
    p.add_argument("--files", type=int, default=None,
                   help="number of run files to synthesize/measure")
    p.add_argument("--device-profile", choices=("a100", "mi100"), default="a100",
                   help="MiniVATES device profile")
    p.add_argument("--check", action="store_true",
                   help="with --impl all: assert all implementations agree")
    p.add_argument("--json", metavar="PATH", default=None,
                   help="also write timings and histogram statistics as JSON")
    p.add_argument("--peaks", type=int, default=0, metavar="N",
                   help="report the N strongest peaks of the cross-section")
    p.add_argument("--save", metavar="PATH", default=None,
                   help="write the reduced cross-section (with provenance) "
                        "to a reduced-data file")
    p.add_argument("--render", action="store_true",
                   help="render the cross-section slice as ASCII art")
    p.add_argument("--plan", metavar="PLAN_JSON", default=None,
                   help="run a reduction plan file instead of a synthetic "
                        "workload (ignores --workload/--impl/--scale/--files)")
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)

    if args.plan:
        from repro.core.plan import load_plan, run_plan

        plan = load_plan(args.plan)
        print(f"running plan {args.plan} "
              f"({len(plan.runs)} runs, impl={plan.implementation})")
        result = run_plan(plan)
        print(result.timings.summary())
        if result.cross_section is not None:
            print(f"cross-section: {result.cross_section!r}")
        if args.save and result.cross_section is not None:
            from repro.core.output import save_reduced

            save_reduced(args.save, result, notes=f"plan {args.plan}")
            print(f"wrote reduced data to {args.save}")
        return 0

    make_spec = benzil_corelli if args.workload == "benzil" else bixbyite_topaz
    spec = make_spec(scale=args.scale, n_files=args.files)
    print(spec.describe())
    data = build_workload(spec)
    profile = A100_PROFILE if args.device_profile == "a100" else MI100_PROFILE

    runs: List[MeasuredRun] = []
    if args.impl in ("garnet", "all"):
        runs.append(run_garnet(data))
    if args.impl in ("cpp", "all"):
        runs.append(run_cpp_proxy(data))
    if args.impl in ("minivates", "all"):
        runs.append(run_minivates(data, profile=profile))

    for run in runs:
        print()
        print(f"== {run.label} ==")
        print(run.timings.summary())
        if run.result.cross_section is not None:
            print(f"cross-section: {run.result.cross_section!r}")
        if run.extras:
            print(f"device stats: {run.extras}")

    if args.peaks > 0 and runs and runs[-1].result.cross_section is not None:
        from repro.core.peaks import find_peaks

        peaks = find_peaks(runs[-1].result.binmd).strongest(args.peaks)
        print(f"\nstrongest {peaks.n_peaks} peaks (H, K, L -> intensity):")
        for hkl, intensity in zip(peaks.hkl, peaks.intensity):
            print(f"  ({hkl[0]:+6.2f}, {hkl[1]:+6.2f}, {hkl[2]:+6.2f})"
                  f"  ->  {intensity:.4g}")

    if args.render and runs and runs[-1].result.binmd is not None:
        from repro.core.render import render_hist

        print()
        print(render_hist(runs[-1].result.binmd))

    if args.save and runs and runs[-1].result.cross_section is not None:
        from repro.core.output import save_reduced

        save_reduced(args.save, runs[-1].result,
                     notes=f"repro-reduce {args.workload}/{args.impl}")
        print(f"\nwrote reduced data to {args.save}")

    if args.check and len(runs) > 1:
        for other in runs[1:]:
            assert_results_match(runs[0], other)
        print("\nall implementations produced identical histograms")

    if args.json:
        import json

        payload = {
            "workload": spec.describe(),
            "runs": [
                {
                    "label": run.label,
                    "files_measured": run.files_measured,
                    "stages_s": {
                        stage: run.timings.seconds(stage)
                        for stage in ("UpdateEvents", "MDNorm", "BinMD",
                                      "MDNorm + BinMD", "Total")
                    },
                    "binmd_total": run.result.binmd.total(),
                    "mdnorm_total": run.result.mdnorm.total(),
                    "coverage": run.result.binmd.nonzero_fraction(),
                    "extras": run.extras,
                }
                for run in runs
            ],
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
