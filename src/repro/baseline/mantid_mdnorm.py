"""Production-style MDNorm with the pre-improvement cost profile.

What the proxies improved, kept here on purpose:

* **linear searches**: every grid edge of every dimension is tested
  against the trajectory's momentum window one by one (the proxies use
  a region-of-interest strategy — two binary searches per dimension);
* **array-of-structs sort**: intersections are collected as Python
  ``(k, c0, c1, c2)`` tuples and sorted with the general-purpose
  ``list.sort`` (the proxies sort primitive index arrays);
* the cumulative flux table is interpolated by scanning from the start
  (linear), not bisecting.

Numerically identical to :func:`repro.core.mdnorm.mdnorm`; the
integration suite enforces it.
"""

from __future__ import annotations

import numpy as np

from repro.core.grid import HKLGrid
from repro.core.hist3 import Hist3
from repro.core.intersections import PARALLEL_EPS, k_window, trajectory_directions
from repro.nexus.corrections import FluxSpectrum
from repro.util.validation import require


def _linear_flux_lookup(flux_k: list, flux_cum: list, k: float) -> float:
    """Cumulative flux at ``k`` by scanning the table from the left."""
    if k <= flux_k[0]:
        return flux_cum[0]
    n = len(flux_k)
    for j in range(1, n):
        if k <= flux_k[j]:
            t = (k - flux_k[j - 1]) / (flux_k[j] - flux_k[j - 1])
            return flux_cum[j - 1] + t * (flux_cum[j] - flux_cum[j - 1])
    return flux_cum[-1]


def mantid_md_norm(
    hist: Hist3,
    transforms: np.ndarray,
    det_directions: np.ndarray,
    solid_angles: np.ndarray,
    flux: FluxSpectrum,
    momentum_band: tuple[float, float],
    *,
    charge: float = 1.0,
) -> Hist3:
    """Baseline MDNorm: accumulate one run's normalization into ``hist``."""
    transforms = np.asarray(transforms, dtype=np.float64)
    det_directions = np.asarray(det_directions, dtype=np.float64)
    solid_angles = np.asarray(solid_angles, dtype=np.float64)
    require(transforms.ndim == 3 and transforms.shape[1:] == (3, 3),
            "transforms must be (n_ops, 3, 3)")

    grid = hist.grid
    directions = trajectory_directions(transforms, det_directions)
    lo_all, hi_all = k_window(directions, grid, *momentum_band)
    edges = [grid.edges[axis].tolist() for axis in range(3)]
    flux_k = flux.momentum.tolist()
    flux_cum = flux._cumulative.tolist()

    n_ops, n_det = directions.shape[:2]
    for n in range(n_ops):
        for d in range(n_det):
            k_lo = float(lo_all[n, d])
            k_hi = float(hi_all[n, d])
            if not k_hi > k_lo:
                continue
            weight_det = float(solid_angles[d]) * charge
            if weight_det == 0.0:
                continue
            dvec = directions[n, d]
            d0, d1, d2 = float(dvec[0]), float(dvec[1]), float(dvec[2])

            # -- linear search over every edge of every dimension --------
            structs = [(k_lo, k_lo * d0, k_lo * d1, k_lo * d2)]
            for axis, di in ((0, d0), (1, d1), (2, d2)):
                if abs(di) <= PARALLEL_EPS:
                    continue
                for e in edges[axis]:
                    k = e / di
                    if k_lo < k < k_hi:
                        structs.append((k, k * d0, k * d1, k * d2))
            structs.append((k_hi, k_hi * d0, k_hi * d1, k_hi * d2))

            # -- array-of-structs sort -------------------------------------
            structs.sort(key=lambda s: s[0])

            # -- per-segment flux integral + histogram append --------------
            phi_lo = _linear_flux_lookup(flux_k, flux_cum, structs[0][0])
            for j in range(len(structs) - 1):
                a = structs[j][0]
                b = structs[j + 1][0]
                phi_hi = _linear_flux_lookup(flux_k, flux_cum, b)
                if b > a:
                    mid = 0.5 * (a + b)
                    w = (phi_hi - phi_lo) * weight_det
                    if w != 0.0:
                        hist.push(mid * d0, mid * d1, mid * d2, w)
                phi_lo = phi_hi
    return hist
