"""Production-style BinMD: array-of-structs, one event at a time.

The cost drivers this module keeps on purpose (they are what the
paper's proxies remove):

* events are Python tuples handled individually (array-of-structs);
* the transform is applied with interpreted scalar arithmetic per
  (op, event) pair;
* each transformed event is routed through the adaptive MDBox
  hierarchy *and* located in the output grid by a **linear search**
  over the bin edges of every dimension (generic boundary handling,
  no uniform-width fast path);
* the histogram bin is then incremented.

Outputs are numerically identical to :func:`repro.core.binmd.bin_events`
— the integration suite enforces it.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.baseline.mdbox import MDBox, MDBoxController, build_workspace_box
from repro.core.grid import HKLGrid
from repro.core.hist3 import Hist3
from repro.nexus.events import COL_ERROR_SQ, COL_QX, COL_QY, COL_QZ, COL_SIGNAL, EventTable
from repro.util.validation import require


def _linear_locate(edges: Sequence[float], value: float) -> int:
    """Find the bin of ``value`` by scanning the edges left to right.

    Returns -1 if the value lies outside [edges[0], edges[-1]).  This is
    the O(n_bins) search the proxies replace with a region-of-interest
    strategy.
    """
    if value < edges[0]:
        return -1
    for i in range(len(edges) - 1):
        if value < edges[i + 1]:
            return i
    return -1


def mantid_bin_md(
    hist: Hist3,
    events: EventTable,
    transforms: np.ndarray,
    *,
    box_controller: Optional[MDBoxController] = None,
    workspace_box: Optional[MDBox] = None,
) -> Hist3:
    """Baseline BinMD: accumulate ``events`` into ``hist`` per op.

    If ``box_controller`` is given (or a prebuilt ``workspace_box``),
    transformed events are also inserted into the MDBox hierarchy,
    reproducing the workspace-maintenance cost of the production path.
    """
    transforms = np.asarray(transforms, dtype=np.float64)
    require(transforms.ndim == 3 and transforms.shape[1:] == (3, 3),
            "transforms must be (n_ops, 3, 3)")
    grid = hist.grid
    edges0 = grid.edges[0].tolist()
    edges1 = grid.edges[1].tolist()
    edges2 = grid.edges[2].tolist()
    nb1, nb2 = grid.bins[1], grid.bins[2]
    signal = hist.flat_signal
    err_out = hist.flat_error_sq

    box = workspace_box
    if box is None and box_controller is not None:
        box = build_workspace_box(
            box_controller,
            [(grid.minimum[i], grid.maximum[i]) for i in range(3)],
        )

    # array-of-structs view: one Python tuple per event
    data = events.data
    structs = [
        (
            float(row[COL_SIGNAL]),
            float(row[COL_ERROR_SQ]),
            float(row[COL_QX]),
            float(row[COL_QY]),
            float(row[COL_QZ]),
        )
        for row in data
    ]

    for op in transforms:
        m00, m01, m02 = op[0]
        m10, m11, m12 = op[1]
        m20, m21, m22 = op[2]
        for sig, err, qx, qy, qz in structs:
            c0 = m00 * qx + m01 * qy + m02 * qz
            c1 = m10 * qx + m11 * qy + m12 * qz
            c2 = m20 * qx + m21 * qy + m22 * qz
            i0 = _linear_locate(edges0, c0)
            if i0 < 0:
                continue
            i1 = _linear_locate(edges1, c1)
            if i1 < 0:
                continue
            i2 = _linear_locate(edges2, c2)
            if i2 < 0:
                continue
            flat = (i0 * nb1 + i1) * nb2 + i2
            signal[flat] += sig
            if err_out is not None:
                err_out[flat] += err
            if box is not None:
                box.add_event((sig, err, c0, c1, c2))
    return hist
