"""Mantid's adaptive MDBox hierarchy.

Mantid stores MDEvents in a recursive tree: a leaf ``MDBox`` holds a
list of events; when it exceeds the split threshold the controller
replaces it with a grid of child boxes (``split_into`` per dimension)
and redistributes the events.  "Mantid's BinMD uses a more adaptive
strategy by having a hierarchy of boxes with equal numbers of events" —
the paper's proxies deliberately flatten this to a single box; the
baseline keeps it, so its traversal cost is part of what the proxies
remove.

This implementation is intentionally the production *shape*: events are
Python tuples (array-of-structs), insertion descends the tree one event
at a time, and splitting copies events into children.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.util.validation import ValidationError, require

#: an MDEvent struct: (signal, error_sq, c0, c1, c2)
BoxEvent = Tuple[float, float, float, float, float]


@dataclass
class MDBoxController:
    """Split policy shared by every box of one workspace."""

    split_threshold: int = 1000
    split_into: int = 5
    max_depth: int = 5

    def __post_init__(self) -> None:
        require(self.split_threshold >= 1, "split_threshold must be >= 1")
        require(self.split_into >= 2, "split_into must be >= 2")
        require(self.max_depth >= 0, "max_depth must be >= 0")


class MDBox:
    """One node of the hierarchy: leaf (events) or grid (children)."""

    __slots__ = ("controller", "lo", "hi", "depth", "events", "children", "_n")

    def __init__(
        self,
        controller: MDBoxController,
        lo: Tuple[float, float, float],
        hi: Tuple[float, float, float],
        depth: int = 0,
    ) -> None:
        for a, b in zip(lo, hi):
            if not b > a:
                raise ValidationError(f"degenerate box extent [{a}, {b}]")
        self.controller = controller
        self.lo = tuple(float(x) for x in lo)
        self.hi = tuple(float(x) for x in hi)
        self.depth = depth
        self.events: Optional[List[BoxEvent]] = []
        self.children: Optional[List["MDBox"]] = None
        self._n = 0

    # -- structure ---------------------------------------------------------
    @property
    def is_leaf(self) -> bool:
        return self.children is None

    @property
    def n_events(self) -> int:
        return self._n

    def contains(self, c0: float, c1: float, c2: float) -> bool:
        return (
            self.lo[0] <= c0 < self.hi[0]
            and self.lo[1] <= c1 < self.hi[1]
            and self.lo[2] <= c2 < self.hi[2]
        )

    def _child_index(self, c0: float, c1: float, c2: float) -> int:
        s = self.controller.split_into
        idx = 0
        for axis, c in enumerate((c0, c1, c2)):
            w = (self.hi[axis] - self.lo[axis]) / s
            i = int((c - self.lo[axis]) / w)
            if i == s:  # upper boundary
                i = s - 1
            idx = idx * s + i
        return idx

    def _split(self) -> None:
        s = self.controller.split_into
        children: List[MDBox] = []
        for i0 in range(s):
            for i1 in range(s):
                for i2 in range(s):
                    lo = []
                    hi = []
                    for axis, i in zip(range(3), (i0, i1, i2)):
                        w = (self.hi[axis] - self.lo[axis]) / s
                        lo.append(self.lo[axis] + i * w)
                        hi.append(self.lo[axis] + (i + 1) * w)
                    children.append(
                        MDBox(self.controller, tuple(lo), tuple(hi), self.depth + 1)
                    )
        assert self.events is not None
        events, self.events, self.children = self.events, None, children
        self._n = 0
        for ev in events:
            self.add_event(ev)

    # -- insertion -----------------------------------------------------------
    def add_event(self, event: BoxEvent) -> bool:
        """Insert one event struct; returns False if outside the box."""
        c0, c1, c2 = event[2], event[3], event[4]
        if not self.contains(c0, c1, c2):
            return False
        self._n += 1
        if self.children is not None:
            return self.children[self._child_index(c0, c1, c2)].add_event(event)
        assert self.events is not None
        self.events.append(event)
        if (
            len(self.events) > self.controller.split_threshold
            and self.depth < self.controller.max_depth
        ):
            self._split()
        return True

    # -- traversal -----------------------------------------------------------
    def leaves(self) -> Iterator["MDBox"]:
        if self.is_leaf:
            yield self
        else:
            assert self.children is not None
            for child in self.children:
                yield from child.leaves()

    def iter_events(self) -> Iterator[BoxEvent]:
        for leaf in self.leaves():
            assert leaf.events is not None
            yield from leaf.events

    def total_signal(self) -> float:
        return sum(ev[0] for ev in self.iter_events())

    def max_depth_used(self) -> int:
        return max(leaf.depth for leaf in self.leaves())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "leaf" if self.is_leaf else "grid"
        return f"MDBox({kind}, depth={self.depth}, events={self._n})"


def build_workspace_box(
    controller: MDBoxController,
    extent: Sequence[Tuple[float, float]],
) -> MDBox:
    """Root box covering the given per-dimension (lo, hi) extents."""
    lo = tuple(e[0] for e in extent)
    hi = tuple(e[1] for e in extent)
    return MDBox(controller, lo, hi, depth=0)
