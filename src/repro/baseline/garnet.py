"""Garnet: the production multiprocess reduction driver.

Garnet is the Python front end that drives Mantid for single-crystal
diffraction; it parallelizes over experiment runs with worker
*processes* (no threads, no GPUs, no multi-node).  This driver
reproduces that orchestration: each worker loads one raw NeXus run,
converts it to MDEvents, executes the baseline MDNorm + BinMD, and
ships its private histograms back to the parent, which sums them and
divides.  The per-task pickling of geometry and histograms is part of
the production cost profile and is deliberately kept.

With ``n_workers=1`` everything runs in-process (deterministic and
debuggable — and what the tests use); benchmarks may raise it.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baseline.mantid_binmd import mantid_bin_md
from repro.baseline.mantid_mdnorm import mantid_md_norm
from repro.core.cross_section import CrossSectionResult
from repro.core.grid import HKLGrid
from repro.core.hist3 import Hist3
from repro.core.md_event_workspace import convert_to_md
from repro.crystal.symmetry import PointGroup, point_group
from repro.instruments.detector import DetectorArray
from repro.nexus.corrections import FluxSpectrum
from repro.nexus.schema import read_event_nexus
from repro.util import trace as _trace
from repro.util.timers import StageTimings
from repro.util.validation import ValidationError, require


@dataclass
class GarnetConfig:
    """The production workflow's inputs: raw NeXus runs + corrections."""

    nexus_paths: Sequence[str]
    instrument: DetectorArray
    grid: HKLGrid
    point_group_symbol: str
    flux: FluxSpectrum
    #: per-detector solid angle x efficiency (vanadium weights)
    solid_angles: np.ndarray
    n_workers: int = 1

    def __post_init__(self) -> None:
        require(len(self.nexus_paths) >= 1, "need at least one run file")
        require(self.n_workers >= 1, "n_workers must be >= 1")
        point_group(self.point_group_symbol)  # validate eagerly


def _reduce_one_run(
    args: Tuple[str, GarnetConfig]
) -> Tuple[np.ndarray, np.ndarray, Dict[str, float]]:
    """Worker task: one run -> (binmd signal, mdnorm signal, stage seconds)."""
    path, cfg = args
    pg = point_group(cfg.point_group_symbol)
    stage: Dict[str, float] = {}

    t0 = time.perf_counter()
    run = read_event_nexus(path)
    ws = convert_to_md(run, cfg.instrument)
    stage["UpdateEvents"] = time.perf_counter() - t0
    if ws.ub_matrix is None:
        raise ValidationError(f"{path!r} carries no UB matrix")

    event_transforms = cfg.grid.transforms_for(ws.ub_matrix, pg)
    traj_transforms = cfg.grid.transforms_for(
        ws.ub_matrix, pg, goniometer=ws.goniometer
    )

    mdnorm_hist = Hist3(cfg.grid)
    t0 = time.perf_counter()
    mantid_md_norm(
        mdnorm_hist,
        traj_transforms,
        cfg.instrument.directions,
        cfg.solid_angles,
        cfg.flux,
        ws.momentum_band,
        charge=ws.proton_charge,
    )
    stage["MDNorm"] = time.perf_counter() - t0

    binmd_hist = Hist3(cfg.grid)
    t0 = time.perf_counter()
    mantid_bin_md(binmd_hist, ws.events, event_transforms)
    stage["BinMD"] = time.perf_counter() - t0
    return binmd_hist.signal, mdnorm_hist.signal, stage


class GarnetWorkflow:
    """The multiprocess production reduction."""

    def __init__(self, config: GarnetConfig) -> None:
        self.config = config

    def run(self, *, timings: Optional[StageTimings] = None) -> CrossSectionResult:
        cfg = self.config
        timings = timings or StageTimings(label="garnet-baseline")
        tasks = [(path, cfg) for path in cfg.nexus_paths]

        with _trace.active_tracer().span(
            "workflow",
            kind="workflow",
            implementation="garnet",
            n_runs=len(tasks),
            backend="garnet-multiprocess",
            n_workers=int(cfg.n_workers),
        ):
            total_t0 = time.perf_counter()
            if cfg.n_workers == 1:
                outputs = [_reduce_one_run(task) for task in tasks]
            else:
                with multiprocessing.Pool(processes=cfg.n_workers) as pool:
                    outputs = pool.map(_reduce_one_run, tasks)

            binmd_total = Hist3(cfg.grid)
            mdnorm_total = Hist3(cfg.grid)
            for binmd_signal, mdnorm_signal, stage in outputs:
                binmd_total.signal += binmd_signal
                mdnorm_total.signal += mdnorm_signal
                for name, seconds in stage.items():
                    t = timings.timer(name)
                    t.elapsed += seconds
                    t.ncalls += 1
                    timings.first_call.setdefault(name, seconds)

            cross = binmd_total.divide(mdnorm_total)
            total = timings.timer("Total")
            total.elapsed += time.perf_counter() - total_t0
            total.ncalls += 1
        return CrossSectionResult(
            cross_section=cross,
            binmd=binmd_total,
            mdnorm=mdnorm_total,
            timings=timings,
            n_runs=len(tasks),
            backend="garnet-multiprocess",
        )
