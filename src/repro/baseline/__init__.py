"""The Garnet/Mantid-style production baseline.

The paper benchmarks its proxies against "the current CPU-only
production implementation using the Garnet Python multiprocess package
based on the Mantid C++ framework" (Table II).  This subpackage
re-implements the *algorithms and data structures* that make that
implementation what it is — the cost drivers the proxies then remove:

* :mod:`repro.baseline.mdbox` — Mantid's adaptive MDBox hierarchy
  (recursive boxes holding equal-ish event counts);
* :mod:`repro.baseline.mantid_binmd` — BinMD over **array-of-structs**
  event objects, one interpreted iteration per (op, event), routing
  events through the box hierarchy;
* :mod:`repro.baseline.mantid_mdnorm` — MDNorm with the **linear
  searches** the proxies replace with a region-of-interest strategy,
  sorting an array of structs (tuples) instead of primitive indices;
* :mod:`repro.baseline.garnet` — the per-run multiprocess driver
  (LoadEventNexus -> ConvertToMD -> MDNorm + BinMD per run, reduced
  across workers).

In this Python reproduction the baseline's interpreted per-event /
per-struct execution plays the role of the production framework's
generic C++ paths: it is the slow, correct reference whose outputs all
proxies must match and whose wall-clock anchors every speedup ratio.
"""

from repro.baseline.mdbox import MDBox, MDBoxController
from repro.baseline.mantid_binmd import mantid_bin_md
from repro.baseline.mantid_mdnorm import mantid_md_norm
from repro.baseline.garnet import GarnetWorkflow, GarnetConfig

__all__ = [
    "MDBox",
    "MDBoxController",
    "mantid_bin_md",
    "mantid_md_norm",
    "GarnetWorkflow",
    "GarnetConfig",
]
