"""Cooperative cancellation and deadlines for long-running campaigns.

A :class:`CancelToken` is the handshake between a controller (the
campaign service, a signal handler, a drain sequence) and the code
doing the work (the recovering cross-section loop, the shard fan-out):
the controller calls :meth:`CancelToken.cancel` — or the token's
absolute deadline passes — and the worker notices at its next
:meth:`~CancelToken.check` and unwinds by raising
:class:`CancelledError` / :class:`DeadlineExpiredError`.

Cancellation is *cooperative and checkpoint-safe by construction*: the
instrumented loops only check between durable units of work (runs,
shards), so an interrupted campaign always leaves its completed units
checkpointed and resumable — resuming a cancelled campaign is
bit-identical to never having interrupted it (the PR 3 ascending-run
delta fold does not care why the first attempt stopped).

The clock is injectable so deadline tests need no real sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro.util.validation import ReproError


class CancelledError(ReproError):
    """The unit of work was cooperatively cancelled.

    Deliberately *not* an ``OSError``: the retry taxonomy must never
    treat cancellation as a transient failure to retry through.
    """

    def __init__(self, message: str, *, reason: str = "cancelled") -> None:
        super().__init__(message)
        self.reason = reason


class DeadlineExpiredError(CancelledError):
    """The token's absolute deadline passed before the work finished."""

    def __init__(self, message: str) -> None:
        super().__init__(message, reason="deadline")


class CancelToken:
    """A thread-safe cancel flag with an optional absolute deadline.

    ``deadline`` is an absolute timestamp on the token's ``clock``
    (default ``time.monotonic``); :meth:`with_timeout` builds one from
    a relative budget.  Tokens are single-use: once cancelled or
    expired they stay that way.
    """

    def __init__(
        self,
        *,
        deadline: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.clock = clock
        self.deadline = None if deadline is None else float(deadline)
        self._event = threading.Event()
        self._reason = ""

    @classmethod
    def with_timeout(
        cls,
        timeout_s: Optional[float],
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> "CancelToken":
        """A token expiring ``timeout_s`` seconds from now (None = no
        deadline)."""
        deadline = None if timeout_s is None else clock() + float(timeout_s)
        return cls(deadline=deadline, clock=clock)

    # -- controller side --------------------------------------------------
    def cancel(self, reason: str = "cancelled") -> None:
        """Request cancellation (idempotent; first reason wins)."""
        if not self._event.is_set():
            self._reason = reason or "cancelled"
            self._event.set()

    # -- worker side ------------------------------------------------------
    @property
    def cancel_requested(self) -> bool:
        return self._event.is_set()

    @property
    def expired(self) -> bool:
        return self.deadline is not None and self.clock() >= self.deadline

    @property
    def cancelled(self) -> bool:
        """True when the worker should stop (explicit cancel OR expiry)."""
        return self.cancel_requested or self.expired

    @property
    def reason(self) -> str:
        if self._event.is_set():
            return self._reason
        if self.expired:
            return "deadline"
        return ""

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (None = unbounded, min 0.0)."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - self.clock())

    def check(self, what: str = "campaign") -> None:
        """Raise if cancellation was requested or the deadline passed.

        This is the one call instrumented loops place between durable
        units of work.
        """
        if self._event.is_set():
            raise CancelledError(
                f"{what} cancelled: {self._reason}", reason=self._reason
            )
        if self.expired:
            raise DeadlineExpiredError(f"{what} deadline expired")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = ("cancelled" if self._event.is_set()
                 else "expired" if self.expired else "live")
        return f"CancelToken({state}, deadline={self.deadline})"


# ---------------------------------------------------------------------------
# ambient (thread-local) cancel scope
# ---------------------------------------------------------------------------
#
# Deep layers (the shard fan-out) should be cancellable without every
# intermediate signature growing a ``cancel=`` parameter.  The scope is
# thread-local on purpose: campaign-service jobs run in worker threads,
# and one job's cancellation must never leak into its neighbours.

_scope = threading.local()


def current_cancel() -> Optional[CancelToken]:
    """The innermost ambient token for this thread (None = none)."""
    return getattr(_scope, "token", None)


class cancel_scope:
    """Context manager installing ``token`` as the thread's ambient
    cancel token; restores the previous one on exit."""

    def __init__(self, token: Optional[CancelToken]) -> None:
        self._token = token
        self._prev: Optional[CancelToken] = None

    def __enter__(self) -> Optional[CancelToken]:
        self._prev = getattr(_scope, "token", None)
        _scope.token = self._token
        return self._token

    def __exit__(self, *exc: object) -> None:
        _scope.token = self._prev
