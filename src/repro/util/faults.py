"""Deterministic, seedable fault injection + retry/backoff machinery.

The paper's production setting — dozens of NeXus run files reduced
across MPI ranks on shared OLCF resources — is exactly the regime where
individual file loads, ranks or kernels fail mid-campaign.  This module
is the reproduction's *failure model*:

* a :class:`FaultPlan` describes **what** goes wrong (IO errors,
  corrupt/truncated payloads, slow reads, kernel exceptions, rank
  crashes), **where** (named *fault sites* such as
  ``"nexus.read_events"`` or ``"kernel.mdnorm"``), and **how often**
  (per-site probability with an optional total-injection budget);
* instrumented code declares sites by calling
  :func:`fault_point("nexus.read_events", run=i) <fault_point>`; with
  no active plan the call is a few-nanosecond no-op;
* injection is **deterministic**: every ``(site, rank)`` pair owns an
  independent PRNG stream seeded from ``(plan.seed, site, rank)``, so
  the same plan seed reproduces the same fault schedule — and therefore
  the same retry counts and quarantine set — across repeated runs and
  across thread interleavings of the in-process MPI world;
* :func:`retry_call` is the recovery half: per-site retry with
  exponential backoff + deterministic jitter and an optional deadline
  budget, raising :class:`RetryExhaustedError` (chaining the last
  failure) when the budget is spent so callers can quarantine.

Every injection and retry emits trace counters
(``fault.injected[.<site>.<kind>]``, ``retry.attempt[.<site>]``,
``retry.exhausted``) into :func:`repro.util.trace.active_tracer`, so
``repro trace`` summarizes recovery behaviour from the records alone.

An **ambient** plan may be installed process-wide via the
``REPRO_FAULT_PLAN`` environment variable (a JSON plan file) — this is
what the CI chaos job uses to run the whole tier-1 suite under
low-probability background faults.  Specs with ``scope="recovery"``
only fire inside a :func:`retry_call` attempt (i.e. where the pipeline
is armed to recover), which keeps ambient error injection honest
without failing unprotected code paths.
"""

from __future__ import annotations

import fnmatch
import hashlib
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.util import trace as _trace
from repro.util.validation import ReproError, require

#: every fault kind a spec may request
FAULT_KINDS = (
    "io_error",      # transient I/O failure (InjectedIOError, an OSError)
    "corrupt",       # payload checksum mismatch (CorruptFileError)
    "truncate",      # short read / truncated payload (TruncatedFileError)
    "slow",          # injected latency (sleeps, raises nothing)
    "kernel_error",  # kernel launch failure (InjectedKernelError)
    "rank_crash",    # the whole rank dies (RankCrashError, non-retryable)
)

#: fault-plan JSON schema version
PLAN_SCHEMA_VERSION = 1


class FaultError(ReproError):
    """Misconfigured fault plan or fault-machinery misuse."""


class InjectedFault(ReproError):
    """Base class of every exception raised by :func:`fault_point`."""

    def __init__(self, site: str, kind: str, seq: int) -> None:
        super().__init__(f"injected {kind} fault at {site!r} (hit #{seq})")
        self.site = site
        self.kind = kind
        self.seq = seq


class InjectedIOError(InjectedFault, OSError):
    """A transient I/O failure (retryable)."""


class InjectedKernelError(InjectedFault):
    """A kernel launch/execution failure (retryable)."""


class RankCrashError(InjectedFault):
    """The rank hosting this call dies (NOT retryable — the MPI layer
    redistributes the rank's remaining runs to survivors)."""


class RetryExhaustedError(ReproError):
    """A retryable unit failed on every attempt; ``__cause__`` is the
    last failure.  Callers quarantine the unit (or re-raise)."""

    def __init__(self, site: str, attempts: int, last: BaseException) -> None:
        super().__init__(
            f"{site!r} failed after {attempts} attempts: {last!r}"
        )
        self.site = site
        self.attempts = attempts
        self.last = last


# ---------------------------------------------------------------------------
# the plan
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FaultSpec:
    """One injection rule: *kind* at *site* with *probability*.

    ``site`` may be an exact site name or an ``fnmatch`` glob
    (``"kernel.*"``).  ``max_hits`` caps the total number of injections
    this spec performs (``None`` = unbounded).  ``ranks`` / ``runs``
    restrict injection to specific MPI ranks / run indices (matched
    against the ``rank``/``run`` context of the fault point).
    ``scope="recovery"`` restricts injection to call sites currently
    protected by :func:`retry_call` — the setting ambient chaos plans
    use so unprotected paths are never failed.
    """

    site: str
    kind: str
    probability: float = 1.0
    max_hits: Optional[int] = None
    delay_s: float = 0.0
    ranks: Optional[Tuple[int, ...]] = None
    runs: Optional[Tuple[int, ...]] = None
    scope: str = "any"

    def __post_init__(self) -> None:
        require(self.kind in FAULT_KINDS,
                f"unknown fault kind {self.kind!r} (expected one of {FAULT_KINDS})")
        require(0.0 <= self.probability <= 1.0,
                "fault probability must be in [0, 1]")
        require(self.scope in ("any", "recovery"),
                "fault scope must be 'any' or 'recovery'")
        require(self.delay_s >= 0.0, "delay_s must be >= 0")
        if self.max_hits is not None:
            require(self.max_hits >= 0, "max_hits must be >= 0")

    def matches(self, site: str, rank: Optional[int], run: Optional[int]) -> bool:
        if site != self.site and not fnmatch.fnmatchcase(site, self.site):
            return False
        if self.ranks is not None and (rank is None or rank not in self.ranks):
            return False
        if self.runs is not None and (run is None or run not in self.runs):
            return False
        return True

    def to_json(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"site": self.site, "kind": self.kind,
                               "probability": self.probability}
        if self.max_hits is not None:
            out["max_hits"] = self.max_hits
        if self.delay_s:
            out["delay_s"] = self.delay_s
        if self.ranks is not None:
            out["ranks"] = list(self.ranks)
        if self.runs is not None:
            out["runs"] = list(self.runs)
        if self.scope != "any":
            out["scope"] = self.scope
        return out

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "FaultSpec":
        return cls(
            site=doc["site"],
            kind=doc["kind"],
            probability=float(doc.get("probability", 1.0)),
            max_hits=doc.get("max_hits"),
            delay_s=float(doc.get("delay_s", 0.0)),
            ranks=tuple(doc["ranks"]) if doc.get("ranks") is not None else None,
            runs=tuple(doc["runs"]) if doc.get("runs") is not None else None,
            scope=doc.get("scope", "any"),
        )


def _stream_seed(seed: int, site: str, rank: Optional[int]) -> int:
    """Deterministic 64-bit seed of the ``(site, rank)`` draw stream."""
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(seed)).encode())
    h.update(b"\x00")
    h.update(site.encode())
    h.update(b"\x00")
    h.update(str(-1 if rank is None else int(rank)).encode())
    return int.from_bytes(h.digest(), "little")


class _LCG:
    """A tiny deterministic uniform stream (64-bit LCG, MMIX constants).

    Deliberately not ``random.Random``: the draw sequence is part of
    the fault plan's reproducibility contract, so it must be pinned to
    arithmetic we own, not a stdlib implementation detail.
    """

    __slots__ = ("state",)
    _A = 6364136223846793005
    _C = 1442695040888963407
    _M = 1 << 64

    def __init__(self, seed: int) -> None:
        self.state = seed % self._M

    def uniform(self) -> float:
        self.state = (self._A * self.state + self._C) % self._M
        return (self.state >> 11) / float(1 << 53)


class FaultPlan:
    """A deterministic fault schedule: specs + a seed + draw state.

    Thread-safe.  Every ``(site, rank)`` pair draws from its own stream,
    so concurrent MPI-rank threads cannot perturb each other's
    schedules.  :meth:`reset` rewinds all draw state (a fresh plan with
    the same seed is equivalent).
    """

    def __init__(self, specs: Sequence[FaultSpec], *, seed: int = 0,
                 label: str = "") -> None:
        self.specs = list(specs)
        self.seed = int(seed)
        self.label = label
        self._lock = threading.Lock()
        self._streams: Dict[Tuple[str, Optional[int]], _LCG] = {}
        self._hits: List[int] = [0] * len(self.specs)
        self._site_seq: Dict[str, int] = {}
        self.events: List[Dict[str, Any]] = []

    # -- draw machinery ---------------------------------------------------
    def reset(self) -> None:
        """Rewind all draw state (streams, budgets, recorded events)."""
        with self._lock:
            self._streams.clear()
            self._hits = [0] * len(self.specs)
            self._site_seq.clear()
            self.events.clear()

    def _stream(self, site: str, rank: Optional[int]) -> _LCG:
        key = (site, rank)
        stream = self._streams.get(key)
        if stream is None:
            stream = self._streams[key] = _LCG(
                _stream_seed(self.seed, site, rank)
            )
        return stream

    def draw(
        self,
        site: str,
        *,
        rank: Optional[int],
        run: Optional[int],
        in_recovery: bool,
    ) -> Optional[Tuple[FaultSpec, int]]:
        """One injection decision at ``site``; returns ``(spec, seq)``
        when a fault fires, advancing exactly one uniform draw per
        matching spec (first firing spec wins)."""
        with self._lock:
            fired: Optional[Tuple[FaultSpec, int]] = None
            for j, spec in enumerate(self.specs):
                if not spec.matches(site, rank, run):
                    continue
                if spec.scope == "recovery" and not in_recovery:
                    continue
                u = self._stream(site, rank).uniform()
                if fired is not None:
                    continue  # draws still advance: schedule is stable
                if self._hits[j] >= (spec.max_hits
                                     if spec.max_hits is not None else 1 << 62):
                    continue
                if u < spec.probability:
                    self._hits[j] += 1
                    seq = self._site_seq.get(site, 0) + 1
                    self._site_seq[site] = seq
                    self.events.append({
                        "site": site, "kind": spec.kind, "rank": rank,
                        "run": run, "seq": seq,
                    })
                    fired = (spec, seq)
            return fired

    # -- introspection ----------------------------------------------------
    def schedule_signature(self) -> Tuple[Tuple[str, str, Any, Any, int], ...]:
        """Hashable summary of every injection so far (for determinism
        assertions): ``(site, kind, rank, run, seq)`` per event, sorted
        (rank-thread completion order is not deterministic; the per-rank
        schedule is)."""
        with self._lock:
            return tuple(sorted(
                (e["site"], e["kind"],
                 -1 if e["rank"] is None else e["rank"],
                 -1 if e["run"] is None else e["run"], e["seq"])
                for e in self.events
            ))

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            by_site: Dict[str, int] = {}
            by_kind: Dict[str, int] = {}
            for e in self.events:
                by_site[e["site"]] = by_site.get(e["site"], 0) + 1
                by_kind[e["kind"]] = by_kind.get(e["kind"], 0) + 1
            return {"injected": len(self.events),
                    "by_site": by_site, "by_kind": by_kind}

    # -- (de)serialization -------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": PLAN_SCHEMA_VERSION,
            "seed": self.seed,
            "label": self.label,
            "specs": [s.to_json() for s in self.specs],
        }

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "FaultPlan":
        schema = doc.get("schema", PLAN_SCHEMA_VERSION)
        if schema != PLAN_SCHEMA_VERSION:
            raise FaultError(
                f"unsupported fault-plan schema {schema!r} "
                f"(expected {PLAN_SCHEMA_VERSION})"
            )
        return cls(
            [FaultSpec.from_json(s) for s in doc.get("specs", [])],
            seed=int(doc.get("seed", 0)),
            label=doc.get("label", ""),
        )

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        with open(path) as fh:
            try:
                doc = json.load(fh)
            except json.JSONDecodeError as exc:
                raise FaultError(f"{path}: not a JSON fault plan: {exc}") from exc
        plan = cls.from_json(doc)
        if not plan.label:
            plan.label = os.path.basename(path)
        return plan

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"FaultPlan(seed={self.seed}, specs={len(self.specs)}, "
                f"injected={len(self.events)})")


# ---------------------------------------------------------------------------
# active-plan management (+ the ambient env plan)
# ---------------------------------------------------------------------------

_UNSET = object()
_plan_lock = threading.Lock()
_active_plan: Any = _UNSET  # _UNSET -> lazily resolve REPRO_FAULT_PLAN
_thread_plan = threading.local()


def _ambient_from_env() -> Optional[FaultPlan]:
    path = os.environ.get("REPRO_FAULT_PLAN")
    if not path:
        return None
    return FaultPlan.from_file(path)


def active_plan() -> Optional[FaultPlan]:
    """The plan :func:`fault_point` currently consults (None = none).

    A thread-scoped plan (:func:`thread_fault_plan`) shadows the
    process-wide one — including shadowing it with ``None``.
    """
    override = getattr(_thread_plan, "plan", _UNSET)
    if override is not _UNSET:
        return override
    global _active_plan
    with _plan_lock:
        if _active_plan is _UNSET:
            _active_plan = _ambient_from_env()
        return _active_plan


def set_fault_plan(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install the process-wide plan (None disables injection)."""
    global _active_plan
    with _plan_lock:
        _active_plan = plan
        return plan


@contextmanager
def use_fault_plan(plan: Optional[FaultPlan]):
    """Install ``plan`` for a block, restoring the previous plan after."""
    global _active_plan
    with _plan_lock:
        prev = _active_plan
        _active_plan = plan
    try:
        yield plan
    finally:
        with _plan_lock:
            _active_plan = prev


@contextmanager
def thread_fault_plan(plan: Optional[FaultPlan]):
    """Install ``plan`` for the *calling thread only*.

    This is the campaign service's per-job fault scope: each job thread
    carries its own plan (or ``None``), so a poisoned job cannot inject
    faults into a neighbor running concurrently in the same process.
    The thread override shadows the process-wide plan; ``None``
    explicitly disables injection for the thread even when an ambient
    plan is installed.
    """
    prev = getattr(_thread_plan, "plan", _UNSET)
    _thread_plan.plan = plan
    try:
        yield plan
    finally:
        if prev is _UNSET:
            del _thread_plan.plan
        else:
            _thread_plan.plan = prev


# ---------------------------------------------------------------------------
# recovery scope (retry protection) + deadline propagation tracking
# ---------------------------------------------------------------------------

_recovery_ctx = threading.local()
_deadline_ctx = threading.local()


def current_deadline() -> Optional[float]:
    """The innermost enclosing retry deadline (absolute, on the clock
    of the :func:`retry_call` that installed it; None = unbounded)."""
    stack = getattr(_deadline_ctx, "stack", None)
    return stack[-1] if stack else None


@contextmanager
def deadline_scope(deadline: Optional[float]):
    """Clamp this thread's retry deadlines to ``deadline`` for a block.

    Scopes nest by *tightening only*: the effective deadline is the
    minimum of ``deadline`` and any enclosing scope, so an inner
    :func:`retry_call` — however generous its own policy — can never
    back off past the budget of the job that contains it.  Yields the
    effective (clamped) deadline.
    """
    stack = getattr(_deadline_ctx, "stack", None)
    if stack is None:
        stack = _deadline_ctx.stack = []
    outer = stack[-1] if stack else None
    if deadline is None:
        effective = outer
    elif outer is None:
        effective = float(deadline)
    else:
        effective = min(outer, float(deadline))
    stack.append(effective)
    try:
        yield effective
    finally:
        stack.pop()


def in_recovery() -> bool:
    """True while the calling thread executes a :func:`retry_call`
    attempt (i.e. failures here will be retried/quarantined)."""
    return getattr(_recovery_ctx, "depth", 0) > 0


@contextmanager
def recovery_scope():
    """Mark the calling thread as retry-protected for a block."""
    _recovery_ctx.depth = getattr(_recovery_ctx, "depth", 0) + 1
    try:
        yield
    finally:
        _recovery_ctx.depth -= 1


# ---------------------------------------------------------------------------
# the fault point
# ---------------------------------------------------------------------------

def _raise_fault(spec: FaultSpec, site: str, seq: int) -> None:
    kind = spec.kind
    if kind == "slow":
        time.sleep(spec.delay_s)
        return
    if kind == "io_error":
        raise InjectedIOError(site, kind, seq)
    if kind == "kernel_error":
        raise InjectedKernelError(site, kind, seq)
    if kind == "rank_crash":
        raise RankCrashError(site, kind, seq)
    # corrupt / truncate reuse the real on-disk error taxonomy so the
    # recovery path exercises exactly the handlers production reads hit
    from repro.nexus.h5lite import CorruptFileError, TruncatedFileError

    if kind == "corrupt":
        raise CorruptFileError(f"injected corrupt payload at {site!r} (hit #{seq})")
    raise TruncatedFileError(f"injected truncated payload at {site!r} (hit #{seq})")


def fault_point(site: str, **ctx: Any) -> None:
    """Declare a named fault site; inject per the active plan.

    ``ctx`` may carry ``rank`` and ``run`` for spec filtering (``rank``
    defaults to the thread's trace rank attribution).  No active plan →
    near-zero cost.
    """
    plan = active_plan()
    if plan is None:
        return
    rank = ctx.get("rank", _trace.current_rank())
    run = ctx.get("run")
    fired = plan.draw(
        site,
        rank=None if rank is None else int(rank),
        run=None if run is None else int(run),
        in_recovery=in_recovery(),
    )
    if fired is None:
        return
    spec, seq = fired
    tracer = _trace.active_tracer()
    tracer.count("fault.injected")
    tracer.count(f"fault.injected.{site}.{spec.kind}")
    _raise_fault(spec, site, seq)


# ---------------------------------------------------------------------------
# retry with exponential backoff + deterministic jitter
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RetryPolicy:
    """Per-site retry budget: attempts, backoff shape, wall deadline."""

    max_attempts: int = 4
    base_delay_s: float = 0.0
    multiplier: float = 2.0
    max_delay_s: float = 1.0
    #: jitter fraction in [0, 1): delay *= (1 + jitter * u)
    jitter: float = 0.5
    #: total wall budget across attempts (None = unbounded)
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        require(self.max_attempts >= 1, "max_attempts must be >= 1")
        require(self.base_delay_s >= 0.0, "base_delay_s must be >= 0")
        require(self.multiplier >= 1.0, "multiplier must be >= 1")
        require(0.0 <= self.jitter < 1.0, "jitter must be in [0, 1)")

    def delay(self, attempt: int, u: float) -> float:
        """Backoff before retry #``attempt`` (1-based), ``u`` in [0,1)."""
        raw = self.base_delay_s * (self.multiplier ** (attempt - 1))
        return min(self.max_delay_s, raw) * (1.0 + self.jitter * u)


#: the exception types retried by default (everything else propagates)
def default_retryable() -> Tuple[type, ...]:
    from repro.nexus.h5lite import H5LiteError

    return (OSError, H5LiteError, InjectedKernelError)


def retry_call(
    fn: Callable[[int], Any],
    *,
    site: str,
    policy: Optional[RetryPolicy] = None,
    retryable: Optional[Tuple[type, ...]] = None,
    on_retry: Optional[Callable[[BaseException, int], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
    deadline: Optional[float] = None,
    clock: Callable[[], float] = time.monotonic,
) -> Any:
    """Run ``fn(attempt)`` under the retry policy (attempt is 1-based).

    Non-retryable exceptions (including :class:`RankCrashError`)
    propagate immediately.  When the attempt/deadline budget is spent,
    :class:`RetryExhaustedError` is raised chaining the last failure.
    ``on_retry(exc, attempt)`` runs before each re-attempt (e.g. cache
    invalidation after a corrupt read).  Backoff jitter is drawn from a
    stream seeded by ``site``, so sleep schedules are reproducible.

    Deadline semantics: ``deadline`` is an *absolute* timestamp on
    ``clock``; the effective deadline is the minimum of it, the
    policy's relative ``deadline_s`` budget, and any *enclosing*
    :func:`retry_call` / :func:`deadline_scope` deadline on this thread
    — so a nested retry's backoff can never overshoot the budget of
    the call (or job) that contains it.  Backoff sleeps are clamped to
    the time remaining, and no re-attempt starts past the deadline.
    ``clock`` is injectable (with ``sleep``) so deadline behaviour is
    testable without real waiting.
    """
    policy = policy or RetryPolicy()
    if retryable is None:
        retryable = default_retryable()
    tracer = _trace.active_tracer()
    jitter_stream = _LCG(_stream_seed(0xBACC0FF, site, _trace.current_rank()))
    t_start = clock()
    own_deadline: Optional[float] = deadline
    if policy.deadline_s is not None:
        budget = t_start + policy.deadline_s
        own_deadline = budget if own_deadline is None else min(own_deadline,
                                                               budget)
    last: Optional[BaseException] = None
    with deadline_scope(own_deadline) as eff_deadline:
        for attempt in range(1, policy.max_attempts + 1):
            try:
                with recovery_scope():
                    with tracer.span("recover.attempt", kind="recovery",
                                     site=site, attempt=int(attempt)):
                        return fn(attempt)
            except RankCrashError:
                raise  # rank death is never retried in place
            except retryable as exc:
                last = exc
                tracer.count("retry.attempt")
                tracer.count(f"retry.attempt.{site}")
                remaining = (None if eff_deadline is None
                             else eff_deadline - clock())
                out_of_budget = attempt >= policy.max_attempts or (
                    remaining is not None and remaining <= 0.0
                )
                if out_of_budget:
                    break
                if on_retry is not None:
                    on_retry(exc, attempt)
                delay = policy.delay(attempt, jitter_stream.uniform())
                if remaining is not None:
                    # never sleep past the effective deadline: the whole
                    # point of an absolute budget is that an enclosing
                    # job can rely on it
                    delay = min(delay, remaining)
                if delay > 0.0:
                    with tracer.span("recover.backoff", kind="recovery",
                                     site=site, delay_s=float(delay)):
                        sleep(delay)
    tracer.count("retry.exhausted")
    tracer.count(f"retry.exhausted.{site}")
    assert last is not None
    raise RetryExhaustedError(site, attempt, last) from last
