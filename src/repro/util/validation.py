"""Argument validation helpers and the package exception hierarchy."""

from __future__ import annotations

from typing import Any

import numpy as np


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation."""


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValidationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ValidationError(message)


def as_float_array(value: Any, name: str, ndim: int | None = None) -> np.ndarray:
    """Coerce ``value`` to a float64 ndarray, optionally checking ndim."""
    try:
        arr = np.asarray(value, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} is not numeric: {exc}") from exc
    if ndim is not None and arr.ndim != ndim:
        raise ValidationError(f"{name} must be {ndim}-dimensional, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains non-finite values")
    return arr


def as_matrix3(value: Any, name: str) -> np.ndarray:
    """Coerce to a finite 3x3 float64 matrix."""
    arr = as_float_array(value, name, ndim=2)
    if arr.shape != (3, 3):
        raise ValidationError(f"{name} must be 3x3, got shape {arr.shape}")
    return arr
