"""Seedable steal-schedule controller (the fuzzing harness's dial).

The stealing executor (:mod:`repro.mpi.stealing`) asks this controller
two questions, at well-defined points:

* :meth:`ScheduleController.acquire` — every time a rank is about to
  take its next task: *steal from whom, or pop my own queue?*
* :meth:`ScheduleController.lifecycle` — once per scheduling loop
  iteration: *does anything happen to the world now?*  (rank **birth**
  — a new worker joins mid-campaign; clean **leave** — drain-and-
  requeue; **death** — the rank crashes, possibly holding a claimed
  task.)  Triggers are keyed to the global completed-task count, so a
  schedule like "kill rank 1 after 3 completions" is meaningful across
  runs even though thread interleaving is not reproducible.

Determinism framing, in :mod:`repro.util.faults` style: every rank
draws from its own seeded LCG stream, so *decisions* are a pure
function of ``(seed, rank, per-rank call number, queue state)``.  The
wall-clock interleaving of rank threads is **not** reproducible — and
that is the point of the whole exercise: the executor's ordered-deposit
replay must make the reduced histograms bit-identical for *any*
schedule this controller emits, adversarial presets included.  The
controller therefore records what it decided (:attr:`events`), can
round-trip the record through JSON, and can **replay** a recorded
schedule: in replay mode each rank's k-th acquire re-issues the k-th
recorded decision for that rank (falling back to "own queue" when the
recorded victim has nothing left — replay against a differently
interleaved world must degrade, never wedge).

Policies
--------
``weighted``
    Steal only when idle; victim = the rank with the most remaining
    queued weight (stored chunk bytes for lazy tables).  The production
    default.
``random``
    Seeded coin: steal with probability ``p_steal`` even when busy;
    victim drawn uniformly from the non-empty queues.  The fuzzer's
    workhorse.
``no-steal``
    Never steal: degenerates to the static plan (the executor must
    then be bit-identical to static *trivially* — a calibration leg).
``all-steal``
    Always steal when anything is stealable, even with own work
    queued; victim drawn uniformly.  Maximally scrambled execution
    order.
``herd``
    Thundering herd: every rank always targets the single heaviest
    victim, so all thieves pile onto one queue.
"""

from __future__ import annotations

import hashlib
import json
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.util.faults import _LCG, _stream_seed

POLICIES = ("weighted", "random", "no-steal", "all-steal", "herd")

#: lifecycle action kinds the executor understands
_ACTIONS = ("birth", "leave", "death")


class ScheduleError(ValueError):
    """Malformed schedule configuration or replay payload."""


class ScheduleController:
    """Seeded steal/lifecycle decision stream with record & replay.

    Parameters
    ----------
    seed:
        Root seed of the per-rank decision streams.
    policy:
        One of :data:`POLICIES`.
    p_steal:
        ``random`` policy only: probability of stealing while the
        rank's own queue is non-empty.
    births:
        Completed-task thresholds at which a new rank joins (one birth
        per entry; consumed by whichever rank observes it first).
    leaves:
        ``(threshold, rank)`` pairs: ``rank`` finishes its current
        task, requeues the rest and exits cleanly.
    deaths:
        ``(threshold, rank)`` pairs: ``rank`` raises a crash at its
        next scheduling point (its claimed work must be requeued and
        executed exactly once elsewhere).
    """

    def __init__(
        self,
        seed: int = 0,
        policy: str = "weighted",
        *,
        p_steal: float = 0.5,
        births: Sequence[int] = (),
        leaves: Sequence[Tuple[int, int]] = (),
        deaths: Sequence[Tuple[int, int]] = (),
    ) -> None:
        if policy not in POLICIES:
            raise ScheduleError(
                f"unknown policy {policy!r}; expected one of {POLICIES}"
            )
        if not 0.0 <= float(p_steal) <= 1.0:
            raise ScheduleError(f"p_steal must be in [0, 1], got {p_steal}")
        self.seed = int(seed)
        self.policy = policy
        self.p_steal = float(p_steal)
        self._births = sorted(int(t) for t in births)
        self._leaves = sorted((int(t), int(r)) for t, r in leaves)
        self._deaths = sorted((int(t), int(r)) for t, r in deaths)
        self._consumed: set = set()
        self._lock = threading.Lock()
        self._streams: Dict[int, _LCG] = {}
        self._acquire_no: Dict[int, int] = {}
        #: executed decision record (JSON-serializable dicts)
        self.events: List[Dict[str, Any]] = []
        self._replay: Optional[Dict[int, List[Optional[int]]]] = None
        self._replay_pos: Dict[int, int] = {}

    # -- decision streams -------------------------------------------------
    def _stream(self, rank: int) -> _LCG:
        lcg = self._streams.get(rank)
        if lcg is None:
            lcg = self._streams[rank] = _LCG(
                _stream_seed(self.seed, "steal.acquire", rank)
            )
        return lcg

    def acquire(
        self,
        rank: int,
        own_depth: int,
        victims: Dict[int, float],
    ) -> Optional[int]:
        """Decide rank's next task source.

        ``victims`` maps *other* active ranks with non-empty queues to
        their remaining queued weight.  Returns a victim rank to steal
        from, or ``None`` to pop the rank's own queue (the executor
        falls back to orphan adoption on its own — liveness is its
        job, not the schedule's).
        """
        with self._lock:
            k = self._acquire_no.get(rank, 0)
            self._acquire_no[rank] = k + 1
            if self._replay is not None:
                victim = self._pick_replay(rank, k, victims)
            else:
                victim = self._pick(rank, own_depth, victims)
            self.events.append({
                "kind": "acquire", "rank": int(rank), "k": int(k),
                "victim": None if victim is None else int(victim),
            })
            return victim

    def _pick(
        self, rank: int, own_depth: int, victims: Dict[int, float]
    ) -> Optional[int]:
        if not victims or self.policy == "no-steal":
            return None
        heaviest = max(sorted(victims), key=lambda r: victims[r])
        if self.policy == "herd":
            return heaviest
        if self.policy == "weighted":
            return heaviest if own_depth == 0 else None
        lcg = self._stream(rank)
        ordered = sorted(victims)
        if self.policy == "all-steal":
            return ordered[int(lcg.uniform() * len(ordered)) % len(ordered)]
        # random: steal when idle, coin-flip while busy
        if own_depth > 0 and lcg.uniform() >= self.p_steal:
            return None
        return ordered[int(lcg.uniform() * len(ordered)) % len(ordered)]

    def _pick_replay(
        self, rank: int, k: int, victims: Dict[int, float]
    ) -> Optional[int]:
        assert self._replay is not None
        decisions = self._replay.get(rank, [])
        pos = self._replay_pos.get(rank, 0)
        self._replay_pos[rank] = pos + 1
        if pos >= len(decisions):
            return None
        victim = decisions[pos]
        if victim is None or victim not in victims:
            # the replayed victim already drained in this interleaving:
            # degrade to the own queue rather than wedging the rank
            return None
        return victim

    # -- lifecycle --------------------------------------------------------
    def lifecycle(self, rank: int, done: int) -> List[str]:
        """Actions for ``rank`` at global progress ``done``.

        Returns a list drawn from ``("birth", "leave", "death")``.
        Birth events go to whichever rank polls first; leave/death only
        to their target rank.  Each trigger fires exactly once.
        """
        out: List[str] = []
        with self._lock:
            for i, t in enumerate(self._births):
                key = ("birth", i)
                if done >= t and key not in self._consumed:
                    self._consumed.add(key)
                    self.events.append({
                        "kind": "birth", "rank": int(rank), "at": int(done),
                    })
                    out.append("birth")
            for i, (t, target) in enumerate(self._leaves):
                key = ("leave", i)
                if target == rank and done >= t and key not in self._consumed:
                    self._consumed.add(key)
                    self.events.append({
                        "kind": "leave", "rank": int(rank), "at": int(done),
                    })
                    out.append("leave")
            for i, (t, target) in enumerate(self._deaths):
                key = ("death", i)
                if target == rank and done >= t and key not in self._consumed:
                    self._consumed.add(key)
                    self.events.append({
                        "kind": "death", "rank": int(rank), "at": int(done),
                    })
                    out.append("death")
        return out

    # -- record / replay --------------------------------------------------
    def schedule_signature(self) -> str:
        """Digest of the per-rank decision sequences.

        Sorted by ``(rank, k)``, not by wall-clock order — per-rank
        decision streams are deterministic, global interleaving is not.
        """
        with self._lock:
            acquires = sorted(
                (e["rank"], e["k"], -1 if e["victim"] is None else e["victim"])
                for e in self.events if e["kind"] == "acquire"
            )
            life = sorted(
                (e["kind"], e["rank"], e["at"])
                for e in self.events if e["kind"] != "acquire"
            )
        h = hashlib.blake2b(digest_size=8)
        h.update(json.dumps([acquires, life]).encode())
        return h.hexdigest()

    def to_json(self) -> Dict[str, Any]:
        """The executed schedule as a JSON-serializable record."""
        with self._lock:
            return {
                "version": 1,
                "seed": self.seed,
                "policy": self.policy,
                "p_steal": self.p_steal,
                "births": list(self._births),
                "leaves": [list(p) for p in self._leaves],
                "deaths": [list(p) for p in self._deaths],
                "events": [dict(e) for e in self.events],
            }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "ScheduleController":
        """A replay controller re-issuing a recorded schedule.

        Acquire decisions replay per rank in order; lifecycle triggers
        replay by their recorded progress thresholds.
        """
        if int(data.get("version", -1)) != 1:
            raise ScheduleError(
                f"unsupported schedule record version {data.get('version')!r}"
            )
        events = data.get("events", [])
        ctl = cls(
            seed=int(data.get("seed", 0)),
            policy=str(data.get("policy", "weighted")),
            p_steal=float(data.get("p_steal", 0.5)),
            births=[e["at"] for e in events if e["kind"] == "birth"],
            leaves=[(e["at"], e["rank"]) for e in events
                    if e["kind"] == "leave"],
            deaths=[(e["at"], e["rank"]) for e in events
                    if e["kind"] == "death"],
        )
        replay: Dict[int, List[Optional[int]]] = {}
        for e in sorted(
            (e for e in events if e["kind"] == "acquire"),
            key=lambda e: (e["rank"], e["k"]),
        ):
            replay.setdefault(int(e["rank"]), []).append(
                None if e["victim"] is None else int(e["victim"])
            )
        ctl._replay = replay
        return ctl

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=True)

    @classmethod
    def from_file(cls, path: str) -> "ScheduleController":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(json.load(fh))

    # -- introspection ----------------------------------------------------
    @property
    def steal_count(self) -> int:
        with self._lock:
            return sum(
                1 for e in self.events
                if e["kind"] == "acquire" and e["victim"] is not None
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"ScheduleController(seed={self.seed}, policy={self.policy!r}, "
            f"events={len(self.events)})"
        )
