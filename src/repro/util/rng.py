"""Deterministic random-number streams.

Synthetic event generation must be reproducible run-to-run (the golden
integration tests compare cross-sections bit-for-bit) *and* independent
per experiment run, so that loading runs in a different order or on a
different MPI rank yields identical physics.  We use NumPy's
``SeedSequence.spawn`` tree for that: one root seed per workload, one
child stream per run index.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def make_rng(seed: Optional[int] = None) -> np.random.Generator:
    """Create a PCG64 generator from an explicit seed (None = OS entropy)."""
    return np.random.Generator(np.random.PCG64(np.random.SeedSequence(seed)))


class RunStreams:
    """Per-run independent random streams derived from one root seed.

    ``streams.for_run(i)`` always returns a generator seeded identically
    for the same ``(root_seed, i)`` pair, regardless of how many other
    runs were drawn before it.
    """

    def __init__(self, root_seed: int) -> None:
        self.root_seed = int(root_seed)
        self._root = np.random.SeedSequence(self.root_seed)

    def for_run(self, run_index: int) -> np.random.Generator:
        if run_index < 0:
            raise ValueError(f"run_index must be >= 0, got {run_index}")
        child = np.random.SeedSequence(
            entropy=self._root.entropy, spawn_key=(run_index,)
        )
        return np.random.Generator(np.random.PCG64(child))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RunStreams(root_seed={self.root_seed})"


def selfcheck(root_seed: int = 20240515) -> str:
    """Seed-determinism check: a digest of canonical draws.

    Draws a fixed set of values from :func:`make_rng` and three
    :class:`RunStreams` children (one of them out of order, to prove
    order independence) and returns a hex digest of their bytes.  The
    digest must be identical on every platform and run — CI executes
    ``python -m repro.util.rng`` and compares against
    :data:`SELFCHECK_DIGEST`.
    """
    import hashlib

    h = hashlib.blake2b(digest_size=16)
    h.update(make_rng(root_seed).random(64).tobytes())
    streams = RunStreams(root_seed)
    for idx in (2, 0, 1):  # out of order on purpose
        h.update(streams.for_run(idx).random(32).tobytes())
    return h.hexdigest()


#: the pinned digest of :func:`selfcheck` (NumPy PCG64 streams are
#: stable across platforms and versions by specification)
SELFCHECK_DIGEST = "29a3744c10a5ae5e5fc9329195398ed3"


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    import sys

    digest = selfcheck()
    if digest != SELFCHECK_DIGEST:
        print(f"seed determinism FAILED: {digest} != {SELFCHECK_DIGEST}")
        sys.exit(1)
    print(f"seed determinism OK: {digest}")
