"""Kernel-level performance model derived from trace records.

The paper's results are throughput claims — MDNorm/BinMD wall-clock on
Milan CPUs and MI250X GPUs, speedups over the Mantid baseline — but the
trace layer (:mod:`repro.util.trace`) only records *where* time goes.
This module records *why*: every profiled span carries a ``perf``
attribute (a dict of raw work quantities — events, trajectories,
intersections, estimated bytes moved, estimated flops) and
:class:`PerfModel` rolls the finished records up into a per-kernel
throughput table, a roofline-style CSV, and cold/warm attribution from
the geometry-cache flags the spans already carry (PR 1).

Two invariants drive the design:

* **derived purely from the trace** — every number the report prints is
  recomputed from the JSON-lines records alone (``rate = work / dur``);
  a trace file round-trips to the identical table, which is what lets
  ``repro trace summary --compare`` diff two backends offline;
* **zero cost when off** — the instrumentation sites guard the *entire*
  estimate computation on ``tracer.profile`` (False for
  :class:`~repro.util.trace.NullTracer`), so with tracing disabled no
  derived-metric arithmetic runs at all.  The profiler overhead bar
  (< 5% over tracing-only) is enforced by
  ``benchmarks/test_trace_overhead.py``.

The byte/flop numbers are a documented *cost model*, not hardware
counters (DESIGN.md section 6e): deterministic functions of the kernel
shape parameters (`n_ops`, `n_events`, padded buffer ``width``, ...),
the same role the analytic models in HPDR-style frameworks play for
cross-backend attribution.
"""

from __future__ import annotations

import csv
import io
import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.util.validation import ReproError

#: span-attribute key holding the raw work dict of a profiled span
PERF_ATTR = "perf"

#: work quantities a ``perf`` dict may carry (all float, all summable)
WORK_KEYS = (
    "events", "trajectories", "intersections", "segments", "bins_touched",
    "bytes_read", "bytes_written", "flops", "items",
)


class PerfError(ReproError):
    """Malformed perf records or an impossible rollup request."""


# ---------------------------------------------------------------------------
# the cost model (DESIGN.md section 6e documents every constant)
# ---------------------------------------------------------------------------

#: BinMD reads per (op, event) lane: qx,qy,qz,signal,err_sq float64
BYTES_PER_EVENT_READ = 40.0
#: BinMD writes per deposited lane: signal + err_sq atomic adds
BYTES_PER_EVENT_WRITE = 16.0
#: BinMD flops per lane: 3x3 mat-vec (15) + bin search / guards (9)
FLOPS_PER_EVENT = 24.0

#: MDNorm reads per trajectory: direction (24 B) + k window (16 B)
BYTES_PER_TRAJ_READ = 40.0
#: MDNorm reads per segment: two cumulative-flux table values
BYTES_PER_SEGMENT_READ = 16.0
#: MDNorm writes per segment: one float64 histogram deposit
BYTES_PER_SEGMENT_WRITE = 8.0
#: MDNorm flops per segment: interp (4) + midpoint (2) + coords (3)
#: + bin index (3)
FLOPS_PER_SEGMENT = 12.0
#: MDNorm flops per trajectory: window clip + sort amortization
FLOPS_PER_TRAJ = 20.0

#: warm deposit-plan replay per segment: cached flux x weight + scatter
WARM_FLOPS_PER_SEGMENT = 2.0
#: warm reads per segment: seg_flux (8) + flat_idx (8) + seg_ok (1)
WARM_BYTES_PER_SEGMENT_READ = 17.0


def binmd_work(
    n_ops: int,
    n_events: int,
    *,
    track_errors: bool = True,
    cache_hit: bool = False,
) -> Dict[str, float]:
    """Cost-model work of one BinMD launch (``(n_ops, n_events)`` lanes).

    A warm launch (``cache_hit``) replays cached flat indices: the
    transform flops are skipped, the index arrays are read instead.
    """
    lanes = float(n_ops) * float(n_events)
    write = BYTES_PER_EVENT_WRITE if track_errors else 8.0
    if cache_hit:
        return {
            "events": lanes,
            "bins_touched": lanes,
            "bytes_read": lanes * (16.0 + 9.0),  # weights + idx/mask
            "bytes_written": lanes * write,
            "flops": lanes * 2.0,
        }
    return {
        "events": lanes,
        "bins_touched": lanes,
        "bytes_read": lanes * BYTES_PER_EVENT_READ,
        "bytes_written": lanes * write,
        "flops": lanes * FLOPS_PER_EVENT,
    }


def mdnorm_work(
    n_ops: int,
    n_det: int,
    width: int,
    *,
    warm_plan: bool = False,
) -> Dict[str, float]:
    """Cost-model work of one MDNorm launch.

    ``width`` is the padded intersection-buffer width (pre-pass bound
    + 2 endpoints); segments per trajectory are ``width - 1`` and
    plane crossings are bounded by ``width - 2``.  A warm launch
    (cached :class:`~repro.core.geom_cache.DepositPlan`) skips the
    fill/sort/interpolate pipeline entirely and replays cached segment
    fluxes.
    """
    traj = float(n_ops) * float(n_det)
    segments = traj * float(max(int(width) - 1, 0))
    crossings = traj * float(max(int(width) - 2, 0))
    if warm_plan:
        return {
            "trajectories": traj,
            "intersections": crossings,
            "segments": segments,
            "bins_touched": segments,
            "bytes_read": segments * WARM_BYTES_PER_SEGMENT_READ,
            "bytes_written": segments * BYTES_PER_SEGMENT_WRITE,
            "flops": segments * WARM_FLOPS_PER_SEGMENT,
        }
    return {
        "trajectories": traj,
        "intersections": crossings,
        "segments": segments,
        "bins_touched": segments,
        "bytes_read": traj * BYTES_PER_TRAJ_READ
        + segments * BYTES_PER_SEGMENT_READ,
        "bytes_written": segments * BYTES_PER_SEGMENT_WRITE,
        "flops": traj * FLOPS_PER_TRAJ + segments * FLOPS_PER_SEGMENT,
    }


def mdnorm_work_from_crossings(
    n_trajectories: int, n_crossings: int
) -> Dict[str, float]:
    """Cost-model work of one MDNorm pass with *exact* crossing counts.

    Used by the C++ proxy, whose per-row ROI loop never pads a buffer:
    each live row contributes its crossings plus one extra segment
    (``len(ks) - 1`` segments for ``crossings + 2`` endpoints), so
    ``segments = crossings + trajectories`` bounds the deposit work.
    """
    traj = float(n_trajectories)
    segments = float(n_crossings) + traj
    return {
        "trajectories": traj,
        "intersections": float(n_crossings),
        "segments": segments,
        "bins_touched": segments,
        "bytes_read": traj * BYTES_PER_TRAJ_READ
        + segments * BYTES_PER_SEGMENT_READ,
        "bytes_written": segments * BYTES_PER_SEGMENT_WRITE,
        "flops": traj * FLOPS_PER_TRAJ + segments * FLOPS_PER_SEGMENT,
    }


def intersections_work(n_rows: int, width: int) -> Dict[str, float]:
    """Cost-model work of one batched fill+sort of the padded
    intersection buffer (``n_rows`` live trajectories, ``width``
    columns).  The sort term is the comb-sort's ``w log2 w`` comparison
    count per row; crossings are bounded by ``width - 2`` (the two
    endpoints are not plane crossings)."""
    rows = float(n_rows)
    w = float(max(int(width), 1))
    log_w = math.log2(w) if w > 1.0 else 1.0
    return {
        "trajectories": rows,
        "intersections": rows * float(max(int(width) - 2, 0)),
        "bytes_read": rows * BYTES_PER_TRAJ_READ,
        "bytes_written": rows * w * 8.0,
        "flops": rows * w * log_w,
    }


#: chunk-codec decode cost per *decoded* byte (inflate is byte-at-a-time
#: Huffman + LZ77 copy work; the shuffle adds one strided pass)
CODEC_FLOPS_PER_BYTE = {
    "none": 0.0,
    "zlib": 8.0,
    "shuffle-zlib": 9.0,
}
#: extra bytes moved per decoded byte by the byte-shuffle transpose
#: (one read + one write of the intermediate)
SHUFFLE_BYTES_PER_BYTE = 2.0


def chunk_decode_work(
    codec: str, stored_nbytes: int, raw_nbytes: int
) -> Dict[str, float]:
    """Cost-model work of decoding one stored chunk (ISSUE 6).

    ``stored_nbytes`` is what came off the disk (encoded), ``raw_nbytes``
    what the decode produced; the ratio is the chunk's compression
    ratio, so ``bytes_read``/``seconds`` measures delivered I/O
    bandwidth and ``bytes_written``/``seconds`` the decode bandwidth
    the tile manager sees.  Unknown codecs cost like ``zlib`` rather
    than erroring — the model must never fail a read.
    """
    raw = float(raw_nbytes)
    flops = raw * CODEC_FLOPS_PER_BYTE.get(codec, CODEC_FLOPS_PER_BYTE["zlib"])
    moved = raw
    if codec == "shuffle-zlib":
        moved += raw * SHUFFLE_BYTES_PER_BYTE
    return {
        "items": 1.0,
        "bytes_read": float(stored_nbytes),
        "bytes_written": moved,
        "flops": flops,
    }


def prepass_work(n_trajectories: int) -> Dict[str, float]:
    """Cost-model work of the max-intersections pre-pass."""
    traj = float(n_trajectories)
    return {
        "trajectories": traj,
        "bytes_read": traj * BYTES_PER_TRAJ_READ,
        "bytes_written": traj * 8.0,
        "flops": traj * 6.0,  # 3 axes x (2 binary-search partials)
    }


def kernel_items(dims: Sequence[int]) -> Dict[str, float]:
    """Generic work of one jacc launch: the index-space size."""
    n = 1.0
    for d in dims:
        n *= float(d)
    return {"items": n}


# ---------------------------------------------------------------------------
# per-kernel rollup
# ---------------------------------------------------------------------------

@dataclass
class KernelStats:
    """Aggregated launches of one (span name, backend) pair."""

    name: str
    backend: str
    launches: int = 0
    seconds: float = 0.0
    cold_launches: int = 0
    cold_seconds: float = 0.0
    warm_launches: int = 0
    warm_seconds: float = 0.0
    work: Dict[str, float] = field(default_factory=dict)

    @property
    def key(self) -> Tuple[str, str]:
        return (self.name, self.backend)

    def add(self, dur: float, perf: Dict[str, Any], warm: Optional[bool]) -> None:
        self.launches += 1
        self.seconds += float(dur)
        if warm:
            self.warm_launches += 1
            self.warm_seconds += float(dur)
        else:
            self.cold_launches += 1
            self.cold_seconds += float(dur)
        for k, v in perf.items():
            if isinstance(v, (int, float)) and not isinstance(v, bool):
                self.work[k] = self.work.get(k, 0.0) + float(v)

    # -- derived metrics (rate = work / seconds, from the records alone)
    def rate(self, key: str) -> float:
        w = self.work.get(key, 0.0)
        return w / self.seconds if self.seconds > 0.0 else 0.0

    @property
    def events_per_s(self) -> float:
        return self.rate("events")

    @property
    def intersections_per_s(self) -> float:
        return self.rate("intersections")

    @property
    def trajectories_per_s(self) -> float:
        return self.rate("trajectories")

    @property
    def bytes_total(self) -> float:
        return self.work.get("bytes_read", 0.0) + self.work.get("bytes_written", 0.0)

    @property
    def bytes_per_s(self) -> float:
        return self.bytes_total / self.seconds if self.seconds > 0.0 else 0.0

    @property
    def flops_per_s(self) -> float:
        return self.rate("flops")

    @property
    def arithmetic_intensity(self) -> float:
        """Estimated flops per byte moved (the roofline x-axis)."""
        b = self.bytes_total
        return self.work.get("flops", 0.0) / b if b > 0.0 else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "backend": self.backend,
            "launches": self.launches,
            "seconds": self.seconds,
            "cold_launches": self.cold_launches,
            "cold_seconds": self.cold_seconds,
            "warm_launches": self.warm_launches,
            "warm_seconds": self.warm_seconds,
            "work": dict(sorted(self.work.items())),
            "events_per_s": self.events_per_s,
            "intersections_per_s": self.intersections_per_s,
            "bytes_per_s": self.bytes_per_s,
            "flops_per_s": self.flops_per_s,
            "arithmetic_intensity": self.arithmetic_intensity,
        }


def _is_warm(attrs: Dict[str, Any]) -> Optional[bool]:
    """Cold/warm attribution from the PR 1 geometry-cache span flags."""
    if attrs.get("warm_plan"):
        return True
    if "cache_hit" in attrs:
        return bool(attrs["cache_hit"])
    return None


class PerfModel:
    """Per-kernel throughput rollup of a trace's profiled spans.

    Every span whose ``attrs`` carry a ``perf`` dict contributes; spans
    are replayed in ``seq`` order, so the rollup is **deterministic**
    regardless of the order records arrive in (shuffling the input
    yields a bit-identical model — the 50-seed test asserts it).
    """

    def __init__(self) -> None:
        self.kernels: "OrderedDict[Tuple[str, str], KernelStats]" = OrderedDict()
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}

    # -- construction -----------------------------------------------------
    @classmethod
    def from_records(
        cls,
        records: Sequence[Dict[str, Any]],
        *,
        counters: Optional[Dict[str, float]] = None,
        gauges: Optional[Dict[str, float]] = None,
    ) -> "PerfModel":
        from repro.util.trace import counters_from_records, gauges_from_records

        model = cls()
        spans = [r for r in records if r.get("type", "span") == "span"
                 and isinstance(r.get("attrs"), dict)
                 and isinstance(r["attrs"].get(PERF_ATTR), dict)]
        spans.sort(key=lambda r: r.get("seq", 0))
        for rec in spans:
            attrs = rec["attrs"]
            backend = str(attrs.get("backend", "-"))
            key = (rec["name"], backend)
            slot = model.kernels.get(key)
            if slot is None:
                slot = model.kernels[key] = KernelStats(
                    name=rec["name"], backend=backend
                )
            slot.add(rec.get("dur", 0.0), attrs[PERF_ATTR], _is_warm(attrs))
        model.kernels = OrderedDict(
            sorted(model.kernels.items(), key=lambda kv: kv[0])
        )
        model.counters = dict(
            counters if counters is not None else counters_from_records(records)
        )
        model.gauges = dict(
            gauges if gauges is not None else gauges_from_records(records)
        )
        return model

    @classmethod
    def from_file(cls, path: str) -> "PerfModel":
        """Roll up a written JSON-lines trace (one artifact, offline)."""
        from repro.util.trace import load_file

        _, records = load_file(path)
        return cls.from_records(records)

    # -- inspection -------------------------------------------------------
    def rows(self) -> List[KernelStats]:
        return list(self.kernels.values())

    def get(self, name: str, backend: str = "-") -> Optional[KernelStats]:
        return self.kernels.get((name, backend))

    @property
    def n_kernels(self) -> int:
        return len(self.kernels)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kernels": [k.as_dict() for k in self.rows()],
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
        }

    # -- cold/warm attribution -------------------------------------------
    def cold_warm_summary(self) -> Dict[str, float]:
        """Cache-attributed totals: cold vs warm launch seconds plus the
        PR 1 geometry-cache counters carried by the trace."""
        out: Dict[str, float] = {
            "cold_seconds": sum(k.cold_seconds for k in self.rows()),
            "warm_seconds": sum(k.warm_seconds for k in self.rows()),
            "cold_launches": float(sum(k.cold_launches for k in self.rows())),
            "warm_launches": float(sum(k.warm_launches for k in self.rows())),
        }
        for name, value in self.counters.items():
            if name.startswith(("geom_cache.", "cache.")):
                out[name] = float(value)
        return out

    # -- renderers --------------------------------------------------------
    def table(self, *, title: str = "per-kernel throughput") -> str:
        """The paper-style per-kernel throughput table (plain text)."""
        lines = [f"-- {title}"]
        header = (f"  {'kernel':<28s} {'backend':<11s} {'n':>5s} "
                  f"{'seconds':>10s} {'events/s':>12s} {'trajs/s':>12s} "
                  f"{'isects/s':>12s} {'GB/s':>8s} {'AI':>7s} "
                  f"{'cold s':>9s} {'warm s':>9s}")
        lines.append(header)
        for k in self.rows():
            lines.append(
                f"  {k.name:<28s} {k.backend:<11s} {k.launches:>5d} "
                f"{k.seconds:>10.4f} {_si(k.events_per_s):>12s} "
                f"{_si(k.trajectories_per_s):>12s} "
                f"{_si(k.intersections_per_s):>12s} "
                f"{k.bytes_per_s / 1e9:>8.3f} {k.arithmetic_intensity:>7.2f} "
                f"{k.cold_seconds:>9.4f} {k.warm_seconds:>9.4f}"
            )
        if not self.kernels:
            lines.append("  (no profiled spans in this trace)")
        return "\n".join(lines)

    def roofline_csv(self) -> str:
        """Roofline-style CSV (no plotting dependency): one row per
        kernel with estimated arithmetic intensity (flops/byte, the
        x-axis) and achieved flops/s (the y-axis)."""
        buf = io.StringIO()
        writer = csv.writer(buf, lineterminator="\n")
        writer.writerow([
            "kernel", "backend", "launches", "seconds", "flops",
            "bytes_read", "bytes_written", "arithmetic_intensity",
            "flops_per_s", "bytes_per_s", "events_per_s",
            "intersections_per_s",
        ])
        for k in self.rows():
            writer.writerow([
                k.name, k.backend, k.launches, f"{k.seconds:.9f}",
                f"{k.work.get('flops', 0.0):.6g}",
                f"{k.work.get('bytes_read', 0.0):.6g}",
                f"{k.work.get('bytes_written', 0.0):.6g}",
                f"{k.arithmetic_intensity:.6g}",
                f"{k.flops_per_s:.6g}",
                f"{k.bytes_per_s:.6g}",
                f"{k.events_per_s:.6g}",
                f"{k.intersections_per_s:.6g}",
            ])
        return buf.getvalue()


# ---------------------------------------------------------------------------
# shard fan-out attribution (PR 5: hierarchical intra-run sharding)
# ---------------------------------------------------------------------------

def shard_summary(records: Sequence[Dict[str, Any]]) -> Dict[str, Dict[str, float]]:
    """Roll up the intra-run shard fan-out spans of a trace.

    ``kind="shard_fanout"`` spans (one per sharded MDNorm/BinMD call)
    and their child ``kind="shard"`` spans (one per shard task) are
    attributed per op.  The interesting derived number is **balance**:
    mean shard seconds over max shard seconds within the trace — 1.0
    means the fan-out was perfectly even, values near ``1/n_shards``
    mean one straggler serialized the whole fan-out (exactly what the
    weighted detector cut is for).  Deterministic: records are replayed
    in ``seq`` order.
    """
    spans = [r for r in records if r.get("type", "span") == "span"
             and isinstance(r.get("attrs"), dict)]
    spans.sort(key=lambda r: r.get("seq", 0))
    out: Dict[str, Dict[str, float]] = {}
    for rec in spans:
        attrs = rec["attrs"]
        kind = attrs.get("kind")
        if kind == "shard_fanout":
            op = str(attrs.get("op", rec["name"]))
            slot = out.setdefault(op, {
                "fanouts": 0.0, "tasks": 0.0, "lanes": 0.0,
                "fanout_seconds": 0.0, "shard_seconds": 0.0,
                "max_shard_seconds": 0.0, "n_shards": 0.0, "workers": 0.0,
            })
            slot["fanouts"] += 1.0
            slot["fanout_seconds"] += float(rec.get("dur", 0.0))
            slot["n_shards"] = max(slot["n_shards"],
                                   float(attrs.get("n_shards", 0)))
            slot["workers"] = max(slot["workers"],
                                  float(attrs.get("workers", 0)))
        elif kind == "shard":
            # span name is "shard:<op>"
            op = str(rec["name"]).partition(":")[2] or str(rec["name"])
            slot = out.setdefault(op, {
                "fanouts": 0.0, "tasks": 0.0, "lanes": 0.0,
                "fanout_seconds": 0.0, "shard_seconds": 0.0,
                "max_shard_seconds": 0.0, "n_shards": 0.0, "workers": 0.0,
            })
            dur = float(rec.get("dur", 0.0))
            slot["tasks"] += 1.0
            slot["lanes"] += float(attrs.get("lanes", 0))
            slot["shard_seconds"] += dur
            slot["max_shard_seconds"] = max(slot["max_shard_seconds"], dur)
    for slot in out.values():
        if slot["tasks"] > 0 and slot["max_shard_seconds"] > 0.0:
            mean = slot["shard_seconds"] / slot["tasks"]
            slot["balance"] = mean / slot["max_shard_seconds"]
        else:
            slot["balance"] = 1.0
    return dict(sorted(out.items()))


def shard_table(summary: Dict[str, Dict[str, float]],
                *, title: str = "shard fan-out") -> str:
    """Plain-text table of :func:`shard_summary` (``repro perf report``)."""
    lines = [f"-- {title}"]
    if not summary:
        lines.append("  (no shard fan-out spans in this trace)")
        return "\n".join(lines)
    lines.append(f"  {'op':<10s} {'fanouts':>8s} {'tasks':>7s} "
                 f"{'lanes':>10s} {'fanout s':>10s} {'shard s':>9s} "
                 f"{'balance':>8s} {'shards':>7s} {'workers':>8s}")
    for op, s in summary.items():
        lines.append(
            f"  {op:<10s} {int(s['fanouts']):>8d} {int(s['tasks']):>7d} "
            f"{_si(s['lanes']):>10s} {s['fanout_seconds']:>10.4f} "
            f"{s['shard_seconds']:>9.4f} {s['balance']:>8.3f} "
            f"{int(s['n_shards']):>7d} {int(s['workers']):>8d}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# elastic stealing attribution (PR 7: work-stealing executor)
# ---------------------------------------------------------------------------

def steal_summary(records: Sequence[Dict[str, Any]]) -> Dict[int, Dict[str, float]]:
    """Roll up the stealing executor's task spans per executing rank.

    ``kind="steal_task"`` spans are shard tasks a rank executed from
    its own static block; ``kind="steal"`` spans are tasks it pulled
    off a victim's queue.  The interesting derived number is the
    stolen share of each rank's busy seconds — how much of its work
    arrived through the queue rather than the static plan, which is
    exactly what the skewed-campaign benchmark moves.  ``incomplete``
    counts spans whose task never deposited (a crash or leave mid-task
    that the queue must have re-issued elsewhere).
    """
    out: Dict[int, Dict[str, float]] = {}
    for rec in records:
        if rec.get("type", "span") != "span":
            continue
        attrs = rec.get("attrs")
        if not isinstance(attrs, dict):
            continue
        kind = attrs.get("kind")
        if kind not in ("steal_task", "steal"):
            continue
        rank = int(attrs.get("exec_rank", rec.get("rank", 0)))
        slot = out.setdefault(rank, {
            "tasks": 0.0, "stolen": 0.0, "task_seconds": 0.0,
            "stolen_seconds": 0.0, "incomplete": 0.0,
        })
        dur = float(rec.get("dur", 0.0))
        slot["tasks"] += 1.0
        slot["task_seconds"] += dur
        if kind == "steal":
            slot["stolen"] += 1.0
            slot["stolen_seconds"] += dur
        if not attrs.get("completed", False):
            slot["incomplete"] += 1.0
    return dict(sorted(out.items()))


def steal_table(summary: Dict[int, Dict[str, float]],
                *, title: str = "elastic stealing") -> str:
    """Plain-text table of :func:`steal_summary` (``repro perf report``)."""
    lines = [f"-- {title}"]
    if not summary:
        lines.append("  (no stealing-executor spans in this trace)")
        return "\n".join(lines)
    lines.append(f"  {'rank':>6s} {'tasks':>7s} {'stolen':>7s} "
                 f"{'task s':>9s} {'stolen s':>9s} {'stolen %':>9s} "
                 f"{'incomplete':>11s}")
    for rank, s in summary.items():
        share = (100.0 * s["stolen_seconds"] / s["task_seconds"]
                 if s["task_seconds"] > 0.0 else 0.0)
        lines.append(
            f"  {rank:>6d} {int(s['tasks']):>7d} {int(s['stolen']):>7d} "
            f"{s['task_seconds']:>9.4f} {s['stolen_seconds']:>9.4f} "
            f"{share:>8.1f}% {int(s['incomplete']):>11d}"
        )
    return "\n".join(lines)


def service_summary(
    records: Sequence[Dict[str, Any]]
) -> Dict[str, Dict[str, float]]:
    """Roll up the campaign-service spans of a trace, per tenant.

    ``kind="service"`` spans come in two shapes: ``service.job`` (one
    per executed job, wall-clock of the whole campaign under the
    worker) and ``service.transition`` (zero-duration lifecycle
    markers, ``from``/``to`` attrs).  The per-tenant rollup shows who
    consumed the service and how their jobs ended — the scheduling
    counterpart of the per-rank tables above.
    """
    out: Dict[str, Dict[str, float]] = {}
    for rec in records:
        if rec.get("type", "span") != "span":
            continue
        attrs = rec.get("attrs")
        if not isinstance(attrs, dict) or attrs.get("kind") != "service":
            continue
        tenant = str(attrs.get("tenant", "?"))
        slot = out.setdefault(tenant, {
            "jobs": 0.0, "job_seconds": 0.0, "done": 0.0,
            "cancelled": 0.0, "expired": 0.0, "quarantined": 0.0,
        })
        name = str(rec.get("name", ""))
        if name == "service.job":
            slot["jobs"] += 1.0
            slot["job_seconds"] += float(rec.get("dur", 0.0))
        elif name == "service.transition":
            to = str(attrs.get("to", ""))
            if to in ("done", "cancelled", "expired", "quarantined"):
                slot[to] += 1.0
    return dict(sorted(out.items()))


def service_table(summary: Dict[str, Dict[str, float]],
                  *, title: str = "campaign service") -> str:
    """Plain-text table of :func:`service_summary`."""
    lines = [f"-- {title}"]
    if not summary:
        lines.append("  (no service spans in this trace)")
        return "\n".join(lines)
    lines.append(f"  {'tenant':<12s} {'jobs':>6s} {'job s':>9s} "
                 f"{'done':>6s} {'cancel':>7s} {'expire':>7s} "
                 f"{'quarantine':>11s}")
    for tenant, s in summary.items():
        lines.append(
            f"  {tenant:<12s} {int(s['jobs']):>6d} "
            f"{s['job_seconds']:>9.4f} {int(s['done']):>6d} "
            f"{int(s['cancelled']):>7d} {int(s['expired']):>7d} "
            f"{int(s['quarantined']):>11d}"
        )
    return "\n".join(lines)


def _si(value: float) -> str:
    """Engineering-notation rate (1.23M, 45.6k) for the text table."""
    if value <= 0.0:
        return "-"
    for factor, suffix in ((1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "k")):
        if value >= factor:
            return f"{value / factor:.2f}{suffix}"
    return f"{value:.1f}"


# ---------------------------------------------------------------------------
# differential report (repro trace summary --compare A B)
# ---------------------------------------------------------------------------

def compare_traces(
    records_a: Sequence[Dict[str, Any]],
    records_b: Sequence[Dict[str, Any]],
    *,
    label_a: str = "A",
    label_b: str = "B",
) -> str:
    """Differential WCT + throughput report between two traces.

    Stage rows come from :func:`repro.util.trace.stage_totals`; kernel
    rows reuse the :class:`PerfModel` rollup.  ``ratio`` is B/A seconds
    (< 1 means B is faster) and rate ratios are B/A throughput.
    """
    from repro.util.trace import stage_totals

    lines = [f"trace comparison: A={label_a}  B={label_b}"]
    st_a = stage_totals(records_a)
    st_b = stage_totals(records_b)
    names = list(st_a)
    names += [n for n in st_b if n not in names]
    if names:
        lines.append("-- stages (wall-clock)")
        lines.append(f"  {'stage':<18s} {'A (s)':>12s} {'B (s)':>12s} "
                     f"{'B/A':>8s}")
        for name in names:
            a = st_a.get(name, 0.0)
            b = st_b.get(name, 0.0)
            ratio = f"{b / a:8.3f}" if a > 0.0 else "     n/a"
            lines.append(f"  {name:<18s} {a:>12.4f} {b:>12.4f} {ratio}")

    model_a = PerfModel.from_records(records_a)
    model_b = PerfModel.from_records(records_b)
    keys = list(model_a.kernels)
    keys += [k for k in model_b.kernels if k not in keys]
    if keys:
        lines.append("-- kernels (throughput)")
        lines.append(f"  {'kernel [backend]':<36s} {'A (s)':>10s} "
                     f"{'B (s)':>10s} {'B/A t':>8s} {'A rate':>10s} "
                     f"{'B rate':>10s} {'B/A rate':>9s}")
        for key in sorted(keys):
            ka = model_a.kernels.get(key)
            kb = model_b.kernels.get(key)
            sa = ka.seconds if ka else 0.0
            sb = kb.seconds if kb else 0.0
            ra = _primary_rate(ka) if ka else 0.0
            rb = _primary_rate(kb) if kb else 0.0
            t_ratio = f"{sb / sa:8.3f}" if sa > 0.0 else "     n/a"
            r_ratio = f"{rb / ra:9.3f}" if ra > 0.0 else "      n/a"
            lines.append(
                f"  {key[0] + ' [' + key[1] + ']':<36s} {sa:>10.4f} "
                f"{sb:>10.4f} {t_ratio} {_si(ra):>10s} {_si(rb):>10s} "
                f"{r_ratio}"
            )
    return "\n".join(lines)


def _primary_rate(k: KernelStats) -> float:
    """The most meaningful single rate of a kernel for compact reports."""
    for key in ("events", "trajectories", "intersections", "items"):
        if k.work.get(key, 0.0) > 0.0:
            return k.rate(key)
    return k.bytes_per_s
