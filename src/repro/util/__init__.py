"""Shared utilities: wall-clock timing, deterministic RNG, validation.

These are the lowest-level pieces of the reproduction; everything else
(the NeXus substrate, the instrument models, the reduction kernels)
builds on them.  Nothing in here knows about neutrons.
"""

from repro.util.timers import Timer, StageTimings, timed
from repro.util.rng import RunStreams, make_rng
from repro.util.validation import (
    ReproError,
    ValidationError,
    require,
    as_float_array,
    as_matrix3,
)

__all__ = [
    "Timer",
    "StageTimings",
    "timed",
    "RunStreams",
    "make_rng",
    "ReproError",
    "ValidationError",
    "require",
    "as_float_array",
    "as_matrix3",
]
