"""Byte-size parsing and formatting (the K/M/G convention).

One implementation of the ``64K`` / ``2M`` / ``1G`` size grammar shared
by every surface that accepts a byte budget — the out-of-core
``--memory-budget`` flag, the campaign service's per-tenant byte quotas
and the service CLI.  Binary multipliers (K = 1024) match the tile
manager's accounting; an optional trailing ``B`` is tolerated
(``64KB`` == ``64K``).
"""

from __future__ import annotations

from repro.util.validation import ReproError

#: binary suffix multipliers, largest first (formatting walks this)
_SUFFIXES = (("G", 1 << 30), ("M", 1 << 20), ("K", 1 << 10))


class SizeParseError(ReproError, ValueError):
    """An unparseable or non-positive byte-size string."""


def parse_size(text: str) -> int:
    """Parse a byte size with optional K/M/G suffix into an int.

    Accepts plain integers (``65536``), suffixed values (``64K``,
    ``2M``, ``1G``, case-insensitive) and fractional suffixed values
    (``1.5M``); a trailing ``B`` is ignored (``64KB``).  Raises
    :class:`SizeParseError` on malformed or non-positive input.
    """
    raw = str(text).strip().upper().removesuffix("B")
    mult = 1
    for suffix, value in _SUFFIXES:
        if raw.endswith(suffix):
            raw, mult = raw[: -len(suffix)], value
            break
    try:
        value = int(float(raw) * mult)
    except ValueError:
        raise SizeParseError(
            f"invalid size {text!r} (expected e.g. 65536, 64K, 2M, 1G)"
        ) from None
    if value < 1:
        raise SizeParseError(f"size must be positive, got {text!r}")
    return value


def format_size(n: int | float) -> str:
    """Render a byte count with the largest exact-enough suffix.

    Exact multiples print without a decimal (``64K``, ``2M``); others
    keep one decimal (``1.5M``); values under 1K print as plain bytes.
    The output round-trips through :func:`parse_size` up to the one
    printed decimal.
    """
    n = float(n)
    if n < 0:
        return f"-{format_size(-n)}"
    for suffix, value in _SUFFIXES:
        if n >= value:
            q = n / value
            if q == int(q):
                return f"{int(q)}{suffix}"
            return f"{q:.1f}{suffix}"
    return f"{int(n)}" if n == int(n) else f"{n:.1f}"
