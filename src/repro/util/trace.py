"""Structured tracing + metrics for the reduction pipeline.

The paper's entire results section is per-stage wall-clock accounting
(UpdateEvents / MDNorm / BinMD, first-call vs warm, per backend, per MPI
rank).  :class:`~repro.util.timers.StageTimings` only carries flat sums;
this module is the machine-readable record *behind* those sums:

* hierarchical **spans** — ``with tracer.span("mdnorm", run=3): ...`` —
  with monotonic timestamps, per-span attributes and strict nesting,
  kept on **thread-local stacks** so the in-process MPI ranks
  (:func:`repro.mpi.runner.run_world` threads) each produce their own
  attributed stream;
* **counters** and **gauges** (events processed, geometry-cache
  hits/misses, bytes read by :mod:`repro.nexus.h5lite`, device transfer
  volumes);
* **exporters**: JSON-lines (one record per line, schema below), a
  Chrome-trace file loadable in ``chrome://tracing`` / Perfetto, and a
  plain-text summary table that reproduces the paper's WCT rows from
  the trace alone;
* a **derived view**: :func:`stage_timings_from_records` rebuilds an
  API-compatible ``StageTimings`` from the stage spans — and because
  ``StageTimings.stage`` itself drives its timers from the span
  timestamps (one clock read per edge, shared by both), the derived
  totals equal the legacy accumulator **bit for bit**.

Tracing is **opt-in**: the process default is :data:`DISABLED`, a
null tracer whose spans still carry timestamps (so ``StageTimings``
keeps working) but record nothing.  Enable with::

    tracer = Tracer(label="benzil")
    with use_tracer(tracer):
        workflow.run()
    tracer.write_jsonl("trace.jsonl")
    print(tracer.summary())

JSON-lines schema (``schema`` = :data:`SCHEMA_VERSION`):

* line 1 — ``{"type": "meta", "schema": 3, "label": ..., "pid": ...,
  "epoch_unix": ..., "campaign_id": ...}``
* span — ``{"type": "span", "name", "span_id", "parent_id", "rank",
  "thread", "t0", "t1", "dur", "seq", "attrs": {...}, "uid",
  "parent_uid"}`` (``t0``/``t1`` are seconds on the tracer's monotonic
  clock, 0 at tracer creation)
* counter — ``{"type": "counter", "name", "value"}``
* gauge — ``{"type": "gauge", "name", "value"}``
* metrics (schema >= 2) — one consolidated
  ``{"type": "metrics", "counters": {...}, "gauges": {...}}`` record so
  the summary/perf report needs only one artifact (the individual
  counter/gauge records are still written for v1 consumers)
* link (schema >= 3) — ``{"type": "link", "kind", "src", "dst", "seq",
  "attrs"}``: a causal edge between two span *uids* that is not a
  nesting edge (a stolen task pointing back at its planning span, a
  coalesced job pointing at the leader's reduction)

Schema v3 is the **cross-process causal layer**: every span carries a
globally unique ``uid`` (``"{rank}:{namespace}:{span_id}"`` — the
namespace defaults to the pid) next to the process-local integer ids,
and a ``parent_uid`` that can cross process/thread boundaries where
``parent_id`` never does.  The dispatching side of an execution
boundary captures ``span.uid``; the executing side re-enters it with
:func:`parent_scope`, so its root spans record the causal edge.  All
files of one campaign share the meta ``campaign_id`` (see
:func:`new_campaign_id`) and :mod:`repro.util.tracedag` merges them
back into one validated DAG.

:func:`validate_file` accepts schema v1 files (pre-metrics), v2 and
v3; the CI trace-smoke job runs it on every push.  Profiled spans additionally
carry a ``perf`` attribute (raw work quantities) consumed by
:mod:`repro.util.perf` — attached only when :attr:`Tracer.profile` is
true, which is never the case for :class:`NullTracer` (zero derived-
metric work with tracing off).
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.util.validation import ReproError

#: JSON-lines schema version written to trace files
SCHEMA_VERSION = 3

#: schema versions :func:`validate_file` / :func:`load_file` accept
#: (v1: spans + counter/gauge records; v2: adds the consolidated
#: ``metrics`` record; v3: adds the cross-process ``uid``/
#: ``parent_uid`` span fields, the meta ``campaign_id`` and ``link``
#: records)
SUPPORTED_SCHEMAS = (1, 2, 3)

#: record keys every span record must carry
SPAN_KEYS = (
    "type", "name", "span_id", "parent_id", "rank", "thread",
    "t0", "t1", "dur", "seq", "attrs",
)

#: additional span keys required from schema v3 on
SPAN_KEYS_V3 = SPAN_KEYS + ("uid", "parent_uid")

#: record keys every link record must carry (schema >= 3)
LINK_KEYS = ("type", "kind", "src", "dst", "seq", "attrs")

#: valid record types of the JSON-lines stream
RECORD_TYPES = ("meta", "span", "counter", "gauge", "metrics", "link")


def new_campaign_id(digest: str = "", nonce: Optional[bytes] = None) -> str:
    """A fresh 128-bit campaign id (32 hex chars).

    Derived from the campaign's config ``digest`` plus a random
    ``nonce``, so two submissions of the same configuration still get
    distinct campaigns while the id remains reproducible when the
    nonce is pinned (tests).
    """
    import hashlib

    h = hashlib.blake2b(digest_size=16)
    h.update(str(digest).encode())
    h.update(nonce if nonce is not None else os.urandom(16))
    return h.hexdigest()


class TraceError(ReproError):
    """Tracing misuse or a malformed trace file."""


# ---------------------------------------------------------------------------
# per-thread context (rank attribution)
# ---------------------------------------------------------------------------

_thread_ctx = threading.local()


def set_current_rank(rank: Optional[int]) -> None:
    """Attribute spans opened by this thread to an MPI rank (None clears)."""
    _thread_ctx.rank = rank


def current_rank() -> Optional[int]:
    """The MPI rank attributed to this thread (None outside ``run_world``)."""
    return getattr(_thread_ctx, "rank", None)


@contextmanager
def rank_scope(rank: Optional[int]) -> Iterator[None]:
    """Set the thread's rank attribution for the duration of a block."""
    prev = current_rank()
    set_current_rank(rank)
    try:
        yield
    finally:
        set_current_rank(prev)


def set_remote_parent(uid: Optional[str]) -> None:
    """Declare a cross-boundary parent uid for this thread's root spans
    (None clears).  Prefer :func:`parent_scope`."""
    _thread_ctx.parent_uid = uid


def remote_parent() -> Optional[str]:
    """The cross-boundary parent uid adopted by this thread, if any."""
    return getattr(_thread_ctx, "parent_uid", None)


@contextmanager
def parent_scope(uid: Optional[str]) -> Iterator[None]:
    """Adopt ``uid`` as the causal parent of this thread's root spans.

    This is the schema-v3 propagation primitive: the dispatching side
    of an execution boundary (rank spawn, shard task, steal, service
    job) captures ``span.uid``, and the executing thread re-enters it
    here so spans it opens at stack depth zero record the edge in
    ``parent_uid`` — the process-local ``parent_id`` namespace is
    never shared across threads or processes.
    """
    prev = remote_parent()
    set_remote_parent(uid)
    try:
        yield
    finally:
        set_remote_parent(prev)


# ---------------------------------------------------------------------------
# spans
# ---------------------------------------------------------------------------

class Span:
    """One timed region: name + attributes + [t0, t1] on the monotonic
    clock.  Create via :meth:`Tracer.begin` / :meth:`Tracer.span`."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "rank", "thread",
                 "t0", "t1", "uid", "parent_uid")

    def __init__(
        self,
        name: str,
        attrs: Dict[str, Any],
        span_id: int,
        parent_id: Optional[int],
        rank: Optional[int],
        thread: str,
        t0: float,
        uid: Optional[str] = None,
        parent_uid: Optional[str] = None,
    ) -> None:
        self.name = name
        self.attrs = attrs
        self.span_id = span_id
        self.parent_id = parent_id
        self.rank = rank
        self.thread = thread
        self.t0 = t0
        self.t1: Optional[float] = None
        #: globally unique id (``"{rank}:{namespace}:{span_id}"``);
        #: None on :class:`NullTracer` spans
        self.uid = uid
        #: the causal parent's uid — in-process nesting *or* the
        #: cross-boundary parent adopted via :func:`parent_scope`
        self.parent_uid = parent_uid

    @property
    def duration(self) -> float:
        if self.t1 is None:
            raise TraceError(f"span {self.name!r} has not finished")
        return self.t1 - self.t0

    @property
    def finished(self) -> bool:
        return self.t1 is not None

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes after the span opened."""
        self.attrs.update(attrs)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = f"dur={self.duration:.6f}s" if self.finished else "open"
        return f"Span({self.name!r}, id={self.span_id}, {state})"


# ---------------------------------------------------------------------------
# the tracer
# ---------------------------------------------------------------------------

class Tracer:
    """Process-wide structured tracer with thread-local span stacks.

    Thread-safe: each thread nests spans on its own stack (so the
    simulated MPI ranks and the threads back end cannot corrupt each
    other's hierarchy); the finished-record list and the counter/gauge
    tables are guarded by one lock.
    """

    enabled = True

    def __init__(self, label: str = "", profile: bool = True, *,
                 campaign_id: Optional[str] = None,
                 uid_ns: Optional[str] = None) -> None:
        self.label = label
        #: when true, instrumentation sites attach derived-metric work
        #: dicts (``perf`` span attrs) for :mod:`repro.util.perf`.  A
        #: :class:`NullTracer` forces this to False, so with tracing
        #: off *no* derived-metric arithmetic runs at all.
        self.profile = bool(profile) and self.enabled
        #: the campaign this trace belongs to — every participant of
        #: one campaign (ranks, shard workers, service jobs) shares it
        self.campaign_id = campaign_id or new_campaign_id(label)
        #: uid namespace — distinguishes tracers that could otherwise
        #: collide on a ``(rank, span_id)`` pair.  Defaults to the pid;
        #: multiprocess shard workers append a per-task sequence
        #: because one worker pid hosts many short-lived tracers.
        self.uid_ns = uid_ns if uid_ns is not None else str(os.getpid())
        self.epoch_unix = time.time()
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._records: List[Dict[str, Any]] = []
        self._counters: "OrderedDict[str, float]" = OrderedDict()
        self._gauges: "OrderedDict[str, float]" = OrderedDict()
        self._tls = threading.local()
        # itertools.count.__next__ never releases the GIL, so span ids
        # stay unique across threads without taking the record lock on
        # the begin() hot path
        self._ids = itertools.count()
        self._seq = 0
        # uid strings share a per-rank prefix; minting one f-string per
        # span would cost ~20% of the whole span overhead budget
        self._uid_prefix: Dict[Optional[int], str] = {}

    # -- span lifecycle ---------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def begin(self, name: str, **attrs: Any) -> Span:
        """Open a span on this thread's stack (prefer :meth:`span`)."""
        if not name:
            raise TraceError("span name must be non-empty")
        tls = self._tls
        stack = getattr(tls, "stack", None)
        if stack is None:
            stack = tls.stack = []
        if stack:
            top = stack[-1]
            parent_id: Optional[int] = top.span_id
            parent_uid: Optional[str] = top.uid
        else:
            parent_id = None
            parent_uid = getattr(_thread_ctx, "parent_uid", None)
        span_id = next(self._ids)
        rank = getattr(_thread_ctx, "rank", None)
        prefix = self._uid_prefix.get(rank)
        if prefix is None:
            prefix = self._uid_prefix.setdefault(
                rank, f"{'-' if rank is None else rank}:{self.uid_ns}:")
        tname = getattr(tls, "tname", None)
        if tname is None:
            tname = tls.tname = threading.current_thread().name
        span = Span(
            name=name,
            attrs=attrs,
            span_id=span_id,
            parent_id=parent_id,
            rank=rank,
            thread=tname,
            uid=prefix + str(span_id),
            parent_uid=parent_uid,
            t0=time.perf_counter() - self._epoch,
        )
        stack.append(span)
        return span

    def end(self, span: Span) -> Span:
        """Close a span; it must be the innermost open span of this
        thread (strict LIFO — this is what makes nesting provable)."""
        stack = self._stack()
        if not stack or stack[-1] is not span:
            if span in stack:
                raise TraceError(
                    f"span {span.name!r} closed out of order (strict LIFO)"
                )
            raise TraceError(
                f"span {span.name!r} was not opened by thread "
                f"{threading.current_thread().name!r} (spans must never "
                f"cross threads)"
            )
        stack.pop()
        span.t1 = time.perf_counter() - self._epoch
        self._record(span)
        return span

    def _record(self, span: Span) -> None:
        rec = {
            "type": "span",
            "name": span.name,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "rank": span.rank,
            "thread": span.thread,
            "t0": span.t0,
            "t1": span.t1,
            "dur": span.t1 - span.t0,  # type: ignore[operator]
            "attrs": span.attrs,
            "uid": span.uid,
            "parent_uid": span.parent_uid,
        }
        with self._lock:
            rec["seq"] = self._seq
            self._seq += 1
            self._records.append(rec)

    # -- cross-process causality ------------------------------------------
    def link(self, src: Optional[str], dst: Optional[str], *,
             kind: str = "link", **attrs: Any) -> None:
        """Record a causal edge between two span uids.

        Used where the relationship is a *handoff* rather than a
        nesting: a stolen task's executing span → its planning span,
        a coalesced service job → the leader's reduction.  A no-op
        when either end is unknown (NullTracer spans carry no uid),
        so propagation sites never have to special-case tracing off.
        """
        if not src or not dst:
            return
        rec: Dict[str, Any] = {"type": "link", "kind": str(kind),
                               "src": str(src), "dst": str(dst),
                               "attrs": dict(attrs)}
        with self._lock:
            rec["seq"] = self._seq
            self._seq += 1
            self._records.append(rec)

    def adopt_records(self, records: Sequence[Dict[str, Any]], *,
                      epoch_unix: Optional[float] = None) -> int:
        """Fold records produced by another tracer into this one.

        The multiprocess shard workers trace into their own short-lived
        tracers and ship the records home with the task result; this
        merges them.  Span and link records keep their globally unique
        ``uid``/``parent_uid`` strings, but span ``span_id``/
        ``parent_id`` ints are **remapped onto this tracer's counter**
        (the in-file uniqueness rules must hold) and all records get
        fresh ``seq`` numbers.  Timestamps are rebased from the
        worker's unix epoch onto this tracer's clock, and ``dur`` is
        recomputed after the shift so ``dur == t1 - t0`` survives the
        float arithmetic.  Counter/gauge records fold into this
        tracer's tables.  Returns the number of records adopted.
        """
        shift = 0.0
        if epoch_unix is not None:
            shift = float(epoch_unix) - self.epoch_unix
        span_recs = [r for r in records if r.get("type") == "span"]
        id_map: Dict[int, int] = {}
        for rec in span_recs:
            id_map[rec["span_id"]] = next(self._ids)
        n = 0
        for rec in records:
            rtype = rec.get("type")
            if rtype == "span":
                new = dict(rec)
                new["span_id"] = id_map[rec["span_id"]]
                new["parent_id"] = id_map.get(rec.get("parent_id"))
                t0 = float(rec["t0"]) + shift
                t1 = float(rec["t1"]) + shift
                new["t0"], new["t1"] = t0, t1
                new["dur"] = t1 - t0
            elif rtype == "link":
                new = dict(rec)
            elif rtype == "counter":
                self.count(rec["name"], float(rec["value"]))
                n += 1
                continue
            elif rtype == "gauge":
                self.gauge(rec["name"], float(rec["value"]))
                n += 1
                continue
            else:
                # meta / metrics records are the worker's envelope
                continue
            with self._lock:
                new["seq"] = self._seq
                self._seq += 1
                self._records.append(new)
            n += 1
        return n

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """``with tracer.span("mdnorm", run=3, backend="threads"):``"""
        sp = self.begin(name, **attrs)
        try:
            yield sp
        finally:
            self.end(sp)

    def current_span(self) -> Optional[Span]:
        """The innermost open span of the calling thread."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- metrics ----------------------------------------------------------
    def count(self, name: str, delta: float = 1.0) -> None:
        """Accumulate a named counter (thread-safe)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + delta

    def gauge(self, name: str, value: float) -> None:
        """Set a named gauge (last write wins)."""
        with self._lock:
            self._gauges[name] = float(value)

    @property
    def counters(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._counters)

    @property
    def gauges(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._gauges)

    # -- inspection -------------------------------------------------------
    @property
    def records(self) -> List[Dict[str, Any]]:
        """Finished span records in completion order (copies the list)."""
        with self._lock:
            return list(self._records)

    @property
    def n_spans(self) -> int:
        with self._lock:
            return len(self._records)

    def span_names(self) -> List[str]:
        return sorted({r["name"] for r in iter_spans(self.records)})

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self._counters.clear()
            self._gauges.clear()

    # -- exporters --------------------------------------------------------
    def _meta(self) -> Dict[str, Any]:
        return {
            "type": "meta",
            "schema": SCHEMA_VERSION,
            "label": self.label,
            "pid": os.getpid(),
            "epoch_unix": self.epoch_unix,
            "campaign_id": self.campaign_id,
            "tool": "repro.util.trace",
        }

    def write_jsonl(self, path: str) -> int:
        """Write the JSON-lines trace file; returns the record count."""
        records = self.records
        counters, gauges = self.counters, self.gauges
        n = 0
        with open(path, "w") as fh:
            fh.write(json.dumps(self._meta(), default=_json_default) + "\n")
            n += 1
            for rec in records:
                fh.write(json.dumps(rec, default=_json_default) + "\n")
                n += 1
            for name, value in counters.items():
                fh.write(json.dumps(
                    {"type": "counter", "name": name, "value": value}) + "\n")
                n += 1
            for name, value in gauges.items():
                fh.write(json.dumps(
                    {"type": "gauge", "name": name, "value": value}) + "\n")
                n += 1
            # schema v2: one consolidated record so downstream consumers
            # (summary, PerfModel) need only the records list
            fh.write(json.dumps({
                "type": "metrics",
                "counters": dict(counters),
                "gauges": dict(gauges),
            }) + "\n")
            n += 1
        return n

    def write_jsonl_dir(self, dir_path: str, *,
                        prefix: str = "trace") -> List[str]:
        """Write one JSON-lines file per rank stream under ``dir_path``.

        Models the real-MPI deployment where every rank writes its own
        trace file: span records split by ``rank`` (None → the
        ``main`` file, which also carries the counter/gauge/metrics
        tables), link records follow the rank encoded in their ``src``
        uid.  Every file carries the same campaign meta, so
        :mod:`repro.util.tracedag` can stitch the directory back into
        one causal DAG.  Returns the written paths.
        """
        records = self.records
        by_key: "OrderedDict[str, List[Dict[str, Any]]]" = OrderedDict()
        by_key["main"] = []
        for rec in records:
            rtype = rec.get("type")
            if rtype == "span":
                rank = rec.get("rank")
                key = "main" if rank is None else f"rank{rank}"
            elif rtype == "link":
                head = str(rec.get("src", "")).split(":", 1)[0]
                key = "main" if head in ("", "-") else f"rank{head}"
            else:
                continue
            by_key.setdefault(key, []).append(rec)
        os.makedirs(dir_path, exist_ok=True)
        counters, gauges = self.counters, self.gauges
        paths: List[str] = []
        for key, recs in by_key.items():
            path = os.path.join(dir_path, f"{prefix}-{key}.jsonl")
            with open(path, "w") as fh:
                fh.write(json.dumps(self._meta(), default=_json_default)
                         + "\n")
                for rec in recs:
                    fh.write(json.dumps(rec, default=_json_default) + "\n")
                if key == "main":
                    for name, value in counters.items():
                        fh.write(json.dumps({"type": "counter",
                                             "name": name,
                                             "value": value}) + "\n")
                    for name, value in gauges.items():
                        fh.write(json.dumps({"type": "gauge",
                                             "name": name,
                                             "value": value}) + "\n")
                    fh.write(json.dumps({"type": "metrics",
                                         "counters": dict(counters),
                                         "gauges": dict(gauges)}) + "\n")
            paths.append(path)
        return paths

    def write_chrome_trace(self, path: str) -> int:
        """Write a ``chrome://tracing`` / Perfetto JSON file."""
        return write_chrome_trace(path, self.records, meta=self._meta())

    def summary(self, per_rank: bool = True) -> str:
        """Paper-style WCT table derived from the spans alone."""
        return summary_from_records(
            self.records, counters=self.counters, gauges=self.gauges,
            label=self.label, per_rank=per_rank,
        )

    def stage_timings(self, *, label: Optional[str] = None,
                      rank: Optional[int] = None):
        """Rebuild an API-compatible ``StageTimings`` from the spans."""
        return stage_timings_from_records(self.records, label=label, rank=rank)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Tracer(label={self.label!r}, spans={self.n_spans}, "
                f"counters={len(self.counters)})")


class NullTracer(Tracer):
    """The disabled tracer: spans still carry timestamps (so the
    ``StageTimings`` view keeps working), but nothing is recorded, no
    stacks are kept, and counters/gauges are dropped."""

    enabled = False

    def begin(self, name: str, **attrs: Any) -> Span:
        return Span(
            name=name, attrs=attrs, span_id=-1, parent_id=None,
            rank=None, thread="", t0=time.perf_counter() - self._epoch,
        )

    def end(self, span: Span) -> Span:
        span.t1 = time.perf_counter() - self._epoch
        return span

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        sp = self.begin(name)
        try:
            yield sp
        finally:
            sp.t1 = time.perf_counter() - self._epoch

    def current_span(self) -> Optional[Span]:
        return None

    def count(self, name: str, delta: float = 1.0) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def link(self, src: Optional[str], dst: Optional[str], *,
             kind: str = "link", **attrs: Any) -> None:
        pass

    def adopt_records(self, records: Sequence[Dict[str, Any]], *,
                      epoch_unix: Optional[float] = None) -> int:
        return 0


#: the process-default tracer: disabled (tracing is strictly opt-in)
DISABLED = NullTracer()

_active_lock = threading.Lock()
_active: Tracer = DISABLED


def active_tracer() -> Tracer:
    """The tracer the instrumented pipeline currently reports into."""
    return _active


def set_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Install the process-wide tracer (None resets to :data:`DISABLED`)."""
    global _active
    with _active_lock:
        _active = tracer if tracer is not None else DISABLED
        return _active


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` for a block, restoring the previous one after."""
    global _active
    with _active_lock:
        prev = _active
        _active = tracer
    try:
        yield tracer
    finally:
        with _active_lock:
            _active = prev


# ---------------------------------------------------------------------------
# serialization helpers
# ---------------------------------------------------------------------------

def _json_default(obj: Any) -> Any:
    """Best-effort JSON encoding of numpy scalars / arrays in attrs."""
    import numpy as np

    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    return str(obj)


def load_file(path: str) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Read a JSON-lines trace back as ``(meta, records)``.

    ``records`` holds every non-meta record (spans in seq order as
    written, then counters/gauges).
    """
    records: List[Dict[str, Any]] = []
    meta: Optional[Dict[str, Any]] = None
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceError(f"{path}:{lineno}: not JSON: {exc}") from exc
            if not isinstance(rec, dict) or "type" not in rec:
                raise TraceError(f"{path}:{lineno}: record has no 'type'")
            if rec["type"] == "meta":
                if meta is not None:
                    raise TraceError(f"{path}:{lineno}: duplicate meta record")
                meta = rec
            else:
                records.append(rec)
    if meta is None:
        raise TraceError(f"{path}: missing meta record")
    return meta, records


def validate_file(path: str) -> Dict[str, Any]:
    """Validate a JSON-lines trace against the schema.

    Raises :class:`TraceError` on any violation; returns a summary
    dict (span/rank/counter inventory) on success.  This is the helper
    the CI trace-smoke job runs.
    """
    meta, records = load_file(path)
    if meta.get("schema") not in SUPPORTED_SCHEMAS:
        raise TraceError(
            f"{path}: schema {meta.get('schema')!r} not in "
            f"{SUPPORTED_SCHEMAS}"
        )
    schema = meta["schema"]
    span_ids = set()
    uids = set()
    parents = []
    names = set()
    ranks = set()
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    n_spans = 0
    n_links = 0
    last_seq = -1
    for i, rec in enumerate(records):
        rtype = rec.get("type")
        if rtype not in RECORD_TYPES:
            raise TraceError(f"{path}: record {i} has unknown type {rtype!r}")
        if rtype == "span":
            missing = [k for k in SPAN_KEYS if k not in rec]
            if missing:
                raise TraceError(
                    f"{path}: span record {i} missing keys {missing}"
                )
            if not isinstance(rec["name"], str) or not rec["name"]:
                raise TraceError(f"{path}: span record {i} has empty name")
            if not isinstance(rec["attrs"], dict):
                raise TraceError(f"{path}: span record {i} attrs not a dict")
            t0, t1, dur = rec["t0"], rec["t1"], rec["dur"]
            if not (isinstance(t0, (int, float)) and isinstance(t1, (int, float))):
                raise TraceError(f"{path}: span record {i} timestamps not numeric")
            if t1 < t0 or dur < 0:
                raise TraceError(f"{path}: span record {i} runs backwards")
            if abs((t1 - t0) - dur) > 1e-9:
                raise TraceError(f"{path}: span record {i} dur != t1 - t0")
            if rec["span_id"] in span_ids:
                raise TraceError(
                    f"{path}: duplicate span_id {rec['span_id']}"
                )
            if rec["seq"] <= last_seq:
                raise TraceError(f"{path}: span record {i} out of seq order")
            last_seq = rec["seq"]
            span_ids.add(rec["span_id"])
            if rec["parent_id"] is not None:
                parents.append((i, rec["parent_id"]))
            if schema >= 3:
                missing = [k for k in SPAN_KEYS_V3 if k not in rec]
                if missing:
                    raise TraceError(
                        f"{path}: span record {i} missing v3 keys {missing}"
                    )
                uid = rec["uid"]
                if not isinstance(uid, str) or not uid:
                    raise TraceError(
                        f"{path}: span record {i} uid must be a "
                        f"non-empty string"
                    )
                if uid in uids:
                    raise TraceError(f"{path}: duplicate span uid {uid!r}")
                uids.add(uid)
                pu = rec["parent_uid"]
                # parent_uid may reference a span in *another* file of
                # the campaign — dangling here is legal; the merged-DAG
                # validator (repro.util.tracedag) is the one that
                # rejects orphans
                if pu is not None and (not isinstance(pu, str) or not pu):
                    raise TraceError(
                        f"{path}: span record {i} parent_uid must be "
                        f"None or a non-empty string"
                    )
            names.add(rec["name"])
            if rec["rank"] is not None:
                ranks.add(rec["rank"])
            n_spans += 1
        elif rtype == "link":
            if schema < 3:
                raise TraceError(
                    f"{path}: link record {i} in a schema-{schema} file"
                )
            missing = [k for k in LINK_KEYS if k not in rec]
            if missing:
                raise TraceError(
                    f"{path}: link record {i} missing keys {missing}"
                )
            for end in ("src", "dst"):
                if not isinstance(rec[end], str) or not rec[end]:
                    raise TraceError(
                        f"{path}: link record {i} {end} must be a "
                        f"non-empty uid"
                    )
            if not isinstance(rec["attrs"], dict):
                raise TraceError(f"{path}: link record {i} attrs not a dict")
            n_links += 1
        elif rtype in ("counter", "gauge"):
            if "name" not in rec or not isinstance(rec.get("value"), (int, float)):
                raise TraceError(
                    f"{path}: {rtype} record {i} needs a name and numeric value"
                )
            (counters if rtype == "counter" else gauges)[rec["name"]] = rec["value"]
        elif rtype == "metrics":
            if meta.get("schema", SCHEMA_VERSION) < 2:
                raise TraceError(
                    f"{path}: metrics record {i} in a schema-1 file"
                )
            for kind, table in (("counters", counters), ("gauges", gauges)):
                block = rec.get(kind)
                if not isinstance(block, dict):
                    raise TraceError(
                        f"{path}: metrics record {i} missing {kind!r} dict"
                    )
                for name, value in block.items():
                    if not isinstance(value, (int, float)):
                        raise TraceError(
                            f"{path}: metrics record {i} {kind} "
                            f"{name!r} value not numeric"
                        )
                    table[name] = value
    for i, pid in enumerate(p for _, p in parents):
        if pid not in span_ids:
            raise TraceError(
                f"{path}: span parent_id {pid} references no span in the file"
            )
    return {
        "schema": meta["schema"],
        "label": meta.get("label", ""),
        "campaign_id": meta.get("campaign_id"),
        "n_spans": n_spans,
        "n_links": n_links,
        "span_names": sorted(names),
        "ranks": sorted(ranks),
        "counters": counters,
        "gauges": gauges,
    }


# ---------------------------------------------------------------------------
# chrome trace export
# ---------------------------------------------------------------------------

def write_chrome_trace(
    path: str,
    records: Sequence[Dict[str, Any]],
    *,
    meta: Optional[Dict[str, Any]] = None,
) -> int:
    """Write span records as a Chrome-trace (``chrome://tracing``) file.

    Each (rank, thread) pair becomes one timeline row; spans are
    complete ("X") events with microsecond timestamps.  Returns the
    number of trace events written.
    """
    pid = (meta or {}).get("pid", os.getpid())
    label = (meta or {}).get("label", "")
    events: List[Dict[str, Any]] = [{
        "ph": "M", "name": "process_name", "pid": pid,
        "args": {"name": f"repro reduction {label}".strip()},
    }]
    tids: Dict[Tuple[Optional[int], str], int] = {}
    for rec in records:
        if rec.get("type", "span") != "span":
            continue
        key = (rec.get("rank"), rec.get("thread", ""))
        if key not in tids:
            tid = len(tids)
            tids[key] = tid
            rank, thread = key
            row = f"rank {rank}" if rank is not None else (thread or "main")
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": row},
            })
        events.append({
            "ph": "X",
            "name": rec["name"],
            "cat": str(rec.get("attrs", {}).get("kind", "span")),
            "pid": pid,
            "tid": tids[key],
            "ts": rec["t0"] * 1e6,
            "dur": rec["dur"] * 1e6,
            "args": rec.get("attrs", {}),
        })
    with open(path, "w") as fh:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"},
                  fh, default=_json_default)
    return len(events)


def write_chrome_trace_merged(
    path: str,
    traces: Sequence[Tuple[Dict[str, Any], Sequence[Dict[str, Any]]]],
) -> int:
    """Write one Chrome-trace file from many per-process trace files.

    ``traces`` is a sequence of ``(meta, records)`` pairs (from
    :func:`load_file`).  Unlike :func:`write_chrome_trace` — which
    keeps the originating pid as the single chrome process and is the
    right exporter for *one* file — every distinct ``(pid, rank)``
    pair here gets its **own** chrome pid, so per-rank files written
    by the same process (or files whose processes recycled a pid) no
    longer collide on pid/tid rows, and each file's timestamps are
    aligned onto one campaign clock via its meta ``epoch_unix``.
    Returns the number of trace events written.
    """
    if not traces:
        raise TraceError("write_chrome_trace_merged: no trace files given")
    base_epoch = min(float((m or {}).get("epoch_unix", 0.0))
                     for m, _ in traces)
    events: List[Dict[str, Any]] = []
    pids: Dict[Tuple[Any, Any], int] = {}
    tids: Dict[Tuple[int, Any, str], int] = {}
    for meta, records in traces:
        meta = meta or {}
        file_pid = meta.get("pid", 0)
        offset_us = (float(meta.get("epoch_unix", base_epoch))
                     - base_epoch) * 1e6
        label = meta.get("label", "")
        for rec in records:
            if rec.get("type", "span") != "span":
                continue
            rank = rec.get("rank")
            pkey = (file_pid, rank)
            if pkey not in pids:
                pid = len(pids) + 1
                pids[pkey] = pid
                row = (f"rank {rank}" if rank is not None
                       else (label or "main"))
                events.append({
                    "ph": "M", "name": "process_name", "pid": pid,
                    "args": {"name": f"{row} (pid {file_pid})"},
                })
            pid = pids[pkey]
            tkey = (pid, rank, rec.get("thread", ""))
            if tkey not in tids:
                tid = len([k for k in tids if k[0] == pid])
                tids[tkey] = tid
                events.append({
                    "ph": "M", "name": "thread_name", "pid": pid,
                    "tid": tid,
                    "args": {"name": rec.get("thread", "") or "main"},
                })
            events.append({
                "ph": "X",
                "name": rec["name"],
                "cat": str(rec.get("attrs", {}).get("kind", "span")),
                "pid": pid,
                "tid": tids[tkey],
                "ts": rec["t0"] * 1e6 + offset_us,
                "dur": rec["dur"] * 1e6,
                "args": rec.get("attrs", {}),
            })
    with open(path, "w") as fh:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"},
                  fh, default=_json_default)
    return len(events)


# ---------------------------------------------------------------------------
# derived views: StageTimings + the paper-style summary table
# ---------------------------------------------------------------------------

def iter_spans(records: Sequence[Dict[str, Any]]) -> Iterator[Dict[str, Any]]:
    for rec in records:
        if rec.get("type", "span") == "span":
            yield rec


def counters_from_records(
    records: Sequence[Dict[str, Any]],
) -> "OrderedDict[str, float]":
    """Counter totals from the records alone (v1 ``counter`` records
    and/or the v2 consolidated ``metrics`` record; metrics wins on
    duplicates since it is written last)."""
    out: "OrderedDict[str, float]" = OrderedDict()
    for rec in records:
        rtype = rec.get("type")
        if rtype == "counter":
            out[rec["name"]] = float(rec["value"])
        elif rtype == "metrics":
            for name, value in rec.get("counters", {}).items():
                out[name] = float(value)
    return out


def gauges_from_records(
    records: Sequence[Dict[str, Any]],
) -> "OrderedDict[str, float]":
    """Gauge values from the records alone (v1 + v2, see
    :func:`counters_from_records`)."""
    out: "OrderedDict[str, float]" = OrderedDict()
    for rec in records:
        rtype = rec.get("type")
        if rtype == "gauge":
            out[rec["name"]] = float(rec["value"])
        elif rtype == "metrics":
            for name, value in rec.get("gauges", {}).items():
                out[name] = float(value)
    return out


def _stage_spans(
    records: Sequence[Dict[str, Any]],
    *,
    label: Optional[str] = None,
    rank: Optional[int] = None,
) -> Iterator[Dict[str, Any]]:
    for rec in iter_spans(records):
        attrs = rec.get("attrs", {})
        if attrs.get("kind") != "stage":
            continue
        if label is not None and attrs.get("timings") != label:
            continue
        if rank is not None and rec.get("rank") != rank:
            continue
        yield rec


def stage_timings_from_records(
    records: Sequence[Dict[str, Any]],
    *,
    label: Optional[str] = None,
    rank: Optional[int] = None,
):
    """Rebuild a ``StageTimings`` from the trace's stage spans.

    Replays the spans in completion (seq) order, accumulating exactly
    the float additions the live accumulator performed — so for a
    single-threaded reduction the result equals the legacy
    ``StageTimings`` **bit for bit** (the differential tests assert
    ``==``, not ``approx``).

    ``label`` filters on the originating ``StageTimings.label`` (stage
    spans carry it as the ``timings`` attribute); ``rank`` filters one
    MPI rank's stream.
    """
    from repro.util.timers import StageTimings

    derived = StageTimings(label=label or "trace-derived")
    for rec in sorted(_stage_spans(records, label=label, rank=rank),
                      key=lambda r: r["seq"]):
        name = rec["name"]
        timer = derived.timer(name)
        timer.elapsed += rec["dur"]
        timer.ncalls += 1
        derived.first_call.setdefault(name, rec["dur"])
    return derived


def stage_totals(
    records: Sequence[Dict[str, Any]],
    *,
    label: Optional[str] = None,
    rank: Optional[int] = None,
) -> "OrderedDict[str, float]":
    """Per-stage total seconds derived from the trace alone."""
    timings = stage_timings_from_records(records, label=label, rank=rank)
    out: "OrderedDict[str, float]" = OrderedDict()
    for name in timings.stages:
        out[name] = timings.seconds(name)
    return out


def kernel_totals(
    records: Sequence[Dict[str, Any]],
) -> "OrderedDict[str, Dict[str, float]]":
    """Aggregate per-kernel launch spans (``kernel:*``) by name/backend."""
    out: "OrderedDict[str, Dict[str, float]]" = OrderedDict()
    for rec in iter_spans(records):
        if not rec["name"].startswith("kernel:"):
            continue
        backend = rec.get("attrs", {}).get("backend", "?")
        key = f"{rec['name']} [{backend}]"
        slot = out.setdefault(key, {"seconds": 0.0, "launches": 0})
        slot["seconds"] += rec["dur"]
        slot["launches"] += 1
    return out


#: counter prefixes that make up the recovery story of a trace
RECOVERY_COUNTER_PREFIXES = (
    "fault.injected", "retry.attempt", "retry.exhausted",
    "quarantine.", "checkpoint.", "rank.crash", "stream.dropped",
)


def recovery_summary(
    records: Sequence[Dict[str, Any]],
    *,
    counters: Optional[Dict[str, float]] = None,
) -> Dict[str, float]:
    """The failure/recovery story of a trace, from its records alone.

    Collects every fault/retry/quarantine/checkpoint counter plus the
    ``recover.attempt`` / ``recover.backoff`` span totals; empty dict
    when the trace saw no recovery activity (the common case — the
    block is omitted from the summary then).
    """
    out: Dict[str, float] = {}
    for name, value in (counters or {}).items():
        if name.startswith(RECOVERY_COUNTER_PREFIXES):
            out[name] = float(value)
    n_attempts = 0
    backoff_s = 0.0
    for rec in iter_spans(records):
        if rec["name"] == "recover.attempt":
            n_attempts += 1
        elif rec["name"] == "recover.backoff":
            backoff_s += float(rec.get("dur", 0.0))
    if n_attempts:
        out["recover.attempt.spans"] = float(n_attempts)
    if backoff_s:
        out["recover.backoff.seconds"] = backoff_s
    return dict(sorted(out.items()))


def summary_from_records(
    records: Sequence[Dict[str, Any]],
    *,
    counters: Optional[Dict[str, float]] = None,
    gauges: Optional[Dict[str, float]] = None,
    label: str = "",
    per_rank: bool = True,
) -> str:
    """The paper-style WCT table, reproduced from the trace alone.

    One block of UpdateEvents / MDNorm / BinMD / MDNorm + BinMD / Total
    rows (total, calls, first call, warm remainder) for the whole trace
    and — when the trace carries rank-attributed spans — one per rank,
    followed by per-kernel launch totals, a derived-throughput block
    (when the trace carries profiled spans), and the counter/gauge
    tables.  Counters/gauges default to the totals embedded in the
    records themselves (schema v2 ``metrics`` record), so a written
    trace file is a complete artifact on its own.
    """
    from repro.util.timers import CANONICAL_STAGES

    if counters is None:
        counters = counters_from_records(records)
    if gauges is None:
        gauges = gauges_from_records(records)

    lines: List[str] = [f"trace summary ({label or 'unlabelled'})"]

    def block(title: str, rank: Optional[int]) -> None:
        timings = stage_timings_from_records(records, rank=rank)
        if not timings.stages:
            return
        lines.append(f"-- {title}")
        lines.append(f"  {'stage':<18s} {'total (s)':>12s} {'calls':>7s} "
                     f"{'first (s)':>12s} {'warm (s)':>12s}")
        names = [s for s in CANONICAL_STAGES
                 if s in timings.stages or s == "MDNorm + BinMD"]
        names += [s for s in timings.stages if s not in names]
        for name in names:
            if name == "MDNorm + BinMD" and "MDNorm" not in timings.stages \
                    and "BinMD" not in timings.stages:
                continue
            t = timings.stages.get(name)
            ncalls = t.ncalls if t is not None else 0
            first = timings.first_call.get(name, 0.0)
            if name == "MDNorm + BinMD":
                ncalls = max(
                    getattr(timings.stages.get("MDNorm"), "ncalls", 0),
                    getattr(timings.stages.get("BinMD"), "ncalls", 0),
                )
                first = (timings.first_call.get("MDNorm", 0.0)
                         + timings.first_call.get("BinMD", 0.0))
            lines.append(
                f"  {name:<18s} {timings.seconds(name):12.4f} {ncalls:7d} "
                f"{first:12.4f} {timings.warm_seconds(name):12.4f}"
            )

    block("all ranks", None)
    ranks = sorted({r["rank"] for r in iter_spans(records)
                    if r.get("rank") is not None})
    if per_rank and len(ranks) > 0:
        for rank in ranks:
            block(f"rank {rank}", rank)

    kernels = kernel_totals(records)
    if kernels:
        lines.append("-- kernel launches")
        for key, slot in sorted(kernels.items(),
                                key=lambda kv: -kv[1]["seconds"]):
            lines.append(f"  {key:<40s} {slot['seconds']:12.4f} s "
                         f"x{slot['launches']}")
    # derived throughput (profiled spans only; lazy import — perf
    # imports helpers from this module)
    from repro.util.perf import PerfModel

    model = PerfModel.from_records(records, counters=counters, gauges=gauges)
    if model.n_kernels:
        lines.append(model.table(title="derived throughput"))
    recovery = recovery_summary(records, counters=counters)
    if recovery:
        lines.append("-- recovery")
        for name, value in recovery.items():
            lines.append(f"  {name:<40s} {value:16.6g}")
    if counters:
        lines.append("-- counters")
        for name, value in counters.items():
            lines.append(f"  {name:<40s} {value:16.6g}")
    if gauges:
        lines.append("-- gauges")
        for name, value in gauges.items():
            lines.append(f"  {name:<40s} {value:16.6g}")
    return "\n".join(lines)
