"""Live campaign monitor for the multi-run reduction loop.

A multi-hour CORELLI campaign (the paper's 373-file Benzil sweep) needs
*liveness* observability, not just post-hoc traces: which rank is on
which run, whether any rank has silently stalled, and when the campaign
will finish.  This module is the in-process side of that story:

* **per-rank heartbeat gauges** — runs completed, events processed,
  the current site (``run:<i>/<stage>``), and a last-progress
  timestamp, updated from inside the ``cross_section`` loop;
* a **stall detector** — :meth:`CampaignMonitor.stalled_ranks` flags
  ranks whose last heartbeat is older than a deadline while they still
  have work (the symptom of a hung I/O or a livelocked kernel);
* an **ETA estimator** — realized runs/second over the campaign so far,
  extrapolated over the remaining runs;
* **recovery visibility** — quarantined / resumed runs and crashed
  ranks (PR 3's dispositions) appear in the same snapshot, so a
  degraded campaign is visible *while it happens*, not at the end;
* an **OpenMetrics/Prometheus text writer** — ``--metrics-file`` makes
  the reduction atomically rewrite a ``.prom`` exposition file
  (:mod:`repro.util.atomic_io`) on every progress event, which any
  node-exporter textfile collector or ``repro perf watch`` can scrape.

Monitoring is **opt-in** exactly like tracing: the process default is
:data:`DISABLED` (a null monitor whose methods are no-ops) and the
instrumented loop guards on :attr:`CampaignMonitor.enabled`, so the
fail-fast path stays untouched unless a monitor is installed::

    monitor = CampaignMonitor(label="benzil", metrics_path="live.prom")
    with use_monitor(monitor):
        workflow.run()
    print(monitor.snapshot())
"""

from __future__ import annotations

import re
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.util import atomic_io
from repro.util.validation import ReproError

#: metric-name prefix of every exposition line
METRIC_PREFIX = "repro"

#: default stall deadline (seconds without progress while active)
DEFAULT_STALL_DEADLINE = 30.0


class MonitorError(ReproError):
    """Monitor misuse or an unreadable metrics file."""


@dataclass
class RankState:
    """One rank's live progress."""

    rank: int
    runs_assigned: int = 0
    runs_completed: int = 0
    runs_quarantined: int = 0
    runs_resumed: int = 0
    #: shard tasks this rank stole from another rank's queue
    steals: int = 0
    events_processed: float = 0.0
    current_run: int = -1
    current_site: str = ""
    #: unix timestamp of the last progress event
    last_progress: float = 0.0
    #: "active" | "crashed" | "done"
    status: str = "active"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rank": self.rank,
            "runs_assigned": self.runs_assigned,
            "runs_completed": self.runs_completed,
            "runs_quarantined": self.runs_quarantined,
            "runs_resumed": self.runs_resumed,
            "steals": self.steals,
            "events_processed": self.events_processed,
            "current_run": self.current_run,
            "current_site": self.current_site,
            "last_progress": self.last_progress,
            "status": self.status,
        }


class CampaignMonitor:
    """Thread-safe live state of one reduction campaign.

    The in-process MPI ranks (``run_world`` threads) all report into
    one monitor; every mutator takes the lock, and every mutator
    refreshes the rank's ``last_progress`` stamp (that is what makes
    the stall detector meaningful).  ``clock`` is injectable so the
    stall/ETA tests need no real sleeping.
    """

    enabled = True

    def __init__(
        self,
        label: str = "",
        *,
        metrics_path: Optional[str] = None,
        stall_deadline: float = DEFAULT_STALL_DEADLINE,
        clock: Callable[[], float] = time.time,
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        self.label = label
        self.metrics_path = metrics_path
        self.stall_deadline = float(stall_deadline)
        self._clock = clock
        self._lock = threading.Lock()
        self._ranks: Dict[int, RankState] = {}
        self.n_runs = 0
        self.world_size = 0
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        #: constant labels stamped on every exported sample — the
        #: campaign service sets ``{"job": ..., "tenant": ...}`` here so
        #: one scrape distinguishes concurrent jobs
        self.labels: Dict[str, str] = {
            str(k): str(v) for k, v in (labels or {}).items()
        }
        #: ad-hoc gauges published alongside the campaign metrics
        #: (e.g. the service's ``service_queue_depth``)
        self._extra: Dict[
            Tuple[str, Tuple[Tuple[str, str], ...]], float
        ] = {}

    def set_gauge(self, name: str, value: float, **labels: str) -> None:
        """Publish/update an extra gauge ``repro_<name>`` in the
        exposition (sample-specific labels merge over the constant
        ones)."""
        key = (str(name), tuple(sorted(
            (str(k), str(v)) for k, v in labels.items()
        )))
        with self._lock:
            self._extra[key] = float(value)
        self._flush()

    def drop_gauge(self, name: str, **labels: str) -> None:
        """Retract an extra gauge sample (e.g. a job's previous state
        in an info-style metric)."""
        key = (str(name), tuple(sorted(
            (str(k), str(v)) for k, v in labels.items()
        )))
        with self._lock:
            self._extra.pop(key, None)

    # -- lifecycle --------------------------------------------------------
    def start_campaign(self, n_runs: int, world_size: int = 1) -> None:
        with self._lock:
            self.n_runs = max(self.n_runs, int(n_runs))
            self.world_size = max(self.world_size, int(world_size))
            if self.started_at is None:
                self.started_at = self._clock()
        self._flush()

    def finish_campaign(self) -> None:
        now = self._clock()
        with self._lock:
            self.finished_at = now
            for state in self._ranks.values():
                if state.status == "active":
                    state.status = "done"
                    state.current_site = ""
        self._flush()

    def _rank(self, rank: int) -> RankState:
        state = self._ranks.get(rank)
        if state is None:
            state = self._ranks[rank] = RankState(rank=int(rank))
        return state

    # -- heartbeats -------------------------------------------------------
    def assign_runs(self, rank: int, n: int) -> None:
        with self._lock:
            state = self._rank(rank)
            state.runs_assigned += int(n)
            state.last_progress = self._clock()

    def heartbeat(
        self,
        rank: int,
        *,
        site: Optional[str] = None,
        run: Optional[int] = None,
    ) -> None:
        """A progress pulse: the rank is alive at ``site``."""
        with self._lock:
            state = self._rank(rank)
            if site is not None:
                state.current_site = str(site)
            if run is not None:
                state.current_run = int(run)
            state.last_progress = self._clock()

    def run_completed(self, rank: int, run: int, *, events: float = 0.0) -> None:
        with self._lock:
            state = self._rank(rank)
            state.runs_completed += 1
            state.events_processed += float(events)
            state.current_run = int(run)
            state.current_site = ""
            state.last_progress = self._clock()
        self._flush()

    # -- recovery visibility (PR 3 integration) ---------------------------
    def record_quarantine(self, rank: int, run: int) -> None:
        with self._lock:
            state = self._rank(rank)
            state.runs_quarantined += 1
            state.current_site = f"quarantined:run:{int(run)}"
            state.last_progress = self._clock()
        self._flush()

    def record_resume(self, rank: int, run: int) -> None:
        with self._lock:
            state = self._rank(rank)
            state.runs_resumed += 1
            state.runs_completed += 1
            state.current_run = int(run)
            state.last_progress = self._clock()
        self._flush()

    def record_crash(self, rank: int) -> None:
        with self._lock:
            state = self._rank(rank)
            state.status = "crashed"
            state.current_site = "crashed"
            state.last_progress = self._clock()
        self._flush()

    # -- elastic execution visibility (stealing executor) ------------------
    def record_steal(self, thief: int, victim: int, run: int) -> None:
        """The thief rank took a shard of ``run`` from the victim's
        queue (born helper ranks report like any other rank — their
        RankState is created on first contact)."""
        with self._lock:
            state = self._rank(thief)
            state.steals += 1
            state.current_site = f"steal:run:{int(run)}<-rank:{int(victim)}"
            state.last_progress = self._clock()
        self._flush()

    # -- derived views ----------------------------------------------------
    @property
    def ranks(self) -> List[RankState]:
        with self._lock:
            return [self._ranks[r] for r in sorted(self._ranks)]

    @property
    def runs_completed(self) -> int:
        with self._lock:
            return sum(s.runs_completed for s in self._ranks.values())

    @property
    def events_processed(self) -> float:
        with self._lock:
            return sum(s.events_processed for s in self._ranks.values())

    def stalled_ranks(
        self,
        deadline: Optional[float] = None,
        *,
        now: Optional[float] = None,
    ) -> List[int]:
        """Ranks still active whose last progress is older than the
        deadline — the liveness alarm of the campaign."""
        limit = self.stall_deadline if deadline is None else float(deadline)
        t = self._clock() if now is None else float(now)
        out = []
        with self._lock:
            if self.finished_at is not None:
                return []
            for rank in sorted(self._ranks):
                state = self._ranks[rank]
                if state.status != "active":
                    continue
                if state.last_progress and t - state.last_progress > limit:
                    out.append(rank)
        return out

    def eta_seconds(self, *, now: Optional[float] = None) -> Optional[float]:
        """Remaining seconds from the realized runs/second so far.

        None until at least one run completed (no throughput sample
        yet); 0.0 once everything is done.
        """
        t = self._clock() if now is None else float(now)
        with self._lock:
            done = sum(s.runs_completed for s in self._ranks.values())
            quarantined = sum(s.runs_quarantined for s in self._ranks.values())
            accounted = done + quarantined
            remaining = max(self.n_runs - accounted, 0)
            if remaining == 0:
                return 0.0
            if done == 0 or self.started_at is None:
                return None
            elapsed = max(t - self.started_at, 1e-9)
            rate = done / elapsed
            return remaining / rate if rate > 0.0 else None

    def snapshot(self) -> Dict[str, Any]:
        """The whole campaign state as one JSON-friendly dict."""
        with self._lock:
            ranks = [self._ranks[r].as_dict() for r in sorted(self._ranks)]
            done = sum(s.runs_completed for s in self._ranks.values())
            quarantined = sum(s.runs_quarantined for s in self._ranks.values())
            resumed = sum(s.runs_resumed for s in self._ranks.values())
            steals = sum(s.steals for s in self._ranks.values())
            crashed = sorted(r for r, s in self._ranks.items()
                             if s.status == "crashed")
            events = sum(s.events_processed for s in self._ranks.values())
            started = self.started_at
            finished = self.finished_at
            n_runs = self.n_runs
        return {
            "label": self.label,
            "n_runs": n_runs,
            "runs_completed": done,
            "runs_quarantined": quarantined,
            "runs_resumed": resumed,
            "steals": steals,
            "events_processed": events,
            "crashed_ranks": crashed,
            "stalled_ranks": self.stalled_ranks(),
            "eta_seconds": self.eta_seconds(),
            "started_at": started,
            "finished_at": finished,
            "ranks": ranks,
        }

    # -- OpenMetrics exposition -------------------------------------------
    def openmetrics(self) -> str:
        """Prometheus/OpenMetrics text exposition of the snapshot.

        Every sample carries the monitor's constant ``labels`` (job /
        tenant in service mode) merged with sample-specific ones.
        """
        snap = self.snapshot()
        p = METRIC_PREFIX
        lines: List[str] = []

        def esc(v: object) -> str:
            # label-value escaping per the Prometheus exposition spec:
            # backslash first, then quote, then raw newlines
            return (str(v).replace("\\", "\\\\").replace('"', '\\"')
                    .replace("\n", "\\n"))

        def labelstr(*pairs: Tuple[str, object]) -> str:
            merged = dict(self.labels)
            merged.update({k: str(v) for k, v in pairs})
            if not merged:
                return ""
            body = ",".join(
                f'{k}="{esc(v)}"' for k, v in sorted(merged.items())
            )
            return "{" + body + "}"

        def gauge(name: str, help_: str) -> None:
            lines.append(f"# HELP {p}_{name} {help_}")
            lines.append(f"# TYPE {p}_{name} gauge")

        base = labelstr()
        gauge("campaign_runs_total", "runs in this campaign")
        lines.append(f"{p}_campaign_runs_total{base} {snap['n_runs']}")
        gauge("campaign_runs_completed", "runs completed across ranks")
        lines.append(
            f"{p}_campaign_runs_completed{base} {snap['runs_completed']}")
        gauge("campaign_runs_quarantined", "runs quarantined (degraded)")
        lines.append(
            f"{p}_campaign_runs_quarantined{base} {snap['runs_quarantined']}")
        gauge("campaign_runs_resumed", "runs replayed from checkpoints")
        lines.append(
            f"{p}_campaign_runs_resumed{base} {snap['runs_resumed']}")
        gauge("campaign_steals", "shard tasks stolen across ranks")
        lines.append(f"{p}_campaign_steals{base} {snap['steals']}")
        gauge("campaign_events_processed", "events processed across ranks")
        lines.append(
            f"{p}_campaign_events_processed{base} "
            f"{snap['events_processed']:.17g}")
        eta = snap["eta_seconds"]
        gauge("campaign_eta_seconds", "estimated seconds to completion")
        lines.append(
            f"{p}_campaign_eta_seconds{base} "
            f"{eta if eta is not None else 'NaN'}")
        gauge("campaign_stalled_ranks", "ranks past the stall deadline")
        lines.append(
            f"{p}_campaign_stalled_ranks{base} {len(snap['stalled_ranks'])}")

        gauge("rank_runs_completed", "runs completed by rank")
        for r in snap["ranks"]:
            lines.append(
                f"{p}_rank_runs_completed{labelstr(('rank', r['rank']))} "
                f"{r['runs_completed']}")
        gauge("rank_steals", "shard tasks stolen by rank")
        for r in snap["ranks"]:
            lines.append(
                f"{p}_rank_steals{labelstr(('rank', r['rank']))} "
                f"{r['steals']}")
        gauge("rank_events_processed", "events processed by rank")
        for r in snap["ranks"]:
            lines.append(
                f"{p}_rank_events_processed{labelstr(('rank', r['rank']))} "
                f"{r['events_processed']:.17g}")
        gauge("rank_last_progress_timestamp", "unix time of last progress")
        for r in snap["ranks"]:
            lines.append(
                f"{p}_rank_last_progress_timestamp"
                f"{labelstr(('rank', r['rank']))} "
                f"{r['last_progress']:.6f}")
        gauge("rank_info", "rank status/site (value is always 1)")
        for r in snap["ranks"]:
            lines.append(
                f"{p}_rank_info"
                f"{labelstr(('rank', r['rank']), ('status', r['status']), ('site', r['current_site']))}"
                f" 1")

        with self._lock:
            extra = dict(self._extra)
        seen: set = set()
        for (name, pairs), value in sorted(extra.items()):
            if name not in seen:
                gauge(name, "service-published gauge")
                seen.add(name)
            lines.append(f"{p}_{name}{labelstr(*pairs)} {value:.17g}")
        lines.append("# EOF")
        return "\n".join(lines) + "\n"

    def write_metrics(self, path: Optional[str] = None) -> str:
        """Atomically (re)write the exposition file; returns the path."""
        target = path or self.metrics_path
        if not target:
            raise MonitorError("no metrics path configured")
        atomic_io.atomic_write_text(target, self.openmetrics())
        return str(target)

    def _flush(self) -> None:
        """Rewrite the metrics file on progress (when configured)."""
        if self.metrics_path:
            try:
                self.write_metrics()
            except OSError:  # pragma: no cover - target dir went away
                pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"CampaignMonitor(label={self.label!r}, "
                f"runs={self.runs_completed}/{self.n_runs})")


class NullMonitor(CampaignMonitor):
    """The disabled monitor: every method is a no-op; installed as the
    process default so the reduction loop pays nothing un-monitored."""

    enabled = False

    def __init__(self) -> None:  # noqa: D107 - trivially the null state
        super().__init__()

    def start_campaign(self, n_runs: int, world_size: int = 1) -> None:
        pass

    def finish_campaign(self) -> None:
        pass

    def assign_runs(self, rank: int, n: int) -> None:
        pass

    def heartbeat(self, rank: int, *, site: Optional[str] = None,
                  run: Optional[int] = None) -> None:
        pass

    def run_completed(self, rank: int, run: int, *, events: float = 0.0) -> None:
        pass

    def record_quarantine(self, rank: int, run: int) -> None:
        pass

    def record_resume(self, rank: int, run: int) -> None:
        pass

    def record_crash(self, rank: int) -> None:
        pass

    def record_steal(self, thief: int, victim: int, run: int) -> None:
        pass


#: the process-default monitor: disabled (monitoring is opt-in)
DISABLED = NullMonitor()

_active_lock = threading.Lock()
_active: CampaignMonitor = DISABLED

#: thread-local override: service jobs run in worker threads, and each
#: job's loop must report into *its own* monitor, not a process global
_thread_override = threading.local()


def active_monitor() -> CampaignMonitor:
    """The monitor the reduction loop currently reports into (a
    thread-local override installed by :func:`thread_monitor` shadows
    the process-wide one)."""
    override = getattr(_thread_override, "monitor", None)
    if override is not None:
        return override
    return _active


def set_monitor(monitor: Optional[CampaignMonitor]) -> CampaignMonitor:
    """Install the process-wide monitor (None resets to DISABLED)."""
    global _active
    with _active_lock:
        _active = monitor if monitor is not None else DISABLED
        return _active


@contextmanager
def thread_monitor(monitor: CampaignMonitor) -> Iterator[CampaignMonitor]:
    """Install ``monitor`` for the *current thread only* (per-job
    isolation in the campaign service); restores the previous override
    on exit."""
    prev = getattr(_thread_override, "monitor", None)
    _thread_override.monitor = monitor
    try:
        yield monitor
    finally:
        _thread_override.monitor = prev


@contextmanager
def use_monitor(monitor: CampaignMonitor) -> Iterator[CampaignMonitor]:
    """Install ``monitor`` for a block, restoring the previous after."""
    global _active
    with _active_lock:
        prev = _active
        _active = monitor
    try:
        yield monitor
    finally:
        with _active_lock:
            _active = prev


# ---------------------------------------------------------------------------
# reading an exposition file back (repro perf watch)
# ---------------------------------------------------------------------------

# the labels body is label="..." pairs: a `}` inside a quoted value must
# not terminate the set, so the group consumes quoted strings atomically
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r'(?:\{(?P<labels>(?:[^"}]|"(?:[^"\\]|\\.)*")*)\})?'
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape_label_value(raw: str) -> str:
    """Invert the exposition escaping (``\\\\``, ``\\"``, ``\\n``).

    A sequential scan, not chained ``str.replace`` — the chained form
    mis-reads an escaped backslash followed by ``n`` (``\\\\n``) as an
    escaped newline.
    """
    out: List[str] = []
    i, n = 0, len(raw)
    while i < n:
        c = raw[i]
        if c == "\\" and i + 1 < n:
            nxt = raw[i + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt in ('"', "\\"):
                out.append(nxt)
            else:  # unknown escape: keep verbatim (spec-lenient)
                out.append(c + nxt)
            i += 2
        else:
            out.append(c)
            i += 1
    return "".join(out)


def parse_metrics(text: str) -> Dict[str, Dict[Tuple[Tuple[str, str], ...], float]]:
    """Parse an OpenMetrics text exposition back into
    ``{metric: {labelset: value}}`` (labelset is a sorted tuple of
    ``(label, value)`` pairs; the empty tuple for unlabelled samples).
    """
    out: Dict[str, Dict[Tuple[Tuple[str, str], ...], float]] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if not m:
            raise MonitorError(f"metrics line {lineno}: unparseable: {line!r}")
        labels: List[Tuple[str, str]] = []
        if m.group("labels"):
            for lm in _LABEL_RE.finditer(m.group("labels")):
                labels.append(
                    (lm.group(1), _unescape_label_value(lm.group(2)))
                )
        raw = m.group("value")
        value = float("nan") if raw == "NaN" else float(raw)
        out.setdefault(m.group("name"), {})[tuple(sorted(labels))] = value
    return out


def watch_report(path: str) -> str:
    """One-shot terminal rendering of a metrics file (perf watch)."""
    try:
        with open(path) as fh:
            metrics = parse_metrics(fh.read())
    except OSError as exc:
        raise MonitorError(f"cannot read metrics file {path}: {exc}")

    def scalar(name: str, default: float = 0.0) -> float:
        table = metrics.get(f"{METRIC_PREFIX}_{name}", {})
        if () in table:
            return table[()]
        if len(table) == 1:  # constant job/tenant labels, still one sample
            return next(iter(table.values()))
        return default

    now = time.time()
    total = scalar("campaign_runs_total")
    done = scalar("campaign_runs_completed")
    quarantined = scalar("campaign_runs_quarantined")
    resumed = scalar("campaign_runs_resumed")
    events = scalar("campaign_events_processed")
    eta = scalar("campaign_eta_seconds", float("nan"))
    lines = [
        f"campaign: {done:.0f}/{total:.0f} runs "
        f"({quarantined:.0f} quarantined, {resumed:.0f} resumed), "
        f"{events:.6g} events",
        ("eta: n/a" if eta != eta
         else f"eta: {eta:.1f} s"),
    ]
    progress = metrics.get(f"{METRIC_PREFIX}_rank_last_progress_timestamp", {})
    completed = metrics.get(f"{METRIC_PREFIX}_rank_runs_completed", {})
    info = metrics.get(f"{METRIC_PREFIX}_rank_info", {})
    status_by_rank: Dict[str, Tuple[str, str]] = {}
    for labelset in info:
        d = dict(labelset)
        status_by_rank[d.get("rank", "?")] = (
            d.get("status", "?"), d.get("site", ""))
    if progress:
        lines.append(f"  {'rank':<6s} {'done':>6s} {'age (s)':>9s} "
                     f"{'status':<9s} site")
        for labelset in sorted(progress):
            rank = dict(labelset).get("rank", "?")
            age = now - progress[labelset]
            n_done = completed.get(labelset, 0.0)
            status, site = status_by_rank.get(rank, ("?", ""))
            lines.append(f"  {rank:<6s} {n_done:>6.0f} {age:>9.1f} "
                         f"{status:<9s} {site}")
    return "\n".join(lines)
