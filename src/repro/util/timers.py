"""Wall-clock timing for reduction stages.

The paper reports per-stage wall-clock times (WCT): ``UpdateEvents``
(loading the event table), ``MDNorm``, ``BinMD``, their sum, and the
total workflow time, separately for the first JIT-compiled call and for
warm calls.  :class:`StageTimings` is the accumulator every driver in
this package fills in; the benchmark harness renders them into the
paper's table rows.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from repro.util import trace as _trace


class Timer:
    """A restartable stopwatch measuring wall-clock seconds.

    ``Timer`` accumulates across multiple ``start``/``stop`` cycles so a
    stage that runs once per file (e.g. ``MDNorm`` over 36 runs) reports
    the sum over all runs, matching how the paper accounts stage WCT.
    """

    __slots__ = ("elapsed", "ncalls", "_t0")

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self.ncalls: int = 0
        self._t0: Optional[float] = None

    def start(self) -> "Timer":
        if self._t0 is not None:
            raise RuntimeError("Timer already running")
        self._t0 = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._t0 is None:
            raise RuntimeError("Timer not running")
        dt = time.perf_counter() - self._t0
        self._t0 = None
        self.elapsed += dt
        self.ncalls += 1
        return dt

    @property
    def running(self) -> bool:
        return self._t0 is not None

    def reset(self) -> None:
        self.elapsed = 0.0
        self.ncalls = 0
        self._t0 = None

    @contextmanager
    def timing(self) -> Iterator["Timer"]:
        self.start()
        try:
            yield self
        finally:
            self.stop()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "running" if self.running else "stopped"
        return f"Timer(elapsed={self.elapsed:.6f}s, ncalls={self.ncalls}, {state})"


#: Stage names used across the package, in the order the paper's tables
#: print them.
CANONICAL_STAGES = ("UpdateEvents", "MDNorm", "BinMD", "MDNorm + BinMD", "Total")


@dataclass
class StageTimings:
    """Named per-stage wall-clock accumulator.

    Stages are created lazily; ``MDNorm + BinMD`` is derived, not stored.
    The optional ``first_call`` map keeps the first-invocation time per
    stage separately so JIT-inclusive vs warm ("no JIT") numbers can both
    be reported, as in Tables III-VI.
    """

    label: str = ""
    stages: "OrderedDict[str, Timer]" = field(default_factory=OrderedDict)
    first_call: Dict[str, float] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def timer(self, stage: str) -> Timer:
        with self._lock:
            t = self.stages.get(stage)
            if t is None:
                t = self.stages[stage] = Timer()
            return t

    @contextmanager
    def stage(self, name: str) -> Iterator[Timer]:
        """Time one stage invocation (and emit a trace span for it).

        ``StageTimings`` is a *view over spans*: the stage opens a span
        on the active tracer (``kind="stage"``, ``timings=<label>``)
        and the timer accumulates exactly the span's duration — one
        clock read per edge, shared by both — so totals derived from
        the trace (:func:`repro.util.trace.stage_timings_from_records`)
        equal this accumulator bit for bit.  With tracing disabled the
        span is a timestamp-only stub and behaviour is unchanged.

        Concurrent entries on the same stage are allowed — an elastic
        born helper shares its spawner's accumulator, so two threads can
        be inside e.g. ``MDNorm`` at once.  Each entry contributes its
        own span duration (``elapsed`` sums call durations, which under
        overlap can exceed wall time, same as summing over runs).
        """
        t = self.timer(name)
        tracer = _trace.active_tracer()
        sp = tracer.begin(name, kind="stage", timings=self.label)
        with self._lock:
            # mark the timer running (in perf_counter coordinates, so a
            # stray manual stop() still behaves sanely); the first
            # concurrent entry owns the running flag
            owns_flag = not t.running
            if owns_flag:
                t._t0 = sp.t0 + tracer._epoch
        try:
            yield t
        finally:
            tracer.end(sp)
            dt = sp.duration
            with self._lock:
                if owns_flag:
                    t._t0 = None
                t.elapsed += dt
                t.ncalls += 1
                self.first_call.setdefault(name, dt)

    def seconds(self, stage: str) -> float:
        """Total accumulated seconds for ``stage`` (0.0 if never run)."""
        if stage == "MDNorm + BinMD":
            return self.seconds("MDNorm") + self.seconds("BinMD")
        t = self.stages.get(stage)
        return 0.0 if t is None else t.elapsed

    def warm_seconds(self, stage: str) -> float:
        """Accumulated seconds excluding each stage's first call.

        This is the paper's "no JIT" column: the first invocation pays
        kernel specialization, later ones do not.  For a stage that ran
        once, the warm time is 0 (there is no warm sample).
        """
        if stage == "MDNorm + BinMD":
            return self.warm_seconds("MDNorm") + self.warm_seconds("BinMD")
        t = self.stages.get(stage)
        if t is None:
            return 0.0
        return t.elapsed - self.first_call.get(stage, 0.0)

    def mean_warm_seconds(self, stage: str) -> float:
        """Per-call warm time, averaged over the non-first calls."""
        if stage == "MDNorm + BinMD":
            return self.mean_warm_seconds("MDNorm") + self.mean_warm_seconds("BinMD")
        t = self.stages.get(stage)
        if t is None or t.ncalls <= 1:
            return 0.0
        return (t.elapsed - self.first_call.get(stage, 0.0)) / (t.ncalls - 1)

    def merge(self, other: "StageTimings") -> "StageTimings":
        """Accumulate another run's timings into this one (sum of stages)."""
        for name, timer in other.stages.items():
            mine = self.timer(name)
            mine.elapsed += timer.elapsed
            mine.ncalls += timer.ncalls
            if name not in self.first_call and name in other.first_call:
                self.first_call[name] = other.first_call[name]
        return self

    def as_row(self, stages: Optional[List[str]] = None) -> "OrderedDict[str, float]":
        out: "OrderedDict[str, float]" = OrderedDict()
        for name in stages or list(self.stages) + ["MDNorm + BinMD"]:
            out[name] = self.seconds(name)
        return out

    def summary(self) -> str:
        lines = [f"StageTimings({self.label or 'unnamed'})"]
        names = [s for s in CANONICAL_STAGES if s in self.stages or s == "MDNorm + BinMD"]
        names += [s for s in self.stages if s not in names]
        for name in names:
            lines.append(
                f"  {name:<16s} {self.seconds(name):10.4f} s"
                f"  (warm {self.warm_seconds(name):10.4f} s)"
            )
        return "\n".join(lines)


@contextmanager
def timed(callback: Callable[[float], None]) -> Iterator[None]:
    """Time a block and hand the elapsed seconds to ``callback``."""
    t0 = time.perf_counter()
    try:
        yield
    finally:
        callback(time.perf_counter() - t0)
