"""Crash-safe file and directory publication primitives.

Every durable artifact this package writes — checkpoint histograms,
checkpoint manifests, synthesized benchmark fixtures — must be readable
by a *later* process even if the writing process is killed at an
arbitrary instant.  The rules are the classic ones:

* **write-then-rename**: payloads are written to a temporary sibling
  (same directory, so the rename never crosses a filesystem) and
  published with ``os.replace``, which POSIX guarantees atomic.  A
  reader therefore sees either the old file, the new file, or no file —
  never a torn half-write;
* **fsync before rename**: the temporary file is flushed and fsynced so
  the payload is durable before the name becomes visible;
* **completion sentinels** for multi-file products: a directory of
  fixtures is only trusted once its ``COMPLETE`` marker exists, and the
  marker is written (atomically) strictly after every member file.

This module is the single implementation of those rules; the checkpoint
layer (:mod:`repro.core.checkpoint`) and the benchmark-fixture builder
(:mod:`repro.bench.workloads`) both use it rather than rolling their
own sentinel logic.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Union

PathLike = Union[str, os.PathLike]

#: name of the completion sentinel inside multi-file product directories
COMPLETE_MARKER = "COMPLETE"


def fsync_file(fh) -> None:
    """Flush + fsync an open file object (best effort on odd FS)."""
    fh.flush()
    try:
        os.fsync(fh.fileno())
    except OSError:  # pragma: no cover - e.g. pipes, exotic filesystems
        pass


@contextmanager
def atomic_writer(path: PathLike, mode: str = "wb") -> Iterator[object]:
    """Context manager yielding a temp-file handle published on success.

    ::

        with atomic_writer("out.bin") as fh:
            fh.write(payload)
        # crash anywhere above -> "out.bin" untouched

    On normal exit the temporary is fsynced and ``os.replace``-d onto
    ``path``; on exception it is deleted and ``path`` is untouched.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    fh = os.fdopen(fd, mode)
    try:
        yield fh
        fsync_file(fh)
        fh.close()
        os.replace(tmp, path)
    except BaseException:
        fh.close()
        try:
            os.unlink(tmp)
        except OSError:  # pragma: no cover - already gone
            pass
        raise


@contextmanager
def atomic_path(path: PathLike) -> Iterator[str]:
    """Yield a temporary *path* that is atomically renamed onto ``path``.

    For writers that need a path rather than a handle (e.g.
    :class:`repro.nexus.h5lite.File`, which opens/closes the file
    itself)::

        with atomic_path(final) as tmp:
            with File(tmp, "w") as f:
                ...
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    os.close(fd)
    try:
        yield tmp
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_bytes(path: PathLike, data: bytes) -> None:
    """Atomically publish ``data`` at ``path`` (write-then-rename)."""
    with atomic_writer(path, "wb") as fh:
        fh.write(data)


def atomic_write_text(path: PathLike, text: str) -> None:
    """Atomically publish ``text`` (UTF-8) at ``path``."""
    atomic_write_bytes(path, text.encode("utf-8"))


# ---------------------------------------------------------------------------
# completion sentinels for multi-file product directories
# ---------------------------------------------------------------------------

def sentinel_path(directory: PathLike) -> Path:
    """The ``COMPLETE`` marker path of a product directory."""
    return Path(directory) / COMPLETE_MARKER


def is_complete(directory: PathLike) -> bool:
    """True iff the directory's product set finished publishing."""
    return sentinel_path(directory).exists()


def mark_complete(directory: PathLike, text: str = "") -> Path:
    """Atomically write the ``COMPLETE`` sentinel (call *last*).

    The sentinel must be written only after every member file of the
    product directory has itself been atomically published; this is the
    ordering that makes the whole directory crash-safe.
    """
    marker = sentinel_path(directory)
    atomic_write_text(marker, text if text.endswith("\n") or not text else text + "\n")
    return marker


def clear_complete(directory: PathLike) -> bool:
    """Remove the sentinel (forcing a rebuild); returns True if it existed."""
    marker = sentinel_path(directory)
    try:
        marker.unlink()
        return True
    except FileNotFoundError:
        return False
