"""Campaign-wide causal trace DAG: merge, validate, attribute.

Schema v3 (:mod:`repro.util.trace`) gives every span a globally unique
``uid`` and a ``parent_uid`` that crosses process/thread boundaries.
One campaign therefore produces a *set* of JSON-lines files — one per
rank stream, plus whatever the multiprocess shard workers shipped home
— that this module stitches back into a single validated causal DAG
and interrogates:

* :func:`merge_files` / :func:`merge_dir` — load + normalise onto one
  absolute campaign clock (each file's ``epoch_unix`` + relative span
  times), auto-namespacing v1/v2 files that predate global uids;
* :meth:`TraceDAG.validate` — no duplicate uids, no orphan parents, no
  dangling link endpoints, completed steal tasks exactly once per
  ``(run, stage, shard)``, and (v3) a single rooted span tree;
* :meth:`TraceDAG.critical_chain` — the last-finisher root-to-leaf
  blocking chain (the answer to "what was the campaign waiting on when
  it ended");
* :meth:`TraceDAG.crit_attribution` — the full backward walk that
  charges **every instant** of the root window to exactly one span, so
  per-stage/per-kernel *critical* seconds sit next to their *total*
  span seconds and serialization vs. fan-out waste is explicit;
* :meth:`TraceDAG.rank_attribution` — busy / idle / stolen-work
  seconds per rank (idle = the rank span minus the union of its child
  intervals);
* :meth:`TraceDAG.anomalies` — work-normalised duration outliers
  against sibling spans (same name/backend/kind), flagged by the same
  robust ``median + k*IQR`` rule the bench regression gate uses, with
  the work scalar taken from the PR 4 ``perf`` attrs so the flag is a
  *model-vs-measured* deviation, not a raw-seconds one.

The CLI surface is ``repro trace merge|crit|dag`` and
``repro perf crit``; ``CampaignMonitor`` publishes the headline
numbers as ``repro_trace_critical_seconds`` /
``repro_trace_anomalies``.
"""

from __future__ import annotations

import glob
import json
import os
from collections import OrderedDict, defaultdict
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.util.trace import TraceError, load_file, validate_file

#: span kinds that mark the elastic steal-task layer
STEAL_KINDS = ("steal", "steal_task")

#: kind → reporting layer of the service→job→run→stage→shard→kernel
#: hierarchy (anything unlisted reports as "other")
LAYER_BY_KIND = {
    "service": "service",
    "campaign": "service",
    "world": "job",
    "rank": "job",
    "algorithm": "run",
    "run": "run",
    "stage": "stage",
    "shard_fanout": "shard",
    "shard": "shard",
    "steal": "shard",
    "steal_task": "shard",
    "chunk": "shard",
    "op": "kernel",
    "kernel": "kernel",
}

#: reporting order of the layers
LAYERS = ("service", "job", "run", "stage", "shard", "kernel", "other")

#: preference order for the work scalar that normalises a span's
#: duration before outlier testing (all are PR 4 ``perf`` attr keys)
WORK_PREFERENCE = ("flops", "items", "events", "intersections",
                   "bins_touched", "bytes_read", "bytes_written",
                   "segments", "trajectories")


def _layer(node: Dict[str, Any]) -> str:
    if str(node["name"]).startswith("kernel:"):
        return "kernel"
    return LAYER_BY_KIND.get(node.get("kind"), "other")


def _median(sorted_vals: Sequence[float]) -> float:
    n = len(sorted_vals)
    if n == 0:
        return 0.0
    mid = n // 2
    if n % 2:
        return sorted_vals[mid]
    return 0.5 * (sorted_vals[mid - 1] + sorted_vals[mid])


def _quartiles(vals: Sequence[float]) -> Tuple[float, float, float]:
    """(q25, median, q75) of a sorted sequence (median-of-halves)."""
    n = len(vals)
    if n == 0:
        return 0.0, 0.0, 0.0
    mid = n // 2
    lower = vals[:mid]
    upper = vals[mid + 1:] if n % 2 else vals[mid:]
    return _median(lower), _median(vals), _median(upper)


class TraceDAG:
    """The merged causal DAG of one campaign's trace files."""

    def __init__(self, campaign_id: str, *, legacy: bool = False) -> None:
        self.campaign_id = campaign_id
        #: true when no source file carried a campaign id (schema v1/v2
        #: inputs) — single-rooted-ness is not enforced then, because
        #: pre-v3 files never recorded cross-thread parent edges
        self.legacy = legacy
        self.spans: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self.links: List[Dict[str, Any]] = []
        self.counters: "OrderedDict[str, float]" = OrderedDict()
        self.gauges: "OrderedDict[str, float]" = OrderedDict()
        self.files: List[str] = []
        self._children: Optional[Dict[Optional[str], List[str]]] = None

    # -- structure --------------------------------------------------------
    def add_span(self, node: Dict[str, Any]) -> None:
        uid = node["uid"]
        if uid in self.spans:
            raise TraceError(
                f"duplicate span uid {uid!r} across files "
                f"({self.spans[uid]['file']} vs {node['file']})"
            )
        self.spans[uid] = node
        self._children = None

    @property
    def children(self) -> Dict[Optional[str], List[str]]:
        """parent uid → child uids, children sorted by absolute end."""
        if self._children is None:
            kids: Dict[Optional[str], List[str]] = defaultdict(list)
            for uid, node in self.spans.items():
                kids[node.get("parent_uid")].append(uid)
            for uid_list in kids.values():
                uid_list.sort(key=lambda u: self.spans[u]["t1"])
            self._children = dict(kids)
        return self._children

    def roots(self) -> List[Dict[str, Any]]:
        """Spans with no causal parent, in start order."""
        out = [n for n in self.spans.values() if n.get("parent_uid") is None]
        out.sort(key=lambda n: n["t0"])
        return out

    def root(self) -> Dict[str, Any]:
        """The campaign root span (errors unless exactly one root)."""
        roots = self.roots()
        if len(roots) != 1:
            raise TraceError(
                f"campaign {self.campaign_id}: expected one root span, "
                f"found {len(roots)} ({[r['name'] for r in roots[:6]]})"
            )
        return roots[0]

    def ranks(self) -> List[int]:
        return sorted({n["rank"] for n in self.spans.values()
                       if n.get("rank") is not None})

    # -- validation -------------------------------------------------------
    def validate(self, *,
                 require_single_root: Optional[bool] = None
                 ) -> Dict[str, Any]:
        """Check the merged-DAG invariants; raise :class:`TraceError`
        on the first violation, return a summary report on success.

        ``require_single_root`` defaults to True for v3 campaigns and
        False for legacy (v1/v2) merges, whose files never recorded
        cross-thread parent edges.
        """
        if require_single_root is None:
            require_single_root = not self.legacy
        # orphan parents
        for uid, node in self.spans.items():
            pu = node.get("parent_uid")
            if pu is not None and pu not in self.spans:
                raise TraceError(
                    f"span {uid} ({node['name']!r}) has orphan "
                    f"parent_uid {pu!r}"
                )
        # link endpoints resolve
        for link in self.links:
            for end in ("src", "dst"):
                if link[end] not in self.spans:
                    raise TraceError(
                        f"link {link['kind']!r} {end} {link[end]!r} "
                        f"references no span in the campaign"
                    )
        # completed steal tasks land exactly once per (run, stage, shard)
        seen: Dict[Tuple[Any, Any, Any], str] = {}
        for uid, node in self.spans.items():
            if node.get("kind") not in STEAL_KINDS:
                continue
            attrs = node["attrs"]
            if not attrs.get("completed"):
                continue
            key = (attrs.get("run"), node["name"], attrs.get("shard"))
            if key in seen:
                raise TraceError(
                    f"steal task {key} completed twice "
                    f"({seen[key]} and {uid})"
                )
            seen[key] = uid
        # acyclic + (optionally) a single rooted tree
        roots = self.roots()
        reached = set()
        stack = [n["uid"] for n in roots]
        while stack:
            uid = stack.pop()
            if uid in reached:
                continue
            reached.add(uid)
            stack.extend(self.children.get(uid, ()))
        if len(reached) != len(self.spans):
            raise TraceError(
                f"campaign {self.campaign_id}: "
                f"{len(self.spans) - len(reached)} spans unreachable "
                f"from any root (parent cycle)"
            )
        if require_single_root and len(roots) != 1:
            raise TraceError(
                f"campaign {self.campaign_id}: expected a single rooted "
                f"tree, found {len(roots)} roots "
                f"({[r['name'] for r in roots[:6]]})"
            )
        return {
            "ok": True,
            "campaign_id": self.campaign_id,
            "legacy": self.legacy,
            "n_files": len(self.files),
            "n_spans": len(self.spans),
            "n_links": len(self.links),
            "n_steal_links": sum(1 for l in self.links
                                 if l["kind"] == "steal"),
            "roots": [r["name"] for r in roots],
            "ranks": self.ranks(),
        }

    # -- critical path ----------------------------------------------------
    def _last_finisher(self, node: Dict[str, Any],
                       cursor: float) -> Optional[Dict[str, Any]]:
        """The child whose (clamped) end is latest but <= cursor."""
        best: Optional[Dict[str, Any]] = None
        best_t1 = node["t0"]
        for uid in self.children.get(node["uid"], ()):
            child = self.spans[uid]
            t1c = min(child["t1"], cursor)
            t0c = max(child["t0"], node["t0"])
            if t1c <= t0c:          # zero-width after clamping
                continue
            if t1c > best_t1:
                best, best_t1 = child, t1c
        return best

    def critical_chain(self,
                       root: Optional[Dict[str, Any]] = None
                       ) -> List[Dict[str, Any]]:
        """The root-to-leaf blocking chain (last-finisher descent).

        Each entry carries the span plus ``self_s``, the tail segment
        of the parent's window that only this span (and not a deeper
        child) accounts for.  The chain's total duration is the root
        span's duration — by construction never more than the measured
        wall-clock that contains it.
        """
        node = root or self.root()
        cursor = node["t1"]
        chain: List[Dict[str, Any]] = []
        while node is not None:
            best = self._last_finisher(node, cursor)
            tail_start = (min(best["t1"], cursor) if best is not None
                          else max(node["t0"], min(node["t0"], cursor)))
            chain.append({
                "uid": node["uid"],
                "name": node["name"],
                "kind": node.get("kind"),
                "layer": _layer(node),
                "rank": node.get("rank"),
                "dur": node["dur"],
                "self_s": max(0.0, cursor - max(tail_start, node["t0"])),
                "depth": len(chain),
            })
            if best is None:
                break
            cursor = min(best["t1"], cursor)
            node = best
        return chain

    def crit_attribution(self,
                         root: Optional[Dict[str, Any]] = None
                         ) -> Dict[str, float]:
        """Charge every instant of the root window to exactly one span.

        Backward walk: starting at the root's end, repeatedly descend
        into the child that finished last before the cursor, charging
        the uncovered tail to the current span; after a child's window
        is attributed, the walk resumes in the parent just before the
        child began.  The charges sum to the root's duration exactly
        (up to float error), so the rollup answers "where did the
        wall-clock go" with no double counting of parallel work.
        """
        root = root or self.root()
        crit: Dict[str, float] = defaultdict(float)

        # (node, cursor) frames; each frame attributes [node.t0, cursor]
        stack: List[Tuple[Dict[str, Any], float]] = [(root, root["t1"])]
        while stack:
            node, cursor = stack.pop()
            if cursor <= node["t0"]:
                continue
            best = self._last_finisher(node, cursor)
            if best is None:
                crit[node["uid"]] += cursor - node["t0"]
                continue
            b_t1 = min(best["t1"], cursor)
            if cursor > b_t1:
                crit[node["uid"]] += cursor - b_t1
            # resume in this node before the child began, then (LIFO)
            # attribute the child's own window first
            stack.append((node, max(node["t0"], best["t0"])))
            stack.append((best, b_t1))
        return dict(crit)

    def crit_rollup(self,
                    root: Optional[Dict[str, Any]] = None
                    ) -> List[Dict[str, Any]]:
        """Per (layer, name) rows: critical seconds vs total seconds."""
        crit = self.crit_attribution(root)
        rows: Dict[Tuple[str, str], Dict[str, Any]] = {}
        for uid, node in self.spans.items():
            key = (_layer(node), node["name"])
            row = rows.setdefault(key, {
                "layer": key[0], "name": key[1],
                "crit_s": 0.0, "total_s": 0.0, "count": 0,
            })
            row["crit_s"] += crit.get(uid, 0.0)
            row["total_s"] += node["dur"]
            row["count"] += 1
        out = list(rows.values())
        out.sort(key=lambda r: (LAYERS.index(r["layer"]), -r["crit_s"]))
        return out

    # -- rank attribution -------------------------------------------------
    def rank_attribution(self) -> List[Dict[str, Any]]:
        """Busy / idle / stolen-work seconds per rank span.

        ``busy`` is the union of the rank span's direct child intervals
        (clamped into the rank window); ``idle`` is the remainder —
        for the stealing executor that is exactly the steal-wait time
        the queue could not fill.  ``steal_s`` is the busy time spent
        executing *stolen* tasks (kind ``steal`` anywhere under the
        rank).
        """
        out: List[Dict[str, Any]] = []
        for uid, node in self.spans.items():
            if node.get("kind") != "rank":
                continue
            intervals = []
            for child_uid in self.children.get(uid, ()):
                child = self.spans[child_uid]
                t0 = max(child["t0"], node["t0"])
                t1 = min(child["t1"], node["t1"])
                if t1 > t0:
                    intervals.append((t0, t1))
            intervals.sort()
            busy = 0.0
            cur_start: Optional[float] = None
            cur_end = 0.0
            for t0, t1 in intervals:
                if cur_start is None or t0 > cur_end:
                    if cur_start is not None:
                        busy += cur_end - cur_start
                    cur_start, cur_end = t0, t1
                else:
                    cur_end = max(cur_end, t1)
            if cur_start is not None:
                busy += cur_end - cur_start
            steal_s = sum(
                self.spans[u]["dur"] for u in self._descendants(uid)
                if self.spans[u].get("kind") == "steal"
            )
            out.append({
                "rank": node.get("rank"),
                "uid": uid,
                "born": bool(node["attrs"].get("born", False)),
                "total_s": node["dur"],
                "busy_s": busy,
                "idle_s": max(0.0, node["dur"] - busy),
                "steal_s": steal_s,
            })
        out.sort(key=lambda r: (r["rank"] is None, r["rank"], r["uid"]))
        return out

    def _descendants(self, uid: str) -> List[str]:
        out: List[str] = []
        stack = list(self.children.get(uid, ()))
        while stack:
            u = stack.pop()
            out.append(u)
            stack.extend(self.children.get(u, ()))
        return out

    # -- anomalies --------------------------------------------------------
    @staticmethod
    def _work_scalar(node: Dict[str, Any]) -> float:
        attrs = node.get("attrs", {})
        perf = attrs.get("perf")
        if isinstance(perf, dict):
            for key in WORK_PREFERENCE:
                value = perf.get(key)
                if isinstance(value, (int, float)) and value > 0:
                    return float(value)
        weight = attrs.get("weight")
        if isinstance(weight, (int, float)) and weight > 0:
            return float(weight)
        return 1.0

    def anomalies(self, *, k: float = 3.0, min_ratio: float = 1.5,
                  min_group: int = 4) -> List[Dict[str, Any]]:
        """Model-vs-measured outliers among sibling spans.

        Groups kernel/op/steal spans by ``(name, backend, kind)``,
        normalises each duration by the analytic work scalar (PR 4
        ``perf`` attrs, falling back to the steal-task byte weight,
        then raw seconds), and flags members whose seconds-per-work
        exceed ``median + k*IQR`` *and* ``min_ratio * median`` — the
        same robust rule as the bench regression gate, so a flagged
        span is slower than its own siblings predict for the work it
        did, not merely the biggest task.
        """
        groups: Dict[Tuple[Any, Any, Any],
                     List[Tuple[Dict[str, Any], float]]] = defaultdict(list)
        for node in self.spans.values():
            kind = node.get("kind")
            name = str(node["name"])
            if not (kind in ("op",) + STEAL_KINDS
                    or name.startswith("kernel:")):
                continue
            work = self._work_scalar(node)
            groups[(name, node["attrs"].get("backend"), kind)].append(
                (node, node["dur"] / work))
        flags: List[Dict[str, Any]] = []
        for (name, backend, kind), members in groups.items():
            if len(members) < min_group:
                continue
            ratios = sorted(r for _, r in members)
            q25, med, q75 = _quartiles(ratios)
            if med <= 0.0:
                continue
            threshold = max(med + k * (q75 - q25), min_ratio * med)
            for node, ratio in members:
                if ratio > threshold:
                    flags.append({
                        "uid": node["uid"],
                        "name": name,
                        "backend": backend,
                        "kind": kind,
                        "rank": node.get("rank"),
                        "dur": node["dur"],
                        "ratio": ratio,
                        "expected": med,
                        "deviation": ratio / med,
                        "threshold": threshold,
                        "n_siblings": len(members),
                    })
        flags.sort(key=lambda f: -f["deviation"])
        return flags

    # -- reporting --------------------------------------------------------
    def critical_seconds(self) -> float:
        """The critical-path duration — the root span's wall window."""
        return float(self.root()["dur"])

    def crit_report(self, *, k: float = 3.0, min_ratio: float = 1.5,
                    min_group: int = 4, max_chain: int = 24) -> str:
        """The ``repro trace crit`` / ``repro perf crit`` table."""
        chain = self.critical_chain()
        rollup = self.crit_rollup()
        ranks = self.rank_attribution()
        flags = self.anomalies(k=k, min_ratio=min_ratio,
                               min_group=min_group)
        total = self.critical_seconds()
        lines = [f"critical path (campaign {self.campaign_id})",
                 f"  critical seconds: {total:.4f}  "
                 f"({len(self.spans)} spans, {len(self.links)} links, "
                 f"{len(self.files)} files)",
                 "-- blocking chain (root -> leaf, last finisher)"]
        for entry in chain[:max_chain]:
            rank = "-" if entry["rank"] is None else str(entry["rank"])
            lines.append(
                f"  {'  ' * min(entry['depth'], 8)}{entry['name']:<28s} "
                f"[{entry['layer']:<7s}] rank {rank:>2s} "
                f"self {entry['self_s']*1e3:9.3f} ms  "
                f"span {entry['dur']:9.4f} s"
            )
        if len(chain) > max_chain:
            lines.append(f"  ... {len(chain) - max_chain} deeper entries")
        lines.append("-- critical vs total seconds per layer/name")
        lines.append(f"  {'layer':<8s} {'name':<30s} {'crit (s)':>10s} "
                     f"{'total (s)':>10s} {'count':>6s} {'crit %':>7s}")
        for row in rollup:
            if row["crit_s"] <= 0.0 and row["layer"] == "other":
                continue
            share = 100.0 * row["crit_s"] / total if total > 0 else 0.0
            lines.append(
                f"  {row['layer']:<8s} {row['name'][:30]:<30s} "
                f"{row['crit_s']:10.4f} {row['total_s']:10.4f} "
                f"{row['count']:6d} {share:6.1f}%"
            )
        if ranks:
            lines.append("-- per-rank attribution")
            lines.append(f"  {'rank':>4s} {'total (s)':>10s} "
                         f"{'busy (s)':>10s} {'idle (s)':>10s} "
                         f"{'stolen (s)':>10s}")
            for row in ranks:
                tag = "+" if row["born"] else " "
                lines.append(
                    f"  {row['rank']!s:>3s}{tag} {row['total_s']:10.4f} "
                    f"{row['busy_s']:10.4f} {row['idle_s']:10.4f} "
                    f"{row['steal_s']:10.4f}"
                )
        lines.append(f"-- anomalies (median + {k:g}*IQR over siblings, "
                     f"floor {min_ratio:g}x median)")
        if not flags:
            lines.append("  none")
        for flag in flags[:16]:
            rank = "-" if flag["rank"] is None else str(flag["rank"])
            lines.append(
                f"  {flag['name'][:30]:<30s} rank {rank:>2s} "
                f"dur {flag['dur']:9.4f} s  "
                f"{flag['deviation']:6.1f}x expected "
                f"(n={flag['n_siblings']})"
            )
        return "\n".join(lines)

    def to_doc(self, *, include_spans: bool = True) -> Dict[str, Any]:
        """A JSON-able document of the merged DAG (the ``merge``
        artifact)."""
        doc: Dict[str, Any] = {
            "campaign_id": self.campaign_id,
            "legacy": self.legacy,
            "files": list(self.files),
            "n_spans": len(self.spans),
            "n_links": len(self.links),
            "roots": [r["uid"] for r in self.roots()],
            "ranks": self.ranks(),
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "links": list(self.links),
        }
        if include_spans:
            doc["spans"] = list(self.spans.values())
        return doc


# ---------------------------------------------------------------------------
# merging
# ---------------------------------------------------------------------------

def _legacy_uid(file_idx: int, pid: Any, rank: Any, span_id: Any) -> str:
    rank_part = "-" if rank is None else rank
    return f"f{file_idx}:{rank_part}:{pid}:{span_id}"


def merge_files(paths: Sequence[str]) -> TraceDAG:
    """Merge per-process JSON-lines trace files into one
    :class:`TraceDAG`.

    Every file is schema-validated first (:func:`validate_file`).  v3
    spans join on their global uids; v1/v2 spans are auto-namespaced
    (``"f{i}:{rank}:{pid}:{span_id}"``) with ``parent_uid`` derived
    from the in-file ``parent_id``, so legacy traces merge and report
    — they just cannot carry cross-process edges.  Files disagreeing
    on ``campaign_id`` are rejected: one DAG is one campaign.
    """
    if not paths:
        raise TraceError("merge_files: no trace files given")
    campaign_ids = set()
    loaded: List[Tuple[str, Dict[str, Any], List[Dict[str, Any]]]] = []
    for path in paths:
        validate_file(path)
        meta, records = load_file(path)
        if meta.get("campaign_id"):
            campaign_ids.add(meta["campaign_id"])
        loaded.append((path, meta, records))
    if len(campaign_ids) > 1:
        raise TraceError(
            f"trace files span {len(campaign_ids)} campaigns "
            f"({sorted(campaign_ids)}); merge one campaign at a time"
        )
    legacy = not campaign_ids
    dag = TraceDAG(campaign_ids.pop() if campaign_ids else "legacy",
                   legacy=legacy)
    for file_idx, (path, meta, records) in enumerate(loaded):
        schema = meta.get("schema", 1)
        epoch = float(meta.get("epoch_unix", 0.0))
        pid = meta.get("pid", 0)
        base = os.path.basename(path)
        dag.files.append(base)
        for rec in records:
            rtype = rec.get("type")
            if rtype == "span":
                if schema >= 3:
                    uid = rec["uid"]
                    parent_uid = rec["parent_uid"]
                else:
                    uid = _legacy_uid(file_idx, pid, rec.get("rank"),
                                      rec["span_id"])
                    parent_uid = (
                        _legacy_uid(file_idx, pid, rec.get("rank"),
                                    rec["parent_id"])
                        if rec.get("parent_id") is not None else None)
                    # legacy streams interleave ranks in one file; the
                    # parent lives on the *parent span's* rank row —
                    # resolve via span_id instead when rank differs
                dag.add_span({
                    "uid": uid,
                    "parent_uid": parent_uid,
                    "name": rec["name"],
                    "kind": rec.get("attrs", {}).get("kind"),
                    "rank": rec.get("rank"),
                    "thread": rec.get("thread", ""),
                    "t0": epoch + float(rec["t0"]),
                    "t1": epoch + float(rec["t1"]),
                    "dur": float(rec["dur"]),
                    "seq": rec.get("seq"),
                    "attrs": rec.get("attrs", {}),
                    "file": base,
                })
            elif rtype == "link":
                dag.links.append({
                    "kind": rec["kind"],
                    "src": rec["src"],
                    "dst": rec["dst"],
                    "attrs": rec.get("attrs", {}),
                    "file": base,
                })
            elif rtype == "counter":
                dag.counters[rec["name"]] = (
                    dag.counters.get(rec["name"], 0.0)
                    + float(rec["value"]))
            elif rtype == "gauge":
                dag.gauges[rec["name"]] = float(rec["value"])
            elif rtype == "metrics":
                for name, value in rec.get("counters", {}).items():
                    # the consolidated record repeats the individual
                    # counter records of the same file — overwrite,
                    # don't double-count
                    dag.counters[name] = float(value)
                for name, value in rec.get("gauges", {}).items():
                    dag.gauges[name] = float(value)
    _fix_legacy_parent_ranks(dag, loaded)
    return dag


def _fix_legacy_parent_ranks(
    dag: TraceDAG,
    loaded: Sequence[Tuple[str, Dict[str, Any], List[Dict[str, Any]]]],
) -> None:
    """Repair legacy parent uids whose rank prefix guessed wrong.

    v1/v2 files key spans by process-local ``span_id``; the synthetic
    parent uid assumes the parent shares the child's rank, which is
    false for rank spans parented under a driver span.  Re-derive from
    an exact ``(file, span_id) -> uid`` index.
    """
    by_span_id: Dict[Tuple[int, Any], str] = {}
    for file_idx, (path, meta, records) in enumerate(loaded):
        if meta.get("schema", 1) >= 3:
            continue
        pid = meta.get("pid", 0)
        for rec in records:
            if rec.get("type") == "span":
                uid = _legacy_uid(file_idx, pid, rec.get("rank"),
                                  rec["span_id"])
                by_span_id[(file_idx, rec["span_id"])] = uid
    if not by_span_id:
        return
    for file_idx, (path, meta, records) in enumerate(loaded):
        if meta.get("schema", 1) >= 3:
            continue
        pid = meta.get("pid", 0)
        for rec in records:
            if rec.get("type") != "span":
                continue
            if rec.get("parent_id") is None:
                continue
            uid = _legacy_uid(file_idx, pid, rec.get("rank"),
                              rec["span_id"])
            actual = by_span_id.get((file_idx, rec["parent_id"]))
            if actual is not None and uid in dag.spans:
                dag.spans[uid]["parent_uid"] = actual
    dag._children = None


def merge_dir(dir_path: str, *, pattern: str = "*.jsonl") -> TraceDAG:
    """Merge every trace file matching ``pattern`` under ``dir_path``."""
    paths = sorted(glob.glob(os.path.join(dir_path, pattern)))
    if not paths:
        raise TraceError(
            f"merge_dir: no files matching {pattern!r} in {dir_path}"
        )
    return merge_files(paths)


def write_dag(path: str, dag: TraceDAG, *,
              include_spans: bool = True) -> None:
    """Write the merged DAG document as JSON."""
    with open(path, "w") as fh:
        json.dump(dag.to_doc(include_spans=include_spans), fh, indent=1)
