"""Thin logging facade.

Uses the stdlib logger under the ``repro`` namespace with a formatter
that prefixes the reduction stage.  Kept deliberately small; HPC codes
should not pay for logging in hot loops, so kernels never log.
"""

from __future__ import annotations

import logging
import os

_FORMAT = "%(asctime)s %(name)s %(levelname)s %(message)s"


def get_logger(name: str) -> logging.Logger:
    """Get a namespaced logger; level comes from ``REPRO_LOG`` (default WARNING)."""
    logger = logging.getLogger(f"repro.{name}" if not name.startswith("repro") else name)
    root = logging.getLogger("repro")
    if not root.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_FORMAT))
        root.addHandler(handler)
        root.setLevel(os.environ.get("REPRO_LOG", "WARNING").upper())
        root.propagate = False
    return logger
