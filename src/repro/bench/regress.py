"""Continuous benchmark capture + regression detection.

The ROADMAP's north star ("as fast as the hardware allows") is
unfalsifiable unless every change's performance trajectory is captured
and compared: this module serializes each benchmark-panel run into a
schema-versioned ``BENCH_<workload>.json`` trajectory file and tests
the current run against the recorded history with a robust threshold.

**Capture** (:class:`BenchRecorder`): each entry holds the machine
fingerprint, git SHA, scale/file configuration, and per-stage medians
over ``repeats`` (>= 5 by default) with the inter-quartile range.
Entries are *appended, never overwritten* — the file is the ordered
performance history of the repo on that machine — and written
atomically (:mod:`repro.util.atomic_io`), so a crashed recorder never
corrupts the trajectory.

**Detection** (:func:`check_against` / ``repro perf check``): a stage
regresses iff its current median exceeds

    ``baseline_median + k * baseline_IQR``   (robust noise band)

**and**

    ``min_ratio * baseline_median``          (relative floor)

with both knobs configurable (``k`` = :data:`DEFAULT_K`, ``min_ratio``
= :data:`DEFAULT_MIN_RATIO`).  The double test makes the gate robust to
both noisy stages (large IQR widens the band) and near-zero stages (the
relative floor ignores microsecond jitter).  Baselines are computed
only from entries whose machine fingerprint matches the current host;
when none match (first run on a new machine, or a fresh repo) the check
**bootstraps**: it passes and the caller records the first entry.

The CI ``perf-gate`` job runs the Benzil smoke panel 5x, records, and
checks against the committed trajectory; a 2x slowdown anywhere in
MDNorm/BinMD/UpdateEvents fails the gate (the injected-slowdown test in
``tests/bench/test_regress.py`` proves it).
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.util import atomic_io
from repro.util.validation import ReproError, require

#: schema version of BENCH_*.json trajectory files
BENCH_SCHEMA = 1

#: stages captured per entry (per-run medians over the repeats)
BENCH_STAGES = ("UpdateEvents", "MDNorm", "BinMD", "MDNorm + BinMD", "Total")

#: default robust-threshold width (median + k * IQR)
DEFAULT_K = 3.0

#: default relative floor: a stage must be at least this factor slower
#: than the baseline median before it can regress (guards near-zero
#: stages whose IQR is microseconds)
DEFAULT_MIN_RATIO = 1.25

#: minimum repeats for a recorded entry (the IQR needs quartiles)
MIN_REPEATS = 3


class RegressError(ReproError):
    """Malformed trajectory file or an impossible check request."""


# ---------------------------------------------------------------------------
# machine / revision identity
# ---------------------------------------------------------------------------

def machine_fingerprint() -> str:
    """A stable identity of this host for baseline filtering.

    Absolute wall-clock is only comparable on like hardware; entries
    recorded on other machines are excluded from the baseline.  The
    fingerprint deliberately ignores OS patch level and Python micro
    version — those move without changing throughput class.
    """
    return "-".join([
        platform.system().lower() or "unknown",
        platform.machine() or "unknown",
        f"cpu{os.cpu_count() or 0}",
        f"py{platform.python_version_tuple()[0]}.{platform.python_version_tuple()[1]}",
    ])


def current_git_sha(cwd: Optional[str] = None) -> str:
    """The repo HEAD SHA, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd or str(Path(__file__).resolve().parents[3]),
            capture_output=True, text=True, timeout=10,
        )
        sha = out.stdout.strip()
        return sha if out.returncode == 0 and sha else "unknown"
    except (OSError, subprocess.SubprocessError):  # pragma: no cover
        return "unknown"


# ---------------------------------------------------------------------------
# sample statistics
# ---------------------------------------------------------------------------

def robust_stats(samples: Sequence[float]) -> Dict[str, float]:
    """Median + IQR (and the raw samples' extrema) of one stage."""
    xs = sorted(float(s) for s in samples)
    require(len(xs) >= 1, "need at least one sample")
    med = statistics.median(xs)
    if len(xs) >= 2:
        q = statistics.quantiles(xs, n=4, method="inclusive")
        iqr = q[2] - q[0]
    else:
        iqr = 0.0
    return {
        "median": med,
        "iqr": iqr,
        "min": xs[0],
        "max": xs[-1],
        "n": float(len(xs)),
    }


def stage_samples_from_timings(timings_list: Sequence[Any]) -> Dict[str, List[float]]:
    """Per-stage second samples from a list of ``StageTimings``."""
    out: Dict[str, List[float]] = {stage: [] for stage in BENCH_STAGES}
    for timings in timings_list:
        for stage in BENCH_STAGES:
            out[stage].append(float(timings.seconds(stage)))
    return out


def collect_panel_samples(
    data: Any,
    *,
    repeats: int = 5,
    files: Optional[int] = None,
    backend: str = "vectorized",
    shards: Optional[int] = None,
    shard_workers: Optional[int] = None,
    memory_budget: Optional[int] = None,
    executor: Optional[str] = None,
    steal_seed: int = 0,
) -> Dict[str, List[float]]:
    """Run the core reduction ``repeats`` times and collect per-stage
    wall-clock samples.

    Every repeat constructs a **fresh geometry cache** so each sample
    measures the same (cold) code path — the warm path has its own
    benchmark (``benchmarks/test_cache_warm_path.py``) and mixing the
    two would bimodalize the distribution the IQR test relies on.

    ``shards`` / ``shard_workers`` time the hierarchical intra-run
    fan-out instead of the single-level loop — the sharded trajectory
    (``BENCH_benzil_shards.json``) is recorded with these so the
    regression gate watches the fan-out path separately.

    ``executor="stealing"`` routes every repeat through the elastic
    work-stealing executor with the given ``steal_seed`` — the
    stealing trajectory (``BENCH_benzil_stealing.json``) gates that
    dispatch path the same way.
    """
    from repro.bench.harness import _subset
    from repro.core.geom_cache import GeomCache
    from repro.core.workflow import ReductionWorkflow, WorkflowConfig
    from repro.util.timers import StageTimings

    require(repeats >= 1, "repeats must be >= 1")
    _, md_paths, _ = _subset(data, files)
    timings_list = []
    for rep in range(repeats):
        cfg = WorkflowConfig(
            md_paths=md_paths,
            flux_path=data.flux_path,
            vanadium_path=data.vanadium_path,
            instrument=data.instrument,
            grid=data.grid,
            point_group=data.point_group,
            backend=backend,
            geom_cache=GeomCache(),
            shards=shards,
            shard_workers=shard_workers,
            memory_budget=memory_budget,
            executor=executor,
            steal_seed=steal_seed,
        )
        timings = StageTimings(label=f"repeat{rep}")
        ReductionWorkflow(cfg).run(timings=timings)
        timings_list.append(timings)
    return stage_samples_from_timings(timings_list)


# ---------------------------------------------------------------------------
# the trajectory file
# ---------------------------------------------------------------------------

class BenchRecorder:
    """Append-only recorder of benchmark entries for one workload.

    ``BENCH_<workload>.json`` layout (``schema`` = :data:`BENCH_SCHEMA`)::

        {
          "schema": 1,
          "workload": "benzil_smoke",
          "entries": [
            {
              "recorded_unix": 1722945600.0,
              "git_sha": "...",
              "fingerprint": "linux-x86_64-cpu8-py3.11",
              "repeats": 5,
              "config": {"scale": ..., "files": ..., "backend": ...},
              "stages": {
                "MDNorm": {"median": ..., "iqr": ..., "min": ...,
                            "max": ..., "n": 5.0},
                ...
              }
            }, ...
          ]
        }
    """

    def __init__(self, path: str | Path, workload: str) -> None:
        self.path = Path(path)
        self.workload = str(workload)

    # -- I/O --------------------------------------------------------------
    def load(self) -> Dict[str, Any]:
        """The trajectory document (an empty skeleton if absent)."""
        if not self.path.exists():
            return {"schema": BENCH_SCHEMA, "workload": self.workload,
                    "entries": []}
        try:
            doc = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise RegressError(f"{self.path}: unreadable trajectory: {exc}")
        if doc.get("schema") != BENCH_SCHEMA:
            raise RegressError(
                f"{self.path}: schema {doc.get('schema')!r} != {BENCH_SCHEMA}"
            )
        if doc.get("workload") != self.workload:
            raise RegressError(
                f"{self.path}: records workload {doc.get('workload')!r}, "
                f"expected {self.workload!r}"
            )
        if not isinstance(doc.get("entries"), list):
            raise RegressError(f"{self.path}: 'entries' is not a list")
        return doc

    @property
    def entries(self) -> List[Dict[str, Any]]:
        return self.load()["entries"]

    def record(
        self,
        samples: Dict[str, Sequence[float]],
        *,
        config: Optional[Dict[str, Any]] = None,
        git_sha: Optional[str] = None,
        fingerprint: Optional[str] = None,
        recorded_unix: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Append one entry built from raw per-stage samples.

        Existing entries are never modified or dropped; the write is
        atomic.  Returns the appended entry.
        """
        repeats = {len(v) for v in samples.values() if len(v) > 0}
        require(bool(repeats), "samples must not be empty")
        n_repeats = min(repeats)
        if n_repeats < MIN_REPEATS:
            raise RegressError(
                f"need >= {MIN_REPEATS} repeats per stage for a "
                f"recordable IQR (got {n_repeats})"
            )
        doc = self.load()
        entry = {
            "recorded_unix": float(
                recorded_unix if recorded_unix is not None else time.time()
            ),
            "git_sha": git_sha if git_sha is not None else current_git_sha(),
            "fingerprint": (
                fingerprint if fingerprint is not None else machine_fingerprint()
            ),
            "repeats": int(n_repeats),
            "config": dict(config or {}),
            "stages": {
                stage: robust_stats(vals)
                for stage, vals in samples.items() if len(vals) > 0
            },
        }
        doc["entries"].append(entry)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        atomic_io.atomic_write_text(
            self.path, json.dumps(doc, indent=2, sort_keys=True) + "\n"
        )
        return entry

    def matching_entries(
        self, fingerprint: Optional[str] = None, *, any_fingerprint: bool = False
    ) -> List[Dict[str, Any]]:
        """Entries comparable to this host (or all, when opted in)."""
        entries = self.entries
        if any_fingerprint:
            return entries
        fp = fingerprint if fingerprint is not None else machine_fingerprint()
        return [e for e in entries if e.get("fingerprint") == fp]


# ---------------------------------------------------------------------------
# the regression check
# ---------------------------------------------------------------------------

@dataclass
class StageVerdict:
    """One stage's check against its recorded baseline."""

    stage: str
    current_median: float
    baseline_median: float
    baseline_iqr: float
    threshold: float
    ratio: float
    regressed: bool

    def row(self) -> str:
        flag = "REGRESSED" if self.regressed else "ok"
        return (f"  {self.stage:<18s} {self.current_median:12.6f} "
                f"{self.baseline_median:12.6f} {self.baseline_iqr:12.6f} "
                f"{self.threshold:12.6f} {self.ratio:8.3f}x  {flag}")


@dataclass
class RegressionReport:
    """The outcome of one ``repro perf check``."""

    workload: str
    k: float
    min_ratio: float
    fingerprint: str
    n_baseline_entries: int
    bootstrapped: bool
    verdicts: List[StageVerdict] = field(default_factory=list)

    @property
    def regressed(self) -> bool:
        return any(v.regressed for v in self.verdicts)

    @property
    def exit_code(self) -> int:
        return 1 if self.regressed else 0

    def text(self) -> str:
        lines = [
            f"perf check: workload {self.workload} "
            f"(k={self.k:g}, min_ratio={self.min_ratio:g}, "
            f"fingerprint {self.fingerprint})"
        ]
        if self.bootstrapped:
            lines.append(
                "  no comparable baseline entries — bootstrap pass "
                "(record this run to seed the trajectory)"
            )
            return "\n".join(lines)
        lines.append(f"  baseline: {self.n_baseline_entries} entries")
        lines.append(f"  {'stage':<18s} {'current (s)':>12s} {'base (s)':>12s} "
                     f"{'IQR (s)':>12s} {'threshold':>12s} {'ratio':>9s}")
        for v in self.verdicts:
            lines.append(v.row())
        lines.append("RESULT: " + ("REGRESSION DETECTED" if self.regressed
                                   else "no regression"))
        return "\n".join(lines)


def baseline_stats(
    entries: Sequence[Dict[str, Any]], stage: str
) -> Optional[Dict[str, float]]:
    """The robust baseline of one stage over matching entries.

    The baseline *median* is the median of the recorded entry medians
    (so one anomalous recording cannot shift the gate) and the baseline
    *IQR* is the median of the recorded IQRs (the typical run-to-run
    noise band on this machine).
    """
    meds = [float(e["stages"][stage]["median"])
            for e in entries if stage in e.get("stages", {})]
    iqrs = [float(e["stages"][stage]["iqr"])
            for e in entries if stage in e.get("stages", {})]
    if not meds:
        return None
    return {
        "median": statistics.median(meds),
        "iqr": statistics.median(iqrs),
        "n": float(len(meds)),
    }


def check_against(
    recorder: BenchRecorder,
    samples: Dict[str, Sequence[float]],
    *,
    k: float = DEFAULT_K,
    min_ratio: float = DEFAULT_MIN_RATIO,
    stages: Sequence[str] = ("UpdateEvents", "MDNorm", "BinMD", "Total"),
    fingerprint: Optional[str] = None,
    any_fingerprint: bool = False,
) -> RegressionReport:
    """Test current per-stage samples against the recorded trajectory.

    A stage regresses iff ``current_median > baseline_median + k * IQR``
    **and** ``current_median > min_ratio * baseline_median``.  With no
    comparable baseline entries the report bootstraps (passes) so a
    fresh machine or repo can seed its first entry.
    """
    require(k >= 0.0, "k must be >= 0")
    require(min_ratio >= 1.0, "min_ratio must be >= 1")
    fp = fingerprint if fingerprint is not None else machine_fingerprint()
    entries = recorder.matching_entries(fp, any_fingerprint=any_fingerprint)
    report = RegressionReport(
        workload=recorder.workload, k=k, min_ratio=min_ratio,
        fingerprint="any" if any_fingerprint else fp,
        n_baseline_entries=len(entries),
        bootstrapped=not entries,
    )
    if not entries:
        return report
    for stage in stages:
        vals = samples.get(stage)
        if not vals:
            continue
        base = baseline_stats(entries, stage)
        if base is None:
            continue
        cur = statistics.median([float(v) for v in vals])
        threshold = base["median"] + k * base["iqr"]
        ratio = cur / base["median"] if base["median"] > 0.0 else float("inf")
        regressed = cur > threshold and cur > min_ratio * base["median"]
        report.verdicts.append(StageVerdict(
            stage=stage,
            current_median=cur,
            baseline_median=base["median"],
            baseline_iqr=base["iqr"],
            threshold=threshold,
            ratio=ratio,
            regressed=regressed,
        ))
    return report


def default_bench_path(workload: str, directory: Optional[str] = None) -> Path:
    """``benchmarks/BENCH_<workload>.json`` in the repo checkout."""
    base = Path(directory) if directory else \
        Path(__file__).resolve().parents[3] / "benchmarks"
    return base / f"BENCH_{workload}.json"
