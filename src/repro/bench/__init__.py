"""Benchmark support: workload builders and the table/figure harness.

Everything the ``benchmarks/`` suite needs to regenerate the paper's
evaluation artifacts:

* :mod:`repro.bench.paper` — the published numbers of Tables I-VI,
  transcribed, for side-by-side reporting;
* :mod:`repro.bench.workloads` — the Benzil/CORELLI and Bixbyite/TOPAZ
  workloads at the paper's full parameters plus a scaling policy, with
  an on-disk dataset cache so repeated benchmark runs reuse the
  synthesized files;
* :mod:`repro.bench.systems` — Table I's systems plus the actual host;
* :mod:`repro.bench.harness` — drivers measuring each implementation
  and assembling the paper's table rows (JIT vs no-JIT columns,
  extrapolation of implementations measured on a file subset);
* :mod:`repro.bench.report` — plain-text table rendering and the
  paper-vs-measured comparison blocks quoted in EXPERIMENTS.md.
"""

from repro.bench.workloads import WorkloadSpec, WorkloadData, benzil_corelli, bixbyite_topaz
from repro.bench.harness import (
    run_garnet,
    run_cpp_proxy,
    run_minivates,
    MeasuredRun,
    DeviceProfile,
    MI100_PROFILE,
    A100_PROFILE,
)
from repro.bench.report import format_table, format_stage_table, comparison_block
from repro.bench.sweep import SweepPoint, SweepResult, run_sweep

__all__ = [
    "WorkloadSpec",
    "WorkloadData",
    "benzil_corelli",
    "bixbyite_topaz",
    "run_garnet",
    "run_cpp_proxy",
    "run_minivates",
    "MeasuredRun",
    "DeviceProfile",
    "MI100_PROFILE",
    "A100_PROFILE",
    "format_table",
    "format_stage_table",
    "comparison_block",
    "SweepPoint",
    "SweepResult",
    "run_sweep",
]
