"""Drivers measuring each implementation on a workload.

Each ``run_*`` function executes one implementation on (a subset of)
the workload's run files and returns a :class:`MeasuredRun` holding the
paper-style stage rows:

* ``per_file(stage)`` — mean seconds per run file (what Tables III-VI
  report for the stage rows);
* ``first_file(stage)`` — the JIT-inclusive first call;
* ``warm(stage)`` — the mean over non-first calls ("no JIT");
* ``total_extrapolated`` — the whole-workflow wall clock, scaled from
  ``files_measured`` to the workload's full file count when an
  implementation is too slow to run on all files (documented in the
  row).

Device profiles bundle the device-behaviour knobs:
:data:`MI100_PROFILE` (per-lane atomics, in-kernel comb sort) and
:data:`A100_PROFILE` (buffered atomics, library sort) — the honest
stand-ins for the paper's two GPUs (DESIGN.md section 2).
"""

from __future__ import annotations

from contextlib import nullcontext as _nullcontext
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.baseline.garnet import GarnetConfig, GarnetWorkflow
from repro.bench.workloads import WorkloadData
from repro.core.cross_section import CrossSectionResult
from repro.core.geom_cache import DEFAULT_BYTE_BUDGET, GeomCache
from repro.core.checkpoint import RecoveryConfig
from repro.core.workflow import ReductionWorkflow, WorkflowConfig
from repro.nexus.corrections import read_flux_file, read_vanadium_file
from repro.proxy.cpp_proxy import CppProxyConfig, CppProxyWorkflow
from repro.proxy.minivates import MiniVatesConfig, MiniVatesWorkflow
from repro.util import trace as _trace
from repro.util.timers import StageTimings
from repro.util.validation import require

STAGES = ("UpdateEvents", "MDNorm", "BinMD", "MDNorm + BinMD")


@dataclass(frozen=True)
class DeviceProfile:
    """Device-behaviour configuration for the MiniVATES proxy."""

    name: str
    sort_impl: str
    scatter_impl: str


#: AMD MI100-like: per-lane atomic updates, in-kernel comb sort
MI100_PROFILE = DeviceProfile(name="MI100-class", sort_impl="comb", scatter_impl="atomic")
#: NVIDIA A100-like: efficient (buffered) atomics, library sort
A100_PROFILE = DeviceProfile(name="A100-class", sort_impl="library", scatter_impl="buffered")


@dataclass
class MeasuredRun:
    """One implementation's measured timings on a workload."""

    label: str
    workload_key: str
    files_measured: int
    files_full: int
    timings: StageTimings
    result: CrossSectionResult
    extras: Dict[str, float] = field(default_factory=dict)

    def per_file(self, stage: str) -> float:
        t = self.timings.seconds(stage)
        return t / self.files_measured if self.files_measured else 0.0

    def first_file(self, stage: str) -> float:
        if stage == "MDNorm + BinMD":
            return self.first_file("MDNorm") + self.first_file("BinMD")
        return self.timings.first_call.get(stage, 0.0)

    def warm(self, stage: str) -> float:
        return self.timings.mean_warm_seconds(stage)

    @property
    def total_measured(self) -> float:
        return self.timings.seconds("Total")

    @property
    def total_extrapolated(self) -> float:
        """Whole-workflow estimate at the full file count."""
        if self.files_measured >= self.files_full:
            return self.total_measured
        per_file = self.total_measured / max(self.files_measured, 1)
        return per_file * self.files_full

    @property
    def extrapolated(self) -> bool:
        return self.files_measured < self.files_full

    def stage_summary(self) -> Dict[str, float]:
        return {stage: self.per_file(stage) for stage in STAGES}


def _subset(data: WorkloadData, files: Optional[int]) -> tuple[list, list, int]:
    n = len(data.md_paths) if files is None else min(files, len(data.md_paths))
    require(n >= 1, "need at least one file to measure")
    return data.nexus_paths[:n], data.md_paths[:n], n


def _maybe_trace(tracer: Optional[_trace.Tracer]):
    """``use_tracer(tracer)`` when given one, otherwise a no-op context."""
    return _trace.use_tracer(tracer) if tracer is not None else _nullcontext()


def run_garnet(
    data: WorkloadData,
    *,
    files: Optional[int] = None,
    n_workers: int = 1,
    tracer: Optional[_trace.Tracer] = None,
) -> MeasuredRun:
    """Measure the Garnet/Mantid production baseline."""
    nexus_paths, _, n = _subset(data, files)
    flux = read_flux_file(data.flux_path)
    vanadium = read_vanadium_file(data.vanadium_path)
    cfg = GarnetConfig(
        nexus_paths=nexus_paths,
        instrument=data.instrument,
        grid=data.grid,
        point_group_symbol=data.structure.point_group_symbol,
        flux=flux,
        solid_angles=vanadium.detector_weights,
        n_workers=n_workers,
    )
    with _maybe_trace(tracer):
        result = GarnetWorkflow(cfg).run()
    return MeasuredRun(
        label=f"Garnet/Mantid baseline (x{n_workers} proc)",
        workload_key=data.spec.key,
        files_measured=n,
        files_full=data.spec.n_files,
        timings=result.timings,
        result=result,
    )


def run_cpp_proxy(
    data: WorkloadData,
    *,
    files: Optional[int] = None,
    n_threads: Optional[int] = None,
    tracer: Optional[_trace.Tracer] = None,
    recovery: Optional["RecoveryConfig"] = None,
) -> MeasuredRun:
    """Measure the C++ proxy (optimized CPU kernels, threaded)."""
    _, md_paths, n = _subset(data, files)
    cfg = CppProxyConfig(
        md_paths=md_paths,
        flux_path=data.flux_path,
        vanadium_path=data.vanadium_path,
        instrument=data.instrument,
        grid=data.grid,
        point_group=data.point_group,
        n_threads=n_threads,
        recovery=recovery,
    )
    with _maybe_trace(tracer):
        result = CppProxyWorkflow(cfg).run()
    return MeasuredRun(
        label="C++ proxy (CPU)",
        workload_key=data.spec.key,
        files_measured=n,
        files_full=data.spec.n_files,
        timings=result.timings,
        result=result,
    )


def run_minivates(
    data: WorkloadData,
    *,
    files: Optional[int] = None,
    profile: DeviceProfile = A100_PROFILE,
    cold_start: bool = True,
    tracer: Optional[_trace.Tracer] = None,
    recovery: Optional["RecoveryConfig"] = None,
) -> MeasuredRun:
    """Measure the MiniVATES proxy under a device profile."""
    _, md_paths, n = _subset(data, files)
    cfg = MiniVatesConfig(
        md_paths=md_paths,
        flux_path=data.flux_path,
        vanadium_path=data.vanadium_path,
        instrument=data.instrument,
        grid=data.grid,
        point_group=data.point_group,
        sort_impl=profile.sort_impl,
        scatter_impl=profile.scatter_impl,
        cold_start=cold_start,
        recovery=recovery,
    )
    with _maybe_trace(tracer):
        result = MiniVatesWorkflow(cfg).run()
    return MeasuredRun(
        label=f"MiniVATES ({profile.name})",
        workload_key=data.spec.key,
        files_measured=n,
        files_full=data.spec.n_files,
        timings=result.timings,
        result=result,
        extras=dict(result.extras or {}),
    )


def run_minivates_jit_split(
    data: WorkloadData,
    *,
    profile: DeviceProfile = A100_PROFILE,
    file_index: int = 0,
) -> tuple[MeasuredRun, MeasuredRun]:
    """The JIT vs no-JIT measurement of Tables III-VI, done honestly.

    Within a multi-file workflow the first file differs from later ones
    in *workload* (each run has its own goniometer setting and live
    trajectory count), which confounds first-call JIT accounting.  This
    measures the same single file twice — once with a cold kernel cache
    ("JIT") and once warm ("no JIT") — so the only difference is the
    specialization cost, exactly what the paper's columns isolate.
    """
    require(0 <= file_index < len(data.md_paths), "file_index out of range")

    def one(cold: bool) -> MeasuredRun:
        cfg = MiniVatesConfig(
            md_paths=[data.md_paths[file_index]],
            flux_path=data.flux_path,
            vanadium_path=data.vanadium_path,
            instrument=data.instrument,
            grid=data.grid,
            point_group=data.point_group,
            sort_impl=profile.sort_impl,
            scatter_impl=profile.scatter_impl,
            cold_start=cold,
        )
        result = MiniVatesWorkflow(cfg).run()
        return MeasuredRun(
            label=f"MiniVATES ({profile.name}, {'JIT' if cold else 'no JIT'})",
            workload_key=data.spec.key,
            files_measured=1,
            files_full=data.spec.n_files,
            timings=result.timings,
            result=result,
            extras=dict(result.extras or {}),
        )

    cold_run = one(True)
    warm_run = one(False)
    return cold_run, warm_run


@dataclass
class ColdWarmSplit:
    """Cold-vs-warm geometry-cache measurement of one panel.

    ``cold`` is the first reduction (cache empty — every stage computes
    from scratch and populates the cache); ``warm`` is the identical
    reduction re-run against the now-populated cache, the repeated-panel
    pattern of a Garnet-style symmetry sweep.  The histograms are
    bit-identical by construction; only the time differs.
    """

    cold: MeasuredRun
    warm: MeasuredRun
    #: geometry-cache counters accumulated over both passes
    cache_stats: Dict[str, float] = field(default_factory=dict)

    def speedup(self, stage: str = "MDNorm") -> float:
        """cold/warm wall-clock ratio for a stage (inf if warm ~ 0)."""
        c = self.cold.timings.seconds(stage)
        w = self.warm.timings.seconds(stage)
        return c / w if w > 0.0 else float("inf")

    def stage_table(self) -> Dict[str, Dict[str, float]]:
        """Per-stage cold / warm seconds + speedup (report rows)."""
        table: Dict[str, Dict[str, float]] = {}
        for stage in STAGES[:3] + ("Total",):
            c = self.cold.timings.seconds(stage)
            w = self.warm.timings.seconds(stage)
            table[stage] = {
                "cold_s": c,
                "warm_s": w,
                "speedup": (c / w) if w > 0.0 else float("inf"),
            }
        return table


def run_repeated_panel(
    data: WorkloadData,
    *,
    files: Optional[int] = None,
    backend: str = "vectorized",
    cache: Optional[GeomCache] = None,
    byte_budget: int = DEFAULT_BYTE_BUDGET,
    tracer: Optional[_trace.Tracer] = None,
) -> ColdWarmSplit:
    """Reduce the same panel twice against one geometry cache.

    This is the benchmark behind the "hot path measurably faster"
    acceptance: the first pass pays the full intersection / pre-pass /
    flux-table cost and fills the cache; the second pass replays the
    cached deposit plans.  A private cache is created unless one is
    passed in, so the measurement never depends on process state.
    """
    _, md_paths, n = _subset(data, files)
    cache = cache if cache is not None else GeomCache(byte_budget=byte_budget)
    cfg = WorkflowConfig(
        md_paths=md_paths,
        flux_path=data.flux_path,
        vanadium_path=data.vanadium_path,
        instrument=data.instrument,
        grid=data.grid,
        point_group=data.point_group,
        backend=backend,
        geom_cache=cache,
    )
    workflow = ReductionWorkflow(cfg)

    def one(label: str) -> MeasuredRun:
        timings = StageTimings(label=label)
        with _maybe_trace(tracer):
            result = workflow.run(timings=timings)
        return MeasuredRun(
            label=f"core[{backend}] ({label} cache)",
            workload_key=data.spec.key,
            files_measured=n,
            files_full=data.spec.n_files,
            timings=timings,
            result=result,
            extras=dict(result.extras or {}),
        )

    cold = one("cold")
    warm = one("warm")
    return ColdWarmSplit(cold=cold, warm=warm, cache_stats=cache.stats.snapshot())


@dataclass
class ShardedPanel:
    """One-shard-vs-sharded measurement of the same panel.

    ``baseline`` runs the single-level Algorithm 1 loop; ``sharded``
    fans each run out over ``n_shards`` intra-run shards on the local
    process pool.  The histograms are bit-identical by construction
    (the replay is serial-order); only the time differs — on a
    multi-core host the sharded panel should win, which the
    ``benchmarks/test_shard_scaling.py`` smoke asserts (and skips on
    single-core hosts, where no win is possible).
    """

    baseline: MeasuredRun
    sharded: MeasuredRun
    n_shards: int
    workers: int

    def speedup(self, stage: str = "Total") -> float:
        """baseline/sharded wall-clock ratio (inf if sharded ~ 0)."""
        b = self.baseline.timings.seconds(stage)
        s = self.sharded.timings.seconds(stage)
        return b / s if s > 0.0 else float("inf")


def run_sharded_panel(
    data: WorkloadData,
    *,
    files: Optional[int] = None,
    baseline_backend: str = "threads",
    n_shards: int = 4,
    workers: Optional[int] = None,
    tracer: Optional[_trace.Tracer] = None,
) -> ShardedPanel:
    """Measure the intra-run shard fan-out against the 1-shard loop.

    Both passes use fresh private geometry caches so neither side gets
    a warm-path advantage; the sharded pass runs with the serial
    element bodies fanned over the process pool, the baseline with
    ``baseline_backend`` (default ``threads`` — the strongest
    single-level CPU configuration, per the ISSUE's acceptance bar).
    """
    from repro.core.sharding import ShardConfig

    require(n_shards >= 1, "n_shards must be >= 1")
    _, md_paths, n = _subset(data, files)
    eff_workers = ShardConfig(n_shards=n_shards, workers=workers).effective_workers

    def one(label: str, *, backend: Optional[str],
            shards: Optional[int]) -> MeasuredRun:
        cfg = WorkflowConfig(
            md_paths=md_paths,
            flux_path=data.flux_path,
            vanadium_path=data.vanadium_path,
            instrument=data.instrument,
            grid=data.grid,
            point_group=data.point_group,
            backend=backend,
            geom_cache=GeomCache(),
            shards=shards,
            shard_workers=workers,
        )
        timings = StageTimings(label=label)
        with _maybe_trace(tracer):
            result = ReductionWorkflow(cfg).run(timings=timings)
        return MeasuredRun(
            label=label,
            workload_key=data.spec.key,
            files_measured=n,
            files_full=data.spec.n_files,
            timings=timings,
            result=result,
            extras=dict(result.extras or {}),
        )

    baseline = one(f"core[{baseline_backend}] 1-shard",
                   backend=baseline_backend, shards=None)
    sharded = one(f"core[sharded x{n_shards}/{eff_workers}w]",
                  backend=None, shards=n_shards)
    return ShardedPanel(
        baseline=baseline, sharded=sharded,
        n_shards=n_shards, workers=eff_workers,
    )


def assert_results_match(a: MeasuredRun, b: MeasuredRun, *, rtol: float = 1e-7) -> None:
    """Same files -> identical histograms, regardless of implementation."""
    require(a.files_measured == b.files_measured,
            "cannot compare runs over different file subsets")
    ra, rb = a.result, b.result
    if not np.allclose(ra.binmd.signal, rb.binmd.signal, rtol=rtol, atol=1e-12):
        raise AssertionError(f"BinMD histograms differ: {a.label} vs {b.label}")
    if not np.allclose(ra.mdnorm.signal, rb.mdnorm.signal, rtol=rtol, atol=1e-12):
        raise AssertionError(f"MDNorm histograms differ: {a.label} vs {b.label}")
