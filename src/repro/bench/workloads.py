"""Benchmark workloads: the paper's two use cases, scaled.

Each :class:`WorkloadSpec` carries the paper's *full* parameters
(Table II) and the scale factors applied for this host (DESIGN.md
section 6).  ``build()`` synthesizes the dataset — raw NeXus files, the
SaveMD files the proxies consume, the flux and vanadium files — into a
cache directory keyed by the parameters, so repeated benchmark sessions
pay synthesis once.

Environment knobs:

* ``REPRO_SCALE`` — event/detector scale relative to the paper
  (default 0.002 = 1/500);
* ``REPRO_FILES`` — cap on the number of run files (default: the
  paper's count);
* ``REPRO_BENCH_DATA`` — cache directory (default
  ``<repo>/.bench_cache`` or the system temp dir).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.bench.paper import TABLE2, UseCaseCharacteristics
from repro.core.grid import HKLGrid
from repro.core.md_event_workspace import convert_to_md, save_md
from repro.crystal.goniometer import Goniometer
from repro.crystal.structures import CrystalStructure, benzil, bixbyite
from repro.crystal.symmetry import PointGroup, point_group
from repro.crystal.ub import UBMatrix
from repro.instruments.corelli import make_corelli
from repro.instruments.detector import DetectorArray
from repro.instruments.idf import write_instrument
from repro.instruments.synth import make_flux, make_vanadium, synthesize_run
from repro.instruments.topaz import make_topaz
from repro.nexus.corrections import write_flux_file, write_vanadium_file
from repro.nexus.schema import write_event_nexus
from repro.util import atomic_io
from repro.util.rng import RunStreams
from repro.util.validation import require

DEFAULT_SCALE = 0.002


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    return float(raw) if raw else default


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    return int(raw) if raw else default


@dataclass(frozen=True)
class WorkloadSpec:
    """One use case: paper parameters + this host's scaled parameters."""

    key: str
    sample: str
    instrument: str
    paper: UseCaseCharacteristics
    #: applied event/detector scale
    scale: float
    #: runs actually synthesized (<= paper.files)
    n_files: int
    n_events_total: int
    n_detectors: int
    grid_bins: Tuple[int, int, int]
    seed: int
    #: store run files as independently compressed chunks of this many
    #: events (h5lite format v2, zlib codec) instead of one contiguous
    #: blob; enables out-of-core reduction (``--memory-budget``)
    chunk_events: Optional[int] = None

    @property
    def n_events_per_file(self) -> int:
        return max(100, self.n_events_total // self.n_files)

    @property
    def n_symmetry_ops(self) -> int:
        return self.paper.symmetry_ops

    def describe(self) -> str:
        p = self.paper
        return (
            f"workload {self.key}: paper({p.files} files, {p.events:.2e} events, "
            f"{p.detectors:.2e} detectors, bins {p.bins}) -> "
            f"scaled x{self.scale:g} ({self.n_files} files, "
            f"{self.n_events_total:.2e} events, {self.n_detectors} detectors, "
            f"bins {self.grid_bins})"
        )


def benzil_corelli(
    scale: Optional[float] = None,
    n_files: Optional[int] = None,
    grid_bins: Optional[Tuple[int, int, int]] = None,
    chunk_events: Optional[int] = None,
) -> WorkloadSpec:
    """Benzil on CORELLI (Table II column 1)."""
    paper = TABLE2["benzil_corelli"]
    scale = scale if scale is not None else _env_float("REPRO_SCALE", DEFAULT_SCALE)
    n_files = n_files if n_files is not None else min(
        paper.files, _env_int("REPRO_FILES", paper.files)
    )
    return WorkloadSpec(
        key="benzil_corelli",
        sample="benzil",
        instrument="CORELLI",
        paper=paper,
        scale=scale,
        n_files=n_files,
        n_events_total=max(2000, int(paper.events * scale)),
        n_detectors=max(200, int(paper.detectors * scale)),
        grid_bins=grid_bins or (151, 151, 1),
        seed=601_000,
        chunk_events=chunk_events,
    )


def bixbyite_topaz(
    scale: Optional[float] = None,
    n_files: Optional[int] = None,
    grid_bins: Optional[Tuple[int, int, int]] = None,
    chunk_events: Optional[int] = None,
) -> WorkloadSpec:
    """Bixbyite on TOPAZ (Table II column 2)."""
    paper = TABLE2["bixbyite_topaz"]
    scale = scale if scale is not None else _env_float("REPRO_SCALE", DEFAULT_SCALE)
    n_files = n_files if n_files is not None else min(
        paper.files, _env_int("REPRO_FILES", paper.files)
    )
    return WorkloadSpec(
        key="bixbyite_topaz",
        sample="bixbyite",
        instrument="TOPAZ",
        paper=paper,
        scale=scale,
        n_files=n_files,
        # TOPAZ detector count is scaled harder: MDNorm rows are
        # ops x detectors and bixbyite has 4x the ops
        n_events_total=max(2000, int(paper.events * scale)),
        n_detectors=max(200, int(paper.detectors * scale * 0.5)),
        grid_bins=grid_bins or (151, 151, 1),
        seed=311_000,
        chunk_events=chunk_events,
    )


@dataclass
class WorkloadData:
    """A synthesized on-disk dataset for one workload."""

    spec: WorkloadSpec
    directory: Path
    nexus_paths: List[str]
    md_paths: List[str]
    flux_path: str
    vanadium_path: str
    instrument_path: str
    instrument: DetectorArray
    structure: CrystalStructure
    grid: HKLGrid
    point_group: PointGroup
    ub: UBMatrix

    @property
    def total_bytes(self) -> int:
        return sum(os.path.getsize(p) for p in self.md_paths)


def _cache_root() -> Path:
    env = os.environ.get("REPRO_BENCH_DATA")
    if env:
        return Path(env)
    repo_root = Path(__file__).resolve().parents[3]
    candidate = repo_root / ".bench_cache"
    try:
        candidate.mkdir(parents=True, exist_ok=True)
        return candidate
    except OSError:  # pragma: no cover - read-only checkouts
        return Path(tempfile.gettempdir()) / "repro_bench_cache"


def _spec_digest(spec: WorkloadSpec) -> str:
    fields = {
        "key": spec.key,
        "scale": spec.scale,
        "files": spec.n_files,
        "events": spec.n_events_total,
        "detectors": spec.n_detectors,
        "bins": spec.grid_bins,
        "seed": spec.seed,
        "format": 2,  # 2: pulse_times in event files + instrument IDF
    }
    # only chunked specs key on the layout, so the digests (and cached
    # fixture directories) of existing contiguous workloads are unchanged
    if spec.chunk_events is not None:
        fields["chunk_events"] = int(spec.chunk_events)
    payload = json.dumps(fields, sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _make_instrument(spec: WorkloadSpec) -> DetectorArray:
    if spec.instrument == "CORELLI":
        return make_corelli(n_pixels=spec.n_detectors)
    return make_topaz(n_pixels=spec.n_detectors)


def _make_structure(spec: WorkloadSpec) -> CrystalStructure:
    return benzil() if spec.sample == "benzil" else bixbyite()


def _make_grid(spec: WorkloadSpec) -> HKLGrid:
    if spec.key == "benzil_corelli":
        return HKLGrid.benzil_grid(bins=spec.grid_bins)
    return HKLGrid.bixbyite_grid(bins=spec.grid_bins)


def _goniometers(spec: WorkloadSpec) -> List[np.ndarray]:
    """One orientation per run: CORELLI sweeps omega uniformly; TOPAZ
    uses a low-discrepancy set of (omega, chi, phi) settings."""
    if spec.instrument == "CORELLI":
        omegas = np.linspace(0.0, 180.0, spec.n_files, endpoint=False)
        return [Goniometer(om).rotation for om in omegas]
    rng = np.random.default_rng(spec.seed + 17)
    settings = rng.uniform([0.0, -45.0, 0.0], [360.0, 45.0, 360.0], size=(spec.n_files, 3))
    return [Goniometer(*s).rotation for s in settings]


def build_workload(spec: WorkloadSpec) -> WorkloadData:
    """Synthesize (or reuse from cache) the dataset for ``spec``."""
    structure = _make_structure(spec)
    instrument = _make_instrument(spec)
    grid = _make_grid(spec)
    pg = point_group(structure.point_group_symbol)
    require(pg.order == spec.paper.symmetry_ops,
            f"{spec.key}: point group order {pg.order} != paper "
            f"{spec.paper.symmetry_ops}")
    ub = UBMatrix.from_u_vectors(structure.cell, [0.0, 0.0, 1.0], [1.0, 0.0, 0.0])

    directory = _cache_root() / f"{spec.key}-{_spec_digest(spec)}"
    nexus_paths = [str(directory / f"run_{i:04d}.nxs.h5") for i in range(spec.n_files)]
    md_paths = [str(directory / f"run_{i:04d}.md.h5") for i in range(spec.n_files)]
    flux_path = str(directory / "flux.h5")
    vanadium_path = str(directory / "vanadium.h5")
    instrument_path = str(directory / "instrument.h5")

    # Crash-safe fixture publication: every member file is written to a
    # temporary sibling and atomically renamed into place, and the
    # directory is only trusted once its COMPLETE sentinel (written
    # strictly last) exists.  A synthesis killed at any instant leaves a
    # directory without the sentinel, which the next call rebuilds.
    if not atomic_io.is_complete(directory):
        directory.mkdir(parents=True, exist_ok=True)
        streams = RunStreams(spec.seed)
        goniometers = _goniometers(spec)
        per_file = spec.n_events_per_file

        def publish(path: str, writer, *payload) -> None:
            with atomic_io.atomic_path(path) as tmp:
                writer(tmp, *payload)

        def write_nexus(tmp, run):
            write_event_nexus(tmp, run, chunk_events=spec.chunk_events)

        def write_md(tmp, ws):
            save_md(tmp, ws, chunk_events=spec.chunk_events)

        for i in range(spec.n_files):
            run = synthesize_run(
                instrument=instrument,
                structure=structure,
                ub=ub,
                goniometer=goniometers[i],
                n_events=per_file,
                rng=streams.for_run(i),
                run_number=i,
            )
            publish(nexus_paths[i], write_nexus, run)
            ws = convert_to_md(run, instrument, run_index=i)
            publish(md_paths[i], write_md, ws)
        publish(flux_path, write_flux_file, make_flux(instrument))
        publish(vanadium_path, write_vanadium_file, make_vanadium(instrument))
        publish(instrument_path, write_instrument, instrument)
        atomic_io.mark_complete(directory, spec.describe() + "\n")

    return WorkloadData(
        spec=spec,
        directory=directory,
        nexus_paths=nexus_paths,
        md_paths=md_paths,
        flux_path=flux_path,
        vanadium_path=vanadium_path,
        instrument_path=instrument_path,
        instrument=instrument,
        structure=structure,
        grid=grid,
        point_group=pg,
        ub=ub,
    )
