"""The published evaluation numbers, transcribed from the paper.

Used by the harness to print paper-vs-measured comparisons and by
EXPERIMENTS.md generation.  All wall-clock times in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

# -- Table I: systems -----------------------------------------------------

PAPER_SYSTEMS = {
    "Defiant (OLCF)": {
        "nodes": 36,
        "cpu": "64-core AMD EPYC 7662 Rome, 4 NUMA",
        "gpu": "4x AMD MI100 32 GB HBM2",
        "memory": "256 GB DDR4",
    },
    "Milan0 (ExCL)": {
        "nodes": 1,
        "cpu": "2 x 32-core AMD EPYC 7513, 2 NUMA",
        "gpu": "2x NVIDIA A100 80 GB",
        "memory": "1 TB DDR4-3200",
    },
    "bl12-analysis2 (SNS)": {
        "nodes": 1,
        "cpu": "16-core AMD EPYC 7343, 1 NUMA",
        "gpu": "1x NVIDIA T600 4 GB",
        "memory": "512 GB DDR4",
    },
}

# -- Table II: use-case characteristics + Garnet baseline -----------------

@dataclass(frozen=True)
class UseCaseCharacteristics:
    files: int
    symmetry_ops: int
    events: int
    detectors: int
    bins: Tuple[int, int, int]
    projections: str
    #: Garnet/Mantid MDNorm + BinMD WCT on bl12-analysis2 (s)
    garnet_mdnorm_binmd_s: float
    #: Garnet/Mantid total workflow WCT on bl12-analysis2 (s)
    garnet_total_s: float


TABLE2 = {
    "benzil_corelli": UseCaseCharacteristics(
        files=36,
        symmetry_ops=6,
        events=40_000_000,
        detectors=372_000,
        bins=(603, 603, 1),
        projections="([H,H],[H,-H],[L])",
        garnet_mdnorm_binmd_s=55.0,
        garnet_total_s=271.0,
    ),
    "bixbyite_topaz": UseCaseCharacteristics(
        files=22,
        symmetry_ops=24,
        events=280_000_000,
        detectors=1_600_000,
        bins=(601, 601, 1),
        projections="([H],[K],[L])",
        garnet_mdnorm_binmd_s=102.0,
        garnet_total_s=904.0,
    ),
}

# -- Tables III-VI: proxy stage WCTs ---------------------------------------
# rows: stage -> (cpp_cpu, minivates_jit, minivates_nojit); None = n/a

StageRow = Dict[str, Tuple[Optional[float], Optional[float], Optional[float]]]

TABLE3_BENZIL_DEFIANT: StageRow = {
    "UpdateEvents": (0.092, 0.136, 0.064),
    "MDNorm": (0.688, 4.669, 0.174),
    "BinMD": (0.057, 0.488, 0.010),
    "MDNorm + BinMD": (0.746, 5.157, 0.184),
    "Total": (7.746, 48.932, None),
}

TABLE4_BENZIL_MILAN0: StageRow = {
    "UpdateEvents": (1.250, 0.090, 0.0504),
    "MDNorm": (0.456, 2.367, 0.0532),
    "BinMD": (0.034, 0.517, 0.0000),
    "MDNorm + BinMD": (0.490, 2.894, 0.0532),
    "Total": (15.985, 30.135, None),
}

TABLE5_BIXBYITE_DEFIANT: StageRow = {
    "UpdateEvents": (23.70, 3.12, 18.12),
    "MDNorm": (2.81, 4.51, 0.45),
    "BinMD": (5.40, 3.70, 2.95),
    "MDNorm + BinMD": (8.21, 8.21, 3.40),
    "Total": (215.98, 553.89, None),
}

TABLE6_BIXBYITE_MILAN0: StageRow = {
    "UpdateEvents": (42.59, 3.784, 3.037),
    "MDNorm": (1.53, 3.133, 0.518),
    "BinMD": (3.08, 0.766, 5.31e-5),
    "MDNorm + BinMD": (4.61, 3.899, 0.518),
    "Total": (306.46, 667.02, None),
}

PAPER_TABLES: Dict[str, StageRow] = {
    "table3": TABLE3_BENZIL_DEFIANT,
    "table4": TABLE4_BENZIL_MILAN0,
    "table5": TABLE5_BIXBYITE_DEFIANT,
    "table6": TABLE6_BIXBYITE_MILAN0,
}

#: headline claims the reproduction checks for *shape* (direction and
#: rough magnitude), per DESIGN.md section 5
HEADLINE_CLAIMS = {
    "proxy_vs_garnet_cpu": "proxies outperform Garnet/Mantid by ~74x on CPU",
    "proxy_vs_garnet_gpu": "proxies outperform Garnet/Mantid by ~299x on GPU",
    "a100_vs_mi100_binmd": "BinMD is >172x faster on A100 than MI100",
    "a100_vs_mi100_mdnorm": "MDNorm is >3x faster on A100 than MI100",
    "jit_first_call": "the first file pays JIT; later iterations do not",
    "binmd_nojit_speed": "warm BinMD on the A100-class device beats the "
    "CPU proxy by orders of magnitude",
    "updateevents_dominates_bixbyite": "I/O (UpdateEvents) dominates the "
    "Bixbyite totals",
}
