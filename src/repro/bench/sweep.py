"""Parameter sweeps over reduction configurations.

A small declarative utility used by the benchmark suite (and usable
interactively) to measure how a quantity responds to one driver
variable: build the configuration for each parameter value, run it,
time it, optionally extract extra observables, and fit the log-log
scaling exponent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.util.validation import require


@dataclass(frozen=True)
class SweepPoint:
    """One measured point of a sweep."""

    parameter: float
    seconds: float
    observables: Dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class SweepResult:
    """All points of a sweep plus derived statistics."""

    name: str
    parameter_name: str
    points: List[SweepPoint]

    @property
    def parameters(self) -> np.ndarray:
        return np.array([p.parameter for p in self.points])

    @property
    def seconds(self) -> np.ndarray:
        return np.array([p.seconds for p in self.points])

    def scaling_exponent(self) -> float:
        """log-log slope of wall-clock vs parameter (>= 2 points)."""
        require(len(self.points) >= 2, "need >= 2 points to fit a slope")
        return float(np.polyfit(np.log(self.parameters), np.log(self.seconds), 1)[0])

    def rows(self) -> List[tuple]:
        """(parameter, seconds, *observables) rows for a report table."""
        out = []
        for p in self.points:
            row = [f"{p.parameter:g}", f"{p.seconds:.4f}"]
            row += [f"{v:.5g}" for v in p.observables.values()]
            out.append(tuple(row))
        return out

    def observable_names(self) -> List[str]:
        return list(self.points[0].observables) if self.points else []


def run_sweep(
    name: str,
    parameter_name: str,
    values: Sequence[float],
    run_one: Callable[[Any], Optional[Dict[str, float]]],
    *,
    repeats: int = 3,
) -> SweepResult:
    """Measure ``run_one(value)`` for each parameter value.

    ``run_one`` may return a dict of extra observables (histogram
    totals, coverage, ...), recorded alongside the median wall-clock of
    ``repeats`` calls.
    """
    require(len(values) >= 1, "sweep needs at least one value")
    require(repeats >= 1, "repeats must be >= 1")
    points: List[SweepPoint] = []
    for value in values:
        times = []
        observables: Dict[str, float] = {}
        for _ in range(repeats):
            t0 = time.perf_counter()
            out = run_one(value)
            times.append(time.perf_counter() - t0)
            if out:
                observables = {k: float(v) for k, v in out.items()}
        points.append(
            SweepPoint(
                parameter=float(value),
                seconds=float(np.median(times)),
                observables=observables,
            )
        )
    return SweepResult(name=name, parameter_name=parameter_name, points=points)
