"""Systems (Table I): the paper's machines and this host.

The paper's hardware is unavailable; the table bench reports the
published systems beside the actual benchmark host and the execution-
engine mapping DESIGN.md section 2 defines, so every measured number in
the other tables is traceable to a concrete substitution.
"""

from __future__ import annotations

import os
import platform
from dataclasses import dataclass
from typing import Dict

from repro.bench.paper import PAPER_SYSTEMS


@dataclass(frozen=True)
class HostInfo:
    platform: str
    machine: str
    python: str
    cpu_count: int
    memory_gb: float


def current_host() -> HostInfo:
    mem_gb = 0.0
    try:
        with open("/proc/meminfo") as fh:
            for line in fh:
                if line.startswith("MemTotal:"):
                    mem_gb = float(line.split()[1]) / (1024.0**2)
                    break
    except OSError:  # pragma: no cover - non-Linux hosts
        pass
    return HostInfo(
        platform=platform.platform(),
        machine=platform.machine(),
        python=platform.python_version(),
        cpu_count=os.cpu_count() or 1,
        memory_gb=mem_gb,
    )


#: how each paper system maps onto this reproduction's execution engines
ENGINE_MAPPING: Dict[str, str] = {
    "Defiant (OLCF)": "threads back end (CPU rows) + MI100-class device "
    "profile (comb sort, per-lane atomics)",
    "Milan0 (ExCL)": "threads back end (CPU rows) + A100-class device "
    "profile (library sort, buffered atomics)",
    "bl12-analysis2 (SNS)": "Garnet/Mantid baseline (interpreted "
    "array-of-structs, multiprocess over runs)",
}


def systems_rows() -> list[tuple[str, str, str, str]]:
    """(system, paper CPU/GPU, paper memory, engine mapping) rows."""
    rows = []
    for name, desc in PAPER_SYSTEMS.items():
        rows.append(
            (
                name,
                f"{desc['cpu']} | {desc['gpu']}",
                desc["memory"],
                ENGINE_MAPPING[name],
            )
        )
    return rows
