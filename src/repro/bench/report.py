"""Plain-text rendering of the paper-style tables.

The benchmark suite prints these blocks (and the session tee captures
them into ``bench_output.txt``); EXPERIMENTS.md quotes them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.bench.harness import STAGES, MeasuredRun
from repro.bench.paper import StageRow


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    col_width: int = 14,
) -> str:
    """A fixed-width text table with a title rule."""
    out: List[str] = []
    rule = "=" * max(len(title), (len(headers)) * (col_width + 2))
    out.append(rule)
    out.append(title)
    out.append(rule)
    out.append("  ".join(f"{h:<{col_width}}" for h in headers))
    out.append("-" * len(out[-1]))
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(f"{value:<{col_width}.4g}")
            else:
                cells.append(f"{str(value):<{col_width}}")
        out.append("  ".join(cells))
    return "\n".join(out)


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == 0:
        return "0"
    if abs(value) < 1e-3:
        return f"{value:.2e}"
    return f"{value:.4g}"


def format_stage_table(
    title: str,
    cpp: MeasuredRun,
    mv_jit: MeasuredRun,
    mv_warm: MeasuredRun,
    paper_rows: Optional[StageRow] = None,
    mv_total: Optional[MeasuredRun] = None,
) -> str:
    """The Tables III-VI layout: stage rows x (CPU, JIT, no JIT) columns,
    measured values side by side with the paper's.

    ``mv_jit`` / ``mv_warm`` are the cold/warm single-file runs from
    :func:`run_minivates_jit_split`; ``mv_total`` (default ``mv_warm``)
    provides the whole-workflow Total row.
    """
    mv_total = mv_total or mv_warm
    headers = ["WCT (s/file)", "C++ (CPU)", "MV JIT", "MV no JIT"]
    if paper_rows:
        headers += ["paper C++", "paper JIT", "paper noJIT"]
    rows: List[List[object]] = []
    for stage in STAGES:
        row: List[object] = [
            stage,
            _fmt(cpp.per_file(stage)),
            _fmt(mv_jit.per_file(stage)),
            _fmt(mv_warm.per_file(stage)),
        ]
        if paper_rows:
            p = paper_rows.get(stage, (None, None, None))
            row += [_fmt(p[0]), _fmt(p[1]), _fmt(p[2])]
        rows.append(row)
    total_row: List[object] = [
        "Total (wf)",
        _fmt(cpp.total_extrapolated) + ("*" if cpp.extrapolated else ""),
        _fmt(mv_total.total_extrapolated) + ("*" if mv_total.extrapolated else ""),
        "-",
    ]
    if paper_rows:
        p = paper_rows.get("Total", (None, None, None))
        total_row += [_fmt(p[0]), _fmt(p[1]), _fmt(p[2])]
    rows.append(total_row)
    note = (
        "\n(* extrapolated from "
        f"{cpp.files_measured}/{cpp.files_full} (C++) and "
        f"{mv_total.files_measured}/{mv_total.files_full} (MiniVATES) files; "
        "MV JIT / no JIT are the same file measured cold then warm; "
        "paper columns are per-stage values from the corresponding table)"
    )
    return format_table(title, headers, rows) + note


def comparison_block(label: str, items: Dict[str, Tuple[float, float]]) -> str:
    """A 'claim: paper vs measured' block for the headline ratios."""
    lines = [f"-- {label} --"]
    for claim, (paper_value, measured_value) in items.items():
        lines.append(
            f"  {claim:<42s} paper ~{paper_value:>10.4g}   "
            f"measured {measured_value:>10.4g}"
        )
    return "\n".join(lines)
