"""Terminal rendering of reduced histograms.

MiniVATES.jl "does not save any output files" and the paper's Fig. 4
panels are images; in a terminal-first reproduction the equivalent is
an ASCII intensity map.  Used by ``examples/bixbyite_topaz.py`` and the
CLI's ``--render`` flag.
"""

from __future__ import annotations

import numpy as np

from repro.core.hist3 import Hist3
from repro.util.validation import require

#: intensity ramp, dark to bright
SHADES = " .:-=+*#%@"


def ascii_map(
    slice2d: np.ndarray,
    *,
    width: int = 64,
    percentile: float = 97.0,
) -> str:
    """Render a 2-D intensity array as terminal art.

    The array is block-averaged down to roughly ``width`` columns (half
    as many rows, matching terminal cell aspect), scaled to the given
    intensity percentile of the non-empty pixels, and mapped onto a
    10-step shade ramp.  NaNs (undefined cross-section bins) render as
    empty.
    """
    require(width >= 4, "width must be >= 4")
    require(0 < percentile <= 100, "percentile must be in (0, 100]")
    data = np.nan_to_num(np.asarray(slice2d, dtype=np.float64), nan=0.0)
    if data.ndim != 2:
        raise ValueError(f"ascii_map expects a 2-D array, got {data.shape}")
    n0, n1 = data.shape
    step0 = max(1, n0 // max(width // 2, 1))
    step1 = max(1, n1 // width)
    ds = data[: n0 // step0 * step0, : n1 // step1 * step1]
    if ds.size == 0:
        return ""
    ds = ds.reshape(ds.shape[0] // step0, step0, ds.shape[1] // step1, step1)
    ds = ds.mean(axis=(1, 3))
    positive = ds[ds > 0]
    top = np.percentile(positive, percentile) if positive.size else 1.0
    scaled = np.clip(ds / max(top, 1e-30), 0.0, 1.0)
    idx = (scaled * (len(SHADES) - 1)).astype(int)
    return "\n".join("".join(SHADES[i] for i in row) for row in idx)


def render_hist(hist: Hist3, *, axis: int = 2, index: int = 0, width: int = 64) -> str:
    """Render one 2-D slice of a histogram, with an axis banner."""
    banner = (
        f"{hist.grid.names[(axis + 1) % 3]} x {hist.grid.names[(axis + 2) % 3]} "
        f"(slice {index} of {hist.grid.names[axis]}, "
        f"coverage {hist.nonzero_fraction():.1%})"
    )
    return banner + "\n" + ascii_map(hist.slice2d(axis=axis, index=index), width=width)
