"""The output histogram grid in projected (H, K, L) coordinates.

Mantid's MDNorm bins along three user-chosen reciprocal-space basis
vectors.  The paper's use cases (Table II):

* Benzil / CORELLI: basis ``[H,H,0], [H,-H,0], [0,0,L]`` on a
  603 x 603 x 1 grid;
* Bixbyite / TOPAZ: basis ``[H,0,0], [0,K,0], [0,0,L]`` on a
  601 x 601 x 1 grid.

A grid is defined by its basis matrix ``W`` (columns = basis vectors in
HKL space), per-dimension ranges and bin counts.  Grid coordinates of a
reciprocal point are ``c = W^-1 hkl``; combined with the UB and
goniometer transforms this gives one 3x3 matrix per (run, symmetry op)
that kernels apply to every event / trajectory — the ``transforms``
array of the paper's Listings 1-3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.crystal.symmetry import PointGroup
from repro.crystal.ub import UBMatrix, TWO_PI
from repro.util.validation import ValidationError, as_matrix3, require


@dataclass(frozen=True)
class HKLGrid:
    """A regular 3-D binning grid over projected HKL coordinates."""

    #: basis vectors in HKL space, as columns of a 3x3 matrix
    basis: np.ndarray
    #: inclusive lower corner in grid coordinates
    minimum: Tuple[float, float, float]
    #: inclusive upper corner in grid coordinates
    maximum: Tuple[float, float, float]
    #: bins per dimension (the paper's hBins/kBins/lBins)
    bins: Tuple[int, int, int]
    #: axis labels for reports
    names: Tuple[str, str, str] = ("[H,0,0]", "[0,K,0]", "[0,0,L]")

    def __post_init__(self) -> None:
        basis = as_matrix3(self.basis, "basis")
        if abs(np.linalg.det(basis)) < 1e-12:
            raise ValidationError("grid basis vectors are linearly dependent")
        object.__setattr__(self, "basis", basis)
        mn = tuple(float(x) for x in self.minimum)
        mx = tuple(float(x) for x in self.maximum)
        nb = tuple(int(x) for x in self.bins)
        require(len(mn) == 3 and len(mx) == 3 and len(nb) == 3, "grid is 3-D")
        for lo, hi, n in zip(mn, mx, nb):
            require(hi > lo, f"grid range [{lo}, {hi}] is empty")
            require(n >= 1, f"bin count {n} must be >= 1")
        object.__setattr__(self, "minimum", mn)
        object.__setattr__(self, "maximum", mx)
        object.__setattr__(self, "bins", nb)

    # -- geometry --------------------------------------------------------
    @cached_property
    def widths(self) -> np.ndarray:
        """Bin width per dimension."""
        return (np.array(self.maximum) - np.array(self.minimum)) / np.array(self.bins)

    @cached_property
    def edges(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Bin edge positions per dimension (len = bins + 1)."""
        return tuple(
            np.linspace(self.minimum[i], self.maximum[i], self.bins[i] + 1)
            for i in range(3)
        )

    @cached_property
    def n_bins_total(self) -> int:
        b = self.bins
        return b[0] * b[1] * b[2]

    @cached_property
    def max_plane_crossings(self) -> int:
        """Upper bound on trajectory/plane intersections: the paper's
        ``hBins + kBins + lBins + 2`` (every interior+boundary plane of
        each dimension, plus the two segment endpoints)."""
        return self.bins[0] + self.bins[1] + self.bins[2] + 3 + 2

    @cached_property
    def projection(self) -> np.ndarray:
        """``W^-1``: maps HKL to grid coordinates."""
        return np.linalg.inv(self.basis)

    # -- transforms --------------------------------------------------------
    def transforms_for(
        self,
        ub: UBMatrix | np.ndarray,
        point_group: Optional[PointGroup] = None,
        goniometer: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Per-symmetry-op matrices mapping Q (sample or lab) to grid coords.

        Returns ``(n_ops, 3, 3)`` with
        ``T_op = W^-1 . S . (2 pi UB)^-1 [. R^-1]``; pass ``goniometer``
        to consume lab-frame Q, omit it for Q_sample (the MDEvent table).
        """
        ub_matrix = ub.matrix if isinstance(ub, UBMatrix) else as_matrix3(ub, "ub")
        inv_ub = np.linalg.inv(TWO_PI * ub_matrix)
        if goniometer is not None:
            inv_ub = inv_ub @ as_matrix3(goniometer, "goniometer").T
        if point_group is None:
            ops = np.eye(3)[None, :, :]
        else:
            ops = point_group.operations.astype(np.float64)
        return np.ascontiguousarray(
            np.einsum("ij,ojk,kl->oil", self.projection, ops, inv_ub)
        )

    def bin_index(self, coords: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Flat bin indices of grid-coordinate points.

        Returns ``(flat_index, inside_mask)``; indices of outside points
        are clipped into range and must be masked by the caller.
        """
        c = np.asarray(coords, dtype=np.float64)
        mn = np.array(self.minimum)
        w = self.widths
        # floor semantics identical to Hist3.push: the upper boundary is
        # exclusive (a point exactly at `maximum` is outside); both the
        # scalar and batch kernels must agree bin-for-bin.
        idx = np.floor((c - mn) / w).astype(np.int64)
        nb = np.array(self.bins)
        inside = np.all((idx >= 0) & (idx < nb), axis=-1)
        idx_clipped = np.clip(idx, 0, nb - 1)
        flat = (
            idx_clipped[..., 0] * (nb[1] * nb[2])
            + idx_clipped[..., 1] * nb[2]
            + idx_clipped[..., 2]
        )
        return flat, inside

    # -- constructors for the paper's cases ---------------------------------
    @classmethod
    def benzil_grid(
        cls,
        bins: Sequence[int] = (603, 603, 1),
        extent: float = 6.0,
        l_half_width: float = 0.5,
    ) -> "HKLGrid":
        """The Benzil/CORELLI grid: [H,H,0] x [H,-H,0] x [0,0,L].

        ``l_half_width`` is the integration half-thickness of the L
        slice (lBins = 1, as in the paper's 2-D slicing).  The paper's
        production slices are thinner; the default here is thick enough
        for laptop-scale synthetic statistics (DESIGN.md section 6).
        """
        basis = np.array([[1.0, 1.0, 0.0], [1.0, -1.0, 0.0], [0.0, 0.0, 1.0]]).T
        return cls(
            basis=basis,
            minimum=(-extent, -extent, -l_half_width),
            maximum=(extent, extent, l_half_width),
            bins=tuple(bins),
            names=("[H,H,0]", "[H,-H,0]", "[0,0,L]"),
        )

    @classmethod
    def bixbyite_grid(
        cls,
        bins: Sequence[int] = (601, 601, 1),
        extent: float = 8.0,
        l_half_width: float = 0.5,
    ) -> "HKLGrid":
        """The Bixbyite/TOPAZ grid: [H,0,0] x [0,K,0] x [0,0,L]."""
        return cls(
            basis=np.eye(3),
            minimum=(-extent, -extent, -l_half_width),
            maximum=(extent, extent, l_half_width),
            bins=tuple(bins),
            names=("[H,0,0]", "[0,K,0]", "[0,0,L]"),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"HKLGrid({self.names[0]} x {self.names[1]} x {self.names[2]}, "
            f"bins={self.bins})"
        )
