"""MDEvent storage and the ``UpdateEvents`` stage.

Mirrors the paper's data flow: the production workflow saves each run's
``MDEventWorkspace`` (the 8-column event table) plus auxiliary metadata
into HDF5 files that the proxies then load.  ``UpdateEvents`` — the
stage timed in Tables III-VI — is exactly that load: reading "an HDF5
array with 8 columns and a row for each neutron event" and transposing
it "from row-major to column-major" (we store column-major on disk and
produce the row-major kernel layout on load, so the measured transpose
cost is real).

:func:`convert_to_md` is the upstream conversion (Mantid's
ConvertToMD): raw (pixel, TOF) events -> Q_sample through the
instrument geometry and the run's goniometer.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.instruments.conversion import q_lab_from_events
from repro.instruments.detector import DetectorArray
from repro.nexus.events import (
    COL_DETECTOR_ID,
    COL_ERROR_SQ,
    COL_GONIOMETER_INDEX,
    COL_Q,
    COL_RUN_INDEX,
    COL_SIGNAL,
    EventTable,
    N_EVENT_COLUMNS,
    RunData,
)
from repro.nexus.h5lite import File
from repro.util import faults as _faults
from repro.util.validation import ValidationError, as_matrix3, require


@dataclass
class MDEventWorkspace:
    """One run's MDEvents plus the metadata the reduction needs.

    ``events`` is either an in-memory :class:`EventTable` or — for
    out-of-core runs loaded with ``load_md(memory_budget=...)`` — a
    :class:`repro.nexus.tiles.LazyEventTable` exposing the same
    ``n_events`` surface plus bounded ``window(a, b)`` reads.
    """

    events: "EventTable"
    run_number: int
    goniometer: np.ndarray
    proton_charge: float
    #: accepted momentum range (k_min, k_max) in 1/Angstrom
    momentum_band: tuple[float, float]
    ub_matrix: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.goniometer = as_matrix3(self.goniometer, "goniometer")
        lo, hi = self.momentum_band
        require(0 < lo < hi, "momentum_band must satisfy 0 < min < max")
        require(self.proton_charge > 0, "proton_charge must be positive")
        if self.ub_matrix is not None:
            self.ub_matrix = as_matrix3(self.ub_matrix, "ub_matrix")

    @property
    def n_events(self) -> int:
        return self.events.n_events

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MDEventWorkspace(run={self.run_number}, events={self.n_events})"


def convert_to_md(
    run: RunData,
    instrument: DetectorArray,
    *,
    run_index: int = 0,
) -> MDEventWorkspace:
    """Raw run -> MDEventWorkspace (Mantid's ConvertToMD).

    Computes each event's ``Q_lab`` from its pixel direction and time of
    flight, rotates into the sample frame with the run's goniometer
    (``Q_sample = R^T Q_lab``), and packs the 8-column table.
    """
    ids = run.detector_ids.astype(np.int64)
    if ids.size and (ids.max() >= instrument.n_pixels):
        raise ValidationError(
            f"run {run.run_number} references pixel {ids.max()} but "
            f"{instrument.name} has only {instrument.n_pixels}"
        )
    directions = instrument.directions[ids]
    flight = instrument.flight_paths[ids]
    q_lab = q_lab_from_events(run.tof, directions, flight)
    q_sample = q_lab @ run.goniometer  # == (R^T q_lab^T)^T

    table = np.empty((ids.shape[0], N_EVENT_COLUMNS), dtype=np.float64)
    table[:, COL_SIGNAL] = run.weights
    table[:, COL_ERROR_SQ] = run.weights  # Poisson: var == counts
    table[:, COL_RUN_INDEX] = run_index
    table[:, COL_DETECTOR_ID] = ids
    table[:, COL_GONIOMETER_INDEX] = run_index
    table[:, COL_Q] = q_sample

    lam_lo, lam_hi = run.wavelength_band
    band = (2.0 * np.pi / lam_hi, 2.0 * np.pi / lam_lo)
    return MDEventWorkspace(
        events=EventTable(table),
        run_number=run.run_number,
        goniometer=run.goniometer,
        proton_charge=run.proton_charge,
        momentum_band=band,
        ub_matrix=run.ub_matrix,
    )


def save_md(
    path: Union[str, os.PathLike],
    ws: MDEventWorkspace,
    *,
    compression: Optional[str] = None,
    chunk_events: Optional[int] = None,
    codec: str = "zlib",
) -> None:
    """SaveMD: persist the workspace for the proxies to load.

    Two layouts:

    * legacy (default): the event table is stored transposed (8 x n,
      column-major relative to the kernel layout) to reproduce the
      paper's measured load-time transpose; ``compression="zlib"``
      deflates the whole payload in one blob.
    * chunked (``chunk_events=N``): the table is stored **row-major**
      ``(n, 8)`` as independently encoded, CRC-checked chunks of ``N``
      events each (``codec`` is one of
      :data:`repro.nexus.h5lite.CHUNK_CODECS`), which is what lets
      :func:`load_md` hand the reduction a bounded-memory
      :class:`~repro.nexus.tiles.LazyEventTable` instead of
      materializing the run (the paper's raw datasets are 8.5-206 GB).
    """
    if chunk_events is not None and compression is not None:
        raise ValidationError(
            "chunk_events and whole-payload compression are exclusive"
        )
    with File(path, "w") as f:
        grp = f.create_group("MDEventWorkspace")
        grp.attrs["NX_class"] = "NXentry"
        if chunk_events is not None:
            table = (
                ws.events.data
                if isinstance(ws.events, EventTable)
                else np.asarray(ws.events)
            )
            grp.create_dataset(
                "event_table",
                data=table,
                chunk_rows=int(chunk_events),
                codec=codec,
            )
        else:
            grp.create_dataset(
                "event_data",
                data=np.ascontiguousarray(ws.events.data.T),
                compression=compression,
            )
        grp.create_dataset("run_number", data=np.array(ws.run_number, dtype=np.int64))
        grp.create_dataset("goniometer", data=ws.goniometer)
        grp.create_dataset(
            "proton_charge", data=np.array(ws.proton_charge, dtype=np.float64)
        )
        grp.create_dataset(
            "momentum_band", data=np.asarray(ws.momentum_band, dtype=np.float64)
        )
        if ws.ub_matrix is not None:
            grp.create_dataset("ub_matrix", data=ws.ub_matrix)


def load_md(
    path: Union[str, os.PathLike],
    *,
    memory_budget: Optional[int] = None,
) -> MDEventWorkspace:
    """LoadMD / UpdateEvents: read the 8-column table.

    Legacy files store the table transposed; it is read whole and
    transposed into the row-major kernel layout (the paper's measured
    transpose).  Chunked files (``save_md(chunk_events=...)``) store it
    row-major: with ``memory_budget`` (bytes) the returned workspace
    carries a :class:`~repro.nexus.tiles.LazyEventTable` — metadata is
    read now, event chunks are decoded on demand under the budget's LRU
    tile cache and the table is **never** materialized; without a
    budget the chunked table is materialized eagerly (no transpose
    needed).
    """
    from repro.nexus.tiles import LazyEventTable

    _faults.fault_point("nexus.read_events", path=os.fspath(path))
    with File(path, "r") as f:
        grp = f["MDEventWorkspace"]
        if "event_table" in grp:
            if memory_budget is not None:
                events: "EventTable | LazyEventTable" = LazyEventTable(
                    path, memory_budget=memory_budget
                )
            else:
                events = EventTable(grp.read("event_table"))
        else:
            raw = grp.read("event_data")
            if raw.ndim != 2 or raw.shape[0] != N_EVENT_COLUMNS:
                raise ValidationError(
                    f"{os.fspath(path)!r}: event_data must be "
                    f"({N_EVENT_COLUMNS}, n), got {raw.shape}"
                )
            events = EventTable(np.ascontiguousarray(raw.T))  # measured transpose
        band = grp.read("momentum_band")
        ub = grp.read("ub_matrix") if "ub_matrix" in grp else None
        return MDEventWorkspace(
            events=events,
            run_number=int(grp.read("run_number")[()]),
            goniometer=grp.read("goniometer"),
            proton_charge=float(grp.read("proton_charge")[()]),
            momentum_band=(float(band[0]), float(band[1])),
            ub_matrix=ub,
        )
