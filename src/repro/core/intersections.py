"""Trajectory / grid-plane intersection geometry.

For one detector pixel and one symmetry operation, the elastic
trajectory through reciprocal space is the straight line

    c(k) = k * D,    D = T_op (z_hat - d_hat),    k in [k_min, k_max],

in grid coordinates (``T_op`` from
:meth:`repro.core.grid.HKLGrid.transforms_for`).  MDNorm needs, per
trajectory: the sub-interval of ``k`` inside the grid box, and every
crossing of a grid plane inside that interval — the "calculate
intersections" loops of the paper's Listing 1.

Everything here exists in two forms:

* scalar helpers consumed by the element kernels (one trajectory at a
  time, writing into a caller-preallocated buffer — no allocation in
  the kernel, like MiniVATES);
* batch helpers consumed by the device kernel (all ``n_ops x n_det``
  trajectories at once), including the **pre-pass** that bounds the
  intersection count so the padded buffer can be pre-allocated — the
  extra kernel the paper describes MiniVATES adding because JACC's
  ``parallel_reduce`` lacks a MAX operator.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.combsort import comb_sort_rows
from repro.core.grid import HKLGrid
from repro.util import trace as _trace

#: trajectory directions with |D_i| below this are treated as parallel
#: to the dimension's planes
PARALLEL_EPS = 1.0e-12


def trajectory_directions(
    transforms: np.ndarray, det_directions: np.ndarray
) -> np.ndarray:
    """Grid-space direction of every (op, detector) trajectory.

    Parameters
    ----------
    transforms:
        ``(n_ops, 3, 3)`` Q_lab -> grid-coordinate matrices.
    det_directions:
        ``(n_det, 3)`` unit vectors sample -> pixel.

    Returns
    -------
    ``(n_ops, n_det, 3)``: ``D = T_op (z_hat - d_hat)``.
    """
    dq = -np.asarray(det_directions, dtype=np.float64)
    dq = dq.copy()
    dq[:, 2] += 1.0
    return np.einsum("oij,dj->odi", np.asarray(transforms, dtype=np.float64), dq)


def k_window(
    directions: np.ndarray, grid: HKLGrid, k_min: float, k_max: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-trajectory momentum interval inside the grid box.

    ``directions`` is ``(..., 3)``; returns ``(k_lo, k_hi)`` with
    ``k_lo >= k_hi`` marking trajectories that never enter the box.
    """
    d = np.asarray(directions, dtype=np.float64)
    lo = np.full(d.shape[:-1], float(k_min))
    hi = np.full(d.shape[:-1], float(k_max))
    for axis in range(3):
        di = d[..., axis]
        box_lo, box_hi = grid.minimum[axis], grid.maximum[axis]
        pos = di > PARALLEL_EPS
        neg = di < -PARALLEL_EPS
        para = ~(pos | neg)
        with np.errstate(divide="ignore", invalid="ignore"):
            a = np.where(pos, box_lo / di, np.where(neg, box_hi / di, -np.inf))
            b = np.where(pos, box_hi / di, np.where(neg, box_lo / di, np.inf))
        # parallel trajectories: inside iff the box straddles 0 in this dim
        outside_para = para & ~((box_lo <= 0.0) & (0.0 <= box_hi))
        lo = np.maximum(lo, a)
        hi = np.minimum(hi, b)
        hi = np.where(outside_para, lo - 1.0, hi)  # mark empty
    return lo, hi


def detector_activity(k_lo: np.ndarray, k_hi: np.ndarray) -> np.ndarray:
    """Per-detector MDNorm work estimate from the momentum windows.

    Counts, for every detector column of the ``(n_ops, n_det)`` window
    arrays, how many of its trajectories actually enter the grid box
    (``k_hi > k_lo``).  Detectors whose every trajectory misses the box
    still cost one dispatch per op, so the count is floored at 1 —
    these are the weights the balanced shard planner
    (:func:`repro.mpi.decomposition.weighted_shard_ranges`) cuts the
    detector axis with.  Shard *boundaries* never affect the result
    (the replay is serial-order regardless), only the balance.
    """
    lo = np.asarray(k_lo, dtype=np.float64)
    hi = np.asarray(k_hi, dtype=np.float64)
    if lo.ndim == 1:  # single-op window
        lo = lo[None, :]
        hi = hi[None, :]
    live = (hi > lo).sum(axis=0).astype(np.float64)
    return np.maximum(live, 1.0)


# ---------------------------------------------------------------------------
# scalar (element-kernel) helpers
# ---------------------------------------------------------------------------

def count_crossings_scalar(
    direction: np.ndarray, grid: HKLGrid, k_lo: float, k_hi: float
) -> int:
    """Number of grid-plane crossings strictly inside (k_lo, k_hi)."""
    if not k_hi > k_lo:
        return 0
    total = 0
    for axis in range(3):
        di = float(direction[axis])
        if abs(di) <= PARALLEL_EPS:
            continue
        edges = grid.edges[axis]
        a = k_lo * di
        b = k_hi * di
        if a > b:
            a, b = b, a
        s = int(np.searchsorted(edges, a, side="right"))
        t = int(np.searchsorted(edges, b, side="left"))
        if t > s:
            total += t - s
    return total


def fill_crossings_scalar(
    buffer: np.ndarray,
    direction: np.ndarray,
    grid: HKLGrid,
    k_lo: float,
    k_hi: float,
) -> int:
    """Write [k_lo, crossings..., k_hi] into ``buffer``; return count.

    The buffer is caller-preallocated (no allocation in the kernel);
    entries are *unsorted* — the kernel comb-sorts them in place.
    """
    if not k_hi > k_lo:
        return 0
    n = 0
    buffer[n] = k_lo
    n += 1
    for axis in range(3):
        di = float(direction[axis])
        if abs(di) <= PARALLEL_EPS:
            continue
        edges = grid.edges[axis]
        a = k_lo * di
        b = k_hi * di
        if a > b:
            a, b = b, a
        s = int(np.searchsorted(edges, a, side="right"))
        t = int(np.searchsorted(edges, b, side="left"))
        for e in range(s, t):
            buffer[n] = edges[e] / di
            n += 1
    buffer[n] = k_hi
    n += 1
    return n


# ---------------------------------------------------------------------------
# batch (device-kernel) helpers
# ---------------------------------------------------------------------------

def count_crossings_batch(
    directions: np.ndarray, grid: HKLGrid, k_lo: np.ndarray, k_hi: np.ndarray
) -> np.ndarray:
    """Per-trajectory crossing counts — the MiniVATES pre-pass kernel.

    Vectorized over flattened trajectories; never materializes the
    crossings themselves, so it is cheap enough to run once per file
    before allocating the padded intersection buffer.
    """
    d = np.asarray(directions, dtype=np.float64).reshape(-1, 3)
    lo = np.asarray(k_lo, dtype=np.float64).reshape(-1)
    hi = np.asarray(k_hi, dtype=np.float64).reshape(-1)
    counts = np.zeros(d.shape[0], dtype=np.int64)
    valid = hi > lo
    for axis in range(3):
        di = d[:, axis]
        edges = grid.edges[axis]
        nonpar = np.abs(di) > PARALLEL_EPS
        a = np.minimum(lo * di, hi * di)
        b = np.maximum(lo * di, hi * di)
        s = np.searchsorted(edges, a, side="right")
        t = np.searchsorted(edges, b, side="left")
        counts += np.where(valid & nonpar, np.maximum(t - s, 0), 0)
    return counts


def fill_crossings_batch(
    directions: np.ndarray,
    grid: HKLGrid,
    k_lo: np.ndarray,
    k_hi: np.ndarray,
    width: int,
    *,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Padded per-trajectory crossing buffer, ready for the in-kernel sort.

    Returns ``(n_rows, width)`` where row r holds ``k_lo[r]`` in column
    0, its crossings (unsorted) next, and ``k_hi[r]`` everywhere after —
    trailing duplicates form zero-length segments that deposit nothing.
    Rows with an empty window are entirely ``k_lo`` (also harmless).
    ``width`` must be at least ``max crossings + 2`` (use the pre-pass).

    ``out`` may supply a caller-owned ``(n_rows, width)`` C-contiguous
    float64 buffer to fill in place (the fused back end reuses one
    across launches for allocation-free execution); the written values
    are bit-identical to the allocating form.
    """
    d = np.asarray(directions, dtype=np.float64).reshape(-1, 3)
    lo = np.asarray(k_lo, dtype=np.float64).reshape(-1)
    hi = np.asarray(k_hi, dtype=np.float64).reshape(-1)
    n_rows = d.shape[0]
    valid = hi > lo
    safe_hi = np.where(valid, hi, lo)

    if out is None:
        padded = np.broadcast_to(safe_hi[:, None], (n_rows, width)).copy()
    else:
        if (out.shape != (n_rows, width) or out.dtype != np.float64
                or not out.flags.c_contiguous):
            raise ValueError(
                f"out buffer must be C-contiguous float64 {(n_rows, width)}, "
                f"got {out.dtype} {out.shape}"
            )
        padded = out
        padded[...] = safe_hi[:, None]
    padded[:, 0] = lo
    cursor = np.ones(n_rows, dtype=np.int64)

    flat = padded.reshape(-1)
    for axis in range(3):
        di = d[:, axis]
        edges = grid.edges[axis]
        nonpar = np.abs(di) > PARALLEL_EPS
        a = np.minimum(lo * di, hi * di)
        b = np.maximum(lo * di, hi * di)
        s = np.searchsorted(edges, a, side="right")
        t = np.searchsorted(edges, b, side="left")
        cnt = np.where(valid & nonpar, np.maximum(t - s, 0), 0)
        total = int(cnt.sum())
        if total == 0:
            continue
        if int((cursor + cnt).max()) >= width:
            raise ValueError(
                f"intersection buffer width {width} too small "
                f"(needed {int((cursor + cnt).max()) + 1}); run the pre-pass"
            )
        rows_rep = np.repeat(np.arange(n_rows), cnt)
        starts = np.concatenate([[0], np.cumsum(cnt)[:-1]])
        within = np.arange(total) - np.repeat(starts, cnt)
        edge_idx = np.repeat(s, cnt) + within
        vals = edges[edge_idx] / di[rows_rep]
        pos = rows_rep * width + np.repeat(cursor, cnt) + within
        flat[pos] = vals
        cursor += cnt

    return padded


def sorted_crossings_batch(
    directions: np.ndarray,
    grid: HKLGrid,
    k_lo: np.ndarray,
    k_hi: np.ndarray,
    width: int,
    *,
    sort_impl: str = "comb",
) -> np.ndarray:
    """Fill + row-sort in one step: the packed per-trajectory buffer.

    This is the array the geometry cache's deposit plan is derived
    from.  Rows are fully independent (fill and sort never look across
    rows), so sorting the whole live set at once, a tile of it, or a
    cached copy of it yields bit-identical values — the property that
    lets the cache layer slice a stored buffer wherever a kernel would
    have recomputed a tile.
    """
    tracer = _trace.active_tracer()
    if not tracer.enabled:
        padded = fill_crossings_batch(directions, grid, k_lo, k_hi, width)
        if sort_impl == "comb":
            comb_sort_rows(padded)
        else:
            padded.sort(axis=1)
        return padded

    n_rows = int(np.asarray(directions).reshape(-1, 3).shape[0])
    attrs = {"kind": "phase", "rows": n_rows, "width": int(width),
             "sort_impl": sort_impl}
    if tracer.profile:
        from repro.util.perf import intersections_work

        attrs["perf"] = intersections_work(n_rows, int(width))
    with tracer.span("intersections.fill_sort", **attrs):
        padded = fill_crossings_batch(directions, grid, k_lo, k_hi, width)
        if sort_impl == "comb":
            comb_sort_rows(padded)
        else:
            padded.sort(axis=1)
    return padded
