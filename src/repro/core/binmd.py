"""BinMD: histogram events onto the grid under every symmetry operation.

The paper's Listing 2 (C++) / Listing 3 (Julia): a 2-D index space of
``(symmetry op, event)``; each lane applies the op's transform to the
event's Q_sample coordinates and atomically pushes the event weight
into the 3-D histogram.

Both kernel forms are provided through one :class:`~repro.jacc.Kernel`:

* ``element`` — the per-(op, event) body run by the CPU back ends,
  a line-for-line analogue of Listing 3's lambda;
* ``batch`` — the device realization: per op, one fused
  transform + scatter-add over all events (tiled to bound memory).

Mantid's production BinMD walks an adaptive MDBox hierarchy; the paper
deliberately captures "the simple computational complexities" with a
single-box algorithm, and so do we (the hierarchy lives in
:mod:`repro.baseline.mdbox` as the baseline's cost model).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core import geom_cache as _gc
from repro.core.geom_cache import BinMDEntry, GeomCache
from repro.core.hist3 import Hist3
from repro.jacc import parallel_for
from repro.jacc.kernels import Captures, Kernel
from repro.nexus.events import COL_ERROR_SQ, COL_QX, COL_QY, COL_QZ, COL_SIGNAL, EventTable
from repro.util import trace as _trace
from repro.util.validation import require

#: events per device tile; bounds the (tile, 3) coordinate scratch
DEFAULT_TILE = 1 << 18


def _bin_events_element(ctx: Captures, n: int, i: int) -> None:
    """Listing 3's body: transform one event by one op, atomic push."""
    op = ctx.transforms[n]
    ev = ctx.events
    qx = ev[i, COL_QX]
    qy = ev[i, COL_QY]
    qz = ev[i, COL_QZ]
    c0 = op[0, 0] * qx + op[0, 1] * qy + op[0, 2] * qz
    c1 = op[1, 0] * qx + op[1, 1] * qy + op[1, 2] * qz
    c2 = op[2, 0] * qx + op[2, 1] * qy + op[2, 2] * qz
    ctx.hist.push(c0, c1, c2, ev[i, COL_SIGNAL], ev[i, COL_ERROR_SQ])


def _bin_events_batch(ctx: Captures, dims: tuple[int, int]) -> None:
    """Device realization: per op, fused transform + scatter over events.

    With a warm :class:`BinMDEntry` the transform and bin search are
    skipped: the cached flat indices / inside masks are sliced per tile
    and scatter-added exactly as :meth:`Hist3.push_many` would have —
    the index arrays are event-independent of the tiling, so the warm
    scatter sequence is bit-identical to the cold one.
    """
    n_ops, n_events = dims
    ev = ctx.events
    q = ev[:, COL_QX : COL_QZ + 1]
    weights = ev[:, COL_SIGNAL]
    err_sq = ev[:, COL_ERROR_SQ]
    tile = ctx.tile
    hist: Hist3 = ctx.hist
    entry: Optional[BinMDEntry] = getattr(ctx, "binmd_entry", None)

    if entry is not None:
        flat_signal = hist.flat_signal
        flat_err = hist.flat_error_sq
        for n in range(n_ops):
            op_flat = entry.flat_idx[n]
            op_inside = entry.inside[n]
            for start in range(0, n_events, tile):
                stop = min(start + tile, n_events)
                inside = op_inside[start:stop]
                idx = op_flat[start:stop][inside]
                Hist3._scatter(
                    flat_signal, idx, weights[start:stop][inside], ctx.scatter_impl
                )
                if flat_err is not None:
                    Hist3._scatter(
                        flat_err, idx, err_sq[start:stop][inside], ctx.scatter_impl
                    )
        return

    collect: Optional[BinMDEntry] = getattr(ctx, "binmd_collect", None)
    for n in range(n_ops):
        op_t = ctx.transforms[n].T
        for start in range(0, n_events, tile):
            stop = min(start + tile, n_events)
            coords = q[start:stop] @ op_t
            if collect is not None:
                flat, inside = hist.grid.bin_index(coords)
                collect.flat_idx[n, start:stop] = flat
                collect.inside[n, start:stop] = inside
            hist.push_many(
                coords,
                weights[start:stop],
                err_sq[start:stop],
                scatter_impl=ctx.scatter_impl,
            )
    if collect is not None:
        collect.flat_idx = _gc.freeze(collect.flat_idx)
        collect.inside = _gc.freeze(collect.inside)
        ctx.binmd_cache.put(collect)


BIN_EVENTS_KERNEL = Kernel(
    name="bin_events",
    element=_bin_events_element,
    batch=_bin_events_batch,
)


def bin_events(
    hist: Hist3,
    events: EventTable | np.ndarray,
    transforms: np.ndarray,
    *,
    backend: Optional[str] = None,
    tile: int = DEFAULT_TILE,
    scatter_impl: str = "atomic",
    cache: Optional[GeomCache] = None,
    cache_tag: Optional[str] = None,
) -> Hist3:
    """Accumulate ``events`` into ``hist`` under every transform.

    Parameters
    ----------
    hist:
        Target histogram (accumulated in place, also returned).
    events:
        The 8-column MDEvent table.
    transforms:
        ``(n_ops, 3, 3)`` Q_sample -> grid-coordinate matrices (one per
        symmetry operation; see ``HKLGrid.transforms_for``).
    backend:
        jacc back end name; None = process default.
    scatter_impl:
        "atomic" (per-lane atomicAdd analogue) or "buffered"
        (bincount-based) — see :meth:`Hist3.push_many`.
    cache:
        Geometry cache holding/receiving the per-(op, event) flat bin
        indices (:class:`~repro.core.geom_cache.BinMDEntry`).  None uses
        the process default; pass
        :data:`~repro.core.geom_cache.DISABLED` to opt out.  The warm
        path replays the exact cold scatter sequence, so cached and
        uncached histograms are bit-identical.
    cache_tag:
        Optional lifecycle tag recorded on inserted entries (see
        :meth:`GeomCache.invalidate`).
    """
    data = events.data if isinstance(events, EventTable) else np.asarray(events)
    transforms = np.asarray(transforms, dtype=np.float64)
    require(transforms.ndim == 3 and transforms.shape[1:] == (3, 3),
            "transforms must be (n_ops, 3, 3)")
    require(tile > 0, "tile must be positive")

    cache = _gc.resolve(cache)
    tracer = _trace.active_tracer()
    with tracer.span(
        "binmd",
        kind="op",
        backend=backend or "default",
        n_ops=int(transforms.shape[0]),
        n_events=int(data.shape[0]),
    ) as op_span:
        entry: Optional[BinMDEntry] = None
        collect: Optional[BinMDEntry] = None
        if cache.enabled:
            n_ops, n_events = transforms.shape[0], data.shape[0]
            key = GeomCache.binmd_key(hist.grid, transforms, data)
            entry = cache.get(key)
            if entry is None and cache.accepts(n_ops * n_events * 9):
                # int64 flat index + bool inside mask per (op, event) lane
                collect = BinMDEntry(
                    key=key,
                    tag=cache_tag,
                    flat_idx=np.empty((n_ops, n_events), dtype=np.int64),
                    inside=np.empty((n_ops, n_events), dtype=bool),
                )
        op_span.set(cache_hit=entry is not None)
        if tracer.profile:
            from repro.util.perf import binmd_work

            op_span.set(perf=binmd_work(
                int(transforms.shape[0]), int(data.shape[0]),
                track_errors=hist.flat_error_sq is not None,
                cache_hit=entry is not None,
            ))

        captures = Captures(
            hist=hist,
            events=data,
            transforms=transforms,
            tile=int(tile),
            scatter_impl=scatter_impl,
            binmd_entry=entry,
            binmd_collect=collect,
            binmd_cache=cache,
        )
        parallel_for(
            (transforms.shape[0], data.shape[0]),
            BIN_EVENTS_KERNEL,
            captures,
            backend=backend,
        )
        tracer.count("binmd.events",
                      int(transforms.shape[0]) * int(data.shape[0]))
    return hist
