"""Reduced-data output files with provenance.

The paper's artifact description: "The HDF5 output file from Garnet is
the reduced and normalized data scientists would use for further
analysis.  It can be loaded and viewed in Mantid."  This module writes
that artifact for this stack: the cross-section (plus the BinMD and
MDNorm components and propagated errors) together with the grid
definition and a provenance record (package version, implementation,
stage timings, input identity), so a reduced file is self-describing
and re-loadable without the original inputs.

Schema::

    /reduced                  NX_class="NXdata"
      cross_section           (b0, b1, b2) float64 (NaN = undefined)
      cross_section_error_sq  optional
      binmd                   (b0, b1, b2) float64
      mdnorm                  (b0, b1, b2) float64
      /grid                   basis, minimum, maximum, bins, names
      /provenance             package_version, backend, n_runs,
                              stage seconds, free-form notes
"""

from __future__ import annotations

import os
from typing import Optional, Union

import numpy as np

from repro.core.cross_section import CrossSectionResult
from repro.core.grid import HKLGrid
from repro.core.hist3 import Hist3
from repro.nexus.h5lite import File, H5LiteError
from repro.util.timers import StageTimings
from repro.util.validation import ValidationError


def save_reduced(
    path: Union[str, os.PathLike],
    result: CrossSectionResult,
    *,
    notes: str = "",
    compression: Optional[str] = "zlib",
) -> None:
    """Write a root-rank reduction result to a reduced-data file."""
    if result.cross_section is None:
        raise ValidationError(
            "only the root rank holds a cross-section; nothing to save"
        )
    with File(path, "w") as f:
        grp = f.create_group("reduced")
        grp.attrs["NX_class"] = "NXdata"
        grp.create_dataset(
            "cross_section", data=result.cross_section.signal,
            compression=compression,
        )
        if result.cross_section.error_sq is not None:
            grp.create_dataset(
                "cross_section_error_sq", data=result.cross_section.error_sq,
                compression=compression,
            )
        grp.create_dataset("binmd", data=result.binmd.signal,
                           compression=compression)
        grp.create_dataset("mdnorm", data=result.mdnorm.signal,
                           compression=compression)

        g = grp.create_group("grid")
        grid = result.cross_section.grid
        g.create_dataset("basis", data=grid.basis)
        g.create_dataset("minimum", data=np.array(grid.minimum))
        g.create_dataset("maximum", data=np.array(grid.maximum))
        g.create_dataset("bins", data=np.array(grid.bins, dtype=np.int64))
        g.attrs["names"] = "|".join(grid.names)

        p = grp.create_group("provenance")
        from repro import __version__

        p.attrs["package_version"] = __version__
        p.attrs["backend"] = result.backend
        p.attrs["n_runs"] = result.n_runs
        if notes:
            p.attrs["notes"] = notes
        for stage in ("UpdateEvents", "MDNorm", "BinMD", "Total"):
            p.attrs[f"seconds_{stage}"] = result.timings.seconds(stage)


def load_reduced(path: Union[str, os.PathLike]) -> CrossSectionResult:
    """Load a reduced-data file back into a :class:`CrossSectionResult`.

    Timings are restored as totals (per-stage call counts are not
    persisted); provenance attributes land in ``extras``.
    """
    with File(path, "r") as f:
        try:
            grp = f["reduced"]
        except KeyError as exc:
            raise H5LiteError(f"{os.fspath(path)!r} has no /reduced group") from exc
        g = grp["grid"]
        names = str(g.attrs.get("names", "d0|d1|d2")).split("|")
        grid = HKLGrid(
            basis=grp.read("grid/basis"),
            minimum=tuple(grp.read("grid/minimum")),
            maximum=tuple(grp.read("grid/maximum")),
            bins=tuple(int(b) for b in grp.read("grid/bins")),
            names=tuple(names),
        )
        err = None
        if "cross_section_error_sq" in grp:
            err = grp.read("cross_section_error_sq")
        cross = Hist3(grid, signal=grp.read("cross_section"), error_sq=err)
        binmd = Hist3(grid, signal=grp.read("binmd"))
        mdnorm_h = Hist3(grid, signal=grp.read("mdnorm"))

        prov = grp["provenance"]
        timings = StageTimings(label="loaded")
        extras = {}
        for key, value in prov.attrs.items():
            if key.startswith("seconds_"):
                stage = key[len("seconds_"):]
                t = timings.timer(stage)
                t.elapsed = float(value)
                t.ncalls = 1
            else:
                extras[key] = value
        return CrossSectionResult(
            cross_section=cross,
            binmd=binmd,
            mdnorm=mdnorm_h,
            timings=timings,
            n_runs=int(prov.attrs.get("n_runs", 0)),
            backend=str(prov.attrs.get("backend", "unknown")),
            extras=extras,
        )
