"""Hist3: the thread-safe 3-D histogram (MDHistoWorkspace analogue).

MiniVATES.jl "uses its own implementation of a 3D histogram based on
Mantid's MDHistoWorkspace.  The bin values are thread-safe and
incremented with atomic operations."  This is that object: a signal
array (plus an optional squared-error companion) over an
:class:`~repro.core.grid.HKLGrid`, exposing

* :meth:`push` / :meth:`push_many` — atomic accumulation (scalar and
  scatter forms, see :mod:`repro.jacc.atomic`);
* arithmetic used by Algorithm 1 (``+=`` across runs, guarded division
  for the final cross-section);
* 2-D slicing used to render the paper's Fig. 4 panels.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.grid import HKLGrid
from repro.jacc.atomic import atomic_add, atomic_add_scalar
from repro.util.validation import ValidationError, require


class Hist3:
    """A 3-D histogram with atomic accumulation over an HKL grid."""

    __slots__ = ("grid", "signal", "error_sq")

    def __init__(
        self,
        grid: HKLGrid,
        *,
        track_errors: bool = False,
        signal: Optional[np.ndarray] = None,
        error_sq: Optional[np.ndarray] = None,
    ) -> None:
        self.grid = grid
        shape = tuple(grid.bins)
        if signal is None:
            self.signal = np.zeros(shape, dtype=np.float64)
        else:
            signal = np.ascontiguousarray(signal, dtype=np.float64)
            require(signal.shape == shape, f"signal shape {signal.shape} != {shape}")
            self.signal = signal
        if error_sq is not None:
            error_sq = np.ascontiguousarray(error_sq, dtype=np.float64)
            require(error_sq.shape == shape, "error_sq shape mismatch")
            self.error_sq = error_sq
        elif track_errors:
            self.error_sq = np.zeros(shape, dtype=np.float64)
        else:
            self.error_sq = None

    # -- accumulation ------------------------------------------------------
    @property
    def flat_signal(self) -> np.ndarray:
        """The signal as a flat C-ordered view (kernel target)."""
        return self.signal.reshape(-1)

    @property
    def flat_error_sq(self) -> Optional[np.ndarray]:
        return None if self.error_sq is None else self.error_sq.reshape(-1)

    def push(self, c0: float, c1: float, c2: float, weight: float, err_sq: float = 0.0) -> bool:
        """Atomically add one weighted point at grid coordinates.

        Returns False (and adds nothing) if the point lies outside the
        grid — the scalar-kernel form of MiniVATES' ``atomic_push!``.
        """
        grid = self.grid
        mn, w, nb = grid.minimum, grid.widths, grid.bins
        i0 = int((c0 - mn[0]) // w[0])
        i1 = int((c1 - mn[1]) // w[1])
        i2 = int((c2 - mn[2]) // w[2])
        if not (0 <= i0 < nb[0] and 0 <= i1 < nb[1] and 0 <= i2 < nb[2]):
            return False
        flat = (i0 * nb[1] + i1) * nb[2] + i2
        atomic_add_scalar(self.flat_signal, flat, weight)
        if self.error_sq is not None:
            atomic_add_scalar(self.flat_error_sq, flat, err_sq)
        return True

    def push_many(
        self,
        coords: np.ndarray,
        weights: np.ndarray,
        err_sq: Optional[np.ndarray] = None,
        *,
        scatter_impl: str = "atomic",
    ) -> int:
        """Atomic scatter-add of many points; returns how many landed
        inside the grid (the batch-kernel form).

        ``scatter_impl`` selects the accumulation mechanism, both exact
        under duplicate indices:

        * ``"atomic"`` — element-wise unbuffered adds (``np.add.at``),
          the direct analogue of per-lane ``atomicAdd`` (slow when many
          lanes collide — the MI100-like behaviour the paper observed);
        * ``"buffered"`` — a ``bincount`` pass that resolves collisions
          in hardware-speed buffers before one dense add (the efficient
          atomics of the A100-like device).
        """
        flat, inside = self.grid.bin_index(coords)
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != inside.shape:
            weights = np.broadcast_to(weights, inside.shape)
        self._scatter(self.flat_signal, flat[inside], weights[inside], scatter_impl)
        if self.error_sq is not None and err_sq is not None:
            err_sq = np.broadcast_to(np.asarray(err_sq, dtype=np.float64), inside.shape)
            self._scatter(self.flat_error_sq, flat[inside], err_sq[inside], scatter_impl)
        return int(inside.sum())

    @staticmethod
    def _scatter(target: np.ndarray, idx: np.ndarray, vals: np.ndarray, impl: str) -> None:
        if impl == "atomic":
            atomic_add(target, idx, vals)
        elif impl == "buffered":
            target += np.bincount(idx.ravel(), weights=vals.ravel(), minlength=target.size)
        else:
            raise ValidationError(f"unknown scatter_impl {impl!r}")

    # -- algebra -------------------------------------------------------------
    def add(self, other: "Hist3") -> "Hist3":
        """In-place accumulation of another histogram on the same grid."""
        if other.grid.bins != self.grid.bins:
            raise ValidationError("histogram grids differ")
        self.signal += other.signal
        if self.error_sq is not None and other.error_sq is not None:
            self.error_sq += other.error_sq
        return self

    def divide(self, denominator: "Hist3", *, fill: float = np.nan) -> "Hist3":
        """Element-wise ratio, ``fill`` where the denominator is 0.

        This is Algorithm 1's final step: cross-section =
        BinMD histogram / MDNorm histogram.  When both operands track
        squared errors, the standard relative-variance propagation
        ``var(a/b) = (a/b)^2 (var_a/a^2 + var_b/b^2)`` is applied (with
        zero-signal bins contributing only the defined terms).
        """
        if denominator.grid.bins != self.grid.bins:
            raise ValidationError("histogram grids differ")
        ok = denominator.signal != 0
        out = np.full_like(self.signal, fill)
        np.divide(self.signal, denominator.signal, out=out, where=ok)

        err_out = None
        if self.error_sq is not None and denominator.error_sq is not None:
            err_out = np.zeros_like(self.signal)
            with np.errstate(divide="ignore", invalid="ignore"):
                rel_num = np.where(
                    self.signal != 0, self.error_sq / self.signal**2, 0.0
                )
                rel_den = np.where(
                    ok, denominator.error_sq / denominator.signal**2, 0.0
                )
                ratio_sq = np.where(ok, out, 0.0) ** 2
            err_out = np.where(ok, ratio_sq * (rel_num + rel_den), 0.0)
        return Hist3(self.grid, signal=out, error_sq=err_out)

    def copy(self) -> "Hist3":
        return Hist3(
            self.grid,
            signal=self.signal.copy(),
            error_sq=None if self.error_sq is None else self.error_sq.copy(),
        )

    def reset(self) -> None:
        self.signal.fill(0.0)
        if self.error_sq is not None:
            self.error_sq.fill(0.0)

    # -- inspection -------------------------------------------------------------
    def total(self) -> float:
        """Sum of all bins, ignoring NaN fill values from division."""
        return float(np.nansum(self.signal))

    def nonzero_fraction(self) -> float:
        """Fraction of bins with any signal — the coverage statistic the
        Fig. 4 symmetry panels are about."""
        return float(np.count_nonzero(self.signal) / self.signal.size)

    def slice2d(self, axis: int = 2, index: int = 0) -> np.ndarray:
        """A 2-D slice for plotting (Fig. 4 uses the L = 0 plane)."""
        require(0 <= axis < 3, "axis must be 0, 1 or 2")
        return np.take(self.signal, index, axis=axis)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Hist3(bins={self.grid.bins}, total={self.total():.6g}, "
            f"coverage={self.nonzero_fraction():.1%})"
        )
