"""MDNorm: trajectory normalization over (symmetry op x detector).

The paper's Listing 1: a 2-D index space of ``(symmetry op, detector)``.
Each lane

1. forms its trajectory direction ``D = T_op (z_hat - d_hat)``,
2. clips the momentum window to the grid box,
3. collects every grid-plane crossing in that window
   ("calculate intersections ~(600x600x1)"),
4. **sorts** them (comb sort — in-kernel, allocation-free),
5. **linearly interpolates** the cumulative incident flux over each
   sub-segment, and
6. **appends** ``solid_angle x flux`` into the normalization histogram.

The pre-pass :func:`max_intersections` bounds step 3's output so the
device buffer can be pre-allocated.  JACC's device ``parallel_reduce``
supports only ``+`` (the limitation the paper documents), so on the
device back end the MAX is computed with the same workaround MiniVATES
uses: a counting kernel, a device->host copy, and a host-side max; the
CPU back ends use the elegant ``parallel_reduce(op="max")`` directly.
"""

from __future__ import annotations

import threading
from typing import Optional

import numpy as np

from repro.core import geom_cache as _gc
from repro.core.combsort import comb_sort
from repro.core.geom_cache import DepositPlan, GeomCache, GeomEntry
from repro.core.grid import HKLGrid
from repro.core.hist3 import Hist3
from repro.core.intersections import (
    count_crossings_batch,
    count_crossings_scalar,
    fill_crossings_scalar,
    k_window,
    sorted_crossings_batch,
    trajectory_directions,
)
from repro.jacc import get_backend, parallel_for
from repro.jacc.api import default_backend
from repro.jacc.kernels import Captures, Kernel
from repro.nexus.corrections import FluxSpectrum
from repro.util import trace as _trace
from repro.util.validation import require

#: trajectories per device tile in the main MDNorm kernel
DEFAULT_TILE_ROWS = 8192


class _Scratch:
    """Per-thread preallocated intersection buffers (no allocation in
    the kernel body, as in MiniVATES).

    Cross-call reuse safety: a ``_Scratch`` must never be stored in the
    geometry cache or any other structure that outlives one ``mdnorm``
    call — its buffers are *uninitialized working memory*, not results.
    ``mdnorm`` constructs a fresh instance per call, and ``get``
    re-allocates whenever a thread's existing buffer is narrower than
    the requested width, so even an (incorrectly) retained instance can
    never hand a kernel a buffer too small for the current grid — the
    latent overflow this guarded against is exercised by
    ``tests/core/test_geom_cache.py::TestScratchSafety``.
    """

    def __init__(self, width: int) -> None:
        self.width = int(width)
        self._local = threading.local()

    def __reduce__(self):
        # ``threading.local`` cannot cross a process boundary; a fresh
        # scratch of the same width is the correct rebuild — the buffers
        # are uninitialized working memory, not state (this is how the
        # multiprocess back end ships mdnorm captures to its workers).
        return (_Scratch, (self.width,))

    def get(self) -> np.ndarray:
        buf = getattr(self._local, "buf", None)
        if buf is None or buf.size < self.width:
            buf = np.empty(self.width, dtype=np.float64)
            self._local.buf = buf
        return buf


def _interp_cumulative(flux_k: np.ndarray, flux_cum: np.ndarray, k: float) -> float:
    """Scalar linear interpolation of the cumulative flux table."""
    if k <= flux_k[0]:
        return float(flux_cum[0])
    if k >= flux_k[-1]:
        return float(flux_cum[-1])
    j = int(np.searchsorted(flux_k, k)) - 1
    t = (k - flux_k[j]) / (flux_k[j + 1] - flux_k[j])
    return float(flux_cum[j] + t * (flux_cum[j + 1] - flux_cum[j]))


# ---------------------------------------------------------------------------
# pre-pass: maximum intersections per trajectory
# ---------------------------------------------------------------------------

def _count_element(ctx: Captures, n: int, d: int) -> float:
    direction = ctx.directions[n, d]
    lo = ctx.k_lo[n, d]
    hi = ctx.k_hi[n, d]
    return float(count_crossings_scalar(direction, ctx.grid, lo, hi))


def _count_batch(ctx: Captures, dims: tuple[int, int]) -> np.ndarray:
    return count_crossings_batch(
        ctx.directions, ctx.grid, ctx.k_lo, ctx.k_hi
    ).astype(np.float64)


COUNT_KERNEL = Kernel(name="mdnorm_count", element=_count_element, batch=_count_batch)


def _count_store_batch(ctx: Captures, dims: tuple[int, int]) -> None:
    ctx.counts[...] = count_crossings_batch(ctx.directions, ctx.grid, ctx.k_lo, ctx.k_hi)


COUNT_STORE_KERNEL = Kernel(
    name="mdnorm_count_store",
    element=lambda ctx, n, d: None,  # device-only helper
    batch=_count_store_batch,
)


def max_intersections(
    grid: HKLGrid,
    transforms: np.ndarray,
    det_directions: np.ndarray,
    momentum_band: tuple[float, float],
    *,
    backend: Optional[str] = None,
    use_extended_reduce: bool = False,
    directions: Optional[np.ndarray] = None,
    k_lo: Optional[np.ndarray] = None,
    k_hi: Optional[np.ndarray] = None,
) -> int:
    """Upper bound on per-trajectory intersections (+2 endpoints).

    On CPU back ends this is one ``parallel_reduce(op="max")``.  The
    device back end cannot reduce with MAX (JACC limitation), so there
    it launches a counting ``parallel_for`` into a device array, copies
    it to the host, and maxes there — the documented MiniVATES
    workaround, with the device->host transfer really happening (and
    counted by the back end's transfer statistics).

    ``use_extended_reduce=True`` opts into
    :func:`repro.jacc.reduction.device_reduce` — the custom-operator
    device reduction the paper lists as hoped-for future work — which
    removes the per-lane device->host copy entirely.

    ``directions`` / ``k_lo`` / ``k_hi`` may be supplied when the
    caller (or the geometry cache) has already computed them; they must
    be exactly ``trajectory_directions(transforms, det_directions)``
    and ``k_window(directions, grid, *momentum_band)``.
    """
    be = get_backend(backend) if backend else default_backend()
    if directions is None:
        directions = trajectory_directions(transforms, det_directions)
    if k_lo is None or k_hi is None:
        k_lo, k_hi = k_window(directions, grid, *momentum_band)
    dims = directions.shape[:2]
    tracer = _trace.active_tracer()
    with tracer.span("mdnorm.prepass", kind="phase", backend=be.name) as sp:
        if tracer.profile:
            from repro.util.perf import prepass_work

            sp.set(perf=prepass_work(dims[0] * dims[1]))
        if be.device_kind == "device" and use_extended_reduce:
            from repro.jacc.reduction import device_reduce

            captures = Captures(directions=directions, grid=grid, k_lo=k_lo, k_hi=k_hi)
            max_count = int(device_reduce(dims, COUNT_KERNEL, captures, op="max",
                                          backend=be.name))
        elif be.device_kind == "device":
            counts_dev = be.to_device(np.zeros(dims[0] * dims[1], dtype=np.int64))
            captures = Captures(
                directions=directions, grid=grid, k_lo=k_lo, k_hi=k_hi, counts=counts_dev
            )
            be.parallel_for(dims, COUNT_STORE_KERNEL, captures)
            counts_host = be.to_host(counts_dev)  # the workaround's D2H copy
            max_count = int(counts_host.max(initial=0))
        else:
            captures = Captures(directions=directions, grid=grid, k_lo=k_lo, k_hi=k_hi)
            max_count = int(be.parallel_reduce(dims, COUNT_KERNEL, captures, op="max"))
        sp.set(max_intersections=max_count + 2)
    tracer.count("mdnorm.prepass_trajectories", dims[0] * dims[1])
    return max_count + 2


# ---------------------------------------------------------------------------
# main MDNorm kernel
# ---------------------------------------------------------------------------

def _mdnorm_element(ctx: Captures, n: int, d: int) -> None:
    """Listing 1's per-(op, detector) body."""
    direction = ctx.directions[n, d]
    lo = ctx.k_lo[n, d]
    hi = ctx.k_hi[n, d]
    if not hi > lo:
        return
    buf = ctx.scratch.get()
    count = ctx.fill(buf, direction, ctx.grid, lo, hi)
    comb_sort(buf, count)
    weight_det = ctx.solid_angles[d] * ctx.charge
    if weight_det == 0.0:
        return
    flux_k, flux_cum = ctx.flux_k, ctx.flux_cum
    d0, d1, d2 = float(direction[0]), float(direction[1]), float(direction[2])
    phi_lo = _interp_cumulative(flux_k, flux_cum, buf[0])
    for j in range(count - 1):
        a = buf[j]
        b = buf[j + 1]
        phi_hi = _interp_cumulative(flux_k, flux_cum, b)
        if b > a:
            mid = 0.5 * (a + b)
            w = (phi_hi - phi_lo) * weight_det
            if w != 0.0:
                ctx.hist.push(mid * d0, mid * d1, mid * d2, w)
        phi_lo = phi_hi


def _mdnorm_batch(ctx: Captures, dims: tuple[int, int]) -> None:
    """Device realization: stream-compacted rows, lane-parallel comb
    sort, vectorized flux interpolation, atomic scatter-add.

    When the geometry cache holds a :class:`DepositPlan` for this
    configuration the fill/sort/interpolate/bin-search pipeline is
    skipped entirely: the warm path multiplies the cached per-segment
    fluxes by ``solid_angle x charge`` and scatter-adds.  The plan
    arrays are row-independent, so slicing them per tile reproduces the
    cold path's scatter sequence bit for bit.
    """
    n_ops, n_det = dims
    grid: HKLGrid = ctx.grid
    target = ctx.hist.flat_signal
    # per-trajectory weight: solid angle of the detector (tiled over ops)
    det_w = np.broadcast_to(ctx.solid_angles, (n_ops, n_det)).reshape(-1) * ctx.charge
    tile = ctx.tile_rows
    width = ctx.width

    entry: Optional[GeomEntry] = getattr(ctx, "geom_entry", None)
    use_plan: bool = getattr(ctx, "use_plan", False)
    plan = entry.deposit if (entry is not None and use_plan) else None
    if plan is not None and plan.width != width:
        plan = None  # caller forced a different buffer width

    if plan is not None:
        # ---- warm path: cached segment fluxes + bin indices ----------
        det_w_live = det_w[plan.live]
        n_rows = plan.n_rows
        for start in range(0, n_rows, tile):
            stop = min(start + tile, n_rows)
            seg_flux = plan.seg_flux[start:stop]
            weights = seg_flux * det_w_live[start:stop, None]
            deposit = plan.seg_ok[start:stop] & (weights != 0.0)
            Hist3._scatter(
                target, plan.flat_idx[start:stop][deposit],
                weights[deposit], ctx.scatter_impl,
            )
        return

    directions = ctx.directions.reshape(-1, 3)
    k_lo = ctx.k_lo.reshape(-1)
    k_hi = ctx.k_hi.reshape(-1)

    # stream compaction: trajectories that never enter the grid box (or
    # carry zero weight) do no work — drop their lanes up front instead
    # of padding them through the sort and interpolation stages
    live = (k_hi > k_lo) & (det_w != 0.0)
    if not live.any():
        return
    directions = directions[live]
    k_lo = k_lo[live]
    k_hi = k_hi[live]
    det_w = det_w[live]
    n_rows = directions.shape[0]

    # collect the deposit plan alongside the cold pass when it can fit
    collect = None
    if use_plan and entry is not None:
        plan_bytes = live.nbytes + n_rows * (width - 1) * (8 + 8 + 1)
        if ctx.geom_cache.accepts(plan_bytes):
            collect = DepositPlan(
                width=width,
                live=live,
                seg_flux=np.empty((n_rows, width - 1), dtype=np.float64),
                flat_idx=np.empty((n_rows, width - 1), dtype=np.int64),
                seg_ok=np.empty((n_rows, width - 1), dtype=bool),
            )

    for start in range(0, n_rows, tile):
        stop = min(start + tile, n_rows)
        padded = sorted_crossings_batch(
            directions[start:stop], grid, k_lo[start:stop], k_hi[start:stop],
            width, sort_impl=ctx.sort_impl,
        )
        phi = np.interp(padded, ctx.flux_k, ctx.flux_cum)
        seg_lo = padded[:, :-1]
        seg_hi = padded[:, 1:]
        seg_flux = phi[:, 1:] - phi[:, :-1]
        mid = 0.5 * (seg_lo + seg_hi)
        coords = mid[:, :, None] * directions[start:stop, None, :]
        flat_idx, inside = grid.bin_index(coords)
        weights = seg_flux * det_w[start:stop, None]
        seg_ok = inside & (seg_hi > seg_lo)
        deposit = seg_ok & (weights != 0.0)
        if collect is not None:
            collect.seg_flux[start:stop] = seg_flux
            collect.flat_idx[start:stop] = flat_idx
            collect.seg_ok[start:stop] = seg_ok
        Hist3._scatter(target, flat_idx[deposit], weights[deposit], ctx.scatter_impl)

    if collect is not None:
        for name in ("live", "seg_flux", "flat_idx", "seg_ok"):
            getattr(collect, name).flags.writeable = False
        entry.deposit = collect
        ctx.geom_cache.note_update(entry)


MDNORM_KERNEL = Kernel(name="mdnorm", element=_mdnorm_element, batch=_mdnorm_batch)


def mdnorm(
    hist: Hist3,
    transforms: np.ndarray,
    det_directions: np.ndarray,
    solid_angles: np.ndarray,
    flux: FluxSpectrum,
    momentum_band: tuple[float, float],
    *,
    charge: float = 1.0,
    backend: Optional[str] = None,
    sort_impl: str = "comb",
    scatter_impl: str = "atomic",
    tile_rows: int = DEFAULT_TILE_ROWS,
    width: Optional[int] = None,
    cache: Optional[GeomCache] = None,
    cache_tag: Optional[str] = None,
) -> Hist3:
    """Accumulate the normalization for one run into ``hist``.

    Parameters
    ----------
    hist:
        Normalization histogram (accumulated in place, also returned).
    transforms:
        ``(n_ops, 3, 3)`` Q_lab -> grid matrices *including* the run's
        goniometer (``HKLGrid.transforms_for(..., goniometer=R)``).
    det_directions:
        ``(n_det, 3)`` unit vectors sample -> pixel.
    solid_angles:
        ``(n_det,)`` per-detector solid angle x efficiency (the
        vanadium weights).
    flux:
        Incident flux spectrum; its cumulative integral is linearly
        interpolated over each trajectory segment.
    momentum_band:
        Accepted ``(k_min, k_max)`` of the run.
    charge:
        The run's proton charge (scales the flux).
    sort_impl:
        "comb" (the paper's in-kernel sort) or "library" (the ablation
        alternative) — device back end only.
    scatter_impl:
        "atomic" or "buffered" histogram accumulation (device back end
        only; see :meth:`Hist3.push_many`).
    width:
        Padded intersection-buffer width; None runs the pre-pass.
    cache:
        Geometry cache; None uses the process default
        (:func:`repro.core.geom_cache.default_cache`), pass
        :data:`repro.core.geom_cache.DISABLED` to opt out.  Cached and
        uncached calls are bit-identical on every back end.
    cache_tag:
        Optional lifecycle tag recorded on new cache entries (e.g.
        ``"run:42"``) for targeted invalidation.
    """
    transforms = np.asarray(transforms, dtype=np.float64)
    det_directions = np.asarray(det_directions, dtype=np.float64)
    solid_angles = np.asarray(solid_angles, dtype=np.float64)
    require(transforms.ndim == 3 and transforms.shape[1:] == (3, 3),
            "transforms must be (n_ops, 3, 3)")
    require(det_directions.ndim == 2 and det_directions.shape[1] == 3,
            "det_directions must be (n_det, 3)")
    require(solid_angles.shape == (det_directions.shape[0],),
            "solid_angles length mismatch")
    require(sort_impl in ("comb", "library"), "sort_impl must be comb|library")

    grid = hist.grid
    cache = _gc.resolve(cache)
    tracer = _trace.active_tracer()
    with tracer.span(
        "mdnorm",
        kind="op",
        backend=backend or "default",
        n_ops=int(transforms.shape[0]),
        n_det=int(det_directions.shape[0]),
        sort_impl=sort_impl,
    ) as op_span:
        entry: Optional[GeomEntry] = None
        key = None
        if cache.enabled:
            key = GeomCache.geometry_key(
                grid, transforms, det_directions, momentum_band, solid_angles, flux
            )
            entry = cache.get(key)
        op_span.set(cache_hit=entry is not None)

        if entry is not None:
            directions = entry.directions
            k_lo, k_hi = entry.k_lo, entry.k_hi
            raw_width = entry.width
        else:
            directions = trajectory_directions(transforms, det_directions)
            k_lo, k_hi = k_window(directions, grid, *momentum_band)
            raw_width = None

        explicit_width = width is not None
        if width is None:
            if raw_width is None:
                raw_width = max_intersections(
                    grid, transforms, det_directions, momentum_band,
                    backend=backend, directions=directions, k_lo=k_lo, k_hi=k_hi,
                )
            width = raw_width
        width = min(width, grid.max_plane_crossings)

        if cache.enabled:
            if entry is None:
                entry = GeomEntry(
                    key=key,
                    tag=cache_tag,
                    directions=_gc.freeze(directions),
                    k_lo=_gc.freeze(k_lo),
                    k_hi=_gc.freeze(k_hi),
                    width=raw_width,
                )
                cache.put(entry)
                directions, k_lo, k_hi = entry.directions, entry.k_lo, entry.k_hi
            elif entry.width is None and raw_width is not None:
                entry.width = raw_width
                cache.note_update(entry)

        flux_k, flux_cum = cache.flux_table(flux)

        # The deposit plan is only built/used for the canonical (pre-pass)
        # width, and never when charge is 0 (the stream-compaction mask
        # would degenerate and no longer be charge-independent).
        use_plan = cache.enabled and entry is not None and not explicit_width \
            and charge != 0.0
        warm_plan = bool(
            use_plan and entry is not None and entry.deposit is not None
        )
        op_span.set(width=int(width), warm_plan=warm_plan)
        if tracer.profile:
            from repro.util.perf import mdnorm_work

            op_span.set(perf=mdnorm_work(
                int(transforms.shape[0]), int(det_directions.shape[0]),
                int(width), warm_plan=warm_plan,
            ))
        captures = Captures(
            hist=hist,
            grid=grid,
            directions=directions,
            k_lo=k_lo,
            k_hi=k_hi,
            solid_angles=solid_angles,
            charge=float(charge),
            flux_k=flux_k,
            flux_cum=flux_cum,
            scratch=_Scratch(width),
            fill=fill_crossings_scalar,
            width=int(width),
            tile_rows=int(tile_rows),
            sort_impl=sort_impl,
            scatter_impl=scatter_impl,
            geom_entry=entry,
            geom_cache=cache,
            use_plan=use_plan,
        )
        parallel_for(directions.shape[:2], MDNORM_KERNEL, captures, backend=backend)
        tracer.count("mdnorm.trajectories",
                      int(transforms.shape[0]) * int(det_directions.shape[0]))
    return hist


def prefetch_geometry(
    grid: HKLGrid,
    transforms: np.ndarray,
    det_directions: np.ndarray,
    momentum_band: tuple[float, float],
    solid_angles: np.ndarray,
    flux,
    *,
    backend: Optional[str] = None,
    cache: Optional[GeomCache] = None,
    cache_tag: Optional[str] = None,
) -> bool:
    """Warm the geometry cache for one run without depositing anything.

    Runs the trajectory/window/pre-pass stages and stores the results
    (plus the flux table) so a later :func:`mdnorm` on the same
    configuration starts warm.  Returns True when a new entry was
    inserted, False when the key was already cached or caching is off.
    """
    transforms = np.asarray(transforms, dtype=np.float64)
    det_directions = np.asarray(det_directions, dtype=np.float64)
    solid_angles = np.asarray(solid_angles, dtype=np.float64)
    cache = _gc.resolve(cache)
    if not cache.enabled:
        return False
    key = GeomCache.geometry_key(
        grid, transforms, det_directions, momentum_band, solid_angles, flux
    )
    if cache.peek(key) is not None:
        return False
    with _trace.active_tracer().span(
        "mdnorm.prefetch", kind="phase", tag=cache_tag or ""
    ):
        directions = trajectory_directions(transforms, det_directions)
        k_lo, k_hi = k_window(directions, grid, *momentum_band)
        raw_width = max_intersections(
            grid, transforms, det_directions, momentum_band,
            backend=backend, directions=directions, k_lo=k_lo, k_hi=k_hi,
        )
        cache.flux_table(flux)
        return cache.put(
            GeomEntry(
                key=key,
                tag=cache_tag,
                directions=_gc.freeze(directions),
                k_lo=_gc.freeze(k_lo),
                k_hi=_gc.freeze(k_hi),
                width=raw_width,
            )
        )
