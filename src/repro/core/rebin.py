"""Dynamic rebinning without data movement.

The paper's motivation (Section IV): speeding the reduction up "enables
broader modeling and simulation options (e.g., 3D volumes, real-time)
and dynamically modifying histogram binning parameters while minimizing
the need for data movement."  This module delivers that capability: an
:class:`InMemoryReducer` loads each run's MDEvents **once**, keeps them
resident, and produces cross-sections for arbitrary output grids —
different bin counts, different projection bases, thicker or thinner L
slices, full 3-D volumes — without touching the files again.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.binmd import bin_events
from repro.core.cross_section import CrossSectionResult
from repro.core.grid import HKLGrid
from repro.core.hist3 import Hist3
from repro.core.md_event_workspace import MDEventWorkspace, load_md
from repro.core.mdnorm import mdnorm
from repro.crystal.symmetry import PointGroup
from repro.instruments.detector import DetectorArray
from repro.nexus.corrections import FluxSpectrum
from repro.util.timers import StageTimings
from repro.util.validation import ValidationError, require


class InMemoryReducer:
    """Load runs once; rebin onto any grid on demand."""

    def __init__(
        self,
        md_paths: Sequence[str],
        flux: FluxSpectrum,
        instrument: DetectorArray,
        solid_angles: np.ndarray,
        point_group: PointGroup,
        *,
        backend: Optional[str] = None,
    ) -> None:
        require(len(md_paths) >= 1, "need at least one run file")
        self.flux = flux
        self.instrument = instrument
        self.solid_angles = np.ascontiguousarray(solid_angles, dtype=np.float64)
        self.point_group = point_group
        self.backend = backend
        self.load_count = 0
        self._workspaces: List[MDEventWorkspace] = []
        for path in md_paths:
            ws = load_md(path)
            if ws.ub_matrix is None:
                raise ValidationError(f"{path!r} carries no UB matrix")
            self._workspaces.append(ws)
            self.load_count += 1

    @property
    def n_runs(self) -> int:
        return len(self._workspaces)

    @property
    def total_events(self) -> int:
        return sum(ws.n_events for ws in self._workspaces)

    def reduce(self, grid: HKLGrid) -> CrossSectionResult:
        """Produce the cross-section on ``grid`` from resident events.

        No file I/O happens here — the ``UpdateEvents`` stage of the
        returned timings is exactly zero, which is the data-movement
        saving the paper's motivation describes.
        """
        timings = StageTimings(label=f"rebin[{grid.bins}]")
        binmd_hist = Hist3(grid, track_errors=True)
        mdnorm_hist = Hist3(grid)
        with timings.stage("Total"):
            for ws in self._workspaces:
                event_t = grid.transforms_for(ws.ub_matrix, self.point_group)
                traj_t = grid.transforms_for(
                    ws.ub_matrix, self.point_group, goniometer=ws.goniometer
                )
                with timings.stage("MDNorm"):
                    mdnorm(
                        mdnorm_hist, traj_t, self.instrument.directions,
                        self.solid_angles, self.flux, ws.momentum_band,
                        charge=ws.proton_charge, backend=self.backend,
                    )
                with timings.stage("BinMD"):
                    bin_events(binmd_hist, ws.events, event_t, backend=self.backend)
            cross = binmd_hist.divide(mdnorm_hist)
        return CrossSectionResult(
            cross_section=cross,
            binmd=binmd_hist,
            mdnorm=mdnorm_hist,
            timings=timings,
            n_runs=self.n_runs,
            backend=self.backend or "default",
        )

    def reduce_volume(
        self,
        bins: tuple[int, int, int],
        *,
        basis: Optional[np.ndarray] = None,
        minimum: tuple[float, float, float] = (-6.0, -6.0, -6.0),
        maximum: tuple[float, float, float] = (6.0, 6.0, 6.0),
    ) -> CrossSectionResult:
        """Convenience: a full 3-D volume reduction (lBins > 1) — the
        "3D volumes" option the paper says acceleration unlocks."""
        grid = HKLGrid(
            basis=np.eye(3) if basis is None else basis,
            minimum=minimum,
            maximum=maximum,
            bins=bins,
        )
        return self.reduce(grid)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"InMemoryReducer(runs={self.n_runs}, events={self.total_events}, "
            f"loads={self.load_count})"
        )
