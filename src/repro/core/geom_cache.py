"""Memoized geometry/flux cache for the MDNorm/BinMD hot path.

The paper's biggest algorithmic wins come from *not recomputing*
per-detector work: the max-intersections pre-pass and the ROI bin
search exist precisely so the expensive trajectory/grid geometry is
computed once and reused per kernel launch.  A Garnet-style workflow
re-reduces the same runs many times — across symmetry panels, grid
sweeps and benchmark repetitions — and every one of those reductions
used to redo the identical geometry from scratch.

This module is the reproduction's memoization layer (the same shape as
a KV-cache in an inference stack).  A :class:`GeomCache` holds three
entry kinds behind one LRU byte budget:

* **geometry entries** (:class:`GeomEntry`) — per
  ``(grid, transforms, detectors, band, calibration, flux)`` key: the
  trajectory directions, the clipped momentum windows and the
  max-intersections pre-pass bound, plus (once the device/batch kernel
  has run) a packed :class:`DepositPlan` holding the per-trajectory
  intersection segment fluxes and flat bin indices;
* **BinMD entries** (:class:`BinMDEntry`) — per
  ``(grid, transforms, event-table)`` key: the flat bin indices and
  inside masks of every event under every symmetry op;
* **flux entries** (:class:`FluxEntry`) — the cumulative-flux
  interpolation table shared by every backend and every re-read of the
  same flux file.

Keys are **content digests** (BLAKE2b over the array bytes), so they
are backend-agnostic: the serial, threads and vectorized back ends all
hit the same entries, and any change to the calibration (vanadium
weights / detector mask), lattice (UB → transforms), goniometer or
grid produces a different key — stale reuse is impossible by
construction.  Explicit invalidation by *tag* (e.g. ``"run:42"``) and
wholesale :meth:`GeomCache.clear` are provided on top for lifecycle
management.

Cached arrays are frozen read-only; warm consumers slice them.  All
cached products are *inputs* the kernels would otherwise recompute
with the very same arithmetic, so cached and uncached reductions are
bit-identical on every back end — a property the test suite enforces
with randomized cases.

The process-default cache is enabled unless ``REPRO_GEOM_CACHE=0``;
its budget comes from ``REPRO_GEOM_CACHE_BYTES`` (default 256 MiB).
Pass :data:`DISABLED` to any cache-aware entry point to opt out.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.util import trace as _trace
from repro.util.validation import require

#: default LRU byte budget of the process-wide cache
DEFAULT_BYTE_BUDGET = 256 * 1024 * 1024

#: entry-kind markers (first element of every key tuple)
KIND_GEOMETRY = "mdnorm-geometry"
KIND_BINMD = "binmd-index"
KIND_FLUX = "flux-table"


# ---------------------------------------------------------------------------
# digests
# ---------------------------------------------------------------------------

def digest_array(arr: np.ndarray) -> str:
    """Content digest of an array (dtype + shape + bytes)."""
    a = np.ascontiguousarray(arr)
    h = hashlib.blake2b(digest_size=16)
    h.update(str(a.dtype).encode())
    h.update(repr(a.shape).encode())
    h.update(a.data)
    return h.hexdigest()


def digest_grid(grid) -> str:
    """Content digest of an :class:`~repro.core.grid.HKLGrid` spec."""
    h = hashlib.blake2b(digest_size=16)
    h.update(digest_array(grid.basis).encode())
    h.update(repr((grid.minimum, grid.maximum, grid.bins)).encode())
    return h.hexdigest()


def freeze(arr: np.ndarray) -> np.ndarray:
    """Mark an owned array read-only (cache entries must never mutate)."""
    a = np.ascontiguousarray(arr)
    a.flags.writeable = False
    return a


# ---------------------------------------------------------------------------
# statistics
# ---------------------------------------------------------------------------

@dataclass
class CacheStats:
    """Hit/miss/eviction counters (exposed to the benchmark harness)."""

    hits: int = 0
    misses: int = 0
    inserts: int = 0
    updates: int = 0
    evictions: int = 0
    oversize_skips: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        n = self.lookups
        return self.hits / n if n else 0.0

    def snapshot(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "inserts": self.inserts,
            "updates": self.updates,
            "evictions": self.evictions,
            "oversize_skips": self.oversize_skips,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }

    def reset(self) -> None:
        self.hits = self.misses = self.inserts = self.updates = 0
        self.evictions = self.oversize_skips = self.invalidations = 0


# ---------------------------------------------------------------------------
# entries
# ---------------------------------------------------------------------------

@dataclass
class DepositPlan:
    """Packed per-trajectory deposit arrays for the MDNorm batch kernel.

    Row ``r`` is one *live* (op, detector) trajectory after stream
    compaction; per segment ``j`` it records the cumulative-flux
    difference, the flat histogram bin index of the segment midpoint
    and whether the segment deposits at all.  Everything
    charge-independent is captured, so a warm launch only multiplies by
    ``solid_angle x charge`` and scatter-adds.
    """

    #: cache material is process-local: the multiprocess back end drops
    #: it from worker captures instead of shipping it (element bodies
    #: never read it — only batch kernels, which never cross processes)
    __jacc_shareable__ = False

    #: the padded intersection-buffer width this plan was built for
    width: int
    #: ``(n_ops * n_det,)`` stream-compaction mask (k window non-empty
    #: and detector weight non-zero)
    live: np.ndarray
    #: ``(n_rows, width - 1)`` cumulative-flux difference per segment
    seg_flux: np.ndarray
    #: ``(n_rows, width - 1)`` flat bin index of each segment midpoint
    flat_idx: np.ndarray
    #: ``(n_rows, width - 1)`` segment is inside the grid and non-empty
    seg_ok: np.ndarray

    @property
    def n_rows(self) -> int:
        return int(self.seg_flux.shape[0])

    @property
    def nbytes(self) -> int:
        return int(
            self.live.nbytes + self.seg_flux.nbytes
            + self.flat_idx.nbytes + self.seg_ok.nbytes
        )


@dataclass
class GeomEntry:
    """Cached trajectory geometry for one MDNorm configuration."""

    __jacc_shareable__ = False  # see DepositPlan

    key: Tuple[Any, ...]
    tag: Optional[str]
    #: ``(n_ops, n_det, 3)`` trajectory directions
    directions: np.ndarray
    #: ``(n_ops, n_det)`` clipped momentum window
    k_lo: np.ndarray
    k_hi: np.ndarray
    #: raw max-intersections pre-pass bound (before the plane-count
    #: clamp); None until a pre-pass has run for this key
    width: Optional[int] = None
    #: packed deposit arrays (built lazily by the batch kernel)
    deposit: Optional[DepositPlan] = None

    @property
    def nbytes(self) -> int:
        n = int(self.directions.nbytes + self.k_lo.nbytes + self.k_hi.nbytes)
        if self.deposit is not None:
            n += self.deposit.nbytes
        return n


@dataclass
class BinMDEntry:
    """Cached flat bin indices of an event table under every op."""

    __jacc_shareable__ = False  # see DepositPlan

    key: Tuple[Any, ...]
    tag: Optional[str]
    #: ``(n_ops, n_events)`` flat (clipped) bin index per event
    flat_idx: np.ndarray
    #: ``(n_ops, n_events)`` event landed inside the grid
    inside: np.ndarray

    @property
    def nbytes(self) -> int:
        return int(self.flat_idx.nbytes + self.inside.nbytes)


@dataclass
class FluxEntry:
    """Cached cumulative-flux interpolation table."""

    key: Tuple[Any, ...]
    tag: Optional[str]
    momentum: np.ndarray
    cumulative: np.ndarray

    @property
    def nbytes(self) -> int:
        return int(self.momentum.nbytes + self.cumulative.nbytes)


# ---------------------------------------------------------------------------
# the cache
# ---------------------------------------------------------------------------

class GeomCache:
    """LRU byte-budgeted cache of reduction geometry.

    Thread-safe: the simulated MPI ranks (threads) and the threads back
    end may look up and insert concurrently.  Insertion is idempotent —
    two ranks racing on the same key compute identical entries, so the
    loser simply replaces an equal value.
    """

    enabled = True
    #: process-local (holds an RLock and a byte-budgeted LRU); the
    #: multiprocess back end drops it from worker captures — kernel
    #: element bodies never consult the cache
    __jacc_shareable__ = False

    def __init__(self, byte_budget: int = DEFAULT_BYTE_BUDGET) -> None:
        require(byte_budget > 0, "byte_budget must be positive")
        self.byte_budget = int(byte_budget)
        self.stats = CacheStats()
        self._lock = threading.RLock()
        self._entries: "OrderedDict[Tuple[Any, ...], Any]" = OrderedDict()
        self._bytes = 0

    # -- keys ------------------------------------------------------------
    @staticmethod
    def geometry_key(
        grid,
        transforms: np.ndarray,
        det_directions: np.ndarray,
        momentum_band: Tuple[float, float],
        solid_angles: np.ndarray,
        flux,
    ) -> Tuple[Any, ...]:
        """Backend-agnostic key of one MDNorm geometry configuration.

        The digested ``transforms`` fold in the run's goniometer, the
        UB (lattice) and the symmetry operations; ``solid_angles``
        folds in the calibration and detector mask; ``flux`` the
        incident spectrum.  Any change to any of them is a new key.
        """
        return (
            KIND_GEOMETRY,
            digest_grid(grid),
            digest_array(transforms),
            digest_array(det_directions),
            (float(momentum_band[0]), float(momentum_band[1])),
            digest_array(solid_angles),
            digest_array(flux.momentum),
            digest_array(flux.density),
        )

    @staticmethod
    def binmd_key(grid, transforms: np.ndarray, events: np.ndarray) -> Tuple[Any, ...]:
        """Key of one BinMD (grid, symmetry transforms, event table)."""
        return (
            KIND_BINMD,
            digest_grid(grid),
            digest_array(transforms),
            digest_array(events),
        )

    @staticmethod
    def flux_key(flux) -> Tuple[Any, ...]:
        return (KIND_FLUX, digest_array(flux.momentum), digest_array(flux.density))

    # -- core operations -------------------------------------------------
    def get(self, key: Tuple[Any, ...]):
        """Look up an entry (LRU-touching); None on miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                _trace.active_tracer().count("geom_cache.miss", 1)
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            _trace.active_tracer().count("geom_cache.hit", 1)
            return entry

    def peek(self, key: Tuple[Any, ...]):
        """Look up without touching LRU order or counters."""
        with self._lock:
            return self._entries.get(key)

    def put(self, entry) -> bool:
        """Insert (or replace) an entry; False if it exceeds the budget."""
        nbytes = entry.nbytes
        with self._lock:
            if nbytes > self.byte_budget:
                self.stats.oversize_skips += 1
                return False
            old = self._entries.pop(entry.key, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._entries[entry.key] = entry
            self._bytes += nbytes
            self.stats.inserts += 1
            _trace.active_tracer().count("geom_cache.insert", 1)
            self._evict_to_budget()
            return True

    def note_update(self, entry) -> bool:
        """Re-account an entry that grew in place (e.g. gained a plan).

        If the entry was never stored (or was evicted meanwhile) this
        degrades to a plain :meth:`put`.
        """
        with self._lock:
            current = self._entries.get(entry.key)
            if current is not entry:
                return self.put(entry)
            if entry.nbytes > self.byte_budget:
                # grew past the whole budget: drop it
                del self._entries[entry.key]
                self._recount()
                self.stats.oversize_skips += 1
                return False
            self.stats.updates += 1
            self._recount()
            self._evict_to_budget()
            return True

    def accepts(self, nbytes: int) -> bool:
        """Whether an entry of this size could ever be stored."""
        return nbytes <= self.byte_budget

    def flux_table(self, flux) -> Tuple[np.ndarray, np.ndarray]:
        """The shared cumulative-flux interpolation table for ``flux``.

        Every backend interpolates the same frozen ``(momentum,
        cumulative)`` pair; repeated reads of the same flux file (one
        per panel in a Garnet-style sweep) map onto one cached table.
        """
        key = self.flux_key(flux)
        entry = self.get(key)
        if entry is None:
            entry = FluxEntry(
                key=key,
                tag=None,
                momentum=freeze(np.array(flux.momentum, dtype=np.float64)),
                cumulative=freeze(np.array(flux._cumulative, dtype=np.float64)),
            )
            self.put(entry)
        return entry.momentum, entry.cumulative

    # -- invalidation ----------------------------------------------------
    def invalidate(self, tag: Optional[str] = None) -> int:
        """Drop entries carrying ``tag`` (all entries when tag is None).

        Callers use this on calibration or lattice change when they
        track lifecycles by tag; content-digested keys already guarantee
        correctness, so this is a memory-management tool.
        """
        with self._lock:
            if tag is None:
                n = len(self._entries)
                self._entries.clear()
                self._bytes = 0
            else:
                doomed = [k for k, e in self._entries.items()
                          if getattr(e, "tag", None) == tag]
                for k in doomed:
                    del self._entries[k]
                n = len(doomed)
                self._recount()
            self.stats.invalidations += n
            return n

    def clear(self) -> None:
        self.invalidate(None)

    # -- inspection ------------------------------------------------------
    @property
    def current_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Tuple[Any, ...]) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self):
        with self._lock:
            return list(self._entries.keys())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"GeomCache(entries={len(self)}, bytes={self.current_bytes}, "
            f"budget={self.byte_budget}, hits={self.stats.hits}, "
            f"misses={self.stats.misses}, evictions={self.stats.evictions})"
        )

    # -- internals -------------------------------------------------------
    def _recount(self) -> None:
        self._bytes = sum(e.nbytes for e in self._entries.values())

    def _evict_to_budget(self) -> None:
        evicted = 0
        while self._bytes > self.byte_budget and len(self._entries) > 1:
            _, victim = self._entries.popitem(last=False)
            self._bytes -= victim.nbytes
            self.stats.evictions += 1
            evicted += 1
        if self._bytes > self.byte_budget and self._entries:
            # a lone entry over budget (can only happen via note_update)
            self._entries.popitem(last=False)
            self._bytes = 0
            self.stats.evictions += 1
            evicted += 1
        if evicted:
            _trace.active_tracer().count("geom_cache.eviction", evicted)


class NullCache(GeomCache):
    """The disabled cache: every lookup misses, nothing is stored."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(byte_budget=1)

    def get(self, key):  # noqa: D102 - inherits contract
        return None

    def put(self, entry) -> bool:
        return False

    def note_update(self, entry) -> bool:
        return False

    def accepts(self, nbytes: int) -> bool:
        return False

    def flux_table(self, flux):
        return flux.momentum, flux._cumulative


#: pass this to any cache-aware entry point to opt out of caching
DISABLED = NullCache()

_default_lock = threading.Lock()
_default_cache: Optional[GeomCache] = None


def default_cache() -> GeomCache:
    """The process-wide cache (env: ``REPRO_GEOM_CACHE``/``..._BYTES``)."""
    global _default_cache
    with _default_lock:
        if _default_cache is None:
            if os.environ.get("REPRO_GEOM_CACHE", "1") == "0":
                _default_cache = DISABLED
            else:
                budget = int(
                    os.environ.get("REPRO_GEOM_CACHE_BYTES", DEFAULT_BYTE_BUDGET)
                )
                _default_cache = GeomCache(byte_budget=budget)
        return _default_cache


def set_default_cache(cache: Optional[GeomCache]) -> GeomCache:
    """Swap the process default (None resets to env-driven creation)."""
    global _default_cache
    with _default_lock:
        _default_cache = cache
    return default_cache()


def resolve(cache: Optional[GeomCache]) -> GeomCache:
    """None -> the process default; anything else passes through."""
    return default_cache() if cache is None else cache
