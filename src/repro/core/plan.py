"""Reduction plans: file-driven configuration of a reduction.

Garnet drives the production reduction from per-experiment *reduction
files* (the paper's artifact description: "The CORELLI and TOPAZ
reduction files were modified to match the parameters used in the
proxies").  This module is that layer for this package: a JSON document
describing the inputs, the output grid, the symmetry and the execution
engine, loadable into any of the three implementations.

Example plan::

    {
      "runs": ["run_0000.md.h5", "run_0001.md.h5"],
      "flux": "flux.h5",
      "vanadium": "vanadium.h5",
      "instrument": "instrument.h5",
      "point_group": "321",
      "grid": {
        "projections": [[1, 1, 0], [1, -1, 0], [0, 0, 1]],
        "minimum": [-6.0, -6.0, -0.5],
        "maximum": [6.0, 6.0, 0.5],
        "bins": [151, 151, 1]
      },
      "implementation": "minivates",
      "backend_options": {"sort_impl": "comb", "scatter_impl": "atomic"}
    }

Relative paths resolve against the plan file's directory, so a dataset
directory plus one plan file is a complete, portable reduction job.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

import numpy as np

from repro.core.cross_section import CrossSectionResult
from repro.core.geom_cache import GeomCache
from repro.core.grid import HKLGrid
from repro.core.workflow import ReductionWorkflow, WorkflowConfig
from repro.crystal.symmetry import point_group
from repro.instruments.idf import read_instrument
from repro.util.validation import ValidationError, require

IMPLEMENTATIONS = ("core", "minivates", "cpp")


@dataclass
class ReductionPlan:
    """A parsed, path-resolved reduction plan."""

    runs: List[str]
    flux: str
    vanadium: str
    instrument: str
    point_group_symbol: str
    grid: HKLGrid
    implementation: str = "core"
    backend_options: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        require(len(self.runs) >= 1, "plan needs at least one run")
        require(self.implementation in IMPLEMENTATIONS,
                f"implementation must be one of {IMPLEMENTATIONS}")
        point_group(self.point_group_symbol)  # validate eagerly


def _resolve(base: Path, path: str) -> str:
    p = Path(path)
    return str(p if p.is_absolute() else base / p)


def load_plan(path: Union[str, os.PathLike]) -> ReductionPlan:
    """Parse and validate a plan file; relative paths resolve against it."""
    plan_path = Path(os.fspath(path))
    try:
        doc = json.loads(plan_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ValidationError(f"cannot read plan {plan_path}: {exc}") from exc
    base = plan_path.resolve().parent

    for key in ("runs", "flux", "vanadium", "instrument", "point_group", "grid"):
        if key not in doc:
            raise ValidationError(f"plan is missing required key {key!r}")
    g = doc["grid"]
    for key in ("projections", "minimum", "maximum", "bins"):
        if key not in g:
            raise ValidationError(f"plan grid is missing {key!r}")
    projections = np.asarray(g["projections"], dtype=np.float64)
    if projections.shape != (3, 3):
        raise ValidationError("grid projections must be three 3-vectors")
    grid = HKLGrid(
        basis=projections.T,  # rows in the plan are basis vectors
        minimum=tuple(g["minimum"]),
        maximum=tuple(g["maximum"]),
        bins=tuple(g["bins"]),
        names=tuple(
            g.get("names", [str(list(v)) for v in g["projections"]])
        ),
    )
    return ReductionPlan(
        runs=[_resolve(base, r) for r in doc["runs"]],
        flux=_resolve(base, doc["flux"]),
        vanadium=_resolve(base, doc["vanadium"]),
        instrument=_resolve(base, doc["instrument"]),
        point_group_symbol=str(doc["point_group"]),
        grid=grid,
        implementation=doc.get("implementation", "core"),
        backend_options=dict(doc.get("backend_options", {})),
    )


def save_plan(path: Union[str, os.PathLike], plan: ReductionPlan) -> None:
    """Serialize a plan back to JSON (paths written as given)."""
    doc = {
        "runs": list(plan.runs),
        "flux": plan.flux,
        "vanadium": plan.vanadium,
        "instrument": plan.instrument,
        "point_group": plan.point_group_symbol,
        "grid": {
            "projections": plan.grid.basis.T.tolist(),
            "minimum": list(plan.grid.minimum),
            "maximum": list(plan.grid.maximum),
            "bins": list(plan.grid.bins),
            "names": list(plan.grid.names),
        },
        "implementation": plan.implementation,
        "backend_options": plan.backend_options,
    }
    Path(os.fspath(path)).write_text(json.dumps(doc, indent=2) + "\n")


def run_plan(
    plan: ReductionPlan,
    *,
    comm=None,
    cache: Optional[GeomCache] = None,
    prefetch: bool = False,
) -> CrossSectionResult:
    """Execute a plan with its chosen implementation.

    Parameters
    ----------
    cache:
        Geometry cache shared across plan executions (cross-panel
        reuse); None uses the process default.  Plans may instead set
        ``backend_options["geom_cache_bytes"]`` to get a plan-private
        cache of that budget.  ``backend_options["shards"]`` (plus
        optional ``"shard_workers"`` / ``"run_weights"``) turns on the
        hierarchical intra-run fan-out — core implementation only.
    prefetch:
        Warm the cache (trajectory geometry + pre-pass + flux table for
        every run) before reducing — only meaningful for the ``core``
        implementation.
    """
    instrument = read_instrument(plan.instrument)
    pg = point_group(plan.point_group_symbol)
    opts = dict(plan.backend_options)
    budget = opts.pop("geom_cache_bytes", None)
    if budget is not None and cache is None:
        cache = GeomCache(byte_budget=int(budget))
    if plan.implementation != "core":
        # the proxies own their parallelism; intra-run sharding is the
        # core loop's second decomposition level
        bad = [k for k in ("shards", "shard_workers", "run_weights")
               if k in opts]
        if bad:
            raise ValidationError(
                f"backend_options {bad} require implementation='core' "
                f"(got {plan.implementation!r})"
            )

    if plan.implementation == "minivates":
        from repro.proxy.minivates import MiniVatesConfig, MiniVatesWorkflow

        cfg = MiniVatesConfig(
            md_paths=plan.runs,
            flux_path=plan.flux,
            vanadium_path=plan.vanadium,
            instrument=instrument,
            grid=plan.grid,
            point_group=pg,
            geom_cache=cache,
            **opts,
        )
        return MiniVatesWorkflow(cfg).run(comm=comm)
    if plan.implementation == "cpp":
        from repro.proxy.cpp_proxy import CppProxyConfig, CppProxyWorkflow

        cfg = CppProxyConfig(
            md_paths=plan.runs,
            flux_path=plan.flux,
            vanadium_path=plan.vanadium,
            instrument=instrument,
            grid=plan.grid,
            point_group=pg,
            **opts,
        )
        return CppProxyWorkflow(cfg).run(comm=comm)

    cfg = WorkflowConfig(
        md_paths=plan.runs,
        flux_path=plan.flux,
        vanadium_path=plan.vanadium,
        instrument=instrument,
        grid=plan.grid,
        point_group=pg,
        geom_cache=cache,
        **opts,
    )
    workflow = ReductionWorkflow(cfg)
    if prefetch:
        workflow.prefetch_geometry()
    return workflow.run(comm=comm)
