"""File-driven end-to-end reduction (the proxies' outer shell).

A :class:`ReductionWorkflow` is configured with the on-disk inputs the
paper's artifact description lists — one SaveMD file per run, plus the
FluxFile and VanadiumFile — together with the instrument geometry, the
output grid and the sample's point group.  ``run()`` executes
Algorithm 1 and returns the :class:`CrossSectionResult` with the
per-stage timings the benchmark harness turns into table rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.cross_section import CrossSectionResult, compute_cross_section
from repro.core.grid import HKLGrid
from repro.core.md_event_workspace import load_md
from repro.crystal.symmetry import PointGroup
from repro.instruments.detector import DetectorArray
from repro.mpi import Comm
from repro.nexus.corrections import read_flux_file, read_vanadium_file
from repro.util.timers import StageTimings
from repro.util.validation import ValidationError, require


@dataclass
class WorkflowConfig:
    """Everything a reduction needs, as file paths + geometry."""

    #: one SaveMD file per experiment run
    md_paths: Sequence[str]
    #: the incident-spectrum file (see ``write_flux_file``)
    flux_path: str
    #: the vanadium calibration file (see ``write_vanadium_file``)
    vanadium_path: str
    instrument: DetectorArray
    grid: HKLGrid
    point_group: PointGroup
    #: jacc back end name; None = process default
    backend: Optional[str] = None
    #: in-kernel sort: "comb" (paper) or "library" (ablation)
    sort_impl: str = "comb"

    def __post_init__(self) -> None:
        require(len(self.md_paths) >= 1, "need at least one run file")


class ReductionWorkflow:
    """Algorithm 1 over on-disk run files."""

    def __init__(self, config: WorkflowConfig) -> None:
        self.config = config
        self.flux = read_flux_file(config.flux_path)
        vanadium = read_vanadium_file(config.vanadium_path)
        if vanadium.n_detectors != config.instrument.n_pixels:
            raise ValidationError(
                f"vanadium has {vanadium.n_detectors} detectors but "
                f"{config.instrument.name} has {config.instrument.n_pixels} pixels"
            )
        self.solid_angles = vanadium.detector_weights

    def run(
        self,
        comm: Optional[Comm] = None,
        *,
        timings: Optional[StageTimings] = None,
    ) -> CrossSectionResult:
        cfg = self.config
        paths = list(cfg.md_paths)
        return compute_cross_section(
            load_run=lambda i: load_md(paths[i]),
            n_runs=len(paths),
            grid=cfg.grid,
            point_group=cfg.point_group,
            flux=self.flux,
            det_directions=cfg.instrument.directions,
            solid_angles=self.solid_angles,
            comm=comm,
            backend=cfg.backend,
            sort_impl=cfg.sort_impl,
            timings=timings,
        )
