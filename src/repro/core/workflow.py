"""File-driven end-to-end reduction (the proxies' outer shell).

A :class:`ReductionWorkflow` is configured with the on-disk inputs the
paper's artifact description lists — one SaveMD file per run, plus the
FluxFile and VanadiumFile — together with the instrument geometry, the
output grid and the sample's point group.  ``run()`` executes
Algorithm 1 and returns the :class:`CrossSectionResult` with the
per-stage timings the benchmark harness turns into table rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core import geom_cache as _gc
from repro.core.checkpoint import RecoveryConfig
from repro.core.cross_section import CrossSectionResult, compute_cross_section
from repro.core.geom_cache import GeomCache
from repro.core.grid import HKLGrid
from repro.core.md_event_workspace import load_md
from repro.core.mdnorm import prefetch_geometry
from repro.core.sharding import ShardConfig, resolve_executor
from repro.crystal.symmetry import PointGroup
from repro.instruments.detector import DetectorArray
from repro.mpi import Comm
from repro.nexus.corrections import read_flux_file, read_vanadium_file
from repro.util import trace as _trace
from repro.util.timers import StageTimings
from repro.util.validation import ValidationError, require


@dataclass
class WorkflowConfig:
    """Everything a reduction needs, as file paths + geometry."""

    #: one SaveMD file per experiment run
    md_paths: Sequence[str]
    #: the incident-spectrum file (see ``write_flux_file``)
    flux_path: str
    #: the vanadium calibration file (see ``write_vanadium_file``)
    vanadium_path: str
    instrument: DetectorArray
    grid: HKLGrid
    point_group: PointGroup
    #: jacc back end name; None = process default
    backend: Optional[str] = None
    #: in-kernel sort: "comb" (paper) or "library" (ablation)
    sort_impl: str = "comb"
    #: geometry cache shared across runs/panels/re-reductions; None =
    #: the process default, ``repro.core.geom_cache.DISABLED`` opts out
    geom_cache: Optional[GeomCache] = None
    #: failure policy (retry/quarantine/checkpoint/resume); None =
    #: historical fail-fast loop
    recovery: Optional[RecoveryConfig] = None
    #: intra-run shard count (detector ranges for MDNorm, event ranges
    #: for BinMD); None = single-level Algorithm 1
    shards: Optional[int] = None
    #: process-pool width for the shard fan-out; None resolves
    #: ``REPRO_NUM_PROCS`` / the CPU count
    shard_workers: Optional[int] = None
    #: optional per-run event weights (run manifest) for weight-balanced
    #: rank blocks — the outer level of the 2-D decomposition
    run_weights: Optional[Sequence[float]] = None
    #: out-of-core byte budget for each run's decoded-chunk tile cache
    #: (``--memory-budget``).  Requires chunked (``save_md(chunk_events=
    #: ...)``) run files; None = load each run's table into memory
    memory_budget: Optional[int] = None
    #: campaign executor (``--executor``): None/"static" is the fixed
    #: rank-block plan, "stealing" the elastic work-stealing executor
    executor: Optional[str] = None
    #: stealing executor only: seed of the default weighted steal
    #: schedule (``--steal-seed``); ignored by the static plan
    steal_seed: int = 0

    def __post_init__(self) -> None:
        require(len(self.md_paths) >= 1, "need at least one run file")
        # fail fast on bad shard/worker counts at configuration time
        self.shard_config()
        # ... and on unknown executor names
        resolve_executor(self.executor)

    def schedule(self):
        """The steal-schedule controller for dynamic executors (None
        for the static plan)."""
        if self.executor in (None, "static"):
            return None
        from repro.util.schedule import ScheduleController

        return ScheduleController(seed=self.steal_seed, policy="weighted")

    def shard_config(self) -> Optional[ShardConfig]:
        """The validated :class:`ShardConfig`, or None when unsharded."""
        return ShardConfig.from_options(self.shards, self.shard_workers)


class ReductionWorkflow:
    """Algorithm 1 over on-disk run files."""

    def __init__(self, config: WorkflowConfig) -> None:
        self.config = config
        self.flux = read_flux_file(config.flux_path)
        vanadium = read_vanadium_file(config.vanadium_path)
        if vanadium.n_detectors != config.instrument.n_pixels:
            raise ValidationError(
                f"vanadium has {vanadium.n_detectors} detectors but "
                f"{config.instrument.name} has {config.instrument.n_pixels} pixels"
            )
        self.solid_angles = vanadium.detector_weights

    def run(
        self,
        comm: Optional[Comm] = None,
        *,
        timings: Optional[StageTimings] = None,
    ) -> CrossSectionResult:
        cfg = self.config
        paths = list(cfg.md_paths)
        with _trace.active_tracer().span(
            "workflow",
            kind="workflow",
            implementation="core",
            n_runs=len(paths),
            backend=cfg.backend or "default",
        ):
            return compute_cross_section(
                load_run=lambda i: load_md(
                    paths[i], memory_budget=cfg.memory_budget
                ),
                n_runs=len(paths),
                grid=cfg.grid,
                point_group=cfg.point_group,
                flux=self.flux,
                det_directions=cfg.instrument.directions,
                solid_angles=self.solid_angles,
                comm=comm,
                backend=cfg.backend,
                sort_impl=cfg.sort_impl,
                timings=timings,
                cache=cfg.geom_cache,
                recovery=cfg.recovery,
                shards=cfg.shard_config(),
                run_weights=cfg.run_weights,
                executor=cfg.executor,
                # fresh controller per reduction (decision streams and
                # lifecycle triggers are single-use); only the root
                # rank's instance drives the campaign
                schedule=cfg.schedule(),
            )

    def prefetch_geometry(self) -> int:
        """Warm the geometry cache for every run before reducing.

        Loads each run's metadata, computes its trajectory geometry and
        pre-pass bound and stores them (plus the flux table), so the
        subsequent :meth:`run` — or a re-reduction of the same panel —
        starts warm.  Returns the number of newly inserted entries.
        """
        cfg = self.config
        cache = _gc.resolve(cfg.geom_cache)
        if not cache.enabled:
            return 0
        inserted = 0
        with _trace.active_tracer().span(
            "workflow.prefetch", kind="phase", n_runs=len(cfg.md_paths)
        ) as sp:
            inserted = self._prefetch_all(cache)
            sp.set(inserted=int(inserted))
        return inserted

    def _prefetch_all(self, cache: GeomCache) -> int:
        cfg = self.config
        inserted = 0
        for i, path in enumerate(cfg.md_paths):
            ws = load_md(path)
            if ws.ub_matrix is None:
                raise ValidationError(f"run file {path} carries no UB matrix")
            traj_transforms = cfg.grid.transforms_for(
                ws.ub_matrix, cfg.point_group, goniometer=ws.goniometer
            )
            inserted += int(
                prefetch_geometry(
                    cfg.grid,
                    traj_transforms,
                    cfg.instrument.directions,
                    ws.momentum_band,
                    self.solid_angles,
                    self.flux,
                    backend=cfg.backend,
                    cache=cache,
                    cache_tag=f"run:{i}",
                )
            )
        return inserted
