"""Comb sort: the allocation-free in-kernel sort.

The paper: "sorting algorithms in the Julia standard library (and other
packages) all perform dynamic allocation internally for scratch space
and are undesirable within a repeatedly called GPU kernel ... we settled
on comb sort after a bit of experimentation."

Two realizations matching the two kernel forms:

* :func:`comb_sort` — the scalar in-place sort used inside scalar
  kernel bodies (serial / threads back ends).  No scratch space.
* :func:`comb_sort_rows` — the lane-parallel variant for the device
  back end: every row of a 2-D array is an independent "thread" sorting
  its own intersection list.  Each gap pass performs the compare-
  exchanges in two parity waves ("brick" scheduling) so simultaneous
  exchanges never share an element — the standard way a per-thread sort
  maps onto lock-step SIMD lanes.

The classic shrink factor 1.3 is used; the final gap-1 phase repeats
(odd-even transposition) until no lane swaps.
"""

from __future__ import annotations

import numpy as np

SHRINK = 1.3


def comb_sort(values: np.ndarray, n: int | None = None) -> None:
    """Sort ``values[:n]`` in place, ascending, with no scratch space.

    ``n`` defaults to the full length; passing the live prefix length
    lets kernels reuse one preallocated buffer per worker.
    """
    if n is None:
        n = len(values)
    if n < 2:
        return
    gap = n
    swapped = True
    while gap > 1 or swapped:
        gap = int(gap / SHRINK)
        if gap < 1:
            gap = 1
        swapped = False
        for i in range(n - gap):
            j = i + gap
            if values[i] > values[j]:
                values[i], values[j] = values[j], values[i]
                swapped = True


def _brick_indices(n: int, gap: int, parity: int) -> np.ndarray:
    """Left indices i of disjoint pairs (i, i+gap) in the given parity wave.

    Pairs whose left index lies in an even-numbered gap-block never share
    an element with each other (they can only touch the next block), and
    likewise for odd blocks, so each wave may exchange simultaneously.
    """
    i = np.arange(n - gap)
    return i[(i // gap) % 2 == parity]


def comb_sort_rows(values: np.ndarray, max_passes: int | None = None) -> int:
    """Sort each row of a 2-D array in place, ascending, lane-parallel.

    Returns the number of gap passes performed (a diagnostic for the
    ablation benchmark against the library sort).
    """
    if values.ndim != 2:
        raise ValueError(f"comb_sort_rows expects a 2-D array, got {values.shape}")
    n = values.shape[1]
    if n < 2 or values.shape[0] == 0:
        return 0
    if max_passes is None:
        # comb sort's total pass count is O(n) worst case at gap 1
        max_passes = 4 * n + 64
    gap = n
    passes = 0
    swapped = True
    while gap > 1 or swapped:
        gap = int(gap / SHRINK)
        if gap < 1:
            gap = 1
        swapped = False
        for parity in (0, 1):
            idx = _brick_indices(n, gap, parity)
            if idx.size == 0:
                continue
            left = values[:, idx]
            right = values[:, idx + gap]
            mask = left > right
            if mask.any():
                lo = np.where(mask, right, left)
                hi = np.where(mask, left, right)
                values[:, idx] = lo
                values[:, idx + gap] = hi
                swapped = True
        passes += 1
        if passes > max_passes:  # pragma: no cover - safety net
            raise RuntimeError("comb_sort_rows failed to converge")
    return passes
