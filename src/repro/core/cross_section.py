"""Algorithm 1: the differential scattering cross-section.

::

    start, end <- range(MPI_Rank, MPI_Size)
    0 <- mdnorm, binmd
    for i = start to end do
        event_data <- LOAD events, rotations, charge, ...
        mdnorm += MDNorm(events)   <- CPU/GPU
        binmd  += BinMD(events)    <- CPU/GPU
    end for
    cross_section <- MPI_Reduce(binmd) / MPI_Reduce(mdnorm)

Each rank owns private histograms; ``Reduce`` combines them on the
root, which performs the guarded division.  Per-stage wall-clock is
accumulated into a :class:`~repro.util.timers.StageTimings` using the
paper's stage names (UpdateEvents / MDNorm / BinMD / Total).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import geom_cache as _gc
from repro.core.binmd import bin_events
from repro.core.checkpoint import (
    CheckpointCorruptError,
    RecoveryConfig,
)
from repro.core.geom_cache import GeomCache
from repro.core.grid import HKLGrid
from repro.core.hist3 import Hist3
from repro.core.md_event_workspace import MDEventWorkspace
from repro.core.mdnorm import mdnorm
from repro.core.sharding import (
    ShardConfig,
    resolve_executor,
    sharded_binmd,
    sharded_mdnorm,
)
from repro.crystal.symmetry import PointGroup
from repro.mpi import SUM, Comm, SequentialComm, balanced_rank_runs, rank_range
from repro.nexus.corrections import FluxSpectrum
from repro.util import faults as _faults
from repro.util import monitor as _monitor
from repro.util import trace as _trace
from repro.util import cancel as _cancel
from repro.util.cancel import CancelledError
from repro.util.timers import StageTimings
from repro.util.validation import ValidationError, require


@dataclass
class CrossSectionResult:
    """Outcome of Algorithm 1 on the root rank.

    Non-root ranks receive ``cross_section=None`` but still carry their
    local timings.
    """

    cross_section: Optional[Hist3]
    binmd: Optional[Hist3]
    mdnorm: Optional[Hist3]
    timings: StageTimings
    n_runs: int
    backend: str
    #: implementation-specific diagnostics (e.g. device transfer bytes)
    extras: Optional[dict] = None
    #: True when runs were quarantined — the result is built from the
    #: surviving runs only (recovery mode)
    degraded: bool = False
    #: per-run outcome (recovery mode, root rank): run index ->
    #: ``{"status": done|resumed|quarantined|lost, "attempts", "rank"}``
    dispositions: Optional[Dict[int, Dict[str, Any]]] = None

    @property
    def is_root(self) -> bool:
        return self.cross_section is not None

    @property
    def quarantined_runs(self) -> Tuple[int, ...]:
        if not self.dispositions:
            return ()
        return tuple(sorted(
            i for i, d in self.dispositions.items()
            if d.get("status") == "quarantined"
        ))


def _n_events(ws: MDEventWorkspace) -> int:
    """Raw event count of one run's workspace (monitor accounting).

    Prefers the ``n_events`` surface shared by :class:`EventTable` and
    the out-of-core :class:`~repro.nexus.tiles.LazyEventTable` — the
    ``np.asarray`` fallback would *materialize* a lazy table.
    """
    n = getattr(ws.events, "n_events", None)
    if n is not None:
        return int(n)
    try:
        return int(ws.events.data.shape[0])
    except AttributeError:  # pragma: no cover - bare-array workspaces
        return int(np.asarray(ws.events).shape[0])


def _is_lazy(events: Any) -> bool:
    """Out-of-core event table? (duck-typed on the window/chunk surface
    to avoid importing the nexus tile layer at module import time)."""
    return hasattr(events, "window") and hasattr(events, "chunk_bounds")


#: degenerate fan-out for out-of-core runs reduced without ``--shards``:
#: the record/replay machinery still cuts the run into budget-capped,
#: chunk-aligned windows (bit-identical for every cut), it just does so
#: in-process with no pool
_OOC_FALLBACK = ShardConfig(n_shards=1, workers=1)


def _rank_block(
    n_runs: int, comm: Comm, run_weights: Optional[Sequence[float]]
) -> Tuple[int, int]:
    """This rank's contiguous run block — weight-balanced when the run
    manifest supplies per-run event counts, classic equal-count block
    otherwise (the two coincide for uniform weights)."""
    if run_weights is None:
        return rank_range(n_runs, comm.rank, comm.size)
    require(len(run_weights) == n_runs,
            f"run_weights has {len(run_weights)} entries for {n_runs} runs")
    return balanced_rank_runs(run_weights, comm.size)[comm.rank]


def _shard_beat(
    monitor: Any, comm: Comm, i: int, stage: str
) -> Optional[Callable[[int, int], None]]:
    """Per-shard heartbeat callback for the live monitor (PR 4), so a
    wedged shard ages a ``run:<i>/<stage>/shard:<s>`` site rather than
    hiding behind the run-level heartbeat."""
    if not monitor.enabled:
        return None

    def beat(s: int, n_shards: int) -> None:
        monitor.heartbeat(
            comm.rank, site=f"run:{i}/{stage}/shard:{s + 1}of{n_shards}"
        )

    return beat


def compute_cross_section(
    load_run: Callable[[int], MDEventWorkspace],
    n_runs: int,
    grid: HKLGrid,
    point_group: PointGroup,
    flux: FluxSpectrum,
    det_directions: np.ndarray,
    solid_angles: np.ndarray,
    *,
    comm: Optional[Comm] = None,
    backend: Optional[str] = None,
    sort_impl: str = "comb",
    scatter_impl: str = "atomic",
    timings: Optional[StageTimings] = None,
    binmd_impl: Optional[Callable] = None,
    mdnorm_impl: Optional[Callable] = None,
    cache: Optional[GeomCache] = None,
    recovery: Optional[RecoveryConfig] = None,
    shards: Optional[ShardConfig] = None,
    run_weights: Optional[Sequence[float]] = None,
    executor: Optional[str] = None,
    schedule: Optional[Any] = None,
) -> CrossSectionResult:
    """Run Algorithm 1.

    Parameters
    ----------
    load_run:
        ``load_run(i) -> MDEventWorkspace`` for run index ``i`` — the
        timed ``UpdateEvents`` stage (usually ``load_md`` on a file).
    n_runs:
        Total number of experiment runs (files).
    grid, point_group, flux:
        Output grid, sample symmetry, incident spectrum.
    det_directions, solid_angles:
        Instrument geometry + vanadium weights for MDNorm.
    comm:
        Simulated MPI communicator; None = single rank.
    backend:
        jacc back end for both kernels; None = process default.
    binmd_impl / mdnorm_impl:
        Alternative kernel implementations with the same signatures as
        :func:`repro.core.binmd.bin_events` (minus ``backend``) and
        :func:`repro.core.mdnorm.mdnorm` — this is how the proxy
        applications plug their optimized kernels into the identical
        Algorithm-1 loop.
    cache:
        Geometry cache shared by the MDNorm/BinMD hot path; None uses
        the process default, :data:`repro.core.geom_cache.DISABLED`
        opts out.  Entries are tagged ``"run:<i>"`` for targeted
        invalidation.  Cache statistics are reported in
        ``result.extras["geom_cache"]`` on the root rank.
    recovery:
        When given, the loop runs under the fault-tolerant protocol
        (see :func:`_compute_cross_section_recovering`): per-run
        retry/backoff, quarantine of runs that exhaust their retry
        budget, checkpoint/resume of per-run deltas, and redistribution
        of a crashed rank's unfinished runs to the survivors.  ``None``
        keeps the historical fail-fast loop byte-for-byte.
    shards:
        When given, each owned run's MDNorm fans out over detector
        shards and its BinMD over event shards on the node-local
        process pool (:func:`repro.core.sharding.sharded_mdnorm` /
        :func:`~repro.core.sharding.sharded_binmd`) — the second level
        of the hierarchical decomposition.  The result is bit-identical
        to the unsharded serial loop for every shard/worker count;
        ``None`` keeps the single-level loop byte-for-byte.  Ignored
        for a stage whose ``*_impl`` override is set (the override owns
        its own parallelism).
    run_weights:
        Optional per-run event weights (from the run manifest).  When
        given, ranks take weight-balanced contiguous run blocks
        (:func:`repro.mpi.balanced_rank_runs`) instead of equal-count
        blocks — the outer level of the 2-D decomposition.
    executor:
        Campaign execution strategy from the registry in
        :mod:`repro.core.sharding`.  ``None``/``"static"`` is the fixed
        rank-block plan below; ``"stealing"`` dispatches to the elastic
        work-stealing executor (:mod:`repro.mpi.stealing`), whose
        result is bit-identical to the static recovering plan for every
        steal schedule.
    schedule:
        Stealing executor only: a
        :class:`repro.util.schedule.ScheduleController` driving steal
        and birth/leave/death decisions (None = seeded default).
    """
    runner = resolve_executor(executor)
    if runner is not None:
        return runner(
            load_run, n_runs, grid, point_group, flux,
            det_directions, solid_angles,
            comm=comm, backend=backend, sort_impl=sort_impl,
            scatter_impl=scatter_impl, timings=timings,
            binmd_impl=binmd_impl, mdnorm_impl=mdnorm_impl,
            cache=cache, recovery=recovery, shards=shards,
            run_weights=run_weights, schedule=schedule,
        )
    if schedule is not None:
        raise ValidationError(
            "schedule is only meaningful with a dynamic executor "
            "(got executor=%r)" % (executor,)
        )
    if recovery is not None:
        return _compute_cross_section_recovering(
            load_run, n_runs, grid, point_group, flux,
            det_directions, solid_angles,
            comm=comm, backend=backend, sort_impl=sort_impl,
            scatter_impl=scatter_impl, timings=timings,
            binmd_impl=binmd_impl, mdnorm_impl=mdnorm_impl,
            cache=cache, recovery=recovery, shards=shards,
            run_weights=run_weights,
        )
    require(n_runs >= 1, "need at least one run")
    cache = _gc.resolve(cache)
    comm = comm or SequentialComm()
    timings = timings or StageTimings(label=f"cross-section[{backend or 'default'}]")
    tracer = _trace.active_tracer()

    binmd_hist = Hist3(grid, track_errors=True)
    mdnorm_hist = Hist3(grid)

    start, end = _rank_block(n_runs, comm, run_weights)
    monitor = _monitor.active_monitor()
    if monitor.enabled:
        monitor.start_campaign(n_runs, comm.size)
        monitor.assign_runs(comm.rank, end - start)
    with tracer.span(
        "cross_section",
        kind="algorithm",
        backend=backend or "default",
        n_runs=int(n_runs),
        mpi_rank=int(comm.rank),
        mpi_size=int(comm.size),
        **({"n_shards": int(shards.n_shards)} if shards is not None else {}),
    ), timings.stage("Total"):
        for i in range(start, end):
            with tracer.span("run", kind="run", run=int(i)):
                if monitor.enabled:
                    monitor.heartbeat(
                        comm.rank, site=f"run:{i}/UpdateEvents", run=i
                    )
                with timings.stage("UpdateEvents"):
                    ws = load_run(i)
                if ws.ub_matrix is None:
                    raise ValidationError(
                        f"run index {i} carries no UB matrix; Algorithm 1 needs it"
                    )
                event_transforms = grid.transforms_for(ws.ub_matrix, point_group)
                traj_transforms = grid.transforms_for(
                    ws.ub_matrix, point_group, goniometer=ws.goniometer
                )
                if monitor.enabled:
                    monitor.heartbeat(comm.rank, site=f"run:{i}/MDNorm")
                with timings.stage("MDNorm"):
                    if mdnorm_impl is not None:
                        mdnorm_impl(
                            mdnorm_hist,
                            traj_transforms,
                            det_directions,
                            solid_angles,
                            flux,
                            ws.momentum_band,
                            charge=ws.proton_charge,
                        )
                    elif shards is not None:
                        sharded_mdnorm(
                            mdnorm_hist,
                            traj_transforms,
                            det_directions,
                            solid_angles,
                            flux,
                            ws.momentum_band,
                            shards=shards,
                            charge=ws.proton_charge,
                            backend=backend,
                            cache=cache,
                            cache_tag=f"run:{i}",
                            run=i,
                            on_shard=_shard_beat(monitor, comm, i, "MDNorm"),
                        )
                    else:
                        mdnorm(
                            mdnorm_hist,
                            traj_transforms,
                            det_directions,
                            solid_angles,
                            flux,
                            ws.momentum_band,
                            charge=ws.proton_charge,
                            backend=backend,
                            sort_impl=sort_impl,
                            scatter_impl=scatter_impl,
                            cache=cache,
                            cache_tag=f"run:{i}",
                        )
                if monitor.enabled:
                    monitor.heartbeat(comm.rank, site=f"run:{i}/BinMD")
                with timings.stage("BinMD"):
                    if binmd_impl is not None:
                        binmd_impl(binmd_hist, ws.events, event_transforms)
                    elif shards is not None or _is_lazy(ws.events):
                        sharded_binmd(
                            binmd_hist,
                            ws.events,
                            event_transforms,
                            shards=shards if shards is not None else _OOC_FALLBACK,
                            run=i,
                            on_shard=_shard_beat(monitor, comm, i, "BinMD"),
                        )
                    else:
                        bin_events(
                            binmd_hist,
                            ws.events,
                            event_transforms,
                            backend=backend,
                            scatter_impl=scatter_impl,
                            cache=cache,
                            cache_tag=f"run:{i}",
                        )
                if monitor.enabled:
                    monitor.run_completed(
                        comm.rank, i, events=float(_n_events(ws))
                    )

        # MPI_Reduce of both histograms onto the root
        with tracer.span("mpi_reduce", kind="mpi",
                         mpi_rank=int(comm.rank), mpi_size=int(comm.size)):
            binmd_total = np.empty_like(binmd_hist.signal) if comm.rank == 0 else None
            mdnorm_total = np.empty_like(mdnorm_hist.signal) if comm.rank == 0 else None
            comm.Reduce(binmd_hist.signal, binmd_total, op=SUM, root=0)
            comm.Reduce(mdnorm_hist.signal, mdnorm_total, op=SUM, root=0)

        if comm.rank != 0:
            return CrossSectionResult(
                cross_section=None,
                binmd=None,
                mdnorm=None,
                timings=timings,
                n_runs=n_runs,
                backend=backend or "default",
            )

        binmd_out = Hist3(grid, signal=binmd_total)
        mdnorm_out = Hist3(grid, signal=mdnorm_total)
        cross = binmd_out.divide(mdnorm_out)
    if monitor.enabled:
        monitor.finish_campaign()
    extras = {"geom_cache": cache.stats.snapshot()} if cache.enabled else None
    return CrossSectionResult(
        cross_section=cross,
        binmd=binmd_out,
        mdnorm=mdnorm_out,
        timings=timings,
        n_runs=n_runs,
        backend=backend or "default",
        extras=extras,
    )


# ---------------------------------------------------------------------------
# the fault-tolerant loop (PR 3)
# ---------------------------------------------------------------------------

def _compute_cross_section_recovering(
    load_run: Callable[[int], MDEventWorkspace],
    n_runs: int,
    grid: HKLGrid,
    point_group: PointGroup,
    flux: FluxSpectrum,
    det_directions: np.ndarray,
    solid_angles: np.ndarray,
    *,
    comm: Optional[Comm],
    backend: Optional[str],
    sort_impl: str,
    scatter_impl: str,
    timings: Optional[StageTimings],
    binmd_impl: Optional[Callable],
    mdnorm_impl: Optional[Callable],
    cache: Optional[GeomCache],
    recovery: RecoveryConfig,
    shards: Optional[ShardConfig] = None,
    run_weights: Optional[Sequence[float]] = None,
) -> CrossSectionResult:
    """Algorithm 1 under the failure model.

    Differences from the fail-fast loop:

    * each run's contribution is computed into **fresh scratch
      histograms** and only added to the rank's running totals on
      success, so a failed attempt never leaves a partial deposit
      (retry safety);
    * each run is wrapped in :func:`repro.util.faults.retry_call` —
      transient failures (I/O, corrupt payloads, kernel errors) are
      retried with backoff, and every retry invalidates the run's
      geometry-cache entries first (a corrupt read may have populated
      the cache from a corrupt source);
    * a run that exhausts its retry budget is **quarantined** (when
      ``recovery.quarantine``): its disposition is durably recorded and
      the campaign completes *degraded* on the survivors;
    * with a checkpoint manager, each completed run's delta is
      persisted; with ``recovery.resume`` completed runs replay from
      disk (digest-verified) instead of recomputing.  The final
      histograms are then rebuilt by summing the per-run deltas in
      **ascending run order** — the float-addition order is therefore
      independent of rank layout, crashes and resume points, which is
      what makes kill-and-resume bit-identical;
    * an injected :class:`~repro.util.faults.RankCrashError` marks the
      rank dead: its unfinished runs are published to the world
      (``Comm.mark_failed``), the survivors' next barrier completes
      with the remaining parties, and the dead rank's backlog is
      redistributed round-robin over the alive ranks.  A second crash
      during the takeover phase is *not* re-redistributed — it fails
      loudly through the runner (double-fault policy).
    """
    require(n_runs >= 1, "need at least one run")
    cache = _gc.resolve(cache)
    comm = comm or SequentialComm()
    timings = timings or StageTimings(label=f"cross-section[{backend or 'default'}]")
    tracer = _trace.active_tracer()
    ckpt = recovery.checkpoint

    binmd_hist = Hist3(grid, track_errors=True)
    mdnorm_hist = Hist3(grid)
    dispositions: Dict[int, Dict[str, Any]] = {}
    done_local: set = set()
    monitor = _monitor.active_monitor()
    events_seen: Dict[int, int] = {}

    def compute_delta(i: int) -> Tuple[Hist3, Hist3, int]:
        """One run's contribution in scratch histograms (with retry)."""
        attempts_used = [0]

        def attempt(attempt_no: int) -> Tuple[Hist3, Hist3]:
            attempts_used[0] = attempt_no
            if monitor.enabled:
                # announce the run *before* its fault point so a slow /
                # wedged run ages this heartbeat (stall detection)
                monitor.heartbeat(
                    comm.rank, site=f"run:{i}/UpdateEvents", run=i
                )
            _faults.fault_point("run", run=i)
            scratch_b = Hist3(grid, track_errors=True)
            scratch_m = Hist3(grid)
            with timings.stage("UpdateEvents"):
                ws = load_run(i)
            if ws.ub_matrix is None:
                raise ValidationError(
                    f"run index {i} carries no UB matrix; Algorithm 1 needs it"
                )
            event_transforms = grid.transforms_for(ws.ub_matrix, point_group)
            traj_transforms = grid.transforms_for(
                ws.ub_matrix, point_group, goniometer=ws.goniometer
            )
            if monitor.enabled:
                monitor.heartbeat(comm.rank, site=f"run:{i}/MDNorm")
            with timings.stage("MDNorm"):
                _faults.fault_point("kernel.mdnorm", run=i)
                if mdnorm_impl is not None:
                    mdnorm_impl(
                        scratch_m, traj_transforms, det_directions,
                        solid_angles, flux, ws.momentum_band,
                        charge=ws.proton_charge,
                    )
                elif shards is not None:
                    sharded_mdnorm(
                        scratch_m, traj_transforms, det_directions,
                        solid_angles, flux, ws.momentum_band,
                        shards=shards, charge=ws.proton_charge,
                        backend=backend, cache=cache, cache_tag=f"run:{i}",
                        run=i,
                        on_shard=_shard_beat(monitor, comm, i, "MDNorm"),
                    )
                else:
                    mdnorm(
                        scratch_m, traj_transforms, det_directions,
                        solid_angles, flux, ws.momentum_band,
                        charge=ws.proton_charge, backend=backend,
                        sort_impl=sort_impl, scatter_impl=scatter_impl,
                        cache=cache, cache_tag=f"run:{i}",
                    )
            if monitor.enabled:
                monitor.heartbeat(comm.rank, site=f"run:{i}/BinMD")
            with timings.stage("BinMD"):
                _faults.fault_point("kernel.binmd", run=i)
                if binmd_impl is not None:
                    binmd_impl(scratch_b, ws.events, event_transforms)
                elif shards is not None or _is_lazy(ws.events):
                    sharded_binmd(
                        scratch_b, ws.events, event_transforms,
                        shards=shards if shards is not None else _OOC_FALLBACK,
                        run=i,
                        on_shard=_shard_beat(monitor, comm, i, "BinMD"),
                    )
                else:
                    bin_events(
                        scratch_b, ws.events, event_transforms,
                        backend=backend, scatter_impl=scatter_impl,
                        cache=cache, cache_tag=f"run:{i}",
                    )
            events_seen[i] = _n_events(ws)
            return scratch_b, scratch_m

        def on_retry(exc: BaseException, attempt_no: int) -> None:
            # a corrupt read may have seeded the cache from bad bytes
            cache.invalidate(f"run:{i}")

        # deadline propagation: a campaign deadline caps every per-run
        # retry backoff, so retries never sleep past the cancel token
        retry_kwargs: Dict[str, Any] = {}
        if recovery.cancel is not None and recovery.cancel.deadline is not None:
            retry_kwargs["deadline"] = recovery.cancel.deadline
            retry_kwargs["clock"] = recovery.cancel.clock
        scratch_b, scratch_m = _faults.retry_call(
            attempt,
            site=f"run[{i}]",
            policy=recovery.retry,
            retryable=recovery.retryable,
            on_retry=on_retry,
            **retry_kwargs,
        )
        return scratch_b, scratch_m, attempts_used[0]

    def process_run(i: int) -> None:
        """Resume-or-compute run ``i``; quarantine on exhausted retries."""
        with tracer.span("run", kind="run", run=int(i)):
            if ckpt is not None and recovery.resume:
                if ckpt.is_quarantined(i):
                    dispositions[i] = {"status": "quarantined",
                                       "rank": int(comm.rank),
                                       "resumed": True}
                    if monitor.enabled:
                        monitor.record_quarantine(comm.rank, i)
                    done_local.add(i)
                    return
                if ckpt.has_run(i):
                    try:
                        delta = ckpt.load_run(i, grid)
                    except CheckpointCorruptError:
                        tracer.count("checkpoint.corrupt")
                        cache.invalidate(f"run:{i}")
                    else:
                        binmd_hist.signal += delta.binmd_signal
                        if (binmd_hist.error_sq is not None
                                and delta.binmd_error_sq is not None):
                            binmd_hist.error_sq += delta.binmd_error_sq
                        mdnorm_hist.signal += delta.mdnorm_signal
                        rec = ckpt.run_record(i) or {}
                        dispositions[i] = {
                            "status": "resumed",
                            "rank": int(comm.rank),
                            "attempts": int(rec.get("attempts", 1)),
                        }
                        tracer.count("checkpoint.resumed")
                        if monitor.enabled:
                            monitor.record_resume(comm.rank, i)
                        done_local.add(i)
                        return
            try:
                scratch_b, scratch_m, attempts = compute_delta(i)
            except _faults.RetryExhaustedError as exc:
                if not recovery.quarantine:
                    raise
                reason = repr(exc.last)
                if ckpt is not None:
                    ckpt.quarantine_run(i, reason)
                dispositions[i] = {"status": "quarantined",
                                   "rank": int(comm.rank),
                                   "attempts": int(exc.attempts),
                                   "reason": reason}
                tracer.count("quarantine.runs")
                if monitor.enabled:
                    monitor.record_quarantine(comm.rank, i)
                done_local.add(i)
                return
            binmd_hist.add(scratch_b)
            mdnorm_hist.add(scratch_m)
            if ckpt is not None:
                ckpt.save_run(i, scratch_b, scratch_m,
                              attempts=attempts, rank=comm.rank)
            dispositions[i] = {"status": "done", "rank": int(comm.rank),
                               "attempts": int(attempts)}
            if monitor.enabled:
                monitor.run_completed(
                    comm.rank, i, events=float(events_seen.get(i, 0))
                )
            done_local.add(i)

    start, end = _rank_block(n_runs, comm, run_weights)
    my_runs = list(range(start, end))
    if monitor.enabled:
        monitor.start_campaign(n_runs, comm.size)
        monitor.assign_runs(comm.rank, len(my_runs))
    with tracer.span(
        "cross_section",
        kind="algorithm",
        backend=backend or "default",
        n_runs=int(n_runs),
        mpi_rank=int(comm.rank),
        mpi_size=int(comm.size),
        recovery=True,
        **({"n_shards": int(shards.n_shards)} if shards is not None else {}),
    ), timings.stage("Total"), _cancel.cancel_scope(recovery.cancel):
        crashed = False
        for pos, i in enumerate(my_runs):
            # cooperative cancellation between durable units: every run
            # completed so far is already checkpointed, so stopping here
            # leaves the campaign resumable bit-identically
            if recovery.cancel is not None:
                try:
                    recovery.cancel.check(f"campaign (before run {i})")
                except CancelledError:
                    tracer.count("campaign.cancelled")
                    raise
            try:
                process_run(i)
            except _faults.RankCrashError:
                if comm.size == 1:
                    raise  # a lone rank cannot recover from its own death
                # durable work survives; everything else is the backlog
                if ckpt is not None:
                    leftover = [j for j in my_runs if j not in done_local]
                else:
                    leftover = list(my_runs)  # in-memory partials die with us
                comm.mark_failed({"runs": leftover})
                tracer.count("rank.crash")
                if monitor.enabled:
                    monitor.record_crash(comm.rank)
                crashed = True
                break
        if crashed:
            return CrossSectionResult(
                cross_section=None, binmd=None, mdnorm=None,
                timings=timings, n_runs=n_runs,
                backend=backend or "default",
            )

        # -- rendezvous: learn who died, adopt their backlog ---------------
        if comm.size > 1:
            comm.Barrier()
            failed = comm.failed_ranks()
            if failed:
                backlog = sorted({
                    int(r) for info in failed.values()
                    for r in info.get("runs", ())
                })
                alive = comm.alive_ranks()
                pos_in_alive = alive.index(comm.rank)
                takeover = [r for idx, r in enumerate(backlog)
                            if idx % len(alive) == pos_in_alive]
                for i in takeover:
                    if recovery.cancel is not None:
                        try:
                            recovery.cancel.check(
                                f"campaign (before takeover run {i})"
                            )
                        except CancelledError:
                            tracer.count("campaign.cancelled")
                            raise
                    # a crash here is a double fault: fail loudly
                    process_run(i)

        # -- final combine --------------------------------------------------
        alive = comm.alive_ranks()
        eff_root = alive[0]
        merged = _merge_dispositions(comm, dispositions, eff_root)

        if ckpt is not None:
            # every completed run's delta is durable: the effective root
            # rebuilds the totals by summing deltas in ascending run
            # order — bit-identical regardless of rank layout/crashes.
            comm.Barrier()
            if comm.rank != eff_root:
                return CrossSectionResult(
                    cross_section=None, binmd=None, mdnorm=None,
                    timings=timings, n_runs=n_runs,
                    backend=backend or "default",
                )
            binmd_total = np.zeros(tuple(grid.bins), dtype=np.float64)
            err_total = np.zeros(tuple(grid.bins), dtype=np.float64)
            mdnorm_total = np.zeros(tuple(grid.bins), dtype=np.float64)
            have_err = True
            for i in ckpt.completed_runs():
                delta = ckpt.load_run(i, grid)
                binmd_total += delta.binmd_signal
                if delta.binmd_error_sq is not None:
                    err_total += delta.binmd_error_sq
                else:
                    have_err = False
                mdnorm_total += delta.mdnorm_signal
            binmd_out = Hist3(grid, signal=binmd_total,
                              error_sq=err_total if have_err else None)
            mdnorm_out = Hist3(grid, signal=mdnorm_total)
            ckpt.mark_campaign_complete(
                f"runs={len(ckpt.completed_runs())} "
                f"quarantined={len(ckpt.quarantined_runs())}\n"
            )
        else:
            with tracer.span("mpi_reduce", kind="mpi",
                             mpi_rank=int(comm.rank), mpi_size=int(comm.size)):
                is_root = comm.rank == eff_root
                binmd_total = (np.empty_like(binmd_hist.signal)
                               if is_root else None)
                mdnorm_total = (np.empty_like(mdnorm_hist.signal)
                                if is_root else None)
                comm.Reduce(binmd_hist.signal, binmd_total,
                            op=SUM, root=eff_root)
                comm.Reduce(mdnorm_hist.signal, mdnorm_total,
                            op=SUM, root=eff_root)
            if comm.rank != eff_root:
                return CrossSectionResult(
                    cross_section=None, binmd=None, mdnorm=None,
                    timings=timings, n_runs=n_runs,
                    backend=backend or "default",
                )
            binmd_out = Hist3(grid, signal=binmd_total)
            mdnorm_out = Hist3(grid, signal=mdnorm_total)

        cross = binmd_out.divide(mdnorm_out)
    if monitor.enabled:
        monitor.finish_campaign()
    quarantined = sorted(
        i for i, d in merged.items() if d.get("status") == "quarantined"
    )
    extras: Dict[str, Any] = {"recovery": {
        "quarantined": quarantined,
        "failed_ranks": sorted(comm.failed_ranks()),
        "resumed": sorted(
            i for i, d in merged.items() if d.get("status") == "resumed"
        ),
    }}
    if cache.enabled:
        extras["geom_cache"] = cache.stats.snapshot()
    return CrossSectionResult(
        cross_section=cross,
        binmd=binmd_out,
        mdnorm=mdnorm_out,
        timings=timings,
        n_runs=n_runs,
        backend=backend or "default",
        extras=extras,
        degraded=bool(quarantined),
        dispositions=merged,
    )


def _merge_dispositions(
    comm: Comm,
    local: Dict[int, Dict[str, Any]],
    eff_root: int,
) -> Dict[int, Dict[str, Any]]:
    """Allgather + merge per-rank run dispositions (dead ranks excluded)."""
    if comm.size == 1:
        return dict(local)
    gathered = comm.allgather(local)
    merged: Dict[int, Dict[str, Any]] = {}
    for part in gathered:
        if part:
            merged.update(part)
    return merged
