"""Algorithm 1: the differential scattering cross-section.

::

    start, end <- range(MPI_Rank, MPI_Size)
    0 <- mdnorm, binmd
    for i = start to end do
        event_data <- LOAD events, rotations, charge, ...
        mdnorm += MDNorm(events)   <- CPU/GPU
        binmd  += BinMD(events)    <- CPU/GPU
    end for
    cross_section <- MPI_Reduce(binmd) / MPI_Reduce(mdnorm)

Each rank owns private histograms; ``Reduce`` combines them on the
root, which performs the guarded division.  Per-stage wall-clock is
accumulated into a :class:`~repro.util.timers.StageTimings` using the
paper's stage names (UpdateEvents / MDNorm / BinMD / Total).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core import geom_cache as _gc
from repro.core.binmd import bin_events
from repro.core.geom_cache import GeomCache
from repro.core.grid import HKLGrid
from repro.core.hist3 import Hist3
from repro.core.md_event_workspace import MDEventWorkspace
from repro.core.mdnorm import mdnorm
from repro.crystal.symmetry import PointGroup
from repro.mpi import SUM, Comm, SequentialComm, rank_range
from repro.nexus.corrections import FluxSpectrum
from repro.util import trace as _trace
from repro.util.timers import StageTimings
from repro.util.validation import ValidationError, require


@dataclass
class CrossSectionResult:
    """Outcome of Algorithm 1 on the root rank.

    Non-root ranks receive ``cross_section=None`` but still carry their
    local timings.
    """

    cross_section: Optional[Hist3]
    binmd: Optional[Hist3]
    mdnorm: Optional[Hist3]
    timings: StageTimings
    n_runs: int
    backend: str
    #: implementation-specific diagnostics (e.g. device transfer bytes)
    extras: Optional[dict] = None

    @property
    def is_root(self) -> bool:
        return self.cross_section is not None


def compute_cross_section(
    load_run: Callable[[int], MDEventWorkspace],
    n_runs: int,
    grid: HKLGrid,
    point_group: PointGroup,
    flux: FluxSpectrum,
    det_directions: np.ndarray,
    solid_angles: np.ndarray,
    *,
    comm: Optional[Comm] = None,
    backend: Optional[str] = None,
    sort_impl: str = "comb",
    scatter_impl: str = "atomic",
    timings: Optional[StageTimings] = None,
    binmd_impl: Optional[Callable] = None,
    mdnorm_impl: Optional[Callable] = None,
    cache: Optional[GeomCache] = None,
) -> CrossSectionResult:
    """Run Algorithm 1.

    Parameters
    ----------
    load_run:
        ``load_run(i) -> MDEventWorkspace`` for run index ``i`` — the
        timed ``UpdateEvents`` stage (usually ``load_md`` on a file).
    n_runs:
        Total number of experiment runs (files).
    grid, point_group, flux:
        Output grid, sample symmetry, incident spectrum.
    det_directions, solid_angles:
        Instrument geometry + vanadium weights for MDNorm.
    comm:
        Simulated MPI communicator; None = single rank.
    backend:
        jacc back end for both kernels; None = process default.
    binmd_impl / mdnorm_impl:
        Alternative kernel implementations with the same signatures as
        :func:`repro.core.binmd.bin_events` (minus ``backend``) and
        :func:`repro.core.mdnorm.mdnorm` — this is how the proxy
        applications plug their optimized kernels into the identical
        Algorithm-1 loop.
    cache:
        Geometry cache shared by the MDNorm/BinMD hot path; None uses
        the process default, :data:`repro.core.geom_cache.DISABLED`
        opts out.  Entries are tagged ``"run:<i>"`` for targeted
        invalidation.  Cache statistics are reported in
        ``result.extras["geom_cache"]`` on the root rank.
    """
    require(n_runs >= 1, "need at least one run")
    cache = _gc.resolve(cache)
    comm = comm or SequentialComm()
    timings = timings or StageTimings(label=f"cross-section[{backend or 'default'}]")
    tracer = _trace.active_tracer()

    binmd_hist = Hist3(grid, track_errors=True)
    mdnorm_hist = Hist3(grid)

    start, end = rank_range(n_runs, comm.rank, comm.size)
    with tracer.span(
        "cross_section",
        kind="algorithm",
        backend=backend or "default",
        n_runs=int(n_runs),
        mpi_rank=int(comm.rank),
        mpi_size=int(comm.size),
    ), timings.stage("Total"):
        for i in range(start, end):
            with tracer.span("run", kind="run", run=int(i)):
                with timings.stage("UpdateEvents"):
                    ws = load_run(i)
                if ws.ub_matrix is None:
                    raise ValidationError(
                        f"run index {i} carries no UB matrix; Algorithm 1 needs it"
                    )
                event_transforms = grid.transforms_for(ws.ub_matrix, point_group)
                traj_transforms = grid.transforms_for(
                    ws.ub_matrix, point_group, goniometer=ws.goniometer
                )
                with timings.stage("MDNorm"):
                    if mdnorm_impl is not None:
                        mdnorm_impl(
                            mdnorm_hist,
                            traj_transforms,
                            det_directions,
                            solid_angles,
                            flux,
                            ws.momentum_band,
                            charge=ws.proton_charge,
                        )
                    else:
                        mdnorm(
                            mdnorm_hist,
                            traj_transforms,
                            det_directions,
                            solid_angles,
                            flux,
                            ws.momentum_band,
                            charge=ws.proton_charge,
                            backend=backend,
                            sort_impl=sort_impl,
                            scatter_impl=scatter_impl,
                            cache=cache,
                            cache_tag=f"run:{i}",
                        )
                with timings.stage("BinMD"):
                    if binmd_impl is not None:
                        binmd_impl(binmd_hist, ws.events, event_transforms)
                    else:
                        bin_events(
                            binmd_hist,
                            ws.events,
                            event_transforms,
                            backend=backend,
                            scatter_impl=scatter_impl,
                            cache=cache,
                            cache_tag=f"run:{i}",
                        )

        # MPI_Reduce of both histograms onto the root
        with tracer.span("mpi_reduce", kind="mpi",
                         mpi_rank=int(comm.rank), mpi_size=int(comm.size)):
            binmd_total = np.empty_like(binmd_hist.signal) if comm.rank == 0 else None
            mdnorm_total = np.empty_like(mdnorm_hist.signal) if comm.rank == 0 else None
            comm.Reduce(binmd_hist.signal, binmd_total, op=SUM, root=0)
            comm.Reduce(mdnorm_hist.signal, mdnorm_total, op=SUM, root=0)

        if comm.rank != 0:
            return CrossSectionResult(
                cross_section=None,
                binmd=None,
                mdnorm=None,
                timings=timings,
                n_runs=n_runs,
                backend=backend or "default",
            )

        binmd_out = Hist3(grid, signal=binmd_total)
        mdnorm_out = Hist3(grid, signal=mdnorm_total)
        cross = binmd_out.divide(mdnorm_out)
    extras = {"geom_cache": cache.stats.snapshot()} if cache.enabled else None
    return CrossSectionResult(
        cross_section=cross,
        binmd=binmd_out,
        mdnorm=mdnorm_out,
        timings=timings,
        n_runs=n_runs,
        backend=backend or "default",
        extras=extras,
    )
