"""Intra-run shard executor: the second level of the hierarchy.

The paper's Algorithm 1 parallelizes *across* runs (one MPI rank per
block of files), which caps strong scaling at the run count — 36 for
Benzil, 22 for Bixbyite.  This module adds the level below: a rank that
owns a run fans its MDNorm out over **detector ranges** and its BinMD
out over **event ranges** (the contiguous shards planned by
:func:`repro.mpi.decomposition.shard_ranges`), executed on the node's
persistent process pool (:data:`repro.jacc.workers.GLOBAL_POOL`) with
array captures in ``multiprocessing.shared_memory``.

Determinism argument (DESIGN.md §6f).  Kernel *element* bodies deposit
into the histogram in a fixed (op-major, index-minor) order; float
addition is non-associative, so per-shard partial histograms would
drift in the last ulp and depend on the shard count.  Shards therefore
do not accumulate — they **record**: every shard task runs the scalar
element body over ``(all ops) × (its contiguous index range)`` against
a :class:`~repro.jacc.multiproc.RecordingHist3` and returns one
deposit log *per op*.  The parent replays the logs with ``np.add.at``
(unbuffered, element-order-sequential) interleaved as

    for op in ops: for shard in ascending order: replay(log[shard][op])

Ascending contiguous shards of the inner axis, walked op-major, is
*exactly* the serial backend's iteration order — so the sharded result
is **bit-identical to the unsharded serial result for every shard
count and every worker count**, including the in-process ``workers=1``
degenerate pool (which runs the same record/replay path).

Fault model: a shard that dies with the pool (worker killed, e.g. OOM)
surfaces as :class:`ShardExecutionError` — an ``OSError`` subclass, so
the PR 3 run-level retry/quarantine protocol treats it as transient,
rebuilds the pool, and re-executes the *run*; checkpoints stay per-run
(a run's delta is only saved after all its shards replayed), so
kill-one-shard + resume is bit-identical to an uninterrupted campaign.
Each shard dispatch passes a :func:`repro.util.faults.fault_point`
(sites ``shard.mdnorm`` / ``shard.binmd``) and reports completion
through ``on_shard`` so the PR 4 monitor can heartbeat per shard.
"""

from __future__ import annotations

import importlib
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import geom_cache as _gc
from repro.core.binmd import _bin_events_element
from repro.core.geom_cache import GeomCache, GeomEntry
from repro.core.hist3 import Hist3
from repro.core.intersections import (
    detector_activity,
    fill_crossings_scalar,
    k_window,
    trajectory_directions,
)
from repro.core.mdnorm import _Scratch, _mdnorm_element, max_intersections
from repro.jacc.kernels import Captures
from repro.jacc.multiproc import (
    RecordingHist3,
    _close_worker_shm,
    _open_captures,
    _Transport,
    replay_deposits,
)
from repro.jacc.workers import GLOBAL_POOL, PROCS_ENV, parse_worker_count, resolve_workers
from repro.mpi.decomposition import (
    lazy_table_ranges,
    range_stored_nbytes,
    shard_ranges,
    weighted_shard_ranges,
)
from repro.nexus.corrections import FluxSpectrum
from repro.nexus.events import EventTable
from repro.nexus.tiles import LazyEventTable, read_window
from repro.util import cancel as _cancel
from repro.util import faults as _faults
from repro.util import trace as _trace
from repro.util.validation import require

#: one deposit log: (flat_idx, weights, err_sq|None)
Log = Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]


class ShardExecutionError(OSError):
    """A shard task died with its worker (pool broke mid-run).

    Subclasses ``OSError`` deliberately: the PR 3 recovery taxonomy
    (:func:`repro.util.faults.default_retryable`) treats OS-level
    resource failures as transient, so a broken pool triggers the
    run-level retry — the pool is disposed first, so the retry gets a
    fresh one.
    """


@dataclass(frozen=True)
class ShardConfig:
    """How to fan one run out across local shards.

    Parameters
    ----------
    n_shards:
        Number of contiguous shards to cut the inner axis into
        (detectors for MDNorm, events for BinMD).  ``1`` still runs
        the shard machinery (record + replay) — results are identical
        for every value, only the fan-out width changes.
    workers:
        Process-pool size; ``None`` resolves ``REPRO_NUM_PROCS`` /
        the CPU count (validated by the shared parser).  ``1`` executes
        the shards in-process through the same record/replay path.
    balanced:
        Cut MDNorm's detector axis by per-detector *work* (live
        trajectories from :func:`repro.core.intersections.
        detector_activity`) instead of by count.  Shard boundaries
        never change the result — the replay is serial-order either
        way — only how evenly the fan-out loads the pool.
    """

    n_shards: int
    workers: Optional[int] = None
    balanced: bool = False

    def __post_init__(self) -> None:
        parse_worker_count(self.n_shards, source="n_shards")
        if self.workers is not None:
            parse_worker_count(self.workers, source="shard workers")

    @property
    def effective_workers(self) -> int:
        return resolve_workers(PROCS_ENV, self.workers)

    @classmethod
    def from_options(
        cls,
        shards: Optional[int],
        workers: Optional[int] = None,
        balanced: bool = False,
    ) -> Optional["ShardConfig"]:
        """CLI adapter: ``--shards N [--shard-workers W]``; None when
        sharding was not requested."""
        if shards is None:
            return None
        return cls(n_shards=int(shards), workers=workers, balanced=balanced)


# ---------------------------------------------------------------------------
# worker side (module-level: picklable under any start method)
# ---------------------------------------------------------------------------

def _shard_body(task: Dict[str, Any], ctx: Captures,
                rec: RecordingHist3) -> List[Log]:
    element = task["element"]
    n_outer = int(task["n_outer"])
    a, b = task["range"]
    window = task.get("window")
    if window is not None:
        # out-of-core shard: the events capture is this shard's bounded
        # window, iterated with *local* indices.  The element body reads
        # ``ctx.events[j, COL_*]`` only, so local (0, b-a) iteration over
        # the window produces deposit logs bit-identical to global
        # (a, b) iteration over the full table.
        ctx = Captures(**{**vars(ctx), "events": window})
        a, b = 0, int(window.shape[0])
    logs: List[Log] = []
    for n in range(n_outer):
        for j in range(a, b):
            element(ctx, n, j)
        logs.append(rec.harvest_reset())
    return logs


def _shard_worker(task: Dict[str, Any]) -> List[Log]:
    """Run one shard's (ops × index-range) element loop in a worker."""
    ref = task.get("window_ref")
    if ref is not None:
        # shard-parallel I/O: each worker decodes only its own chunks,
        # straight from the file — the table never exists in any process
        task = dict(task, window=read_window(*ref))
    ctx, opened, hists = _open_captures(task["captures"])
    try:
        return _shard_body(task, ctx, hists["hist"])
    finally:
        ctx = None  # noqa: F841 - drop shm views before closing buffers
        _close_worker_shm(opened)


# ---------------------------------------------------------------------------
# the executor core
# ---------------------------------------------------------------------------

def _run_shards(
    op_name: str,
    captures: Captures,
    element: Callable[..., Any],
    n_outer: int,
    n_inner: int,
    shards: ShardConfig,
    *,
    run: Optional[int] = None,
    on_shard: Optional[Callable[[int, int], None]] = None,
    weights: Optional[np.ndarray] = None,
    ranges: Optional[List[Tuple[int, int]]] = None,
    lazy_events: Optional[LazyEventTable] = None,
) -> None:
    """Execute ``element`` over ``(n_outer, n_inner)`` as contiguous
    inner-axis shards, then replay the op-segmented deposit logs in
    serial order into ``captures.hist``.  ``weights`` (one per inner
    item) switches the cut to work-balanced boundaries; explicit
    ``ranges`` (chunk-aligned, possibly more than ``shards.n_shards``)
    override both.  With ``lazy_events`` the captures carry no event
    table: each shard materializes only its own bounded window — via
    the parent's budgeted tile cache in-process, or by decoding its own
    chunks from the file in pool workers."""
    hist = captures.hist
    if ranges is None:
        if weights is not None:
            ranges = weighted_shard_ranges(weights, shards.n_shards)
        else:
            ranges = shard_ranges(n_inner, shards.n_shards)
    n_ranges = len(ranges)
    workers = shards.effective_workers
    tracer = _trace.active_tracer()
    track_errors = getattr(hist, "flat_error_sq", None) is not None
    fault_site = f"shard.{op_name}"
    cancel = _cancel.current_cancel()

    with tracer.span(
        f"{op_name}.shards",
        kind="shard_fanout",
        op=op_name,
        n_shards=int(n_ranges),
        workers=int(workers),
        n_outer=int(n_outer),
        n_inner=int(n_inner),
        **({"run": int(run)} if run is not None else {}),
    ):
        per_shard: List[List[Log]] = []
        if workers == 1:
            # in-process degenerate pool: same record/replay path, no IPC
            rec = RecordingHist3(hist.grid, track_errors)
            inline_ctx = Captures(**{**vars(captures), "hist": rec})
            for s, (a, b) in enumerate(ranges):
                if cancel is not None:
                    # between shards: deposits so far are discarded and
                    # the whole run recomputes on resume (bit-identical)
                    cancel.check(f"{op_name} shard fan-out")
                with tracer.span(
                    f"shard:{op_name}", kind="shard", shard=int(s),
                    lanes=int(n_outer * (b - a)),
                ):
                    _faults.fault_point(fault_site, shard=s, run=run)
                    task = dict(element=element, n_outer=n_outer, range=(a, b))
                    if lazy_events is not None:
                        # bounded window through the run's LRU tile cache
                        task["window"] = lazy_events.window(a, b)
                    per_shard.append(_shard_body(task, inline_ctx, rec))
                if on_shard is not None:
                    on_shard(s, n_ranges)
        else:
            # the pooled path checks once before dispatch: cancelling
            # mid-collection would tear down the shared transport while
            # workers still map it, so in-flight shards run to completion
            if cancel is not None:
                cancel.check(f"{op_name} shard fan-out")
            transport = _Transport(captures)
            try:
                tasks = [
                    dict(
                        element=element,
                        n_outer=n_outer,
                        range=(a, b),
                        captures=transport.payload,
                        **(
                            {"window_ref": (
                                lazy_events.path, lazy_events.dataset_path, a, b
                            )}
                            if lazy_events is not None
                            else {}
                        ),
                    )
                    for a, b in ranges
                ]
                try:
                    pool = GLOBAL_POOL.executor(workers)
                    futures = [pool.submit(_shard_worker, t) for t in tasks]
                    for s, future in enumerate(futures):
                        with tracer.span(
                            f"shard:{op_name}", kind="shard", shard=int(s),
                            lanes=int(n_outer * (ranges[s][1] - ranges[s][0])),
                        ):
                            _faults.fault_point(fault_site, shard=s, run=run)
                            per_shard.append(future.result())
                        if on_shard is not None:
                            on_shard(s, n_ranges)
                except BrokenProcessPool as exc:
                    GLOBAL_POOL.dispose()
                    raise ShardExecutionError(
                        f"shard pool broke during {op_name} "
                        f"(run={run}, shards={shards.n_shards}); pool disposed"
                    ) from exc
            finally:
                transport.close()

        # serial-order replay: op-major, ascending contiguous shards —
        # exactly the unsharded serial iteration order, so the per-bin
        # float fold is bit-identical to the serial back end.
        for n in range(n_outer):
            replay_deposits(hist, [logs[n] for logs in per_shard])
        tracer.count(f"{op_name}.shard_tasks", len(ranges))


# ---------------------------------------------------------------------------
# shard contexts: one run-stage's captures + planned ranges, reusable by
# any executor (the static fan-out below, the stealing executor in
# repro.mpi.stealing)
# ---------------------------------------------------------------------------

def _mdnorm_captures(
    hist: Hist3,
    transforms: np.ndarray,
    det_directions: np.ndarray,
    solid_angles: np.ndarray,
    flux: FluxSpectrum,
    momentum_band: tuple[float, float],
    *,
    charge: float,
    backend: Optional[str],
    cache: Optional[GeomCache],
    cache_tag: Optional[str],
    op_span: Any = None,
) -> Captures:
    """MDNorm's geometry stage (cache-aware) packed into kernel captures.

    Shared by the static fan-out and the shard-context planner so warm
    reruns skip the geometry work identically on every executor.  The
    pre-pass ``width`` is an integer max (exactly associative), so the
    captures — and everything recorded through them — are bitwise
    independent of the ``backend`` used to compute it.
    """
    grid = hist.grid
    cache = _gc.resolve(cache)
    tracer = _trace.active_tracer()
    entry: Optional[GeomEntry] = None
    key = None
    if cache.enabled:
        key = GeomCache.geometry_key(
            grid, transforms, det_directions, momentum_band, solid_angles, flux
        )
        entry = cache.get(key)
    if op_span is not None:
        op_span.set(cache_hit=entry is not None)

    if entry is not None:
        directions = entry.directions
        k_lo, k_hi = entry.k_lo, entry.k_hi
        raw_width = entry.width
    else:
        directions = trajectory_directions(transforms, det_directions)
        k_lo, k_hi = k_window(directions, grid, *momentum_band)
        raw_width = None
    if raw_width is None:
        raw_width = max_intersections(
            grid, transforms, det_directions, momentum_band,
            backend=backend, directions=directions, k_lo=k_lo, k_hi=k_hi,
        )
    width = min(raw_width, grid.max_plane_crossings)

    if cache.enabled:
        if entry is None:
            entry = GeomEntry(
                key=key,
                tag=cache_tag,
                directions=_gc.freeze(directions),
                k_lo=_gc.freeze(k_lo),
                k_hi=_gc.freeze(k_hi),
                width=raw_width,
            )
            cache.put(entry)
            directions, k_lo, k_hi = entry.directions, entry.k_lo, entry.k_hi
        elif entry.width is None:
            entry.width = raw_width
            cache.note_update(entry)

    flux_k, flux_cum = cache.flux_table(flux)
    if op_span is not None:
        op_span.set(width=int(width))
        if tracer.profile:
            from repro.util.perf import mdnorm_work

            op_span.set(perf=mdnorm_work(
                int(transforms.shape[0]), int(det_directions.shape[0]),
                int(width), warm_plan=False,
            ))

    return Captures(
        hist=hist,
        grid=grid,
        directions=directions,
        k_lo=k_lo,
        k_hi=k_hi,
        solid_angles=solid_angles,
        charge=float(charge),
        flux_k=flux_k,
        flux_cum=flux_cum,
        scratch=_Scratch(width),
        fill=fill_crossings_scalar,
    )


@dataclass
class ShardContext:
    """Everything needed to execute any planned range of one run-stage.

    ``captures.hist`` is the *target* scratch histogram: executing a
    range never touches it (ranges record deposit logs), only
    :func:`replay_shard_logs` folds the logs into it — in planned-index
    order, which is what makes results independent of which rank
    executed which range, in what order.  The captures are safe to
    share across rank threads: per-execution recording histograms are
    fresh, and mdnorm's ``_Scratch`` buffers are thread-local.
    """

    op_name: str
    captures: Captures
    element: Callable[..., Any]
    n_outer: int
    #: planned contiguous ranges of the inner axis (index = planned id)
    ranges: List[Tuple[int, int]]
    #: per-range work estimate: stored chunk bytes for lazy event
    #: tables (the PR 6 index), row counts otherwise
    weights: List[float] = field(default_factory=list)
    lazy_events: Optional[LazyEventTable] = None

    @property
    def n_ranges(self) -> int:
        return len(self.ranges)

    @property
    def track_errors(self) -> bool:
        return getattr(self.captures.hist, "flat_error_sq", None) is not None


def mdnorm_shard_context(
    hist: Hist3,
    transforms: np.ndarray,
    det_directions: np.ndarray,
    solid_angles: np.ndarray,
    flux: FluxSpectrum,
    momentum_band: tuple[float, float],
    *,
    n_shards: int,
    charge: float = 1.0,
    backend: Optional[str] = None,
    cache: Optional[GeomCache] = None,
    cache_tag: Optional[str] = None,
) -> ShardContext:
    """Plan one run's MDNorm as detector-range shard tasks."""
    transforms = np.asarray(transforms, dtype=np.float64)
    det_directions = np.asarray(det_directions, dtype=np.float64)
    solid_angles = np.asarray(solid_angles, dtype=np.float64)
    require(transforms.ndim == 3 and transforms.shape[1:] == (3, 3),
            "transforms must be (n_ops, 3, 3)")
    captures = _mdnorm_captures(
        hist, transforms, det_directions, solid_angles, flux, momentum_band,
        charge=charge, backend=backend, cache=cache, cache_tag=cache_tag,
    )
    n_ops = int(transforms.shape[0])
    n_det = int(det_directions.shape[0])
    ranges = shard_ranges(n_det, n_shards)
    weights = [float(n_ops * (b - a)) for a, b in ranges]
    return ShardContext("mdnorm", captures, _mdnorm_element, n_ops,
                        ranges, weights)


def binmd_shard_context(
    hist: Hist3,
    events: EventTable | LazyEventTable | np.ndarray,
    transforms: np.ndarray,
    *,
    n_shards: int,
) -> ShardContext:
    """Plan one run's BinMD as event-range shard tasks.

    Lazy tables plan chunk-aligned, budget-capped ranges weighted by
    stored chunk bytes (:func:`repro.mpi.decomposition.lazy_table_ranges`)
    — the same plan the static executor uses.
    """
    lazy = isinstance(events, LazyEventTable)
    transforms = np.asarray(transforms, dtype=np.float64)
    require(transforms.ndim == 3 and transforms.shape[1:] == (3, 3),
            "transforms must be (n_ops, 3, 3)")
    n_ops = int(transforms.shape[0])
    if lazy:
        ranges = lazy_table_ranges(events, n_shards)
        weights = range_stored_nbytes(events, ranges)
        captures = Captures(hist=hist, transforms=transforms)
        return ShardContext("binmd", captures, _bin_events_element, n_ops,
                            ranges, weights, lazy_events=events)
    data = events.data if isinstance(events, EventTable) else np.asarray(events)
    n_events = int(data.shape[0])
    ranges = shard_ranges(n_events, n_shards)
    weights = [float(n_ops * (b - a)) for a, b in ranges]
    captures = Captures(hist=hist, events=data, transforms=transforms)
    return ShardContext("binmd", captures, _bin_events_element, n_ops,
                        ranges, weights)


def execute_shard_range(
    ctx: ShardContext,
    index: int,
    *,
    workers: int = 1,
    run: Optional[int] = None,
) -> List[Log]:
    """Execute one planned range of a context; return its deposit logs.

    No replay happens here — callers collect logs (possibly from ranges
    executed by different ranks, out of order) and fold them with
    :func:`replay_shard_logs` once every planned range has reported.
    ``workers > 1`` ships the single range to the node-local process
    pool (one task, so concurrency comes from concurrent *callers* —
    the stealing executor's ranks); ``workers == 1`` runs in-process.
    Lazy ranges decode their own chunks straight from the file
    (:func:`repro.nexus.tiles.read_window`) in both paths, so
    concurrent rank threads never contend on a shared tile cache.
    """
    a, b = ctx.ranges[index]
    if workers == 1:
        rec = RecordingHist3(ctx.captures.hist.grid, ctx.track_errors)
        inline_ctx = Captures(**{**vars(ctx.captures), "hist": rec})
        task = dict(element=ctx.element, n_outer=ctx.n_outer, range=(a, b))
        if ctx.lazy_events is not None:
            task["window"] = read_window(
                ctx.lazy_events.path, ctx.lazy_events.dataset_path, a, b
            )
        return _shard_body(task, inline_ctx, rec)
    transport = _Transport(ctx.captures)
    try:
        task = dict(
            element=ctx.element,
            n_outer=ctx.n_outer,
            range=(a, b),
            captures=transport.payload,
            **(
                {"window_ref": (
                    ctx.lazy_events.path, ctx.lazy_events.dataset_path, a, b
                )}
                if ctx.lazy_events is not None
                else {}
            ),
        )
        try:
            pool = GLOBAL_POOL.executor(workers)
            return pool.submit(_shard_worker, task).result()
        except BrokenProcessPool as exc:
            GLOBAL_POOL.dispose()
            raise ShardExecutionError(
                f"shard pool broke during {ctx.op_name} "
                f"(run={run}, range={index}); pool disposed"
            ) from exc
    finally:
        transport.close()


def replay_shard_logs(
    ctx: ShardContext, per_range: Sequence[List[Log]]
) -> None:
    """Fold per-range deposit logs into ``ctx.captures.hist`` in serial
    order (op-major, planned ranges ascending) — the same interleave as
    :func:`_run_shards`, so the result is bit-identical to a serial
    execution of the whole run-stage regardless of who executed what."""
    require(len(per_range) == ctx.n_ranges,
            f"{ctx.op_name}: {len(per_range)} log sets for "
            f"{ctx.n_ranges} planned ranges")
    for n in range(ctx.n_outer):
        replay_deposits(ctx.captures.hist, [logs[n] for logs in per_range])


# ---------------------------------------------------------------------------
# campaign executor registry
# ---------------------------------------------------------------------------

#: name -> lazily resolved "module:function" reference (None = the
#: built-in static plan handled inline by compute_cross_section).
#: Lazy dotted references keep this registry import-cycle-free: the
#: stealing executor imports *this* module for its shard contexts.
_EXECUTORS: Dict[str, Optional[str]] = {
    "static": None,
    "stealing": "repro.mpi.stealing:run_stealing_campaign",
}


def register_executor(name: str, target: Optional[str]) -> None:
    """Register a campaign executor.

    ``target`` is a ``"module:function"`` reference to a callable with
    the :func:`repro.mpi.stealing.run_stealing_campaign` signature, or
    ``None`` for executors handled inline.  Registration is how the
    conformance matrix auto-discovers executors — a new entry here gets
    the full backend × op × seed treatment with no test edits.
    """
    require(bool(name), "executor name must be non-empty")
    _EXECUTORS[str(name)] = target


def available_executors() -> Tuple[str, ...]:
    """Registered executor names, sorted (stable test parametrization)."""
    return tuple(sorted(_EXECUTORS))


def resolve_executor(name: Optional[str]) -> Optional[Callable[..., Any]]:
    """The runner callable for ``name`` (None for the static plan)."""
    if name is None:
        return None
    try:
        target = _EXECUTORS[name]
    except KeyError:
        raise ValueError(
            f"unknown executor {name!r}; available: "
            f"{', '.join(available_executors())}"
        ) from None
    if target is None:
        return None
    mod_name, _, fn_name = target.partition(":")
    return getattr(importlib.import_module(mod_name), fn_name)


# ---------------------------------------------------------------------------
# sharded MDNorm / BinMD entry points
# ---------------------------------------------------------------------------

def sharded_mdnorm(
    hist: Hist3,
    transforms: np.ndarray,
    det_directions: np.ndarray,
    solid_angles: np.ndarray,
    flux: FluxSpectrum,
    momentum_band: tuple[float, float],
    *,
    shards: ShardConfig,
    charge: float = 1.0,
    backend: Optional[str] = None,
    cache: Optional[GeomCache] = None,
    cache_tag: Optional[str] = None,
    run: Optional[int] = None,
    on_shard: Optional[Callable[[int, int], None]] = None,
) -> Hist3:
    """MDNorm for one run, fanned out over detector shards.

    Same contract as :func:`repro.core.mdnorm.mdnorm` (accumulates into
    ``hist`` in place) executed as ``shards.n_shards`` detector-range
    tasks; the result is bit-identical to ``mdnorm(..., backend=
    "serial")`` for every shard/worker count (see the module
    docstring).  The PR 1 geometry cache is consulted parent-side for
    trajectory directions / momentum windows / the pre-pass width, so
    warm reruns skip the geometry stage exactly as the unsharded path
    does (per-shard tasks themselves never touch the cache).
    """
    transforms = np.asarray(transforms, dtype=np.float64)
    det_directions = np.asarray(det_directions, dtype=np.float64)
    solid_angles = np.asarray(solid_angles, dtype=np.float64)
    require(transforms.ndim == 3 and transforms.shape[1:] == (3, 3),
            "transforms must be (n_ops, 3, 3)")
    require(det_directions.ndim == 2 and det_directions.shape[1] == 3,
            "det_directions must be (n_det, 3)")
    require(solid_angles.shape == (det_directions.shape[0],),
            "solid_angles length mismatch")

    tracer = _trace.active_tracer()
    with tracer.span(
        "mdnorm",
        kind="op",
        backend="sharded",
        n_ops=int(transforms.shape[0]),
        n_det=int(det_directions.shape[0]),
        n_shards=int(shards.n_shards),
    ) as op_span:
        captures = _mdnorm_captures(
            hist, transforms, det_directions, solid_angles, flux,
            momentum_band, charge=charge, backend=backend, cache=cache,
            cache_tag=cache_tag, op_span=op_span,
        )
        _run_shards(
            "mdnorm", captures, _mdnorm_element,
            int(transforms.shape[0]), int(det_directions.shape[0]),
            shards, run=run, on_shard=on_shard,
            weights=(detector_activity(captures.k_lo, captures.k_hi)
                     if shards.balanced else None),
        )
        tracer.count("mdnorm.trajectories",
                      int(transforms.shape[0]) * int(det_directions.shape[0]))
    return hist


def sharded_binmd(
    hist: Hist3,
    events: EventTable | LazyEventTable | np.ndarray,
    transforms: np.ndarray,
    *,
    shards: ShardConfig,
    run: Optional[int] = None,
    on_shard: Optional[Callable[[int, int], None]] = None,
) -> Hist3:
    """BinMD for one run, fanned out over event shards.

    Same contract as :func:`repro.core.binmd.bin_events`; contiguous
    event ranges are balanced by construction (events are the unit of
    work), and the op-segmented replay makes the result bit-identical
    to ``bin_events(..., backend="serial")`` for every shard/worker
    count.

    With a :class:`~repro.nexus.tiles.LazyEventTable` the run executes
    **out-of-core**: shard boundaries are fed from the file's chunk
    metadata (snapped to chunk boundaries, balanced by stored chunk
    bytes, capped so no window decodes more rows than the table's
    memory budget), and each shard materializes only its own window —
    via the run's tile cache in-process, or by decoding its own chunks
    from the file in pool workers.  Because the element body iterates a
    window with local indices, the deposit logs — and therefore the
    replayed histogram — stay bit-identical to the in-memory path for
    every chunk size, codec, budget, shard count and worker count.
    """
    lazy = isinstance(events, LazyEventTable)
    transforms = np.asarray(transforms, dtype=np.float64)
    require(transforms.ndim == 3 and transforms.shape[1:] == (3, 3),
            "transforms must be (n_ops, 3, 3)")
    if lazy:
        data = None
        n_events = events.n_events
        ranges = lazy_table_ranges(events, shards.n_shards)
    else:
        data = events.data if isinstance(events, EventTable) else np.asarray(events)
        n_events = int(data.shape[0])
        ranges = None

    tracer = _trace.active_tracer()
    with tracer.span(
        "binmd",
        kind="op",
        backend="sharded",
        n_ops=int(transforms.shape[0]),
        n_events=int(n_events),
        n_shards=int(len(ranges) if ranges is not None else shards.n_shards),
        out_of_core=bool(lazy),
    ) as op_span:
        if tracer.profile:
            from repro.util.perf import binmd_work

            op_span.set(perf=binmd_work(
                int(transforms.shape[0]), int(n_events),
                track_errors=hist.flat_error_sq is not None,
                cache_hit=False,
            ))
        if lazy:
            captures = Captures(hist=hist, transforms=transforms)
        else:
            captures = Captures(hist=hist, events=data, transforms=transforms)
        _run_shards(
            "binmd", captures, _bin_events_element,
            int(transforms.shape[0]), int(n_events),
            shards, run=run, on_shard=on_shard,
            ranges=ranges,
            lazy_events=events if lazy else None,
        )
        tracer.count("binmd.events",
                      int(transforms.shape[0]) * int(n_events))
    return hist
