"""Near-real-time streaming reduction.

The paper's motivation ("near-real time data processing" for IRI) and
its related work (ADARA's live streaming into Mantid) describe reducing
an experiment *while it acquires*.  This module implements that on top
of the same kernels:

* :class:`EventStream` replays a run's recorded neutrons in
  acquisition-sized batches (the stand-in for the facility's live
  event stream);
* :class:`StreamingReduction` consumes batches as they arrive:
  - when a run *opens* (metadata known: goniometer, UB, charge, band)
    its MDNorm contribution is computed once — normalization depends
    only on geometry, not on which events have arrived yet;
  - each event batch is converted and BinMD-accumulated immediately;
  - :meth:`snapshot` returns the live cross-section at any instant, so
    a scientist can watch coverage fill in and stop the measurement
    early — the steering capability the IRI program wants.

The invariant (enforced by the tests): after every batch of every run
has been consumed, the streaming cross-section equals the batch
workflow's bit for bit.

With a :class:`~repro.core.checkpoint.RecoveryConfig`, the stream
survives the live-instrument failure modes: ``open_run`` and
``consume`` retry transient faults with backoff, and a run whose
retries are exhausted is **quarantined** — its already-accumulated
MDNorm/BinMD contributions are subtracted back out of the live
histograms and its later batches are dropped, so the snapshot degrades
to the surviving runs instead of poisoning the whole stream.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

import numpy as np

from repro.core import geom_cache as _gc
from repro.core.binmd import bin_events
from repro.core.checkpoint import RecoveryConfig
from repro.core.geom_cache import GeomCache
from repro.core.grid import HKLGrid
from repro.core.hist3 import Hist3
from repro.core.md_event_workspace import convert_to_md
from repro.core.mdnorm import mdnorm
from repro.core.sharding import ShardConfig, sharded_mdnorm
from repro.crystal.symmetry import PointGroup
from repro.instruments.detector import DetectorArray
from repro.nexus.corrections import FluxSpectrum
from repro.nexus.events import RunData
from repro.nexus.h5lite import File as _File
from repro.util import faults as _faults
from repro.util import trace as _trace
from repro.util.validation import ReproError, ValidationError, require


@dataclass(frozen=True)
class StreamBatch:
    """One acquisition chunk of a run's event stream."""

    run_number: int
    detector_ids: np.ndarray
    tof: np.ndarray
    weights: np.ndarray


class EventStream:
    """Replay a recorded run as acquisition-sized batches."""

    def __init__(self, run: RunData, batch_size: int = 4096) -> None:
        require(batch_size >= 1, "batch_size must be >= 1")
        self.run = run
        self.batch_size = batch_size

    def __iter__(self) -> Iterator[StreamBatch]:
        n = self.run.n_events
        for start in range(0, n, self.batch_size):
            stop = min(start + self.batch_size, n)
            yield StreamBatch(
                run_number=self.run.run_number,
                detector_ids=self.run.detector_ids[start:stop],
                tof=self.run.tof[start:stop],
                weights=self.run.weights[start:stop],
            )

    @property
    def n_batches(self) -> int:
        return -(-self.run.n_events // self.batch_size)


class FileEventStream:
    """Replay a NeXus event file as batches without materializing it.

    The file-driven counterpart of :class:`EventStream`: run metadata is
    read eagerly (so :meth:`run_metadata` can feed ``open_run`` before a
    single event is touched), and each batch is a *region read* through
    :meth:`repro.nexus.h5lite.Dataset.read_rows`.  For files written
    with ``write_event_nexus(chunk_events=...)`` (format v2) a batch
    decodes only its overlapping chunks, so the stream's working set
    stays at batch/chunk scale regardless of run size — the out-of-core
    path for the live-reduction loop.
    """

    def __init__(self, path: "str | os.PathLike", batch_size: int = 4096) -> None:
        require(batch_size >= 1, "batch_size must be >= 1")
        self.path = os.fspath(path)
        self.batch_size = batch_size
        with _File(self.path, "r") as f:
            entry = f["entry"]
            band = entry.read("DASlogs/wavelength_band")
            ub = None
            if "sample/ub_matrix" in entry:
                ub = entry.read("sample/ub_matrix")
            self._meta = RunData(
                run_number=int(entry.read("run_number")[()]),
                detector_ids=np.empty(0, dtype=np.uint32),
                tof=np.empty(0, dtype=np.float64),
                weights=np.empty(0, dtype=np.float32),
                goniometer=entry.read("DASlogs/goniometer"),
                proton_charge=float(entry.read("proton_charge")[()]),
                wavelength_band=(float(band[0]), float(band[1])),
                instrument=str(entry.read("instrument/name")[()]),
                sample=str(entry.read("sample/name")[()]),
                ub_matrix=ub,
            )
            self.n_events = int(
                entry.require_dataset("events/detector_id").shape[0]
            )

    def run_metadata(self) -> RunData:
        """Metadata-only RunData (empty event arrays) for ``open_run``."""
        return self._meta

    @property
    def run_number(self) -> int:
        return self._meta.run_number

    @property
    def n_batches(self) -> int:
        return -(-self.n_events // self.batch_size)

    def __iter__(self) -> Iterator[StreamBatch]:
        # one open per replay: Dataset handles persist across batches so
        # chunked files keep per-batch decode bounded and contiguous
        # files verify their CRC once on first touch
        with _File(self.path, "r") as f:
            events = f["entry"]
            ids = events.require_dataset("events/detector_id")
            tof = events.require_dataset("events/time_of_flight")
            weights = events.require_dataset("events/weight")
            for start in range(0, self.n_events, self.batch_size):
                stop = min(start + self.batch_size, self.n_events)
                yield StreamBatch(
                    run_number=self._meta.run_number,
                    detector_ids=ids.read_rows(start, stop),
                    tof=tof.read_rows(start, stop),
                    weights=weights.read_rows(start, stop),
                )


class StreamingReduction:
    """Incremental Algorithm 1: reduce runs while their events arrive."""

    def __init__(
        self,
        grid: HKLGrid,
        point_group: PointGroup,
        flux: FluxSpectrum,
        instrument: DetectorArray,
        solid_angles: np.ndarray,
        *,
        backend: Optional[str] = None,
        geom_cache: Optional[GeomCache] = None,
        recovery: Optional[RecoveryConfig] = None,
        shards: Optional[ShardConfig] = None,
    ) -> None:
        self.grid = grid
        self.point_group = point_group
        self.flux = flux
        self.instrument = instrument
        self.solid_angles = np.ascontiguousarray(solid_angles, dtype=np.float64)
        require(self.solid_angles.shape == (instrument.n_pixels,),
                "solid_angles / instrument pixel count mismatch")
        self.backend = backend
        #: geometry cache reused across every batch (and re-stream) of a
        #: run — the per-run MDNorm geometry is computed at most once
        self.geom_cache = _gc.resolve(geom_cache)
        self._binmd = Hist3(grid, track_errors=True)
        self._mdnorm = Hist3(grid)
        self._open_runs: dict[int, RunData] = {}
        self._event_transforms: dict[int, np.ndarray] = {}
        self._events_seen = 0
        self._runs_opened = 0
        #: failure policy; None = historical fail-fast stream
        self.recovery = recovery
        #: intra-run fan-out for the open-run MDNorm (the geometry-only
        #: stage, computed once per run).  ``consume`` deliberately stays
        #: a single ordered pass — batch arrival order already defines
        #: the float fold, and sharding it would break the batch-size
        #: invariance the streaming tests pin down.
        self.shards = shards
        self._quarantined: Dict[int, str] = {}
        # per-run accumulated contributions, tracked only under recovery
        # so a quarantined run can be subtracted back out
        self._run_binmd: Dict[int, Hist3] = {}
        self._run_mdnorm: Dict[int, Hist3] = {}

    # -- run lifecycle ------------------------------------------------------
    def open_run(self, run_metadata: RunData) -> None:
        """Announce a run: metadata only, events may be empty/ignored.

        Computes the run's full MDNorm contribution immediately — the
        normalization is pure geometry and does not wait for events.
        """
        rn = run_metadata.run_number
        if rn in self._open_runs:
            raise ValidationError(f"run {rn} is already open")
        if run_metadata.ub_matrix is None:
            raise ValidationError(f"run {rn} carries no UB matrix")
        self._open_runs[rn] = run_metadata
        self._runs_opened += 1
        with _trace.active_tracer().span(
            "stream.open_run", kind="stream", run=int(rn)
        ):
            self._event_transforms[rn] = self.grid.transforms_for(
                run_metadata.ub_matrix, self.point_group
            )
            traj_transforms = self.grid.transforms_for(
                run_metadata.ub_matrix, self.point_group,
                goniometer=run_metadata.goniometer,
            )
            lam_lo, lam_hi = run_metadata.wavelength_band
            band = (2.0 * np.pi / lam_hi, 2.0 * np.pi / lam_lo)

            def _norm_into(target: Hist3) -> Hist3:
                if self.shards is not None:
                    sharded_mdnorm(
                        target,
                        traj_transforms,
                        self.instrument.directions,
                        self.solid_angles,
                        self.flux,
                        band,
                        shards=self.shards,
                        charge=run_metadata.proton_charge,
                        backend=self.backend,
                        cache=self.geom_cache,
                        cache_tag=f"run:{rn}",
                        run=rn,
                    )
                else:
                    mdnorm(
                        target,
                        traj_transforms,
                        self.instrument.directions,
                        self.solid_angles,
                        self.flux,
                        band,
                        charge=run_metadata.proton_charge,
                        backend=self.backend,
                        cache=self.geom_cache,
                        cache_tag=f"run:{rn}",
                    )
                return target

            if self.recovery is None:
                _norm_into(self._mdnorm)
                return

            def attempt(_attempt: int) -> Hist3:
                _faults.fault_point("stream.open_run", run=rn)
                return _norm_into(Hist3(self.grid))

            try:
                scratch = _faults.retry_call(
                    attempt,
                    site=f"stream.open_run[{rn}]",
                    policy=self.recovery.retry,
                    retryable=self.recovery.retryable,
                    on_retry=lambda exc, a:
                        self.geom_cache.invalidate(f"run:{rn}"),
                )
            except _faults.RetryExhaustedError as exc:
                if not self.recovery.quarantine:
                    raise
                self._open_runs.pop(rn, None)
                self._event_transforms.pop(rn, None)
                self._quarantined[rn] = repr(exc.last)
                _trace.active_tracer().count("quarantine.runs")
                return
            self._mdnorm.add(scratch)
            self._run_mdnorm[rn] = scratch
            self._run_binmd[rn] = Hist3(self.grid, track_errors=True)

    def consume(self, batch: StreamBatch) -> None:
        """Accumulate one event batch into the live histogram."""
        rn = batch.run_number
        run = self._open_runs.get(rn)
        if run is None:
            if rn in self._quarantined:
                # the run died earlier; its stream keeps arriving
                _trace.active_tracer().count(
                    "stream.dropped", int(batch.detector_ids.shape[0])
                )
                return
            raise ReproError(
                f"batch for run {rn} arrived before open_run"
            )
        if batch.detector_ids.shape[0] == 0:
            return
        tracer = _trace.active_tracer()
        with tracer.span(
            "stream.consume",
            kind="stream",
            run=int(rn),
            n_events=int(batch.detector_ids.shape[0]),
        ):
            def _bin_into(target: Hist3) -> Hist3:
                partial = RunData(
                    run_number=run.run_number,
                    detector_ids=batch.detector_ids,
                    tof=batch.tof,
                    weights=batch.weights,
                    goniometer=run.goniometer,
                    proton_charge=run.proton_charge,
                    wavelength_band=run.wavelength_band,
                    ub_matrix=run.ub_matrix,
                )
                ws = convert_to_md(partial, self.instrument)
                # per-batch event tables are unique — caching their BinMD
                # indices would only churn the LRU, so opt out explicitly
                bin_events(
                    target, ws.events, self._event_transforms[rn],
                    backend=self.backend, cache=_gc.DISABLED,
                )
                return target

            if self.recovery is None:
                _bin_into(self._binmd)
            else:
                def attempt(_attempt: int) -> Hist3:
                    _faults.fault_point("stream.consume", run=rn)
                    return _bin_into(Hist3(self.grid, track_errors=True))

                try:
                    scratch = _faults.retry_call(
                        attempt,
                        site=f"stream.consume[{rn}]",
                        policy=self.recovery.retry,
                        retryable=self.recovery.retryable,
                    )
                except _faults.RetryExhaustedError as exc:
                    if not self.recovery.quarantine:
                        raise
                    self._quarantine_open_run(rn, repr(exc.last))
                    return
                self._binmd.add(scratch)
                self._run_binmd[rn].add(scratch)
        tracer.count("stream.events", int(batch.detector_ids.shape[0]))
        self._events_seen += batch.detector_ids.shape[0]

    def _quarantine_open_run(self, rn: int, reason: str) -> None:
        """Evict a live run: subtract its contributions, drop its state."""
        binmd_part = self._run_binmd.pop(rn, None)
        mdnorm_part = self._run_mdnorm.pop(rn, None)
        if binmd_part is not None:
            self._binmd.signal -= binmd_part.signal
            if (self._binmd.error_sq is not None
                    and binmd_part.error_sq is not None):
                self._binmd.error_sq -= binmd_part.error_sq
        if mdnorm_part is not None:
            self._mdnorm.signal -= mdnorm_part.signal
        self._open_runs.pop(rn, None)
        self._event_transforms.pop(rn, None)
        self._quarantined[rn] = reason
        _trace.active_tracer().count("quarantine.runs")

    def close_run(self, run_number: int) -> None:
        """Retire a finished run (frees its cached transforms).

        Under recovery the close itself is a fault site (a real stream's
        end-of-run packet can be lost); a close that keeps failing
        quarantines the run like any other exhausted retry.
        """
        if self.recovery is not None:
            def attempt(_attempt: int) -> None:
                _faults.fault_point("stream.close_run", run=run_number)

            try:
                _faults.retry_call(
                    attempt,
                    site=f"stream.close_run[{run_number}]",
                    policy=self.recovery.retry,
                    retryable=self.recovery.retryable,
                )
            except _faults.RetryExhaustedError as exc:
                if not self.recovery.quarantine:
                    raise
                self._quarantine_open_run(run_number, repr(exc.last))
                return
        self._open_runs.pop(run_number, None)
        self._event_transforms.pop(run_number, None)
        self._run_binmd.pop(run_number, None)
        self._run_mdnorm.pop(run_number, None)

    # -- live output ------------------------------------------------------
    def snapshot(self) -> Hist3:
        """The cross-section as of the events consumed so far."""
        return self._binmd.divide(self._mdnorm)

    @property
    def binmd(self) -> Hist3:
        return self._binmd

    @property
    def mdnorm_hist(self) -> Hist3:
        return self._mdnorm

    @property
    def events_seen(self) -> int:
        return self._events_seen

    @property
    def runs_opened(self) -> int:
        return self._runs_opened

    @property
    def quarantined(self) -> Dict[int, str]:
        """Runs evicted by the failure policy: run number -> reason."""
        return dict(self._quarantined)

    @property
    def cache_stats(self) -> dict:
        """Snapshot of the geometry cache's hit/miss/eviction counters."""
        return self.geom_cache.stats.snapshot()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"StreamingReduction(runs={self._runs_opened}, "
            f"events={self._events_seen}, "
            f"coverage={self._binmd.nonzero_fraction():.1%})"
        )
