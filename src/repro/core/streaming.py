"""Near-real-time streaming reduction.

The paper's motivation ("near-real time data processing" for IRI) and
its related work (ADARA's live streaming into Mantid) describe reducing
an experiment *while it acquires*.  This module implements that on top
of the same kernels:

* :class:`EventStream` replays a run's recorded neutrons in
  acquisition-sized batches (the stand-in for the facility's live
  event stream);
* :class:`StreamingReduction` consumes batches as they arrive:
  - when a run *opens* (metadata known: goniometer, UB, charge, band)
    its MDNorm contribution is computed once — normalization depends
    only on geometry, not on which events have arrived yet;
  - each event batch is converted and BinMD-accumulated immediately;
  - :meth:`snapshot` returns the live cross-section at any instant, so
    a scientist can watch coverage fill in and stop the measurement
    early — the steering capability the IRI program wants.

The invariant (enforced by the tests): after every batch of every run
has been consumed, the streaming cross-section equals the batch
workflow's bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.core import geom_cache as _gc
from repro.core.binmd import bin_events
from repro.core.geom_cache import GeomCache
from repro.core.grid import HKLGrid
from repro.core.hist3 import Hist3
from repro.core.md_event_workspace import convert_to_md
from repro.core.mdnorm import mdnorm
from repro.crystal.symmetry import PointGroup
from repro.instruments.detector import DetectorArray
from repro.nexus.corrections import FluxSpectrum
from repro.nexus.events import RunData
from repro.util import trace as _trace
from repro.util.validation import ReproError, ValidationError, require


@dataclass(frozen=True)
class StreamBatch:
    """One acquisition chunk of a run's event stream."""

    run_number: int
    detector_ids: np.ndarray
    tof: np.ndarray
    weights: np.ndarray


class EventStream:
    """Replay a recorded run as acquisition-sized batches."""

    def __init__(self, run: RunData, batch_size: int = 4096) -> None:
        require(batch_size >= 1, "batch_size must be >= 1")
        self.run = run
        self.batch_size = batch_size

    def __iter__(self) -> Iterator[StreamBatch]:
        n = self.run.n_events
        for start in range(0, n, self.batch_size):
            stop = min(start + self.batch_size, n)
            yield StreamBatch(
                run_number=self.run.run_number,
                detector_ids=self.run.detector_ids[start:stop],
                tof=self.run.tof[start:stop],
                weights=self.run.weights[start:stop],
            )

    @property
    def n_batches(self) -> int:
        return -(-self.run.n_events // self.batch_size)


class StreamingReduction:
    """Incremental Algorithm 1: reduce runs while their events arrive."""

    def __init__(
        self,
        grid: HKLGrid,
        point_group: PointGroup,
        flux: FluxSpectrum,
        instrument: DetectorArray,
        solid_angles: np.ndarray,
        *,
        backend: Optional[str] = None,
        geom_cache: Optional[GeomCache] = None,
    ) -> None:
        self.grid = grid
        self.point_group = point_group
        self.flux = flux
        self.instrument = instrument
        self.solid_angles = np.ascontiguousarray(solid_angles, dtype=np.float64)
        require(self.solid_angles.shape == (instrument.n_pixels,),
                "solid_angles / instrument pixel count mismatch")
        self.backend = backend
        #: geometry cache reused across every batch (and re-stream) of a
        #: run — the per-run MDNorm geometry is computed at most once
        self.geom_cache = _gc.resolve(geom_cache)
        self._binmd = Hist3(grid, track_errors=True)
        self._mdnorm = Hist3(grid)
        self._open_runs: dict[int, RunData] = {}
        self._event_transforms: dict[int, np.ndarray] = {}
        self._events_seen = 0
        self._runs_opened = 0

    # -- run lifecycle ------------------------------------------------------
    def open_run(self, run_metadata: RunData) -> None:
        """Announce a run: metadata only, events may be empty/ignored.

        Computes the run's full MDNorm contribution immediately — the
        normalization is pure geometry and does not wait for events.
        """
        rn = run_metadata.run_number
        if rn in self._open_runs:
            raise ValidationError(f"run {rn} is already open")
        if run_metadata.ub_matrix is None:
            raise ValidationError(f"run {rn} carries no UB matrix")
        self._open_runs[rn] = run_metadata
        self._runs_opened += 1
        with _trace.active_tracer().span(
            "stream.open_run", kind="stream", run=int(rn)
        ):
            self._event_transforms[rn] = self.grid.transforms_for(
                run_metadata.ub_matrix, self.point_group
            )
            traj_transforms = self.grid.transforms_for(
                run_metadata.ub_matrix, self.point_group,
                goniometer=run_metadata.goniometer,
            )
            lam_lo, lam_hi = run_metadata.wavelength_band
            band = (2.0 * np.pi / lam_hi, 2.0 * np.pi / lam_lo)
            mdnorm(
                self._mdnorm,
                traj_transforms,
                self.instrument.directions,
                self.solid_angles,
                self.flux,
                band,
                charge=run_metadata.proton_charge,
                backend=self.backend,
                cache=self.geom_cache,
                cache_tag=f"run:{rn}",
            )

    def consume(self, batch: StreamBatch) -> None:
        """Accumulate one event batch into the live histogram."""
        run = self._open_runs.get(batch.run_number)
        if run is None:
            raise ReproError(
                f"batch for run {batch.run_number} arrived before open_run"
            )
        if batch.detector_ids.shape[0] == 0:
            return
        tracer = _trace.active_tracer()
        with tracer.span(
            "stream.consume",
            kind="stream",
            run=int(batch.run_number),
            n_events=int(batch.detector_ids.shape[0]),
        ):
            partial = RunData(
                run_number=run.run_number,
                detector_ids=batch.detector_ids,
                tof=batch.tof,
                weights=batch.weights,
                goniometer=run.goniometer,
                proton_charge=run.proton_charge,
                wavelength_band=run.wavelength_band,
                ub_matrix=run.ub_matrix,
            )
            ws = convert_to_md(partial, self.instrument)
            # per-batch event tables are unique — caching their BinMD
            # indices would only churn the LRU, so opt out explicitly
            bin_events(
                self._binmd, ws.events, self._event_transforms[batch.run_number],
                backend=self.backend, cache=_gc.DISABLED,
            )
        tracer.count("stream.events", int(batch.detector_ids.shape[0]))
        self._events_seen += batch.detector_ids.shape[0]

    def close_run(self, run_number: int) -> None:
        """Retire a finished run (frees its cached transforms)."""
        self._open_runs.pop(run_number, None)
        self._event_transforms.pop(run_number, None)

    # -- live output ------------------------------------------------------
    def snapshot(self) -> Hist3:
        """The cross-section as of the events consumed so far."""
        return self._binmd.divide(self._mdnorm)

    @property
    def binmd(self) -> Hist3:
        return self._binmd

    @property
    def mdnorm_hist(self) -> Hist3:
        return self._mdnorm

    @property
    def events_seen(self) -> int:
        return self._events_seen

    @property
    def runs_opened(self) -> int:
        return self._runs_opened

    @property
    def cache_stats(self) -> dict:
        """Snapshot of the geometry cache's hit/miss/eviction counters."""
        return self.geom_cache.stats.snapshot()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"StreamingReduction(runs={self._runs_opened}, "
            f"events={self._events_seen}, "
            f"coverage={self._binmd.nonzero_fraction():.1%})"
        )
