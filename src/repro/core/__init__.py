"""The paper's primary contribution: the cross-section reduction core.

Implements Mantid's ``MDNorm`` (trajectory normalization) and ``BinMD``
(event histogramming) as performance-portable kernels on the
:mod:`repro.jacc` layer, plus the Algorithm-1 driver that combines them
over MPI into the differential scattering cross-section
``sum(BinMD) / sum(MDNorm)``.

Module map (one file per algorithmic piece, mirroring the paper's
decomposition of the "monolithic closed-box" Mantid workflow):

* :mod:`repro.core.grid` — the output (H, K, L) histogram grid with its
  projection basis (Benzil bins along [H,H] / [H,-H] / [L]);
* :mod:`repro.core.hist3` — the 3-D thread-safe histogram (Hist3 /
  MDHistoWorkspace analogue) with atomic accumulation;
* :mod:`repro.core.md_event_workspace` — MDEvent storage + the
  raw-event -> Q_sample conversion and the SaveMD/LoadMD files the
  proxies load (the timed ``UpdateEvents`` stage);
* :mod:`repro.core.combsort` — the allocation-free in-kernel sort
  (scalar and lane-parallel variants);
* :mod:`repro.core.intersections` — trajectory/grid-plane intersection
  geometry;
* :mod:`repro.core.binmd` — BinMD kernels (scalar + batch);
* :mod:`repro.core.mdnorm` — MDNorm kernels (scalar + batch), including
  the max-intersections pre-pass;
* :mod:`repro.core.cross_section` — Algorithm 1 over a communicator;
* :mod:`repro.core.workflow` — file-driven end-to-end reduction with
  per-stage timing;
* :mod:`repro.core.geom_cache` — the memoized geometry/flux cache
  behind the MDNorm/BinMD hot path (LRU byte budget, content-digest
  keys, hit/miss counters).
"""

from repro.core.grid import HKLGrid
from repro.core.hist3 import Hist3
from repro.core.md_event_workspace import (
    MDEventWorkspace,
    convert_to_md,
    save_md,
    load_md,
)
from repro.core.combsort import comb_sort, comb_sort_rows
from repro.core.geom_cache import (
    DISABLED,
    CacheStats,
    GeomCache,
    default_cache,
    set_default_cache,
)
from repro.core.binmd import bin_events
from repro.core.mdnorm import mdnorm, max_intersections, prefetch_geometry
from repro.core.cross_section import CrossSectionResult, compute_cross_section
from repro.core.workflow import ReductionWorkflow, WorkflowConfig
from repro.core.streaming import EventStream, StreamBatch, StreamingReduction
from repro.core.rebin import InMemoryReducer
from repro.core.peaks import PeakList, find_peaks, match_to_reflections
from repro.core.output import load_reduced, save_reduced
from repro.core.plan import ReductionPlan, load_plan, run_plan, save_plan
from repro.core.render import ascii_map, render_hist

__all__ = [
    "HKLGrid",
    "Hist3",
    "MDEventWorkspace",
    "convert_to_md",
    "save_md",
    "load_md",
    "comb_sort",
    "comb_sort_rows",
    "bin_events",
    "mdnorm",
    "max_intersections",
    "prefetch_geometry",
    "GeomCache",
    "CacheStats",
    "DISABLED",
    "default_cache",
    "set_default_cache",
    "CrossSectionResult",
    "compute_cross_section",
    "ReductionWorkflow",
    "WorkflowConfig",
    "EventStream",
    "StreamBatch",
    "StreamingReduction",
    "InMemoryReducer",
    "PeakList",
    "find_peaks",
    "match_to_reflections",
    "save_reduced",
    "load_reduced",
    "ReductionPlan",
    "load_plan",
    "run_plan",
    "save_plan",
    "ascii_map",
    "render_hist",
]
