"""Checkpoint/resume for the multi-run reduction campaign.

A campaign over N run files accumulates two histograms (Σ BinMD,
Σ MDNorm).  This module persists the campaign's progress so an
interrupted reduction — a dead rank, a killed job, a lost allocation —
resumes from the last completed run **bit-identically** instead of
re-reducing hundreds of GB from scratch:

* after each run ``i`` completes, its *per-run partial histograms*
  (the run's own MDNorm/BinMD contributions, not the running total)
  are written to ``run_<i>.ckpt.h5`` — an :mod:`repro.nexus.h5lite`
  file published crash-safely via
  :func:`repro.util.atomic_io.atomic_path` (write-then-rename);
* a schema-versioned JSON **manifest** records, per run: the delta
  file, BLAKE2b content digests of each array, the disposition
  (``done`` / ``quarantined``), attempts and owning rank.  The manifest
  itself is rewritten atomically after every update, so a crash at any
  instant leaves either the pre-run or post-run manifest — never a torn
  one;
* on resume, completed runs' deltas are **digest-verified** and summed
  in ascending run order — exactly the float-addition order of the
  uninterrupted loop, which is what makes resumption bit-identical;
* quarantined runs stay quarantined across resumes (the manifest is
  the campaign's durable disposition record).

A manifest is bound to its campaign by a ``config_digest`` (inputs,
grid, symmetry, backend); resuming against a checkpoint directory
written by a different campaign raises :class:`CheckpointMismatchError`
instead of silently mixing histograms.

:class:`RecoveryConfig` bundles the whole failure policy — retry
budget, quarantine switch, checkpoint manager, resume flag — and is
what the drivers (:mod:`repro.core.workflow`, the proxies, streaming)
thread into :func:`repro.core.cross_section.compute_cross_section`.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.grid import HKLGrid
from repro.core.hist3 import Hist3
from repro.nexus.h5lite import CorruptFileError, File, H5LiteError
from repro.util import atomic_io
from repro.util import trace as _trace
from repro.util.cancel import CancelToken
from repro.util.faults import RetryPolicy
from repro.util.validation import ReproError, require

#: manifest schema version (bump on any layout change)
MANIFEST_SCHEMA = 1

MANIFEST_NAME = "manifest.json"


class CheckpointError(ReproError):
    """Checkpoint machinery failure (I/O, schema, digest)."""


class CheckpointMismatchError(CheckpointError):
    """The checkpoint directory belongs to a different campaign."""


class CheckpointCorruptError(CheckpointError):
    """A persisted run delta failed digest verification."""


def _digest(arr: np.ndarray) -> str:
    a = np.ascontiguousarray(arr)
    h = hashlib.blake2b(digest_size=16)
    h.update(str(a.dtype).encode())
    h.update(repr(a.shape).encode())
    h.update(a.data)
    return h.hexdigest()


def campaign_digest(**fields: Any) -> str:
    """Stable digest of a campaign configuration (order-insensitive)."""
    def default(obj: Any) -> Any:
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        if isinstance(obj, (np.integer,)):
            return int(obj)
        if isinstance(obj, (np.floating,)):
            return float(obj)
        return repr(obj)

    payload = json.dumps(fields, sort_keys=True, default=default)
    return hashlib.sha256(payload.encode()).hexdigest()[:24]


@dataclass
class RunDelta:
    """One run's own MDNorm/BinMD contribution (the checkpoint unit)."""

    run_index: int
    binmd_signal: np.ndarray
    binmd_error_sq: Optional[np.ndarray]
    mdnorm_signal: np.ndarray


class CheckpointManager:
    """Per-run delta persistence + the crash-safe campaign manifest.

    Thread-safe: the in-process MPI ranks share one manager, so all
    manifest mutation happens under one lock and every write is
    published atomically (see :mod:`repro.util.atomic_io`).
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        config_digest: str = "",
        grid: Optional[HKLGrid] = None,
    ) -> None:
        self.directory = os.fspath(directory)
        self.config_digest = config_digest
        os.makedirs(self.directory, exist_ok=True)
        self._lock = threading.Lock()
        self._manifest: Dict[str, Any] = {
            "schema": MANIFEST_SCHEMA,
            "config_digest": config_digest,
            "runs": {},
            "quarantined": {},
        }
        self._load_manifest(grid)

    # -- manifest ---------------------------------------------------------
    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, MANIFEST_NAME)

    def _load_manifest(self, grid: Optional[HKLGrid]) -> None:
        path = self.manifest_path
        if not os.path.exists(path):
            return
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"unreadable checkpoint manifest {path!r}: {exc}"
            ) from exc
        if doc.get("schema") != MANIFEST_SCHEMA:
            raise CheckpointError(
                f"checkpoint manifest schema {doc.get('schema')!r} != "
                f"{MANIFEST_SCHEMA} ({path!r})"
            )
        if self.config_digest and doc.get("config_digest") \
                and doc["config_digest"] != self.config_digest:
            raise CheckpointMismatchError(
                f"checkpoint {self.directory!r} was written by a different "
                f"campaign (config digest {doc['config_digest']!r} != "
                f"{self.config_digest!r})"
            )
        doc.setdefault("runs", {})
        doc.setdefault("quarantined", {})
        self._manifest = doc

    def _write_manifest(self) -> None:
        atomic_io.atomic_write_text(
            self.manifest_path,
            json.dumps(self._manifest, indent=1, sort_keys=True) + "\n",
        )

    # -- queries ----------------------------------------------------------
    def has_run(self, i: int) -> bool:
        with self._lock:
            return str(i) in self._manifest["runs"]

    def is_quarantined(self, i: int) -> bool:
        with self._lock:
            return str(i) in self._manifest["quarantined"]

    def completed_runs(self) -> List[int]:
        with self._lock:
            return sorted(int(k) for k in self._manifest["runs"])

    def quarantined_runs(self) -> List[int]:
        with self._lock:
            return sorted(int(k) for k in self._manifest["quarantined"])

    def run_record(self, i: int) -> Optional[Dict[str, Any]]:
        with self._lock:
            rec = self._manifest["runs"].get(str(i))
            return dict(rec) if rec is not None else None

    # -- persistence ------------------------------------------------------
    def _run_file(self, i: int) -> str:
        return os.path.join(self.directory, f"run_{i:04d}.ckpt.h5")

    def save_run(
        self,
        i: int,
        binmd: Hist3,
        mdnorm: Hist3,
        *,
        attempts: int = 1,
        rank: Optional[int] = None,
    ) -> None:
        """Atomically persist run ``i``'s delta + update the manifest.

        The delta file is fully written and renamed into place *before*
        the manifest names it, so a crash between the two leaves a
        manifest that simply does not know about the run yet.
        """
        tracer = _trace.active_tracer()
        path = self._run_file(i)
        with tracer.span("checkpoint.write", kind="checkpoint", run=int(i)):
            digests = {
                "binmd": _digest(binmd.signal),
                "mdnorm": _digest(mdnorm.signal),
            }
            if binmd.error_sq is not None:
                digests["binmd_error_sq"] = _digest(binmd.error_sq)
            with atomic_io.atomic_path(path) as tmp:
                with File(tmp, "w") as f:
                    grp = f.create_group("checkpoint")
                    grp.attrs["schema"] = MANIFEST_SCHEMA
                    grp.attrs["run_index"] = int(i)
                    grp.create_dataset("binmd_signal", data=binmd.signal)
                    if binmd.error_sq is not None:
                        grp.create_dataset("binmd_error_sq", data=binmd.error_sq)
                    grp.create_dataset("mdnorm_signal", data=mdnorm.signal)
            with self._lock:
                self._manifest["runs"][str(i)] = {
                    "file": os.path.basename(path),
                    "digests": digests,
                    "status": "done",
                    "attempts": int(attempts),
                    "rank": None if rank is None else int(rank),
                }
                self._manifest["quarantined"].pop(str(i), None)
                self._write_manifest()
        tracer.count("checkpoint.write")

    def load_run(self, i: int, grid: HKLGrid) -> RunDelta:
        """Load + digest-verify run ``i``'s persisted delta."""
        with self._lock:
            rec = self._manifest["runs"].get(str(i))
        if rec is None:
            raise CheckpointError(f"run {i} is not checkpointed")
        path = os.path.join(self.directory, rec["file"])
        tracer = _trace.active_tracer()
        with tracer.span("checkpoint.read", kind="checkpoint", run=int(i)):
            try:
                with File(path, "r") as f:
                    grp = f["checkpoint"]
                    binmd = grp.read("binmd_signal")
                    mdnorm = grp.read("mdnorm_signal")
                    err = (grp.read("binmd_error_sq")
                           if "binmd_error_sq" in grp else None)
            except (OSError, H5LiteError) as exc:
                raise CheckpointCorruptError(
                    f"checkpoint delta for run {i} is unreadable: {exc}"
                ) from exc
            digests = rec.get("digests", {})
            checks = [("binmd", binmd), ("mdnorm", mdnorm)]
            if err is not None:
                checks.append(("binmd_error_sq", err))
            for name, arr in checks:
                want = digests.get(name)
                if want is not None and _digest(arr) != want:
                    raise CheckpointCorruptError(
                        f"checkpoint delta for run {i}: {name} digest mismatch"
                    )
            shape = tuple(grid.bins)
            if binmd.shape != shape or mdnorm.shape != shape:
                raise CheckpointMismatchError(
                    f"checkpoint delta for run {i} has shape {binmd.shape}, "
                    f"campaign grid is {shape}"
                )
        tracer.count("checkpoint.read")
        return RunDelta(run_index=i, binmd_signal=binmd,
                        binmd_error_sq=err, mdnorm_signal=mdnorm)

    def quarantine_run(self, i: int, reason: str) -> None:
        """Durably record run ``i`` as quarantined."""
        with self._lock:
            self._manifest["quarantined"][str(i)] = {"reason": reason}
            self._write_manifest()
        _trace.active_tracer().count("checkpoint.quarantine")

    def clear_quarantine(self) -> List[int]:
        """Durably drop every quarantine record (completed runs stay).

        A *new* campaign attempt calls this so runs quarantined by a
        previous attempt (e.g. under an injected fault plan) are retried
        rather than inherited; returns the run indices that were
        cleared.
        """
        with self._lock:
            cleared = sorted(int(k) for k in self._manifest["quarantined"])
            if cleared:
                self._manifest["quarantined"] = {}
                self._write_manifest()
        return cleared

    def mark_campaign_complete(self, text: str = "") -> None:
        """Write the COMPLETE sentinel once the final reduce happened."""
        atomic_io.mark_complete(self.directory, text)

    @property
    def campaign_complete(self) -> bool:
        return atomic_io.is_complete(self.directory)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"CheckpointManager({self.directory!r}, "
                f"runs={len(self._manifest['runs'])}, "
                f"quarantined={len(self._manifest['quarantined'])})")


# ---------------------------------------------------------------------------
# the bundled failure policy
# ---------------------------------------------------------------------------

@dataclass
class RecoveryConfig:
    """Everything the run loop needs to survive faults.

    ``retry`` shapes per-run retry/backoff; ``quarantine`` lets runs
    that exhaust retries be dropped (the campaign completes degraded on
    the survivors) instead of aborting; ``checkpoint`` persists per-run
    deltas; ``resume`` replays completed runs from the checkpoint.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    quarantine: bool = True
    checkpoint: Optional[CheckpointManager] = None
    resume: bool = False
    #: exception types treated as retryable (None = defaults:
    #: OSError / H5LiteError / InjectedKernelError)
    retryable: Optional[Tuple[type, ...]] = None
    #: cooperative cancellation / deadline for the whole campaign: the
    #: recovering loop checks it between durable units of work, so a
    #: cancelled or expired campaign always stops checkpointed and
    #: resumable (see :mod:`repro.util.cancel`).  The token's deadline
    #: also caps every per-run retry backoff (deadline propagation).
    cancel: Optional[CancelToken] = None
