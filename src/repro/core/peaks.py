"""Peak extraction from reduced cross-sections.

The downstream science of the whole workflow: locate Bragg peaks in
the reduced (H, K, L) histogram and identify them against the crystal's
reflection list.  In this reproduction it doubles as the end-to-end
physics validation — the peaks recovered from a synthetic measurement
must sit on the reciprocal-lattice nodes the generator sampled
(``tests/integration/test_peak_recovery.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.ndimage import maximum_filter

from repro.core.hist3 import Hist3
from repro.util.validation import require


@dataclass(frozen=True)
class PeakList:
    """Peaks found in a reduced histogram."""

    #: (n, 3) peak centers in grid coordinates
    grid_coords: np.ndarray
    #: (n, 3) the same centers mapped back to (H, K, L)
    hkl: np.ndarray
    #: (n,) peak heights (histogram units)
    intensity: np.ndarray

    @property
    def n_peaks(self) -> int:
        return int(self.intensity.shape[0])

    def strongest(self, n: int) -> "PeakList":
        order = np.argsort(self.intensity)[::-1][:n]
        return PeakList(
            grid_coords=self.grid_coords[order],
            hkl=self.hkl[order],
            intensity=self.intensity[order],
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PeakList(n={self.n_peaks})"


def find_peaks(
    hist: Hist3,
    *,
    min_intensity: Optional[float] = None,
    neighborhood: int = 1,
) -> PeakList:
    """Locate local maxima of the histogram above a threshold.

    Parameters
    ----------
    hist:
        A reduced histogram (cross-section or BinMD output).  NaN bins
        (no normalization) are treated as empty.
    min_intensity:
        Absolute threshold; default = 5x the mean of the non-empty bins
        (a simple significance floor).
    neighborhood:
        Half-width (in bins) of the local-maximum window per dimension.
    """
    require(neighborhood >= 1, "neighborhood must be >= 1")
    data = np.nan_to_num(hist.signal, nan=0.0)
    if not np.any(data > 0):
        empty = np.empty((0, 3))
        return PeakList(grid_coords=empty, hkl=empty, intensity=np.empty(0))
    if min_intensity is None:
        positive = data[data > 0]
        min_intensity = 5.0 * float(positive.mean())

    size = [min(2 * neighborhood + 1, s) for s in data.shape]
    local_max = maximum_filter(data, size=size, mode="constant", cval=0.0)
    is_peak = (data == local_max) & (data >= min_intensity)
    idx = np.argwhere(is_peak)
    if idx.size == 0:
        empty = np.empty((0, 3))
        return PeakList(grid_coords=empty, hkl=empty, intensity=np.empty(0))

    grid = hist.grid
    centers = np.array(grid.minimum) + (idx + 0.5) * grid.widths
    hkl = centers @ grid.basis.T  # hkl = W @ c
    intensity = data[tuple(idx.T)]
    order = np.argsort(intensity)[::-1]
    return PeakList(
        grid_coords=centers[order],
        hkl=hkl[order],
        intensity=intensity[order],
    )


def match_to_reflections(
    peaks: PeakList,
    reflections_hkl: np.ndarray,
    *,
    tolerance: float,
) -> np.ndarray:
    """For each peak, whether an allowed reflection lies within
    ``tolerance`` (r.l.u., Chebyshev distance) of its HKL position."""
    refl = np.asarray(reflections_hkl, dtype=np.float64)
    if peaks.n_peaks == 0 or refl.shape[0] == 0:
        return np.zeros(peaks.n_peaks, dtype=bool)
    matched = np.zeros(peaks.n_peaks, dtype=bool)
    for i, hkl in enumerate(peaks.hkl):
        d = np.max(np.abs(refl - hkl[None, :]), axis=1)
        matched[i] = bool(np.any(d <= tolerance))
    return matched
