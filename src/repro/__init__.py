"""repro: a performance-portable CPU/GPU neutron data-reduction ecosystem.

A from-scratch Python reproduction of *"Integrating ORNL's HPC and
Neutron Facilities with a Performance-Portable CPU/GPU Ecosystem"*
(Hahn et al., SC 2024): the Mantid ``MDNorm`` + ``BinMD`` differential
scattering cross-section workflow for the SNS CORELLI and TOPAZ
instruments, the Garnet production baseline, the two proxy applications
(the ``extract_mdnorm`` C++ proxy and ``MiniVATES.jl``), and every
substrate they stand on — a JACC.jl-style performance-portability
layer, an in-process MPI, an HDF5/NeXus-like container, crystallography
and instrument models, and a synthetic event pipeline replacing the
facility-internal data.

Quick start::

    from repro.bench.workloads import benzil_corelli, build_workload
    from repro.proxy import MiniVatesConfig, MiniVatesWorkflow

    data = build_workload(benzil_corelli(scale=0.001, n_files=4))
    result = MiniVatesWorkflow(MiniVatesConfig(
        md_paths=data.md_paths,
        flux_path=data.flux_path,
        vanadium_path=data.vanadium_path,
        instrument=data.instrument,
        grid=data.grid,
        point_group=data.point_group,
    )).run()
    print(result.cross_section)       # the reduced 2-D slice
    print(result.timings.summary())   # UpdateEvents / MDNorm / BinMD WCT

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

__version__ = "1.0.0"

from repro.core import (
    HKLGrid,
    Hist3,
    MDEventWorkspace,
    ReductionWorkflow,
    WorkflowConfig,
    bin_events,
    compute_cross_section,
    convert_to_md,
    load_md,
    mdnorm,
    save_md,
)

__all__ = [
    "__version__",
    "HKLGrid",
    "Hist3",
    "MDEventWorkspace",
    "ReductionWorkflow",
    "WorkflowConfig",
    "bin_events",
    "compute_cross_section",
    "convert_to_md",
    "load_md",
    "mdnorm",
    "save_md",
]
