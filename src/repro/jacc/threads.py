"""Threads back end: the coarse-grained CPU engine.

The paper's C++ proxy parallelizes the (symmetry op x detector) loop
with OpenMP ``collapse(2)``; JACC.jl's Threads back end does the same
with Julia tasks.  Here the outer index-space dimension is chunked over
a worker pool (``REPRO_NUM_THREADS``, default the machine's CPU count).
Each worker runs a JIT-specialized *ranged* loop nest, so the per-index
body is identical to the serial back end and correctness is preserved
by construction; reductions combine per-worker partials, avoiding any
shared mutable accumulator.

On a single-core host the pool degenerates gracefully (the structure is
exercised, the speedup is not) — DESIGN.md section 2 documents this as
part of the hardware substitution.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Tuple

from repro.jacc.backend import Backend, BackendError, REDUCE_OPS, register_backend
from repro.jacc.jit import GLOBAL_JIT
from repro.jacc.kernels import Captures, Kernel, normalize_dims
from repro.jacc.workers import THREADS_ENV, resolve_workers


def _default_workers() -> int:
    """Worker count from ``REPRO_NUM_THREADS`` (validated) or CPU count.

    Historically this went through a bare ``int()`` — garbage crashed
    with an opaque ``ValueError`` and ``0``/negatives were silently
    clamped to 1.  Both now raise a clear
    :class:`~repro.jacc.backend.BackendError` via the parser shared
    with the multiprocess back end (see :mod:`repro.jacc.workers`).
    """
    return resolve_workers(THREADS_ENV)


class ThreadsBackend(Backend):
    name = "threads"
    device_kind = "cpu"

    def __init__(self, n_workers: Optional[int] = None) -> None:
        self._n_workers = n_workers
        self._pool: Optional[ThreadPoolExecutor] = None

    @property
    def n_workers(self) -> int:
        return self._n_workers if self._n_workers else _default_workers()

    def _executor(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.n_workers, thread_name_prefix="jacc"
            )
        return self._pool

    def _chunks(self, n: int) -> list[tuple[int, int]]:
        workers = self.n_workers
        if n <= 0:
            return []
        step = max(1, (n + workers - 1) // workers)
        return [(start, min(start + step, n)) for start in range(0, n, step)]

    def run_parallel_for(
        self, dims: int | Tuple[int, ...], kernel: Kernel, captures: Captures
    ) -> None:
        dims = normalize_dims(dims)
        chunks = self._chunks(dims[0])
        if not chunks:
            return
        loop = GLOBAL_JIT.loop_for(kernel.name, self.name, len(dims), ranged=True)
        if len(chunks) == 1:
            loop(kernel.element, captures, dims, 0, dims[0])
            return
        pool = self._executor()
        futures = [
            pool.submit(loop, kernel.element, captures, dims, start, stop)
            for start, stop in chunks
        ]
        for f in futures:
            f.result()  # re-raise worker exceptions

    def run_parallel_reduce(
        self,
        dims: int | Tuple[int, ...],
        kernel: Kernel,
        captures: Captures,
        op: str = "+",
    ) -> float:
        dims = normalize_dims(dims)
        try:
            combine, init = REDUCE_OPS[op]
        except KeyError:
            raise BackendError(f"unknown reduction op {op!r}") from None
        chunks = self._chunks(dims[0])
        if not chunks:
            return float(init)
        loop = GLOBAL_JIT.loop_reduce(kernel.name, self.name, len(dims), ranged=True)
        if len(chunks) == 1:
            return float(loop(kernel.element, captures, dims, combine, init, 0, dims[0]))
        pool = self._executor()
        futures = [
            pool.submit(loop, kernel.element, captures, dims, combine, init, start, stop)
            for start, stop in chunks
        ]
        acc = init
        for f in futures:
            acc = combine(acc, f.result())
        return float(acc)


THREADS = register_backend(ThreadsBackend())
