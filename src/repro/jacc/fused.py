"""Fused compiled-kernel back end ("fused").

The vectorized back end already plays the device role with array
primitives, but its MDNorm launch still runs a generic batch body:
per-call Python dispatch, a Python-pass comb sort, a materialized
``(rows, segments, 3)`` coordinate array, and fresh buffer allocations
per tile.  This back end replaces exactly that launch with a
**plan-specialized fused kernel** (see :mod:`repro.jacc.codegen`):

* on the first launch of a plan configuration the source is generated,
  compiled, memoized in-process, and published to the content-digest
  artifact store (:mod:`repro.jacc.artifact_cache`) for other
  processes;
* later launches of the same plan — any width, tiling, shard or worker
  schedule — run the cached callable with zero dispatch overhead and
  no per-launch allocation of the padded buffer;
* every other kernel (``bin_events``, the pre-pass counters, the
  conformance-matrix kernels) executes through the inherited
  vectorized path unchanged, so the fused back end inherits the device
  tier's semantics (``to_device`` copies, transfer counters, the
  ``op='+'``-only reduce limitation) wholesale.

Observability: each MDNorm launch emits ``fused:plan`` and
``fused:exec`` phase spans (plus ``fused:load`` on an artifact hit or
``fused:codegen`` on a miss) nested inside the backend's
``kernel:mdnorm`` span, and feeds two counters into the trace stream —
``jacc.artifact_hits`` and ``jacc.compile_seconds`` — which ``repro
perf`` rolls up alongside the JIT cache's ``compile_events`` (every
specialization is also appended there so benchmarks can separate
compile from execution time).

Determinism: ORDER_EXACT — bit-identical to ``vectorized`` for every
kernel, proven by the conformance matrix and
``tests/integration/test_fused_pipeline.py``.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Tuple

from repro.jacc.artifact_cache import ArtifactStore, artifact_digest
from repro.jacc.backend import register_backend
from repro.jacc.codegen import FusedPlanConfig, generate_fused_source
from repro.jacc.jit import GLOBAL_JIT, CompileEvent
from repro.jacc.kernels import Captures, Kernel, normalize_dims
from repro.jacc.vectorized import VectorizedBackend
from repro.util import trace as _trace


class FusedBackend(VectorizedBackend):
    """Device back end with plan-specialized fused MDNorm kernels."""

    name = "fused"
    device_kind = "device"

    def __init__(self) -> None:
        super().__init__()
        #: in-process memo: artifact digest -> compiled ``fused_mdnorm``
        self._kernels: Dict[str, Callable] = {}
        #: plan-identity memo: grid/op/impl tuple -> (digest, config),
        #: so warm launches skip the canonical-JSON + blake2b round trip
        self._plans: Dict[tuple, Tuple[str, FusedPlanConfig]] = {}

    def clear(self) -> None:
        """Drop the in-process memos (tests re-measure cold)."""
        self._kernels.clear()
        self._plans.clear()

    # -- execution -------------------------------------------------------
    def run_parallel_for(
        self, dims: int | Tuple[int, ...], kernel: Kernel, captures: Captures
    ) -> None:
        if kernel.name != "mdnorm":
            super().run_parallel_for(dims, kernel, captures)
            return
        dims = normalize_dims(dims)
        self.launches += 1
        if not all(d > 0 for d in dims):
            return
        tracer = _trace.active_tracer()
        with tracer.span("fused:plan", kind="phase", backend=self.name) as sp:
            grid = captures.grid
            scatter_impl = getattr(captures, "scatter_impl", "atomic")
            codec = getattr(captures, "codec", "none")
            plan_key = (
                grid.basis.tobytes(), grid.minimum, grid.maximum, grid.bins,
                dims[0], scatter_impl, codec,
            )
            cached = self._plans.get(plan_key)
            if cached is None:
                config = FusedPlanConfig.for_plan(
                    grid, n_ops=dims[0], scatter_impl=scatter_impl, codec=codec
                )
                digest = artifact_digest(config.canonical_json())
                self._plans[plan_key] = (digest, config)
            else:
                digest, config = cached
            sp.set(digest=digest)
        fn = self._kernels.get(digest)
        if fn is None:
            fn = self._materialize(digest, config, tracer)
            self._kernels[digest] = fn
        with tracer.span(
            "fused:exec", kind="phase", digest=digest,
            rows=int(dims[0]) * int(dims[1]),
        ):
            fn(captures, dims)

    # -- specialization --------------------------------------------------
    def _materialize(
        self, digest: str, config: FusedPlanConfig, tracer
    ) -> Callable:
        """Load the plan's kernel from the artifact store or build it."""
        store = ArtifactStore()
        source = store.load(digest)
        if source is not None:
            tracer.count("jacc.artifact_hits", 1)
            with tracer.span("fused:load", kind="phase", digest=digest):
                return self._compile(digest, source, "load")
        with tracer.span("fused:codegen", kind="phase", digest=digest):
            t0 = time.perf_counter()
            source = generate_fused_source(config)
            gen_seconds = time.perf_counter() - t0
            store.store(digest, source, config.canonical_json())
            return self._compile(digest, source, "codegen", gen_seconds)

    def _compile(
        self, digest: str, source: str, origin: str, extra_seconds: float = 0.0
    ) -> Callable:
        t0 = time.perf_counter()
        code = compile(source, f"<jacc:fused:{digest[:12]}>", "exec")
        namespace: Dict[str, object] = {}
        exec(code, namespace)  # noqa: S102 - trusted generated source
        fn = namespace["fused_mdnorm"]
        seconds = time.perf_counter() - t0 + extra_seconds
        GLOBAL_JIT.compile_events.append(
            CompileEvent(
                kernel="mdnorm", backend=self.name,
                variant=f"{origin}:{digest[:12]}", seconds=seconds,
            )
        )
        _trace.active_tracer().count("jacc.compile_seconds", seconds)
        return fn


FUSED = register_backend(FusedBackend())
