"""Plan-time source generation for the fused MDNorm kernel.

The paper's JACC layer wins by keeping the intersections -> sort ->
deposit pipeline on-device; the vectorized back end still runs those
stages through a generic batch body with per-call Python dispatch, a
Python-loop comb sort, and a freshly allocated padded buffer per tile.
This module closes that gap the way the MC/DC Numba-JIT portability
work does (PAPERS.md): **specialize one fused kernel per plan
configuration** — instrument grid geometry, symmetry-op count, scatter
implementation, event codec — and emit it as a self-contained NumPy
source module that

* folds the grid constants (minimum / bin widths / bin counts and the
  flat-index strides) into the kernel body, eliminating the
  ``(rows, width - 1, 3)`` coordinate intermediate the generic
  ``HKLGrid.bin_index`` materializes;
* row-sorts the padded crossing buffer with NumPy's C sort.  Comb sort
  and the library sort produce the same ascending value sequence for
  every row (the multiset is identical and the buffers are NaN-free;
  only the placement of ``-0.0`` vs ``+0.0`` can differ, which is
  invisible to every downstream consumer: interpolation, midpoints,
  ``>`` masks and the ``weights != 0`` deposit gate), so the fused
  kernel is **bit-identical** to the vectorized cold path while
  skipping its Python-pass comb sort;
* reuses one thread-local padded buffer across tiles *and* launches
  (``fill_crossings_batch(out=...)``), so warm execution allocates
  nothing proportional to the pre-pass bound;
* replicates the :class:`~repro.core.geom_cache.DepositPlan` warm path
  and cold-pass plan collection exactly, so the geometry cache is
  shared transparently with every other back end.

Determinism tier: ORDER_EXACT.  The emitted kernel performs the same
floating-point operations in the same order as
``repro.core.mdnorm._mdnorm_batch`` (same tiling, same row-major
``np.add.at`` / ``bincount`` deposit sequence), which is what lets the
conformance matrix and the differential pipeline suite demand
bit-identity rather than tolerances.

The *identity* of a specialization is :class:`FusedPlanConfig`; its
canonical JSON plus :data:`CODEGEN_VERSION` is what
:mod:`repro.jacc.artifact_cache` digests.  Scheduling knobs — padded
width, tile rows, shard/worker counts, steal seeds — are deliberately
not part of the identity: one artifact serves every schedule.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Tuple

#: Bump whenever :func:`generate_fused_source` changes the emitted code
#: in any way.  The artifact digest folds this in, so stale on-disk
#: artifacts from an older generator are never loaded — they simply
#: miss and are regenerated (no invalidation pass required).
CODEGEN_VERSION = 1


@dataclass(frozen=True)
class FusedPlanConfig:
    """Everything that selects one specialized fused kernel.

    Two plans with equal configs share one artifact; anything that
    changes the emitted code must appear here.  Scheduling knobs
    (padded width, ``tile_rows``, shard counts, worker counts) are
    excluded on purpose — the kernel reads them from its captures at
    launch time, so the same compiled artifact serves every schedule
    (property-tested in ``tests/jacc/test_artifact_cache.py``).
    """

    #: grid basis as nested row tuples (part of the instrument identity)
    grid_basis: Tuple[Tuple[float, float, float], ...]
    grid_minimum: Tuple[float, float, float]
    grid_maximum: Tuple[float, float, float]
    grid_bins: Tuple[int, int, int]
    #: symmetry-op count of the plan (the outer kernel dimension)
    n_ops: int
    #: histogram accumulation flavour ("atomic" | "buffered"), folded
    #: into the deposit statement
    scatter_impl: str
    #: event-store codec of the plan (identity only; the normalization
    #: kernel itself never touches event payloads)
    codec: str = "none"

    @classmethod
    def for_plan(
        cls, grid, n_ops: int, scatter_impl: str, codec: str = "none"
    ) -> "FusedPlanConfig":
        """Build the config for one MDNorm launch on ``grid``."""
        basis = tuple(
            tuple(float(x) for x in row) for row in grid.basis.tolist()
        )
        return cls(
            grid_basis=basis,
            grid_minimum=tuple(float(x) for x in grid.minimum),
            grid_maximum=tuple(float(x) for x in grid.maximum),
            grid_bins=tuple(int(x) for x in grid.bins),
            n_ops=int(n_ops),
            scatter_impl=str(scatter_impl),
            codec=str(codec),
        )

    def canonical_json(self) -> str:
        """Deterministic JSON form (sorted keys, exact float repr) —
        the byte string the artifact digest is computed over."""
        return json.dumps(
            {
                "grid_basis": self.grid_basis,
                "grid_minimum": self.grid_minimum,
                "grid_maximum": self.grid_maximum,
                "grid_bins": self.grid_bins,
                "n_ops": self.n_ops,
                "scatter_impl": self.scatter_impl,
                "codec": self.codec,
            },
            sort_keys=True,
            separators=(",", ":"),
        )


def _scatter_statement(scatter_impl: str) -> str:
    """The deposit statement for one tile, specialized by impl.

    Must stay semantically identical to :meth:`Hist3._scatter` — the
    vectorized back end routes through that dispatcher at run time;
    here the branch is resolved at codegen time.
    """
    if scatter_impl == "atomic":
        return "_atomic_add(target, flat_idx[deposit], weights[deposit])"
    if scatter_impl == "buffered":
        return (
            "target += _np.bincount(flat_idx[deposit].ravel(), "
            "weights=weights[deposit].ravel(), minlength=target.size)"
        )
    raise ValueError(f"unknown scatter_impl {scatter_impl!r}")


def generate_fused_source(config: FusedPlanConfig) -> str:
    """Emit the specialized fused-kernel module for ``config``.

    The module defines ``fused_mdnorm(ctx, dims)`` with the batch-body
    calling convention of :data:`repro.core.mdnorm.MDNORM_KERNEL`.  It
    must remain an exact floating-point transcription of
    ``repro.core.mdnorm._mdnorm_batch`` (same tiling, same op order,
    same deposit sequence) — the conformance matrix and the
    differential pipeline suite enforce bit-identity against the
    vectorized back end.
    """
    mn = config.grid_minimum
    mx = config.grid_maximum
    nb = config.grid_bins
    scatter = _scatter_statement(config.scatter_impl)
    # Python float repr round-trips exactly, so the folded constants
    # reconstruct the grid's minimum/maximum bit for bit; the widths are
    # recomputed with the same expression HKLGrid.widths uses, so they
    # too are bitwise identical.
    lines = [
        f"# generated by repro.jacc.codegen v{CODEGEN_VERSION} -- do not edit",
        f"# config: {config.canonical_json()}",
        '"""Fused MDNorm kernel specialized for one plan configuration."""',
        "import threading as _threading",
        "",
        "import numpy as _np",
        "",
        "from repro.core.geom_cache import DepositPlan as _DepositPlan",
        "from repro.core.intersections import fill_crossings_batch as _fill",
        "from repro.jacc.atomic import atomic_add as _atomic_add",
        "",
        f"_N_OPS = {config.n_ops}",
        f"_MIN = ({mn[0]!r}, {mn[1]!r}, {mn[2]!r})",
        f"_MAX = ({mx[0]!r}, {mx[1]!r}, {mx[2]!r})",
        f"_BINS = ({nb[0]}, {nb[1]}, {nb[2]})",
        "",
        "# bitwise-identical to HKLGrid.widths / bin_index for this grid",
        "_MN = _np.array(_MIN)",
        "_W = (_np.array(_MAX) - _np.array(_MIN)) / _np.array(_BINS)",
        "_NB = _np.array(_BINS)",
        f"_STRIDE0 = {nb[1] * nb[2]}",
        f"_STRIDE1 = {nb[2]}",
        "",
        "_TLS = _threading.local()",
        "",
        "",
        "def _buffer(rows, width):",
        "    # thread-local padded crossing buffer, grown monotonically and",
        "    # reused across tiles and launches (allocation-free warm path)",
        "    buf = getattr(_TLS, 'buf', None)",
        "    if buf is None or buf.shape[0] < rows or buf.shape[1] != width:",
        "        cap = rows if buf is None or buf.shape[1] != width \\",
        "            else max(rows, buf.shape[0])",
        "        buf = _np.empty((cap, width), dtype=_np.float64)",
        "        _TLS.buf = buf",
        "    return buf[:rows]",
        "",
        "",
        "def fused_mdnorm(ctx, dims):",
        "    n_ops, n_det = dims",
        "    target = ctx.hist.flat_signal",
        "    det_w = _np.broadcast_to(",
        "        ctx.solid_angles, (n_ops, n_det)).reshape(-1) * ctx.charge",
        "    tile = ctx.tile_rows",
        "    width = ctx.width",
        "",
        "    entry = getattr(ctx, 'geom_entry', None)",
        "    use_plan = getattr(ctx, 'use_plan', False)",
        "    plan = entry.deposit if (entry is not None and use_plan) else None",
        "    if plan is not None and plan.width != width:",
        "        plan = None",
        "",
        "    if plan is not None:",
        "        det_w_live = det_w[plan.live]",
        "        n_rows = plan.n_rows",
        "        for start in range(0, n_rows, tile):",
        "            stop = min(start + tile, n_rows)",
        "            seg_flux = plan.seg_flux[start:stop]",
        "            weights = seg_flux * det_w_live[start:stop, None]",
        "            deposit = plan.seg_ok[start:stop] & (weights != 0.0)",
        "            flat_idx = plan.flat_idx[start:stop]",
        f"            {scatter}",
        "        return",
        "",
        "    directions = ctx.directions.reshape(-1, 3)",
        "    k_lo = ctx.k_lo.reshape(-1)",
        "    k_hi = ctx.k_hi.reshape(-1)",
        "",
        "    live = (k_hi > k_lo) & (det_w != 0.0)",
        "    if not live.any():",
        "        return",
        "    directions = directions[live]",
        "    k_lo = k_lo[live]",
        "    k_hi = k_hi[live]",
        "    det_w = det_w[live]",
        "    n_rows = directions.shape[0]",
        "",
        "    collect = None",
        "    if use_plan and entry is not None:",
        "        plan_bytes = live.nbytes + n_rows * (width - 1) * (8 + 8 + 1)",
        "        if ctx.geom_cache.accepts(plan_bytes):",
        "            collect = _DepositPlan(",
        "                width=width,",
        "                live=live,",
        "                seg_flux=_np.empty((n_rows, width - 1), dtype=_np.float64),",
        "                flat_idx=_np.empty((n_rows, width - 1), dtype=_np.int64),",
        "                seg_ok=_np.empty((n_rows, width - 1), dtype=bool),",
        "            )",
        "",
        "    flux_k = ctx.flux_k",
        "    flux_cum = ctx.flux_cum",
        "    for start in range(0, n_rows, tile):",
        "        stop = min(start + tile, n_rows)",
        "        d = directions[start:stop]",
        "        padded = _fill(d, ctx.grid, k_lo[start:stop], k_hi[start:stop],",
        "                       width, out=_buffer(stop - start, width))",
        "        padded.sort(axis=1)  # C row sort, value-identical to comb",
        "        phi = _np.interp(padded, flux_k, flux_cum)",
        "        seg_lo = padded[:, :-1]",
        "        seg_hi = padded[:, 1:]",
        "        seg_flux = phi[:, 1:] - phi[:, :-1]",
        "        mid = 0.5 * (seg_lo + seg_hi)",
        "        i0 = _np.floor((mid * d[:, 0:1] - _MN[0]) / _W[0]).astype(_np.int64)",
        "        i1 = _np.floor((mid * d[:, 1:2] - _MN[1]) / _W[1]).astype(_np.int64)",
        "        i2 = _np.floor((mid * d[:, 2:3] - _MN[2]) / _W[2]).astype(_np.int64)",
        "        inside = ((i0 >= 0) & (i0 < _NB[0]) & (i1 >= 0) & (i1 < _NB[1])",
        "                  & (i2 >= 0) & (i2 < _NB[2]))",
        "        _np.clip(i0, 0, _NB[0] - 1, out=i0)",
        "        _np.clip(i1, 0, _NB[1] - 1, out=i1)",
        "        _np.clip(i2, 0, _NB[2] - 1, out=i2)",
        "        flat_idx = i0 * _STRIDE0 + i1 * _STRIDE1 + i2",
        "        weights = seg_flux * det_w[start:stop, None]",
        "        seg_ok = inside & (seg_hi > seg_lo)",
        "        deposit = seg_ok & (weights != 0.0)",
        "        if collect is not None:",
        "            collect.seg_flux[start:stop] = seg_flux",
        "            collect.flat_idx[start:stop] = flat_idx",
        "            collect.seg_ok[start:stop] = seg_ok",
        f"        {scatter}",
        "",
        "    if collect is not None:",
        "        for name in ('live', 'seg_flux', 'flat_idx', 'seg_ok'):",
        "            getattr(collect, name).flags.writeable = False",
        "        entry.deposit = collect",
        "        ctx.geom_cache.note_update(entry)",
        "",
    ]
    return "\n".join(lines)
