"""A JACC.jl-style performance-portability layer for Python.

JACC.jl gives Julia applications one ``parallel_for`` /
``parallel_reduce`` API whose kernels run unchanged on Threads, CUDA or
AMDGPU back ends.  This subpackage reproduces that model with the
execution engines available here:

============ =========================================================
back end      execution model
============ =========================================================
serial        interpreted per-element loop — the scalar-CPU reference
threads       chunked per-element loops on a thread pool — the paper's
              OpenMP ``collapse(2)`` analogue (coarse-grained CPU)
multiprocess  fixed-grid chunks of the flattened index space on a
              persistent process pool with shared-memory captures,
              ordered deposit replay and a deterministic pairwise tree
              reduction — CPU scale-out past the GIL (see
              :mod:`repro.jacc.multiproc`)
vectorized    whole-index-space NumPy array kernels — the data-parallel
              "device" stand-in for the CUDA/AMDGPU back ends
============ =========================================================

A :class:`~repro.jacc.kernels.Kernel` carries *both* a scalar
``element`` function and a data-parallel ``batch`` function over the
same index space; back ends pick the representation matching their
execution model, which is exactly the portability contract JACC.jl
implements via Julia's multiple dispatch.  The :mod:`repro.jacc.jit`
module reproduces the just-in-time specialization cost structure: the
first launch of a kernel on a back end pays a genuine (Python
``compile``-based) specialization step that later launches skip —
giving real "JIT" vs "no JIT" columns like Tables III-VI.

Deliberately reproduced limitation: like the JACC.jl release the paper
used, the device back end's ``parallel_reduce`` supports only ``+``
(the paper discusses needing a MAX reduction workaround in MiniVATES);
:func:`repro.proxy.minivates` implements the same workaround.
"""

from repro.jacc.api import (
    parallel_for,
    parallel_reduce,
    array,
    to_host,
    default_backend,
    set_default_backend,
    get_backend,
    available_backends,
)
from repro.jacc.kernels import Kernel
from repro.jacc.backend import Backend, BackendError
from repro.jacc.atomic import atomic_add

__all__ = [
    "parallel_for",
    "parallel_reduce",
    "array",
    "to_host",
    "default_backend",
    "set_default_backend",
    "get_backend",
    "available_backends",
    "Kernel",
    "Backend",
    "BackendError",
    "atomic_add",
]
