"""Just-in-time kernel specialization.

Julia pays LLVM code generation on a kernel's first launch and runs
native code afterwards — the paper reports both columns ("JIT" and
"no JIT") because the difference is large.  Python cannot emit native
code without external compilers, but the *cost structure* is
reproducible honestly: on first launch per (kernel, back end, arity)
this cache **generates specialized loop source code and compiles it**
with :func:`compile`, so later launches execute a pre-built code object
with no per-launch dispatch.  First calls therefore pay a real,
measurable specialization cost that warm calls do not — much smaller
than LLVM's, which EXPERIMENTS.md accounts for.

The generated code is a plain loop nest calling the kernel's scalar
body (for the CPU back ends), or a direct trampoline to the batch body
(device back end).  ``JITCache.compile_events`` records every
specialization with its wall-clock cost, which the benchmark harness
reads to separate JIT from execution time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple


@dataclass(frozen=True)
class CompileEvent:
    kernel: str
    backend: str
    variant: str
    seconds: float


_LOOP_TEMPLATES = {
    # (ndim, ranged): source of the specialized loop nest
    (1, False): (
        "def _loop(element, ctx, dims):\n"
        "    (n0,) = dims\n"
        "    for i0 in range(n0):\n"
        "        element(ctx, i0)\n"
    ),
    (2, False): (
        "def _loop(element, ctx, dims):\n"
        "    n0, n1 = dims\n"
        "    for i0 in range(n0):\n"
        "        for i1 in range(n1):\n"
        "            element(ctx, i0, i1)\n"
    ),
    (1, True): (
        "def _loop(element, ctx, dims, start, stop):\n"
        "    for i0 in range(start, stop):\n"
        "        element(ctx, i0)\n"
    ),
    (2, True): (
        "def _loop(element, ctx, dims, start, stop):\n"
        "    n1 = dims[1]\n"
        "    for i0 in range(start, stop):\n"
        "        for i1 in range(n1):\n"
        "            element(ctx, i0, i1)\n"
    ),
}

# Flat-ranged nests iterate a [start, stop) window of the *flattened*
# row-major index space — the form the multiprocess back end ships to
# workers so a chunk boundary can fall anywhere, not only on an outer
# row.  For 1-D spaces flat and ranged coincide; the 2-D form recovers
# (i0, i1) by division exactly as CUDA recovers thread coordinates from
# a linear thread id.
_FLAT_LOOP_TEMPLATES = {
    1: _LOOP_TEMPLATES[(1, True)],
    2: (
        "def _loop(element, ctx, dims, start, stop):\n"
        "    n1 = dims[1]\n"
        "    for t in range(start, stop):\n"
        "        i0 = t // n1\n"
        "        element(ctx, i0, t - i0 * n1)\n"
    ),
}

_REDUCE_TEMPLATES = {
    (1, False): (
        "def _loop(element, ctx, dims, combine, acc):\n"
        "    (n0,) = dims\n"
        "    for i0 in range(n0):\n"
        "        acc = combine(acc, element(ctx, i0))\n"
        "    return acc\n"
    ),
    (2, False): (
        "def _loop(element, ctx, dims, combine, acc):\n"
        "    n0, n1 = dims\n"
        "    for i0 in range(n0):\n"
        "        for i1 in range(n1):\n"
        "            acc = combine(acc, element(ctx, i0, i1))\n"
        "    return acc\n"
    ),
    (1, True): (
        "def _loop(element, ctx, dims, combine, acc, start, stop):\n"
        "    for i0 in range(start, stop):\n"
        "        acc = combine(acc, element(ctx, i0))\n"
        "    return acc\n"
    ),
    (2, True): (
        "def _loop(element, ctx, dims, combine, acc, start, stop):\n"
        "    n1 = dims[1]\n"
        "    for i0 in range(start, stop):\n"
        "        for i1 in range(n1):\n"
        "            acc = combine(acc, element(ctx, i0, i1))\n"
        "    return acc\n"
    ),
}

_FLAT_REDUCE_TEMPLATES = {
    1: _REDUCE_TEMPLATES[(1, True)],
    2: (
        "def _loop(element, ctx, dims, combine, acc, start, stop):\n"
        "    n1 = dims[1]\n"
        "    for t in range(start, stop):\n"
        "        i0 = t // n1\n"
        "        acc = combine(acc, element(ctx, i0, t - i0 * n1))\n"
        "    return acc\n"
    ),
}


class JITCache:
    """Per-process cache of specialized loop code objects."""

    def __init__(self) -> None:
        self._cache: Dict[Tuple[str, str, str], Callable] = {}
        self.compile_events: List[CompileEvent] = []

    def _specialize(
        self, key: Tuple[str, str, str], source: str, filename: str
    ) -> Callable:
        fn = self._cache.get(key)
        if fn is not None:
            return fn
        t0 = time.perf_counter()
        code = compile(source, filename, "exec")
        namespace: Dict[str, Callable] = {}
        exec(code, namespace)  # noqa: S102 - trusted generated source
        fn = namespace["_loop"]
        dt = time.perf_counter() - t0
        self._cache[key] = fn
        self.compile_events.append(
            CompileEvent(kernel=key[0], backend=key[1], variant=key[2], seconds=dt)
        )
        return fn

    def loop_for(
        self, kernel_name: str, backend: str, ndim: int, ranged: bool = False
    ) -> Callable:
        """Specialized parallel_for loop nest for a kernel arity."""
        variant = f"for{ndim}d{'r' if ranged else ''}"
        key = (kernel_name, backend, variant)
        src = _LOOP_TEMPLATES[(ndim, ranged)]
        return self._specialize(key, src, f"<jacc:{kernel_name}:{variant}>")

    def loop_reduce(
        self, kernel_name: str, backend: str, ndim: int, ranged: bool = False
    ) -> Callable:
        """Specialized parallel_reduce loop nest for a kernel arity."""
        variant = f"red{ndim}d{'r' if ranged else ''}"
        key = (kernel_name, backend, variant)
        src = _REDUCE_TEMPLATES[(ndim, ranged)]
        return self._specialize(key, src, f"<jacc:{kernel_name}:{variant}>")

    def loop_for_flat(self, kernel_name: str, backend: str, ndim: int) -> Callable:
        """Flat-ranged parallel_for nest over the linearized index space.

        Signature ``_loop(element, ctx, dims, start, stop)`` where
        ``[start, stop)`` indexes the row-major flattening of ``dims``.
        """
        variant = f"for{ndim}df"
        key = (kernel_name, backend, variant)
        src = _FLAT_LOOP_TEMPLATES[ndim]
        return self._specialize(key, src, f"<jacc:{kernel_name}:{variant}>")

    def loop_reduce_flat(self, kernel_name: str, backend: str, ndim: int) -> Callable:
        """Flat-ranged parallel_reduce nest over the linearized space."""
        variant = f"red{ndim}df"
        key = (kernel_name, backend, variant)
        src = _FLAT_REDUCE_TEMPLATES[ndim]
        return self._specialize(key, src, f"<jacc:{kernel_name}:{variant}>")

    def trampoline(self, kernel_name: str, backend: str, body: Callable) -> Callable:
        """Device-side specialization: a compiled launch trampoline."""
        key = (kernel_name, backend, "launch")
        fn = self._cache.get(key)
        if fn is not None:
            return fn
        src = "def _loop(batch, ctx, dims):\n    return batch(ctx, dims)\n"
        return self._specialize(key, src, f"<jacc:{kernel_name}:launch>")

    def is_compiled(self, kernel_name: str, backend: str) -> bool:
        return any(k[0] == kernel_name and k[1] == backend for k in self._cache)

    def clear(self) -> None:
        """Drop all specializations (benchmarks use this to re-measure JIT)."""
        self._cache.clear()
        self.compile_events.clear()

    def total_compile_seconds(self) -> float:
        return sum(e.seconds for e in self.compile_events)


#: the process-wide cache all back ends share
GLOBAL_JIT = JITCache()
