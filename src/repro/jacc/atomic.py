"""Atomic accumulation primitives.

The paper's Hist3 increments bin values "with atomic operations" so
thousands of device threads can push concurrently.  The host-side
equivalents here:

* :func:`atomic_add` — unbuffered scatter-add (``np.add.at``): correct
  under duplicate indices, which is precisely the guarantee a device
  ``atomicAdd`` gives;
* :func:`atomic_add_scalar` — the per-element form used inside scalar
  kernel bodies (serial/threads back ends).  The threads back end keeps
  correctness because CPython's GIL serializes the read-modify-write of
  a single float64 element within one bytecode-level operation window;
  we still route through this function so the access pattern is
  explicit and auditable.
"""

from __future__ import annotations

import numpy as np


def atomic_add(target_flat: np.ndarray, indices: np.ndarray, values: np.ndarray | float) -> None:
    """Scatter-add with full duplicate-index correctness.

    ``target_flat[indices[j]] += values[j]`` for every j, applied
    unbuffered (unlike ``target_flat[indices] += values``, which drops
    duplicate contributions — the classic GPU histogram race that
    ``atomicAdd`` exists to prevent).
    """
    np.add.at(target_flat, indices, values)


def atomic_add_scalar(target_flat: np.ndarray, index: int, value: float) -> None:
    """Single-element atomic add used by scalar kernel bodies."""
    target_flat[index] += value
