"""Worker-count resolution and the shared persistent process pool.

Two concerns that the ``threads`` and ``multiprocess`` back ends (and
the intra-run shard executor built on top of them) must agree on live
here:

* **Worker-count parsing.**  ``REPRO_NUM_THREADS`` /
  ``REPRO_NUM_PROCS`` historically went through a bare ``int()`` —
  ``REPRO_NUM_THREADS=banana`` crashed with an opaque ``ValueError``
  deep inside a kernel launch, while ``0`` and negative values were
  silently clamped to 1, hiding configuration mistakes on batch
  systems where the variable is computed (``$((SLURM_CPUS/2))`` going
  to zero is a *bug*, not a request for one worker).
  :func:`parse_worker_count` validates once, with an error message that
  names the offending source, and every back end shares it.

* **The persistent process pool.**  Python process startup is far too
  expensive to pay per kernel launch, so the multiprocess engine keeps
  one ``ProcessPoolExecutor`` alive across launches (the analogue of a
  GPU runtime keeping its context alive).  The pool is created lazily
  under a lock (simulated MPI ranks are threads and may race to the
  first launch), recreated when a different worker count is requested,
  and disposed when broken so the next launch gets a fresh pool
  instead of a poisoned one.

The pool uses the ``fork`` start method where available: worker
processes inherit the parent's module state (registered kernels,
compiled JIT loops) without re-importing, which both matches how the
paper's OpenMP/Threads engines see the address space and keeps
per-launch overhead low.  On platforms without ``fork`` the default
context is used and kernel bodies must be picklable module-level
functions (the conformance suite runs in both regimes).
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from concurrent.futures import ProcessPoolExecutor
from typing import Optional

from repro.jacc.backend import BackendError

#: environment variables the CPU engines honour
THREADS_ENV = "REPRO_NUM_THREADS"
PROCS_ENV = "REPRO_NUM_PROCS"


def parse_worker_count(value: object, *, source: str) -> int:
    """Validate a worker count from config/env; raise a clear error.

    Accepts positive integers (or strings of one, with surrounding
    whitespace).  Rejects zero, negatives, floats, and garbage with a
    :class:`~repro.jacc.backend.BackendError` naming ``source`` so the
    operator knows *which* knob is wrong.
    """
    if isinstance(value, bool):  # bool is an int subclass; always a mistake
        raise BackendError(f"{source}: worker count must be an integer, got {value!r}")
    if isinstance(value, int):
        count = value
    elif isinstance(value, str):
        text = value.strip()
        try:
            count = int(text, 10)
        except ValueError:
            raise BackendError(
                f"{source}: worker count must be a positive integer, got {value!r}"
            ) from None
    else:
        raise BackendError(
            f"{source}: worker count must be a positive integer, got {value!r}"
        )
    if count < 1:
        raise BackendError(
            f"{source}: worker count must be >= 1, got {count} "
            "(unset the variable to use the CPU count)"
        )
    return count


def resolve_workers(env_name: str, explicit: Optional[int] = None) -> int:
    """The effective worker count for an engine.

    Precedence: an explicit constructor argument, then the environment
    variable ``env_name``, then the machine's CPU count.  Explicit and
    environment values are validated by :func:`parse_worker_count`
    (empty-string env values count as unset, matching shell idiom).
    """
    if explicit is not None:
        return parse_worker_count(explicit, source="n_workers")
    env = os.environ.get(env_name)
    if env is not None and env.strip():
        return parse_worker_count(env, source=env_name)
    return max(1, os.cpu_count() or 1)


def _mp_context() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _pool_probe() -> int:
    """Picklable no-op used to force worker start-up at pool creation."""
    return os.getpid()


class WorkerPool:
    """A lazily created, restartable ``ProcessPoolExecutor``.

    Thread-safe: simulated MPI ranks run as threads in one process and
    may submit concurrently.  ``ProcessPoolExecutor.submit`` is itself
    thread-safe; this class only guards creation/recreation.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._size = 0

    @property
    def size(self) -> int:
        """Current pool size (0 when no pool is alive)."""
        return self._size

    def executor(self, n_workers: int) -> ProcessPoolExecutor:
        """The shared pool, (re)created to hold ``n_workers`` processes."""
        n_workers = parse_worker_count(n_workers, source="n_workers")
        with self._lock:
            if self._pool is not None and self._size == n_workers:
                return self._pool
            if self._pool is not None:
                self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = ProcessPoolExecutor(
                max_workers=n_workers, mp_context=_mp_context()
            )
            # With the ``fork`` start method every worker is forked on
            # the *first* submit (CPython gh-90622 disables dynamic
            # spawning).  Rank threads submit concurrently, so that
            # first submit would fork while a sibling thread may hold
            # arbitrary locks (executor internals, BLAS/OpenMP state),
            # wedging the child.  Forking here, under our creation
            # lock and before any work exists, keeps later submits
            # fork-free.
            self._pool.submit(_pool_probe).result()
            self._size = n_workers
            return self._pool

    def dispose(self) -> None:
        """Shut the pool down (used after a BrokenProcessPool and by
        tests to force a cold start)."""
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
            self._size = 0


#: the process-wide pool shared by the multiprocess back end and the
#: intra-run shard executor (one warm pool, many consumers)
GLOBAL_POOL = WorkerPool()
