"""Vectorized back end: the data-parallel "device" stand-in.

With no GPU available, NumPy's array engine plays the role of the
CUDA/AMDGPU back ends: one launch executes the kernel's ``batch`` body
over the whole index space with C-speed array primitives, the same
execution model (all lanes advance together, scatter updates must be
atomic) at a different absolute speed.  Behavioural fidelity choices:

* ``to_device`` **copies** — host mutations after transfer are not
  visible, the discipline a discrete device imposes (and the source of
  the paper's device/host communication costs);
* transfer volumes are counted (``bytes_h2d`` / ``bytes_d2h``) so the
  benchmark harness can report data-movement alongside compute;
* ``parallel_reduce`` supports only ``op="+"`` — deliberately mirroring
  the JACC.jl limitation the paper calls out ("this function does not
  currently support custom reduction operators"); MiniVATES' MAX
  workaround is reproduced in :mod:`repro.proxy.minivates`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.jacc.backend import Backend, BackendError, register_backend
from repro.jacc.jit import GLOBAL_JIT
from repro.jacc.kernels import Captures, Kernel, normalize_dims
from repro.util import trace as _trace


class VectorizedBackend(Backend):
    name = "vectorized"
    device_kind = "device"

    def __init__(self) -> None:
        self.bytes_h2d = 0
        self.bytes_d2h = 0
        self.launches = 0

    # -- memory model ----------------------------------------------------
    def to_device(self, host: np.ndarray) -> np.ndarray:
        dev = np.array(host, copy=True, order="C")
        self.bytes_h2d += dev.nbytes
        _trace.active_tracer().count("jacc.bytes_h2d", dev.nbytes)
        return dev

    def to_host(self, device: np.ndarray) -> np.ndarray:
        host = np.array(device, copy=True, order="C")
        self.bytes_d2h += host.nbytes
        _trace.active_tracer().count("jacc.bytes_d2h", host.nbytes)
        return host

    def reset_counters(self) -> None:
        self.bytes_h2d = 0
        self.bytes_d2h = 0
        self.launches = 0

    # -- execution -------------------------------------------------------
    def run_parallel_for(
        self, dims: int | Tuple[int, ...], kernel: Kernel, captures: Captures
    ) -> None:
        dims = normalize_dims(dims)
        if kernel.batch is None:
            raise BackendError(
                f"kernel {kernel.name!r} has no batch body; it cannot launch "
                f"on the device back end"
            )
        launch = GLOBAL_JIT.trampoline(kernel.name, self.name, kernel.batch)
        self.launches += 1
        if all(d > 0 for d in dims):
            launch(kernel.batch, captures, dims)

    def run_parallel_reduce(
        self,
        dims: int | Tuple[int, ...],
        kernel: Kernel,
        captures: Captures,
        op: str = "+",
    ) -> float:
        dims = normalize_dims(dims)
        if op != "+":
            raise BackendError(
                "device parallel_reduce supports only op='+' (the JACC.jl "
                "limitation the paper documents); use a pre-pass kernel and "
                "host-side reduction as MiniVATES does"
            )
        if kernel.batch is None:
            raise BackendError(
                f"kernel {kernel.name!r} has no batch body; it cannot launch "
                f"on the device back end"
            )
        launch = GLOBAL_JIT.trampoline(kernel.name, self.name, kernel.batch)
        self.launches += 1
        if any(d == 0 for d in dims):
            return 0.0
        values = launch(kernel.batch, captures, dims)
        values = np.asarray(values)
        return float(values.sum())


VECTORIZED = register_backend(VectorizedBackend())
