"""Content-digest-keyed on-disk store for compiled fused kernels.

The fused back end pays real specialization cost on a plan's first
launch (source generation + ``compile``/``exec``).  Within one process
the compiled callable is memoized; across processes — shard workers,
campaign reruns, CI jobs — this store amortizes the cost the way the
MC/DC Numba work caches its JIT products: each generated source module
is published under a **blake2b digest of the plan configuration plus
the codegen version**, so

* identical plans in any process converge on one artifact file;
* any config change (grid geometry, op count, scatter impl, codec) or
  a codegen bump produces a new digest — stale artifacts are never
  loaded, and no invalidation pass exists or is needed;
* scheduling knobs (width, tile rows, shards, workers) are absent from
  the digest, so one artifact serves every schedule.

Durability rules follow :mod:`repro.util.atomic_io`: artifacts are
published write-then-rename, so readers see a complete file or none.
Each artifact additionally carries a ``source_digest`` self-checksum;
a file that is unreadable, torn, truncated, tampered with, or written
by a different codegen version is treated as a **miss** — the caller
silently regenerates and republishes (corruption can cost time, never
correctness).

The store root comes from ``REPRO_JACC_ARTIFACT_DIR`` (tests point it
at tmp dirs; the cross-process reuse test shares one between
subprocesses), defaulting to a per-uid directory under the system temp
root.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional, Union

from repro.jacc.codegen import CODEGEN_VERSION
from repro.util.atomic_io import atomic_write_text

#: environment variable overriding the artifact directory
ARTIFACT_DIR_ENV = "REPRO_JACC_ARTIFACT_DIR"

#: on-disk artifact document schema
ARTIFACT_SCHEMA = 1


def default_artifact_dir() -> Path:
    """The artifact root: env override, else a per-uid temp directory."""
    env = os.environ.get(ARTIFACT_DIR_ENV)
    if env:
        return Path(env)
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return Path(tempfile.gettempdir()) / f"repro-jacc-artifacts-{uid}"


def artifact_digest(config_json: str, codegen_version: int = CODEGEN_VERSION) -> str:
    """Digest keying one compiled artifact: blake2b(config + version)."""
    h = hashlib.blake2b(digest_size=16)
    h.update(f"repro-jacc-codegen:v{codegen_version}\n".encode("utf-8"))
    h.update(config_json.encode("utf-8"))
    return h.hexdigest()


def _source_digest(source: str) -> str:
    return hashlib.blake2b(source.encode("utf-8"), digest_size=16).hexdigest()


class ArtifactStore:
    """Digest-addressed artifact files under one root directory."""

    def __init__(self, root: Optional[Union[str, os.PathLike]] = None) -> None:
        self.root = Path(root) if root is not None else default_artifact_dir()

    def path_for(self, digest: str) -> Path:
        return self.root / f"fused-{digest}.json"

    def load(self, digest: str) -> Optional[str]:
        """The stored source for ``digest``, or None.

        *Any* defect — missing file, unreadable bytes, malformed JSON,
        schema/version/digest mismatch, failed source checksum — is a
        plain miss: the caller recompiles and overwrites.  Corruption
        is deliberately silent at this layer (it costs a recompile,
        never a wrong result).
        """
        path = self.path_for(digest)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError, UnicodeDecodeError):
            return None
        if not isinstance(doc, dict):
            return None
        if doc.get("schema") != ARTIFACT_SCHEMA:
            return None
        if doc.get("codegen_version") != CODEGEN_VERSION:
            return None
        if doc.get("digest") != digest:
            return None
        source = doc.get("source")
        if not isinstance(source, str):
            return None
        if doc.get("source_digest") != _source_digest(source):
            return None
        return source

    def store(self, digest: str, source: str, config_json: str) -> Path:
        """Atomically publish one artifact; returns its path."""
        self.root.mkdir(parents=True, exist_ok=True)
        doc = {
            "schema": ARTIFACT_SCHEMA,
            "codegen_version": CODEGEN_VERSION,
            "digest": digest,
            "config": config_json,
            "source": source,
            "source_digest": _source_digest(source),
        }
        path = self.path_for(digest)
        atomic_write_text(path, json.dumps(doc, sort_keys=True, indent=1))
        return path
