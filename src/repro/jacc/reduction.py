"""Extended device reductions: the future work the paper asks for.

The paper (Section III.B): *"An elegant solution might use
``JACC.parallel_reduce`` with a MAX operator, but this function does
not currently support custom reduction operators (it uses + internally).
A workaround in MiniVATES.jl adds communication between device and
host, and we hope this work will motivate future efforts in JACC and
the Julia HPC stack."*

This module is that future effort, implemented for this stack: a
two-stage device reduction (per-tile partials on the device, a log-tree
combine of the partial array) that supports ``max``, ``min`` and ``+``
without any device->host round trip of per-lane values.  The core
``vectorized`` back end keeps the deliberately-reproduced limitation;
applications opt in via :func:`device_reduce`, and
``repro.core.mdnorm.max_intersections(..., use_extended_reduce=True)``
shows the pre-pass written the way MiniVATES wished it could be.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.jacc.backend import Backend, BackendError, lookup_backend
from repro.jacc.jit import GLOBAL_JIT
from repro.jacc.kernels import Captures, Kernel, normalize_dims

#: NumPy pairwise combiners implementing each operator's combine stage
_COMBINE = {
    "+": np.add,
    "max": np.maximum,
    "min": np.minimum,
}

_IDENTITY = {
    "+": 0.0,
    "max": -np.inf,
    "min": np.inf,
}


def _tree_combine(values: np.ndarray, op: str) -> float:
    """Log-depth pairwise combine of a partial array (the device's
    second reduction stage; associative, so bit-stable per op)."""
    combine = _COMBINE[op]
    v = values
    while v.shape[0] > 1:
        n = v.shape[0]
        half = n // 2
        head = combine(v[:half], v[half : 2 * half])
        v = np.concatenate([head, v[2 * half :]])
    return float(v[0]) if v.shape[0] else _IDENTITY[op]


def device_reduce(
    dims: int | Tuple[int, ...],
    kernel: Kernel,
    captures: Captures,
    op: str = "+",
    *,
    backend: str = "vectorized",
) -> float:
    """``parallel_reduce`` with custom operators on the device back end.

    Stage 1 launches the kernel's ``batch`` body (which returns the
    per-index value array, exactly as for the ``+`` reduce); stage 2
    combines it pairwise on the device.  Only the final scalar crosses
    to the host — the communication pattern the MiniVATES workaround
    could not have.
    """
    if op not in _COMBINE:
        raise BackendError(
            f"unsupported reduction op {op!r}; supported: {sorted(_COMBINE)}"
        )
    be: Backend = lookup_backend(backend)
    dims = normalize_dims(dims)
    if kernel.batch is None:
        raise BackendError(
            f"kernel {kernel.name!r} has no batch body; it cannot launch "
            f"on the device back end"
        )
    if any(d == 0 for d in dims):
        return _IDENTITY[op] if op != "+" else 0.0
    launch = GLOBAL_JIT.trampoline(kernel.name, f"{backend}+reduce", kernel.batch)
    if hasattr(be, "launches"):
        be.launches += 1
    values = np.asarray(launch(kernel.batch, captures, dims), dtype=np.float64)
    return _tree_combine(values.reshape(-1), op)
