"""Module-level JACC API: ``parallel_for``, ``parallel_reduce``, ``array``.

Mirrors JACC.jl's user surface: application code writes kernels once and
calls these functions; the active back end decides how they execute.
The default back end comes from ``REPRO_JACC_BACKEND`` (falling back to
"threads", the CPU default, like JACC's Threads default) and can be
swapped at runtime with :func:`set_default_backend`.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

import numpy as np

# Importing the engine modules registers them.
from repro.jacc import fused as _fused  # noqa: F401
from repro.jacc import multiproc as _multiproc  # noqa: F401
from repro.jacc import serial as _serial  # noqa: F401
from repro.jacc import threads as _threads  # noqa: F401
from repro.jacc import vectorized as _vectorized  # noqa: F401
from repro.jacc.backend import Backend, lookup_backend, registered_backends
from repro.jacc.kernels import Captures, Kernel

_default: Optional[Backend] = None


def available_backends() -> List[str]:
    """Names of all registered back ends."""
    return sorted(registered_backends())


def get_backend(name: str) -> Backend:
    """Look up a back end by name ("serial", "threads", "vectorized",
    "multiprocess", "fused")."""
    return lookup_backend(name)


def default_backend() -> Backend:
    """The process-default back end (env ``REPRO_JACC_BACKEND``)."""
    global _default
    if _default is None:
        _default = lookup_backend(os.environ.get("REPRO_JACC_BACKEND", "threads"))
    return _default


def set_default_backend(name: str) -> Backend:
    """Swap the process-default back end; returns the new default."""
    global _default
    _default = lookup_backend(name)
    return _default


def parallel_for(
    dims: int | Tuple[int, ...],
    kernel: Kernel,
    captures: Captures,
    *,
    backend: Optional[str] = None,
) -> None:
    """Execute ``kernel`` once per index of ``dims`` (side effects only)."""
    be = lookup_backend(backend) if backend else default_backend()
    be.parallel_for(dims, kernel, captures)


def parallel_reduce(
    dims: int | Tuple[int, ...],
    kernel: Kernel,
    captures: Captures,
    op: str = "+",
    *,
    backend: Optional[str] = None,
) -> float:
    """Reduce the kernel's per-index values with ``op``."""
    be = lookup_backend(backend) if backend else default_backend()
    return be.parallel_reduce(dims, kernel, captures, op)


def array(host: np.ndarray, *, backend: Optional[str] = None) -> np.ndarray:
    """Allocate a device array from host data on the active back end."""
    be = lookup_backend(backend) if backend else default_backend()
    return be.to_device(np.asarray(host))


def to_host(device: np.ndarray, *, backend: Optional[str] = None) -> np.ndarray:
    """Bring a device array back to host memory."""
    be = lookup_backend(backend) if backend else default_backend()
    return be.to_host(device)
