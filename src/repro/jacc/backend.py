"""Back-end protocol and registry.

A back end executes :class:`~repro.jacc.kernels.Kernel` objects over an
index space and owns "device" memory.  The registry maps names to
singleton instances; ``REPRO_JACC_BACKEND`` selects the process default
(exactly like ``JACCPreferences.backend`` selects "threads" /
"cuda" / "amdgpu" in the paper's artifact configuration).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Dict, Tuple

import numpy as np

from repro.jacc.kernels import Captures, Kernel, normalize_dims
from repro.util import trace as _trace
from repro.util.validation import ReproError


class BackendError(ReproError):
    """A kernel could not be executed on the requested back end."""


#: reduction operators every CPU back end supports; the device back end
#: deliberately supports only "+" (see package docstring)
REDUCE_OPS: Dict[str, Tuple[Callable[[Any, Any], Any], float]] = {
    "+": (lambda a, b: a + b, 0.0),
    "max": (lambda a, b: a if a >= b else b, -np.inf),
    "min": (lambda a, b: a if a <= b else b, np.inf),
}


class Backend(ABC):
    """Executes portable kernels; owns device memory."""

    #: registry name, e.g. "serial"
    name: str = "abstract"
    #: "cpu" or "device" — what Fig. 2's architecture calls the target
    device_kind: str = "cpu"

    # -- memory model ----------------------------------------------------
    def to_device(self, host: np.ndarray) -> np.ndarray:
        """Allocate a device array from host data.

        CPU back ends alias host memory; the device back end copies, so
        host mutations after transfer are not visible device-side (the
        same discipline CUDA imposes).
        """
        return np.ascontiguousarray(host)

    def to_host(self, device: np.ndarray) -> np.ndarray:
        """Bring a device array back to host memory."""
        return device

    # -- execution -------------------------------------------------------
    # ``parallel_for`` / ``parallel_reduce`` are template methods: the
    # base class owns the per-launch tracing span (one ``kernel:<name>``
    # span per launch on the active tracer — the per-kernel attribution
    # the paper's per-stage WCT tables are built from) and dispatches to
    # the engine-specific ``run_*`` implementations.

    def parallel_for(
        self, dims: int | Tuple[int, ...], kernel: Kernel, captures: Captures
    ) -> None:
        """Run ``kernel`` once per index in ``dims`` (side effects only)."""
        tracer = _trace.active_tracer()
        if not tracer.enabled:
            self.run_parallel_for(dims, kernel, captures)
            return
        attrs: Dict[str, Any] = dict(
            kind="kernel",
            backend=self.name,
            device_kind=self.device_kind,
            dims=[int(d) for d in normalize_dims(dims)],
        )
        if tracer.profile:
            from repro.util.perf import kernel_items

            attrs["perf"] = kernel_items(attrs["dims"])
        with tracer.span(f"kernel:{kernel.name}", **attrs):
            self.run_parallel_for(dims, kernel, captures)
        tracer.count("jacc.launches", 1)

    def parallel_reduce(
        self,
        dims: int | Tuple[int, ...],
        kernel: Kernel,
        captures: Captures,
        op: str = "+",
    ) -> float:
        """Reduce the kernel's per-index values with ``op``."""
        tracer = _trace.active_tracer()
        if not tracer.enabled:
            return self.run_parallel_reduce(dims, kernel, captures, op)
        attrs: Dict[str, Any] = dict(
            kind="kernel",
            backend=self.name,
            device_kind=self.device_kind,
            dims=[int(d) for d in normalize_dims(dims)],
            op=op,
        )
        if tracer.profile:
            from repro.util.perf import kernel_items

            attrs["perf"] = kernel_items(attrs["dims"])
        with tracer.span(f"kernel:{kernel.name}", **attrs):
            result = self.run_parallel_reduce(dims, kernel, captures, op)
        tracer.count("jacc.launches", 1)
        return result

    @abstractmethod
    def run_parallel_for(
        self, dims: int | Tuple[int, ...], kernel: Kernel, captures: Captures
    ) -> None:
        """Engine-specific ``parallel_for`` body (no tracing concerns)."""

    @abstractmethod
    def run_parallel_reduce(
        self,
        dims: int | Tuple[int, ...],
        kernel: Kernel,
        captures: Captures,
        op: str = "+",
    ) -> float:
        """Engine-specific ``parallel_reduce`` body (no tracing concerns)."""

    def synchronize(self) -> None:
        """Barrier until queued work completes (no-op for host engines)."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<jacc backend {self.name!r} ({self.device_kind})>"


_REGISTRY: Dict[str, Backend] = {}


def register_backend(backend: Backend) -> Backend:
    if backend.name in _REGISTRY:
        raise BackendError(f"backend {backend.name!r} already registered")
    _REGISTRY[backend.name] = backend
    return backend


def lookup_backend(name: str) -> Backend:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise BackendError(
            f"unknown back end {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def registered_backends() -> Dict[str, Backend]:
    return dict(_REGISTRY)
