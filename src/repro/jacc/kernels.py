"""The portable kernel abstraction.

A kernel is one computation expressed over an index space, with two
equivalent realizations:

* ``element(ctx, *indices)`` — scalar body executed once per index
  tuple; the form the CPU back ends (serial, threads) run.  Mirrors the
  lambda body of ``JACC.parallel_for`` in the paper's Listing 3.
* ``batch(ctx, shape)`` — one data-parallel realization over the whole
  index space using array primitives; the form the device back end
  launches.  Mirrors what the CUDA/AMDGPU code generators produce from
  the same Julia source.

``ctx`` is the capture namespace (the paper's named-tuple third
argument).  Both realizations must compute identical results — a
property the test suite enforces for every kernel in the package.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import SimpleNamespace
from typing import Any, Callable, Dict, Optional, Tuple

from repro.util.validation import ValidationError


class Captures(SimpleNamespace):
    """Kernel capture namespace (named arrays and scalars)."""


def make_captures(**kwargs: Any) -> Captures:
    return Captures(**kwargs)


@dataclass(frozen=True)
class Kernel:
    """A performance-portable kernel.

    Parameters
    ----------
    name:
        Unique name; the JIT cache keys on it.
    element:
        Scalar body ``element(ctx, *indices) -> None`` (side effects on
        ctx arrays) or ``-> float`` for reductions.
    batch:
        Data-parallel body ``batch(ctx, shape) -> None`` (or an array of
        per-index values for reductions).  ``None`` means the kernel
        cannot run on the device back end.
    """

    name: str
    element: Callable[..., Any]
    batch: Optional[Callable[..., Any]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("kernel name must be non-empty")
        if not callable(self.element):
            raise ValidationError("kernel element body must be callable")
        if self.batch is not None and not callable(self.batch):
            raise ValidationError("kernel batch body must be callable")

    @property
    def device_capable(self) -> bool:
        return self.batch is not None


def normalize_dims(dims: int | Tuple[int, ...]) -> Tuple[int, ...]:
    """Validate and canonicalize an index-space shape (1-D or 2-D)."""
    if isinstance(dims, int):
        dims = (dims,)
    dims = tuple(int(d) for d in dims)
    if len(dims) not in (1, 2):
        raise ValidationError(f"index space must be 1-D or 2-D, got {dims}")
    if any(d < 0 for d in dims):
        raise ValidationError(f"negative index-space extent: {dims}")
    return dims
