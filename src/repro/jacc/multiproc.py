"""Multiprocess back end: intra-node scale-out past the GIL.

The paper's outermost parallel axis is MPI ranks over *runs*; inside a
rank the CPU engines are threads (GIL-serialized for Python bodies) or
the vectorized device proxy.  This back end adds the missing CPU
engine: the flattened index space is cut into a **fixed chunk grid**
and executed on a persistent ``ProcessPoolExecutor``
(:data:`repro.jacc.workers.GLOBAL_POOL`), with array captures shipped
through ``multiprocessing.shared_memory`` instead of pickles.

Determinism is the design driver, in three pieces:

* **Fixed decomposition.**  The chunk grid is a function of the index
  space extent only (:func:`chunk_grid`), never of the worker count —
  so *what* is computed per chunk is invariant to how many processes
  execute the chunks.

* **Ordered deposit replay (histograms).**  Scalar kernels accumulate
  through ``Hist3.push``, whose float adds are non-associative; naive
  per-worker partial histograms would drift in the last ulp and depend
  on the partition.  Instead workers substitute a
  :class:`RecordingHist3` that logs ``(flat_bin, weight, err_sq)``
  in execution order, and the parent replays the logs chunk-by-chunk
  in ascending chunk order with ``np.add.at`` (unbuffered,
  element-order-sequential).  Ascending flat chunks *are* the serial
  backend's row-major iteration order, so the per-bin fold is exactly
  the serial fold: **bit-identical to the serial oracle for any worker
  count**.  An optional ``REPRO_MULTIPROC_HIST=tree`` mode instead
  gives each chunk a dense partial histogram in a shared-memory block
  and combines the slots with the pairwise tree below — worker-count
  invariant (fixed slots, fixed order) but re-associated relative to
  serial; the conformance matrix pins both behaviours.

* **Deterministic pairwise tree reduction (scalars).**
  ``parallel_reduce`` computes one partial per fixed chunk and the
  parent combines them with :func:`pairwise_tree`: adjacent pairs are
  folded level by level, the odd tail carried, in a combine order
  fixed by the chunk grid ⇒ bit-identical results regardless of worker
  count.  ``max``/``min`` are exactly associative, so the tree equals
  the serial fold bit-for-bit; ``+`` is deterministic and
  worker-count-invariant (and exact for integer-valued floats).

Capture sanitization: kernel *element* bodies must be module-level
functions (picklable by reference); ndarray captures travel via shared
memory and are copied back after the launch (so disjoint-write kernels
behave exactly as on the threads back end); objects whose class sets
``__jacc_shareable__ = False`` (caches, cache entries) are dropped to
``None`` — element bodies never touch them; anything else is pickled.
With one worker the launch runs in-process over the same chunk grid,
so results are identical either way.
"""

from __future__ import annotations

import itertools
import os
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import shared_memory
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.jacc.backend import Backend, BackendError, REDUCE_OPS, register_backend
from repro.jacc.jit import GLOBAL_JIT
from repro.jacc.kernels import Captures, Kernel, normalize_dims
from repro.jacc.workers import GLOBAL_POOL, PROCS_ENV, resolve_workers
from repro.util import trace as _trace

#: fixed number of chunks the flattened index space is cut into; a
#: function of nothing but this constant and the extent, so per-chunk
#: work (and therefore every reduction's combine tree) is invariant to
#: the worker count
DEFAULT_CHUNKS = 16

#: histogram accumulation mode: "replay" (ordered deposit replay,
#: bit-identical to serial) or "tree" (shared-memory partial
#: histograms + pairwise tree, worker-count invariant)
HIST_MODE_ENV = "REPRO_MULTIPROC_HIST"
_HIST_MODES = ("replay", "tree")

#: refuse tree-mode partial blocks above this size (use replay instead)
_TREE_BYTE_BUDGET = 1 << 28


# ---------------------------------------------------------------------------
# deterministic building blocks (shared with the intra-run shard layer)
# ---------------------------------------------------------------------------

def chunk_grid(total: int, n_chunks: int = DEFAULT_CHUNKS) -> List[Tuple[int, int]]:
    """Contiguous ``[start, stop)`` windows of the flattened index space.

    Depends only on ``total`` and ``n_chunks`` — never on the worker
    count — with any remainder spread over the leading chunks (the same
    convention as :func:`repro.mpi.decomposition.rank_range`).
    """
    if total <= 0:
        return []
    n = min(int(total), int(n_chunks))
    step, rem = divmod(int(total), n)
    out: List[Tuple[int, int]] = []
    start = 0
    for c in range(n):
        size = step + (1 if c < rem else 0)
        out.append((start, start + size))
        start += size
    return out


def pairwise_tree(values: Sequence[Any], combine: Callable[[Any, Any], Any]) -> Any:
    """Fold ``values`` with a fixed pairwise tree.

    Level by level, adjacent pairs are combined left to right and an
    odd tail is carried to the next level.  The combine order is a pure
    function of ``len(values)``, which is what makes tree-combined
    partials reproducible: as long as the *partials* are fixed (fixed
    chunk grid), the result is bit-identical no matter how many workers
    produced them or in what order they finished.
    """
    vals = list(values)
    if not vals:
        raise BackendError("pairwise_tree of no values")
    while len(vals) > 1:
        nxt = [combine(vals[i], vals[i + 1]) for i in range(0, len(vals) - 1, 2)]
        if len(vals) % 2:
            nxt.append(vals[-1])
        vals = nxt
    return vals[0]


# ---------------------------------------------------------------------------
# worker-side histogram stand-in
# ---------------------------------------------------------------------------

def _is_histogram(value: Any) -> bool:
    """Duck-typed Hist3 detection (kept structural so the jacc layer
    does not import :mod:`repro.core`)."""
    return (
        hasattr(value, "push")
        and hasattr(value, "grid")
        and hasattr(value, "flat_signal")
    )


class RecordingHist3:
    """Order-preserving deposit recorder standing in for ``Hist3``.

    Implements the accumulation surface kernel element bodies use
    (``push`` — bin arithmetic identical to ``Hist3.push`` — and
    ``push_many``), but instead of touching a signal array it records
    ``(flat_bin, weight, err_sq)`` in call order.  The parent replays
    the log with ``np.add.at``, which applies unbuffered element by
    element: the per-bin accumulation order, and therefore every
    floating-point rounding step, matches a serial execution of the
    same index window exactly.
    """

    def __init__(self, grid: Any, track_errors: bool) -> None:
        self.grid = grid
        self.track_errors = bool(track_errors)
        self._idx: List[int] = []
        self._w: List[float] = []
        self._e: List[float] = []

    def push(self, c0: float, c1: float, c2: float,
             weight: float, err_sq: float = 0.0) -> bool:
        grid = self.grid
        mn, w, nb = grid.minimum, grid.widths, grid.bins
        i0 = int((c0 - mn[0]) // w[0])
        i1 = int((c1 - mn[1]) // w[1])
        i2 = int((c2 - mn[2]) // w[2])
        if not (0 <= i0 < nb[0] and 0 <= i1 < nb[1] and 0 <= i2 < nb[2]):
            return False
        self._idx.append((i0 * nb[1] + i1) * nb[2] + i2)
        self._w.append(float(weight))
        if self.track_errors:
            self._e.append(float(err_sq))
        return True

    def push_many(self, coords: np.ndarray, weights: np.ndarray,
                  err_sq: Optional[np.ndarray] = None, *,
                  scatter_impl: str = "atomic") -> int:
        flat, inside = self.grid.bin_index(np.asarray(coords, dtype=np.float64))
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != inside.shape:
            weights = np.broadcast_to(weights, inside.shape)
        self._idx.extend(int(i) for i in flat[inside].ravel())
        self._w.extend(float(v) for v in weights[inside].ravel())
        if self.track_errors:
            if err_sq is None:
                self._e.extend(0.0 for _ in range(int(inside.sum())))
            else:
                err_sq = np.broadcast_to(
                    np.asarray(err_sq, dtype=np.float64), inside.shape
                )
                self._e.extend(float(v) for v in err_sq[inside].ravel())
        return int(inside.sum())

    def harvest(self) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """The deposit log as dense arrays (idx, weights, err_sq|None)."""
        idx = np.asarray(self._idx, dtype=np.int64)
        w = np.asarray(self._w, dtype=np.float64)
        e = np.asarray(self._e, dtype=np.float64) if self.track_errors else None
        return idx, w, e

    def harvest_reset(self) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """Harvest the log and clear it — the shard executor calls this
        at every outer-index boundary to get op-segmented logs whose
        interleaved replay reconstructs the serial deposit order."""
        out = self.harvest()
        self._idx = []
        self._w = []
        self._e = []
        return out


def replay_deposits(
    hist: Any, logs: Sequence[Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]]
) -> None:
    """Apply deposit logs in the given order (``np.add.at`` semantics)."""
    flat_signal = hist.flat_signal
    flat_err = getattr(hist, "flat_error_sq", None)
    for idx, w, e in logs:
        if idx.size == 0:
            continue
        np.add.at(flat_signal, idx, w)
        if flat_err is not None and e is not None:
            np.add.at(flat_err, idx, e)


# ---------------------------------------------------------------------------
# capture transport (parent side)
# ---------------------------------------------------------------------------

def _shareable(value: Any) -> bool:
    return getattr(type(value), "__jacc_shareable__", True)


class _Transport:
    """One launch's shared-memory blocks + capture payload."""

    def __init__(self, captures: Captures) -> None:
        self.payload: Dict[str, Tuple[str, ...]] = {}
        self.blocks: List[shared_memory.SharedMemory] = []
        self.writebacks: List[Tuple[np.ndarray, shared_memory.SharedMemory,
                                    Tuple[int, ...], str]] = []
        self.hists: Dict[str, Any] = {}
        for attr, value in vars(captures).items():
            if _is_histogram(value):
                self.hists[attr] = value
                self.payload[attr] = (
                    "hist", value.grid,
                    getattr(value, "flat_error_sq", None) is not None,
                )
            elif isinstance(value, np.ndarray) and value.nbytes > 0 \
                    and not value.dtype.hasobject:
                shm = shared_memory.SharedMemory(create=True, size=value.nbytes)
                view = np.ndarray(value.shape, dtype=value.dtype, buffer=shm.buf)
                np.copyto(view, value)
                self.blocks.append(shm)
                self.payload[attr] = ("shm", shm.name, value.shape, value.dtype.str)
                if value.flags.writeable:
                    self.writebacks.append((value, shm, value.shape, value.dtype.str))
            elif not _shareable(value):
                self.payload[attr] = ("drop",)
            else:
                self.payload[attr] = ("obj", value)

    def write_back(self) -> None:
        for original, shm, shape, dtype in self.writebacks:
            original[...] = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)

    def close(self) -> None:
        for shm in self.blocks:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self.blocks.clear()


class _TreeBlocks:
    """Tree-mode shared-memory partial histograms: one dense slot per
    fixed chunk, combined by the parent with :func:`pairwise_tree`."""

    def __init__(self, hists: Dict[str, Any], n_chunks: int) -> None:
        self.n_chunks = int(n_chunks)
        self.specs: Dict[str, Tuple[str, Optional[str], int]] = {}
        self.blocks: List[shared_memory.SharedMemory] = []
        for attr, hist in hists.items():
            nbins = int(hist.flat_signal.size)
            nbytes = self.n_chunks * nbins * 8
            if nbytes > _TREE_BYTE_BUDGET:
                raise BackendError(
                    f"tree-mode partial histograms need {nbytes} bytes for "
                    f"{attr!r}; use {HIST_MODE_ENV}=replay for grids this large"
                )
            sig = self._zero_block(nbytes)
            err_name: Optional[str] = None
            if getattr(hist, "flat_error_sq", None) is not None:
                err_name = self._zero_block(nbytes).name
            self.specs[attr] = (sig.name, err_name, nbins)

    def _zero_block(self, nbytes: int) -> shared_memory.SharedMemory:
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        np.ndarray(nbytes // 8, dtype=np.float64, buffer=shm.buf).fill(0.0)
        self.blocks.append(shm)
        return shm

    def _by_name(self, name: str) -> shared_memory.SharedMemory:
        for shm in self.blocks:
            if shm.name == name:
                return shm
        raise BackendError(f"unknown tree block {name!r}")  # pragma: no cover

    def combine_into(self, hists: Dict[str, Any]) -> None:
        for attr, (sig_name, err_name, nbins) in self.specs.items():
            hist = hists[attr]
            slots = np.ndarray(
                (self.n_chunks, nbins), dtype=np.float64,
                buffer=self._by_name(sig_name).buf,
            )
            target = hist.flat_signal
            target += pairwise_tree(list(slots), lambda a, b: a + b)
            del slots, target  # release shm views before close()
            if err_name is not None:
                err_slots = np.ndarray(
                    (self.n_chunks, nbins), dtype=np.float64,
                    buffer=self._by_name(err_name).buf,
                )
                err_target = hist.flat_error_sq
                err_target += pairwise_tree(list(err_slots), lambda a, b: a + b)
                del err_slots, err_target

    def close(self) -> None:
        for shm in self.blocks:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self.blocks.clear()


# ---------------------------------------------------------------------------
# cross-process trace context (schema v3)
# ---------------------------------------------------------------------------

#: per-worker-process task counter: one worker pid hosts many
#: short-lived tracers (one per chunk task), each restarting span_id at
#: 0 — the counter keeps their uid namespaces distinct
_WORKER_TASK_SEQ = itertools.count()


def _trace_ctx() -> Optional[Dict[str, Any]]:
    """The context a traced launch ships with every chunk task (None
    with tracing off — the untraced task payload is byte-identical to
    pre-v3)."""
    tracer = _trace.active_tracer()
    if not tracer.enabled:
        return None
    current = tracer.current_span()
    return {
        "campaign_id": tracer.campaign_id,
        "parent_uid": (current.uid if current is not None
                       else _trace.remote_parent()),
        "rank": _trace.current_rank(),
        "label": tracer.label,
        "profile": tracer.profile,
    }


def _worker_traced(task: Dict[str, Any], body: Callable[[], Any]) -> Any:
    """Run a chunk body under the task's trace context, if any.

    With context, the worker opens a ``chunk:<kernel>`` span under the
    dispatching span (via ``parent_uid`` — span ids never cross
    processes) in a fresh campaign tracer and returns an envelope the
    parent unwraps with :func:`_unwrap_traced`; without, the return
    value is the body's, untouched.
    """
    ctx = task.get("trace")
    if not ctx:
        return body()
    tracer = _trace.Tracer(
        label=ctx["label"], profile=ctx["profile"],
        campaign_id=ctx["campaign_id"],
        uid_ns=f"{os.getpid()}.{next(_WORKER_TASK_SEQ)}",
    )
    with _trace.rank_scope(ctx["rank"]), \
            _trace.parent_scope(ctx["parent_uid"]):
        with tracer.span(
            f"chunk:{task['kernel']}", kind="chunk",
            chunk=int(task.get("chunk", 0)),
            start=int(task["start"]), stop=int(task["stop"]),
            backend="multiprocess",
        ):
            payload = body()
    return {"__traced__": True, "payload": payload,
            "records": tracer.records,
            "epoch_unix": tracer.epoch_unix}


def _unwrap_traced(result: Any, tracer: "_trace.Tracer") -> Any:
    """Adopt a traced worker envelope into the parent tracer."""
    if isinstance(result, dict) and result.get("__traced__"):
        tracer.adopt_records(result["records"],
                             epoch_unix=result["epoch_unix"])
        return result["payload"]
    return result


# ---------------------------------------------------------------------------
# worker side (module-level: picklable under any start method)
# ---------------------------------------------------------------------------

def _open_captures(
    payload: Dict[str, Tuple[str, ...]],
) -> Tuple[Captures, List[shared_memory.SharedMemory], Dict[str, RecordingHist3]]:
    ctx = Captures()
    opened: List[shared_memory.SharedMemory] = []
    hists: Dict[str, RecordingHist3] = {}
    for attr, spec in payload.items():
        kind = spec[0]
        if kind == "hist":
            rec = RecordingHist3(spec[1], spec[2])
            hists[attr] = rec
            setattr(ctx, attr, rec)
        elif kind == "shm":
            shm = shared_memory.SharedMemory(name=spec[1])
            opened.append(shm)
            setattr(
                ctx, attr,
                np.ndarray(spec[2], dtype=np.dtype(spec[3]), buffer=shm.buf),
            )
        elif kind == "drop":
            setattr(ctx, attr, None)
        else:
            setattr(ctx, attr, spec[1])
    return ctx, opened, hists


def _close_worker_shm(opened: List[shared_memory.SharedMemory]) -> None:
    """Close worker-side attachments; by the time this runs every numpy
    view into the buffers must have been dropped (BufferError otherwise,
    in which case the segment stays mapped until the worker exits)."""
    for shm in opened:
        try:
            shm.close()
        except BufferError:  # pragma: no cover - defensive
            pass


def _for_chunk_body(
    task: Dict[str, Any], ctx: Captures, hists: Dict[str, RecordingHist3],
    opened: List[shared_memory.SharedMemory],
) -> Optional[Dict[str, Tuple]]:
    loop = GLOBAL_JIT.loop_for_flat(task["kernel"], "multiprocess", task["ndim"])
    loop(task["element"], ctx, task["dims"], task["start"], task["stop"])
    tree_specs: Dict[str, Tuple[str, Optional[str], int]] = task.get("tree") or {}
    if not hists:
        return None
    if not tree_specs:
        return {attr: rec.harvest() for attr, rec in hists.items()}
    chunk = int(task["chunk"])
    for attr, rec in hists.items():
        sig_name, err_name, nbins = tree_specs[attr]
        idx, w, e = rec.harvest()
        shm = shared_memory.SharedMemory(name=sig_name)
        opened.append(shm)
        slot = np.ndarray(
            (task["n_chunks"], nbins), dtype=np.float64, buffer=shm.buf
        )[chunk]
        if idx.size:
            np.add.at(slot, idx, w)
        del slot
        if err_name is not None and e is not None:
            eshm = shared_memory.SharedMemory(name=err_name)
            opened.append(eshm)
            eslot = np.ndarray(
                (task["n_chunks"], nbins), dtype=np.float64, buffer=eshm.buf
            )[chunk]
            if idx.size:
                np.add.at(eslot, idx, e)
            del eslot
    return None


def _run_for_chunk(task: Dict[str, Any]) -> Any:
    """Execute one flat chunk of a ``parallel_for`` in a worker process."""
    def body() -> Optional[Dict[str, Tuple]]:
        ctx, opened, hists = _open_captures(task["captures"])
        try:
            return _for_chunk_body(task, ctx, hists, opened)
        finally:
            # Drop every reference into the shared buffers (the Captures
            # holds the views) before closing the attachments.
            ctx = None  # noqa: F841
            _close_worker_shm(opened)

    return _worker_traced(task, body)


def _run_reduce_chunk(task: Dict[str, Any]) -> Any:
    """Execute one flat chunk of a ``parallel_reduce`` in a worker."""
    def body() -> float:
        combine, init = REDUCE_OPS[task["op"]]
        ctx, opened, _hists = _open_captures(task["captures"])
        try:
            loop = GLOBAL_JIT.loop_reduce_flat(
                task["kernel"], "multiprocess", task["ndim"]
            )
            return float(
                loop(task["element"], ctx, task["dims"], combine, init,
                     task["start"], task["stop"])
            )
        finally:
            ctx = None  # noqa: F841
            _close_worker_shm(opened)

    return _worker_traced(task, body)


# ---------------------------------------------------------------------------
# the back end
# ---------------------------------------------------------------------------

class MultiprocessBackend(Backend):
    name = "multiprocess"
    device_kind = "cpu"

    def __init__(
        self,
        n_workers: Optional[int] = None,
        *,
        n_chunks: int = DEFAULT_CHUNKS,
        hist_mode: Optional[str] = None,
    ) -> None:
        self._explicit_workers = n_workers
        self._n_chunks = int(n_chunks)
        if self._n_chunks < 1:
            raise BackendError(f"n_chunks must be >= 1, got {n_chunks}")
        if hist_mode is not None and hist_mode not in _HIST_MODES:
            raise BackendError(
                f"hist_mode must be one of {_HIST_MODES}, got {hist_mode!r}"
            )
        self._hist_mode = hist_mode

    @property
    def n_workers(self) -> int:
        """Effective worker count (``REPRO_NUM_PROCS`` or CPU count)."""
        return resolve_workers(PROCS_ENV, self._explicit_workers)

    @property
    def hist_mode(self) -> str:
        if self._hist_mode is not None:
            return self._hist_mode
        env = os.environ.get(HIST_MODE_ENV, "").strip()
        if not env:
            return "replay"
        if env not in _HIST_MODES:
            raise BackendError(
                f"{HIST_MODE_ENV} must be one of {_HIST_MODES}, got {env!r}"
            )
        return env

    # -- parallel_for ----------------------------------------------------
    def run_parallel_for(
        self, dims: int | Tuple[int, ...], kernel: Kernel, captures: Captures
    ) -> None:
        dims = normalize_dims(dims)
        total = 1
        for d in dims:
            total *= d
        chunks = chunk_grid(total, self._n_chunks)
        if not chunks:
            return
        if self.n_workers == 1:
            # In-process degenerate pool: the same flat loop over the
            # full range — identical to replaying the chunk logs in
            # ascending order, so results match the multi-worker path.
            loop = GLOBAL_JIT.loop_for_flat(kernel.name, self.name, len(dims))
            loop(kernel.element, captures, dims, 0, total)
            return
        transport = _Transport(captures)
        tree: Optional[_TreeBlocks] = None
        trace_ctx = _trace_ctx()
        tracer = _trace.active_tracer()
        try:
            if self.hist_mode == "tree" and transport.hists:
                tree = _TreeBlocks(transport.hists, len(chunks))
            tasks = [
                dict(
                    kernel=kernel.name,
                    element=kernel.element,
                    ndim=len(dims),
                    dims=dims,
                    start=start,
                    stop=stop,
                    chunk=c,
                    n_chunks=len(chunks),
                    captures=transport.payload,
                    tree=tree.specs if tree is not None else None,
                    **({"trace": trace_ctx} if trace_ctx else {}),
                )
                for c, (start, stop) in enumerate(chunks)
            ]
            try:
                pool = GLOBAL_POOL.executor(self.n_workers)
                futures = [pool.submit(_run_for_chunk, t) for t in tasks]
                results = [_unwrap_traced(f.result(), tracer)
                           for f in futures]
            except BrokenProcessPool as exc:
                GLOBAL_POOL.dispose()
                raise BackendError(
                    "multiprocess worker pool broke mid-launch "
                    f"(kernel {kernel.name!r}); pool disposed, next launch "
                    "starts fresh"
                ) from exc
            if tree is not None:
                tree.combine_into(transport.hists)
            elif transport.hists:
                # ascending chunk order == serial row-major order: the
                # replayed per-bin fold is bit-identical to the oracle
                for attr, hist in transport.hists.items():
                    replay_deposits(
                        hist, [res[attr] for res in results if res is not None]
                    )
            transport.write_back()
        finally:
            if tree is not None:
                tree.close()
            transport.close()

    # -- parallel_reduce -------------------------------------------------
    def run_parallel_reduce(
        self,
        dims: int | Tuple[int, ...],
        kernel: Kernel,
        captures: Captures,
        op: str = "+",
    ) -> float:
        dims = normalize_dims(dims)
        try:
            combine, init = REDUCE_OPS[op]
        except KeyError:
            raise BackendError(f"unknown reduction op {op!r}") from None
        total = 1
        for d in dims:
            total *= d
        chunks = chunk_grid(total, self._n_chunks)
        if not chunks:
            return float(init)
        if self.n_workers == 1:
            # Same fixed chunk grid + same tree as the multi-worker
            # path, evaluated in-process: worker-count invariance by
            # construction.
            loop = GLOBAL_JIT.loop_reduce_flat(kernel.name, self.name, len(dims))
            partials = [
                float(loop(kernel.element, captures, dims, combine, init,
                           start, stop))
                for start, stop in chunks
            ]
            return float(pairwise_tree(partials, combine))
        transport = _Transport(captures)
        trace_ctx = _trace_ctx()
        tracer = _trace.active_tracer()
        try:
            tasks = [
                dict(
                    kernel=kernel.name,
                    element=kernel.element,
                    ndim=len(dims),
                    dims=dims,
                    start=start,
                    stop=stop,
                    chunk=c,
                    op=op,
                    captures=transport.payload,
                    **({"trace": trace_ctx} if trace_ctx else {}),
                )
                for c, (start, stop) in enumerate(chunks)
            ]
            try:
                pool = GLOBAL_POOL.executor(self.n_workers)
                futures = [pool.submit(_run_reduce_chunk, t) for t in tasks]
                partials = [float(_unwrap_traced(f.result(), tracer))
                            for f in futures]
            except BrokenProcessPool as exc:
                GLOBAL_POOL.dispose()
                raise BackendError(
                    "multiprocess worker pool broke mid-launch "
                    f"(kernel {kernel.name!r}); pool disposed, next launch "
                    "starts fresh"
                ) from exc
            return float(pairwise_tree(partials, combine))
        finally:
            transport.close()


MULTIPROC = register_backend(MultiprocessBackend())
