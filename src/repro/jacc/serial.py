"""Serial back end: the interpreted scalar-CPU reference.

Runs the kernel's ``element`` body once per index through a JIT-
specialized loop nest.  This is the semantics oracle: every other back
end must produce the same results, and the test suite checks exactly
that.
"""

from __future__ import annotations

from typing import Tuple

from repro.jacc.backend import Backend, BackendError, REDUCE_OPS, register_backend
from repro.jacc.jit import GLOBAL_JIT
from repro.jacc.kernels import Captures, Kernel, normalize_dims


class SerialBackend(Backend):
    name = "serial"
    device_kind = "cpu"

    def run_parallel_for(
        self, dims: int | Tuple[int, ...], kernel: Kernel, captures: Captures
    ) -> None:
        dims = normalize_dims(dims)
        loop = GLOBAL_JIT.loop_for(kernel.name, self.name, len(dims))
        loop(kernel.element, captures, dims)

    def run_parallel_reduce(
        self,
        dims: int | Tuple[int, ...],
        kernel: Kernel,
        captures: Captures,
        op: str = "+",
    ) -> float:
        dims = normalize_dims(dims)
        try:
            combine, init = REDUCE_OPS[op]
        except KeyError:
            raise BackendError(f"unknown reduction op {op!r}") from None
        loop = GLOBAL_JIT.loop_reduce(kernel.name, self.name, len(dims))
        return float(loop(kernel.element, captures, dims, combine, init))


SERIAL = register_backend(SerialBackend())
