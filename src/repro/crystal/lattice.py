"""Unit cells and the Busing-Levy B matrix.

Conventions (Busing & Levy 1967, as used by Mantid):

* direct cell parameters ``a, b, c`` in Angstrom, angles
  ``alpha, beta, gamma`` in degrees;
* reciprocal parameters ``a* = b c sin(alpha) / V`` etc. (no 2 pi);
* the B matrix maps integer (H, K, L) to a Cartesian reciprocal-space
  vector in units of 1/Angstrom (again without the 2 pi, which the UB
  transforms in :mod:`repro.crystal.ub` apply explicitly).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import cos, radians, sin, sqrt

import numpy as np

from repro.util.validation import ValidationError, require


@dataclass(frozen=True)
class UnitCell:
    """A crystallographic unit cell."""

    a: float
    b: float
    c: float
    alpha: float = 90.0
    beta: float = 90.0
    gamma: float = 90.0

    def __post_init__(self) -> None:
        for name in ("a", "b", "c"):
            require(getattr(self, name) > 0, f"cell edge {name} must be positive")
        for name in ("alpha", "beta", "gamma"):
            ang = getattr(self, name)
            require(0.0 < ang < 180.0, f"cell angle {name} must be in (0, 180)")
        # The metric must be positive definite; the triple-product formula
        # under the square root in `volume` must be positive.
        ca, cb, cg = (cos(radians(x)) for x in (self.alpha, self.beta, self.gamma))
        disc = 1.0 - ca * ca - cb * cb - cg * cg + 2.0 * ca * cb * cg
        if disc <= 0.0:
            raise ValidationError(f"degenerate cell angles {self.alpha}/{self.beta}/{self.gamma}")

    @property
    def volume(self) -> float:
        """Direct cell volume in Angstrom^3."""
        ca, cb, cg = (cos(radians(x)) for x in (self.alpha, self.beta, self.gamma))
        disc = 1.0 - ca * ca - cb * cb - cg * cg + 2.0 * ca * cb * cg
        return self.a * self.b * self.c * sqrt(disc)

    def metric_tensor(self) -> np.ndarray:
        """Direct-space metric tensor G (dot products of cell vectors)."""
        a, b, c = self.a, self.b, self.c
        ca, cb, cg = (cos(radians(x)) for x in (self.alpha, self.beta, self.gamma))
        return np.array(
            [
                [a * a, a * b * cg, a * c * cb],
                [a * b * cg, b * b, b * c * ca],
                [a * c * cb, b * c * ca, c * c],
            ]
        )

    def reciprocal(self) -> "UnitCell":
        """The reciprocal cell (lengths in 1/Angstrom, angles in degrees)."""
        g_star = np.linalg.inv(self.metric_tensor())
        ra, rb, rc = np.sqrt(np.diag(g_star))
        ralpha = np.degrees(np.arccos(g_star[1, 2] / (rb * rc)))
        rbeta = np.degrees(np.arccos(g_star[0, 2] / (ra * rc)))
        rgamma = np.degrees(np.arccos(g_star[0, 1] / (ra * rb)))
        return UnitCell(ra, rb, rc, ralpha, rbeta, rgamma)

    def b_matrix(self) -> np.ndarray:
        """Busing-Levy B: Cartesian reciprocal coordinates of (H,K,L)."""
        rec = self.reciprocal()
        ra, rb, rc = rec.a, rec.b, rec.c
        rbeta, rgamma = radians(rec.beta), radians(rec.gamma)
        return np.array(
            [
                [ra, rb * cos(rgamma), rc * cos(rbeta)],
                [0.0, rb * sin(rgamma), -rc * sin(rbeta) * cos(radians(self.alpha))],
                [0.0, 0.0, 1.0 / self.c],
            ]
        )

    def d_spacing(self, hkl: np.ndarray) -> np.ndarray:
        """Interplanar spacing(s) d(hkl) in Angstrom; hkl is (..., 3)."""
        hkl = np.asarray(hkl, dtype=np.float64)
        g_star = np.linalg.inv(self.metric_tensor())
        inv_d_sq = np.einsum("...i,ij,...j->...", hkl, g_star, hkl)
        with np.errstate(divide="ignore"):
            return 1.0 / np.sqrt(inv_d_sq)

    def q_magnitude(self, hkl: np.ndarray) -> np.ndarray:
        """|Q| = 2 pi / d for the given reflection(s)."""
        return 2.0 * np.pi / self.d_spacing(hkl)
