"""Sample goniometer rotations.

SNS single-crystal instruments rotate the sample between runs (one
goniometer setting per run; CORELLI's Benzil ensemble is 36 omega
settings, TOPAZ's Bixbyite 22 arbitrary orientations).  The rotation
``R`` carries sample-frame vectors into the lab frame:
``Q_lab = R @ Q_sample``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import ValidationError, as_float_array


def rotation_about_axis(axis: np.ndarray, angle_deg: float) -> np.ndarray:
    """Rodrigues rotation matrix about ``axis`` by ``angle_deg`` degrees."""
    axis = as_float_array(axis, "axis", ndim=1)
    if axis.shape != (3,):
        raise ValidationError(f"axis must have 3 components, got {axis.shape}")
    n = np.linalg.norm(axis)
    if n < 1e-12:
        raise ValidationError("rotation axis must be non-zero")
    x, y, z = axis / n
    theta = np.radians(angle_deg)
    c, s = np.cos(theta), np.sin(theta)
    k = np.array([[0.0, -z, y], [z, 0.0, -x], [-y, x, 0.0]])
    return np.eye(3) + s * k + (1.0 - c) * (k @ k)


def goniometer_omega_chi_phi(omega: float, chi: float = 0.0, phi: float = 0.0) -> np.ndarray:
    """Standard SNS goniometer: R = Ry(omega) Rz(chi) Ry(phi), degrees.

    The vertical axis is y (omega and phi), chi tilts about the beam-
    perpendicular z axis, matching Mantid's default goniometer for
    CORELLI/TOPAZ.
    """
    ry_omega = rotation_about_axis(np.array([0.0, 1.0, 0.0]), omega)
    rz_chi = rotation_about_axis(np.array([0.0, 0.0, 1.0]), chi)
    ry_phi = rotation_about_axis(np.array([0.0, 1.0, 0.0]), phi)
    return ry_omega @ rz_chi @ ry_phi


@dataclass(frozen=True)
class Goniometer:
    """A named goniometer setting (one per experiment run)."""

    omega: float
    chi: float = 0.0
    phi: float = 0.0

    @property
    def rotation(self) -> np.ndarray:
        return goniometer_omega_chi_phi(self.omega, self.chi, self.phi)

    @property
    def inverse(self) -> np.ndarray:
        r = self.rotation
        return r.T  # rotations: inverse == transpose
