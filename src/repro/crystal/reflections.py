"""Bragg reflection enumeration with a synthetic intensity model.

Enumerates all integer (H, K, L) with ``|Q| <= q_max`` that satisfy the
lattice centering rule, and assigns each an intensity that is

* strictly identical across a symmetry orbit (so symmetrization in the
  reduction is physically consistent),
* reproducible (hash-seeded per orbit representative),
* damped at high Q by a Debye-Waller factor ``exp(-B q^2 / (8 pi^2))``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crystal.structures import CrystalStructure
from repro.util.validation import require


@dataclass(frozen=True)
class ReflectionList:
    """The enumerated reflections of a structure within a Q sphere."""

    hkl: np.ndarray  # (n, 3) int64
    q_mag: np.ndarray  # (n,) float64, |Q| in 1/Angstrom
    intensity: np.ndarray  # (n,) float64, arbitrary units, sums to n

    @property
    def n_reflections(self) -> int:
        return int(self.hkl.shape[0])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ReflectionList(n={self.n_reflections}, q<=~{self.q_mag.max():.2f})"


def _orbit_intensity(rep: np.ndarray, seed: int) -> np.ndarray:
    """Deterministic pseudo-random base intensity per orbit representative.

    A splitmix-style integer hash of the (rounded) representative plus
    the structure seed, mapped into (0, 1] and shaped log-normally so a
    few reflections are strong and many are weak, as in real patterns.
    """
    r = np.rint(rep).astype(np.int64).astype(np.uint64)
    c1 = np.uint64(0x9E3779B97F4A7C15)
    c2 = np.uint64(0xBF58476D1CE4E5B9)
    c3 = np.uint64(0x94D049BB133111EB)
    c4 = np.uint64(0xD6E8FEB86659FD93)
    with np.errstate(over="ignore"):
        x = r[..., 0] * c1 + r[..., 1] * c2 + r[..., 2] * c3 + np.uint64(seed) * c4
        x = x ^ (x >> np.uint64(30))
        x = x * c2
        x = x ^ (x >> np.uint64(27))
    u = (x >> np.uint64(11)).astype(np.float64) / float(2**53)
    u = np.clip(u, 1e-12, 1.0)
    # log-normal-ish: exp(2 * Phi^-1-ish(u)); cheap approximation via logit
    return np.exp(1.5 * np.log(u / (1.0 - u + 1e-12)) * 0.5)


def generate_reflections(
    structure: CrystalStructure,
    q_max: float,
    *,
    q_min: float = 0.3,
) -> ReflectionList:
    """All allowed reflections of ``structure`` with q_min <= |Q| <= q_max."""
    require(q_max > q_min > 0, "need q_max > q_min > 0")
    cell = structure.cell
    # conservative index bounds: |h| <= q_max * a / (2 pi) etc.
    rec = cell.reciprocal()
    bounds = [
        int(np.ceil(q_max / (2.0 * np.pi * r))) for r in (rec.a, rec.b, rec.c)
    ]
    h = np.arange(-bounds[0], bounds[0] + 1)
    k = np.arange(-bounds[1], bounds[1] + 1)
    l = np.arange(-bounds[2], bounds[2] + 1)
    hh, kk, ll = np.meshgrid(h, k, l, indexing="ij")
    hkl = np.stack([hh.ravel(), kk.ravel(), ll.ravel()], axis=1).astype(np.int64)
    hkl = hkl[np.any(hkl != 0, axis=1)]  # drop (000)

    q_mag = cell.q_magnitude(hkl)
    mask = (q_mag >= q_min) & (q_mag <= q_max) & structure.allowed(hkl)
    hkl, q_mag = hkl[mask], q_mag[mask]

    pg = structure.point_group
    reps = pg.orbit_representative(hkl.astype(np.float64))
    base = _orbit_intensity(reps, structure.intensity_seed)
    debye_waller = np.exp(-structure.b_iso * q_mag**2 / (8.0 * np.pi**2))
    intensity = base * debye_waller
    total = intensity.sum()
    require(total > 0, f"no intensity in the requested Q range for {structure.name}")
    intensity = intensity * (intensity.shape[0] / total)
    return ReflectionList(hkl=hkl, q_mag=q_mag, intensity=intensity)
