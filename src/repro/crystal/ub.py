"""Orientation (U) and UB matrices; HKL <-> Q_sample transforms.

Conventions follow Mantid:

* ``Q_sample = 2 pi * UB * hkl`` (1/Angstrom),
* ``hkl = (2 pi * UB)^-1 * Q_sample``,
* ``U`` is a proper rotation carrying the Busing-Levy Cartesian frame of
  the crystal onto the sample frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.crystal.lattice import UnitCell
from repro.util.validation import ValidationError, as_matrix3

TWO_PI = 2.0 * np.pi


def _orthonormalize(u: np.ndarray) -> np.ndarray:
    """Project a near-rotation onto the closest proper rotation (SVD)."""
    w, _s, vt = np.linalg.svd(u)
    r = w @ vt
    if np.linalg.det(r) < 0:
        w[:, -1] *= -1.0
        r = w @ vt
    return r


@dataclass
class UBMatrix:
    """The UB matrix of an oriented single crystal."""

    cell: UnitCell
    u: np.ndarray = field(default_factory=lambda: np.eye(3))

    def __post_init__(self) -> None:
        self.u = as_matrix3(self.u, "u")
        if not np.allclose(self.u @ self.u.T, np.eye(3), atol=1e-8):
            raise ValidationError("U must be orthogonal")
        if np.linalg.det(self.u) < 0:
            raise ValidationError("U must be a proper rotation (det=+1)")

    @classmethod
    def from_u_vectors(cls, cell: UnitCell, u_along: np.ndarray, v_in_plane: np.ndarray) -> "UBMatrix":
        """Orient so reflection ``u_along`` points along beam (+z) and
        ``v_in_plane`` lies in the (x, z) plane — the standard SetUB
        (u, v) convention."""
        b = cell.b_matrix()
        qu = b @ np.asarray(u_along, dtype=np.float64)
        qv = b @ np.asarray(v_in_plane, dtype=np.float64)
        nu = np.linalg.norm(qu)
        if nu < 1e-12:
            raise ValidationError("u_along maps to zero reciprocal vector")
        e3 = qu / nu
        qv_perp = qv - (qv @ e3) * e3
        nv = np.linalg.norm(qv_perp)
        if nv < 1e-12:
            raise ValidationError("v_in_plane is parallel to u_along")
        e1 = qv_perp / nv
        e2 = np.cross(e3, e1)
        # Crystal Cartesian frame (e1,e2,e3) -> sample frame (x,y,z).
        t_crystal = np.column_stack([e1, e2, e3])
        u = _orthonormalize(np.eye(3) @ t_crystal.T)
        return cls(cell=cell, u=u)

    @classmethod
    def from_matrix(cls, ub: np.ndarray) -> "UBMatrix":
        """Recover cell and orientation from a raw UB matrix.

        Uses ``(UB)^T (UB) = G*`` to get the reciprocal metric, rebuilds
        B, then ``U = UB B^-1`` re-orthonormalized.
        """
        ub = as_matrix3(ub, "ub")
        g_star = ub.T @ ub
        g = np.linalg.inv(g_star)
        a, b_len, c = np.sqrt(np.diag(g))
        alpha = np.degrees(np.arccos(g[1, 2] / (b_len * c)))
        beta = np.degrees(np.arccos(g[0, 2] / (a * c)))
        gamma = np.degrees(np.arccos(g[0, 1] / (a * b_len)))
        cell = UnitCell(a, b_len, c, alpha, beta, gamma)
        u = _orthonormalize(ub @ np.linalg.inv(cell.b_matrix()))
        return cls(cell=cell, u=u)

    @property
    def matrix(self) -> np.ndarray:
        """UB (without the 2 pi)."""
        return self.u @ self.cell.b_matrix()

    def hkl_to_q_sample(self, hkl: np.ndarray) -> np.ndarray:
        """(..., 3) hkl -> (..., 3) Q_sample in 1/Angstrom."""
        hkl = np.asarray(hkl, dtype=np.float64)
        return TWO_PI * hkl @ self.matrix.T

    def q_sample_to_hkl(self, q_sample: np.ndarray) -> np.ndarray:
        """(..., 3) Q_sample -> (..., 3) fractional hkl."""
        q = np.asarray(q_sample, dtype=np.float64)
        inv = np.linalg.inv(TWO_PI * self.matrix)
        return q @ inv.T

    def hkl_transform(self, goniometer: Optional[np.ndarray] = None) -> np.ndarray:
        """The matrix M with ``hkl = M @ Q_lab``.

        ``Q_sample = R^-1 Q_lab`` for goniometer rotation R, and
        ``hkl = (2 pi UB)^-1 Q_sample``.  With ``goniometer=None`` the
        identity rotation is used.
        """
        m = np.linalg.inv(TWO_PI * self.matrix)
        if goniometer is not None:
            m = m @ np.linalg.inv(as_matrix3(goniometer, "goniometer"))
        return m
