"""UB refinement from indexed peaks.

The production workflow determines a sample's orientation by indexing
observed Bragg peaks against the known lattice (Mantid's
``FindUBUsingLatticeParameters`` / ``CalculateUMatrix``).  Given peak
positions in Q_sample and their integer (H, K, L) assignments, the
optimal orientation U solves the orthogonal Procrustes problem

    U* = argmin_U  sum_i || U B hkl_i - q_i / (2 pi) ||^2

whose closed form is the Kabsch/SVD algorithm.  :func:`refine_ub`
implements it; :func:`index_peaks` produces the integer assignments by
rounding fractional HKL under a trial UB.

Together with :mod:`repro.core.peaks` this closes the last loop of the
reproduction: reduce -> find peaks -> index -> recover the orientation
the synthetic events were generated with.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crystal.lattice import UnitCell
from repro.crystal.ub import TWO_PI, UBMatrix
from repro.util.validation import ValidationError, require


@dataclass(frozen=True)
class IndexingResult:
    """Outcome of :func:`index_peaks`."""

    #: (n, 3) integer HKL assignments
    hkl: np.ndarray
    #: (n,) boolean: assignment within tolerance
    indexed: np.ndarray
    #: (n,) max |fractional - integer| per peak
    residual: np.ndarray

    @property
    def n_indexed(self) -> int:
        return int(self.indexed.sum())

    @property
    def fraction_indexed(self) -> float:
        return float(self.indexed.mean()) if self.indexed.size else 0.0


def index_peaks(
    q_sample: np.ndarray,
    trial_ub: UBMatrix,
    *,
    tolerance: float = 0.15,
) -> IndexingResult:
    """Assign integer HKL to peaks under a trial orientation.

    A peak is *indexed* when every fractional Miller index is within
    ``tolerance`` of an integer.
    """
    require(0 < tolerance < 0.5, "tolerance must be in (0, 0.5)")
    q = np.asarray(q_sample, dtype=np.float64)
    if q.ndim != 2 or q.shape[1] != 3:
        raise ValidationError(f"q_sample must be (n, 3), got {q.shape}")
    frac = trial_ub.q_sample_to_hkl(q)
    hkl = np.rint(frac)
    residual = np.max(np.abs(frac - hkl), axis=1)
    return IndexingResult(
        hkl=hkl.astype(np.int64),
        indexed=residual <= tolerance,
        residual=residual,
    )


def refine_ub(
    q_sample: np.ndarray,
    hkl: np.ndarray,
    cell: UnitCell,
) -> UBMatrix:
    """Optimal-orientation UB from indexed peaks (Kabsch algorithm).

    Parameters
    ----------
    q_sample:
        ``(n, 3)`` peak momentum transfers in the sample frame.
    hkl:
        ``(n, 3)`` their integer Miller indices.
    cell:
        The known unit cell (B is computed from it; only U is fitted).
    """
    q = np.asarray(q_sample, dtype=np.float64)
    h = np.asarray(hkl, dtype=np.float64)
    require(q.ndim == 2 and q.shape[1] == 3, "q_sample must be (n, 3)")
    require(h.shape == q.shape, "hkl and q_sample shapes differ")
    require(q.shape[0] >= 2, "need at least two peaks to orient a crystal")

    b = cell.b_matrix()
    source = h @ b.T  # B hkl, the crystal-frame directions
    target = q / TWO_PI
    # guard against degenerate (collinear) peak sets
    if np.linalg.matrix_rank(np.vstack([source, np.zeros((1, 3))])) < 2:
        raise ValidationError("peaks are collinear; orientation is ambiguous")

    # Kabsch: U = V diag(1, 1, det) W^T for H = source^T target = W S V^T
    covariance = source.T @ target
    w, _s, vt = np.linalg.svd(covariance)
    d = np.sign(np.linalg.det(vt.T @ w.T))
    u = vt.T @ np.diag([1.0, 1.0, d]) @ w.T
    return UBMatrix(cell=cell, u=u)


def indexing_error(ub: UBMatrix, q_sample: np.ndarray, hkl: np.ndarray) -> float:
    """RMS distance (in r.l.u.) between assigned and predicted indices."""
    frac = ub.q_sample_to_hkl(np.asarray(q_sample, dtype=np.float64))
    d = frac - np.asarray(hkl, dtype=np.float64)
    return float(np.sqrt(np.mean(np.sum(d * d, axis=1))))
